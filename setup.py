"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists only so that
``pip install -e . --no-use-pep517`` works on offline machines whose
setuptools predates vendored wheel support (PEP 660 editable installs with
setuptools < 70 require the separate ``wheel`` package).
"""

from setuptools import setup

setup()
