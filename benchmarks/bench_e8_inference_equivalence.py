"""E8 — Theorem 1 / Lemmas 2-4: three decision procedures, one relation.

Paper artifact: section 5's chain — Armstrong derivability ≡ logical
inference of implicational statements in C ≡ FD inference over two-tuple
relations with nulls (strong satisfiability).

Reproduced series: (a) exhaustive agreement counts of the three procedures
over random FD sets; (b) cost: attribute closure is polynomial while
assignment enumeration is 3^n — the practical content of having Armstrong
completeness rather than only the semantic definition.
"""

import itertools
import random

from repro.armstrong.implication import implies
from repro.bench.report import Table, time_call
from repro.core.fd import FD
from repro.core.satisfaction import strongly_holds
from repro.logic.bridge import assignment_to_relation
from repro.logic.implicational import infers
from repro.logic.system_c import assignments_over
from repro.workloads.generator import attribute_names, random_fds


def two_tuple_inference(premises, goal, attributes) -> bool:
    """Direct Lemma-4 semantics: no two-tuple counterexample relation."""
    for assignment in assignments_over(attributes):
        relation = assignment_to_relation(assignment)
        if all(strongly_holds(fd, relation) for fd in premises):
            if not strongly_holds(goal, relation):
                return False
    return True


def main() -> None:
    rng = random.Random(17)
    attrs = attribute_names(4)
    trials = 120
    agree_all = 0
    positives = 0
    for trial in range(trials):
        premises = list(random_fds(rng.randint(0, 10**6), attrs, 3))
        goal_lhs = rng.sample(list(attrs), rng.randint(1, 2))
        goal_rhs = [rng.choice([a for a in attrs if a not in goal_lhs])]
        goal = FD(goal_lhs, goal_rhs)
        armstrong = implies(premises, goal)
        logical = infers(premises, goal)
        relational = two_tuple_inference(premises, goal, attrs)
        if armstrong == logical == relational:
            agree_all += 1
        positives += armstrong
    table = Table(
        f"E8a — agreement of the three procedures ({trials} random cases)",
        ["statistic", "count"],
    )
    table.add_row("all three agree", agree_all)
    table.add_row("inferences among cases", positives)
    table.show()
    assert agree_all == trials, "Theorem 1 equivalence violated!"

    table = Table(
        "E8b — decision cost vs number of attributes (one implication test)",
        ["attrs", "closure (s)", "3-valued enumeration (s)", "two-tuple world (s)"],
    )
    for n in (4, 5, 6, 7):
        attrs_n = attribute_names(n)
        premises = list(random_fds(99, attrs_n, n - 1))
        goal = FD(attrs_n[0], attrs_n[-1])
        closure_time = time_call(lambda: implies(premises, goal))
        logic_time = time_call(lambda: infers(premises, goal), repeat=1)
        world_time = time_call(
            lambda: two_tuple_inference(premises, goal, attrs_n), repeat=1
        )
        table.add_row(n, closure_time, logic_time, world_time)
    table.show()
    print(
        "\nShape: closure stays flat; the two semantic procedures grow"
        "\nlike 3^n — completeness is what buys tractability."
    )


def bench_armstrong_implication(benchmark) -> None:
    attrs = attribute_names(8)
    premises = list(random_fds(3, attrs, 10))
    goal = FD(attrs[0], attrs[-1])
    benchmark(lambda: implies(premises, goal))


def bench_c_logic_inference_5_attrs(benchmark) -> None:
    attrs = attribute_names(5)
    premises = list(random_fds(3, attrs, 4))
    goal = FD(attrs[0], attrs[-1])
    benchmark(lambda: infers(premises, goal))


if __name__ == "__main__":
    main()
