"""E2 — Figure 2: the four worked FD evaluations, and Proposition 1's point.

Paper artifact: Figure 2 — instances r1-r4 of R(A,B,C) with f : AB -> C,
annotated "true because of [T2]/[T3]" and "false because of [F2]" (the last
under dom(A) = {a1, a2}).

Reproduced series: the exact truth values and condition labels, the
agreement of the case analysis with the brute-force least-extension
definition, and the *reason Proposition 1 exists*: case analysis cost is
flat in the domain size while brute-force enumeration grows linearly with
it (exponentially in the number of nulls).
"""

from repro.bench.report import Table, time_call
from repro.core.domain import Domain
from repro.core.interpretation import (
    evaluate_fd,
    evaluate_fd_brute,
    proposition1_case,
)
from repro.core.relation import Relation
from repro.core.schema import RelationSchema
from repro.core.values import null
from repro.workloads.paper import figure_2_cases, figure_2_fd


def main() -> None:
    fd = figure_2_fd()
    table = Table(
        "E2a — Figure 2 truth table (f : AB -> C, t1 = first tuple)",
        ["instance", "paper value", "paper cond", "cases", "cond", "brute"],
    )
    for case in figure_2_cases():
        t1 = case.relation[0]
        result = proposition1_case(fd, t1, case.relation)
        brute = evaluate_fd_brute(fd, t1, case.relation)
        table.add_row(
            case.name,
            str(case.expected_value),
            case.expected_condition,
            str(result.value),
            result.condition,
            str(brute),
        )
    table.show()

    # cost: case analysis vs enumeration as dom(A) grows (r4's shape)
    table = Table(
        "E2b — evaluation cost vs |dom(A)| (r4-shaped instance)",
        ["|dom(A)|", "cases (s)", "brute (s)", "brute/cases"],
    )
    for size in (2, 8, 32, 128, 512):
        domain = Domain([f"a{i}" for i in range(size)], name="A")
        schema = RelationSchema("R", "A B C", domains={"A": domain})
        rows = [(null(), "b1", "c~")] + [
            (f"a{i}", "b1", f"c{i}") for i in range(size)
        ]
        r = Relation(schema, rows)
        t1 = r[0]
        cases_time = time_call(lambda: evaluate_fd(fd, t1, r, method="cases"))
        brute_time = time_call(lambda: evaluate_fd_brute(fd, t1, r))
        table.add_row(size, cases_time, brute_time, f"{brute_time / cases_time:.1f}x")
    table.show()
    print(
        "\nShape check: the ratio grows with the domain — Proposition 1's"
        "\ncase analysis replaces substitution enumeration."
    )


def bench_proposition1_cases(benchmark) -> None:
    """Case-analysis evaluation on the r4 instance."""
    fd = figure_2_fd()
    case = [c for c in figure_2_cases() if c.name == "r4"][0]
    value = benchmark(lambda: evaluate_fd(fd, case.relation[0], case.relation))
    assert str(value) == "false"


def bench_brute_force_least_extension(benchmark) -> None:
    """Brute-force least-extension evaluation on the same instance."""
    fd = figure_2_fd()
    case = [c for c in figure_2_cases() if c.name == "r4"][0]
    value = benchmark(
        lambda: evaluate_fd_brute(fd, case.relation[0], case.relation)
    )
    assert str(value) == "false"


if __name__ == "__main__":
    main()
