"""E3 — Figure 3's complexity claim: TEST-FDs is O(|F| · n log n).

Paper artifact: "The algorithm runs in O(|F|·n·logn) time ... Each FD is
tested in time n·logn, the time to sort the relation", against the
footnote's unsorted O(|F|·n²) variant.

Reproduced series: wall time of sort-merge vs pairwise vs bucket grouping
(the "Additional Assumptions" refinement: dictionary grouping on X-keys,
``O(|F|·n·p)``) over a geometric ladder of n, with log-log slopes.
Expected shape: sort-merge and bucket slopes ≈ 1 (n log n reads just above
linear), pairwise slope ≈ 2, and the gap widens with n — who wins and by
how much is the point, not absolute seconds.  All three checkers consume
the precomputed column projections introduced by PR 1.
"""

import random

from repro.bench.report import (
    Table,
    bench_repeat,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
    time_call,
)
from repro.core.fd import FDSet
from repro.testfd import (
    CONVENTION_WEAK,
    check_fds_batched,
    check_fds_bucket,
    check_fds_pairwise,
    check_fds_sortmerge,
)
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

FDS = FDSet(["A1 -> A2", "A2 A3 -> A4", "A1 -> A5"])

#: canonical-cover shape: one determined attribute per FD, one shared key —
#: the workload where per-FD grouping repeats all of its X-key work
SHARED_LHS_FDS = FDSet(["A1 -> A2", "A1 -> A3", "A1 -> A4", "A1 -> A5"])


def workload(n_rows: int, seed: int = 11):
    rng = random.Random(seed)
    schema = random_schema(5)
    total = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 4)
    )
    return inject_nulls(rng, total, density=0.15)


def shared_lhs_workload(n_rows: int, seed: int = 17):
    """Satisfiable for SHARED_LHS_FDS: every variant scans every row, so
    the series measures grouping cost, not early-exit luck."""
    rng = random.Random(seed)
    schema = random_schema(5)
    total = random_satisfiable_instance(
        rng, schema, list(SHARED_LHS_FDS), n_rows, pool_size=max(8, n_rows // 4)
    )
    return inject_nulls(rng, total, density=0.15)


def main() -> None:
    sizes = bench_sizes(geometric_sizes(200, 2.0, 5))
    table = Table(
        "E3 — TEST-FDs scaling (weak convention, satisfiable workload)",
        [
            "n", "sortmerge (s)", "bucket (s)", "pairwise (s)",
            "pairwise/sortmerge", "pairwise/bucket",
        ],
    )
    sort_times, bucket_times, pair_times = [], [], []
    for n in sizes:
        r = workload(n)
        sort_time = time_call(
            lambda: check_fds_sortmerge(r, FDS, CONVENTION_WEAK),
            repeat=bench_repeat(3),
        )
        bucket_time = time_call(
            lambda: check_fds_bucket(r, FDS, CONVENTION_WEAK),
            repeat=bench_repeat(3),
        )
        pair_time = time_call(
            lambda: check_fds_pairwise(r, FDS, CONVENTION_WEAK), repeat=1
        )
        sort_times.append(sort_time)
        bucket_times.append(bucket_time)
        pair_times.append(pair_time)
        table.add_row(
            n, sort_time, bucket_time, pair_time,
            f"{pair_time / sort_time:.1f}x",
            f"{pair_time / bucket_time:.1f}x",
        )
    table.show()

    sort_slope = loglog_slope(sizes, sort_times)
    bucket_slope = loglog_slope(sizes, bucket_times)
    pair_slope = loglog_slope(sizes, pair_times)
    print(f"\nlog-log slope, sort-merge: {sort_slope:.2f}  (paper: ~1, n log n)")
    print(f"log-log slope, bucket:     {bucket_slope:.2f}  (paper: ~1, n·p)")
    print(f"log-log slope, pairwise:   {pair_slope:.2f}  (paper: ~2, n²)")
    print(
        "shape holds" if pair_slope - sort_slope > 0.5 else "SHAPE DEVIATION"
    )

    # E3b — shared-LHS FD set: per-FD bucket grouping re-keys every row
    # once per FD; batched TEST-FDs keys each row once per DISTINCT lhs
    table = Table(
        "E3b — shared-LHS FD set (one key, |F| determined attributes)",
        ["n", "bucket (s)", "batched (s)", "bucket/batched"],
    )
    bucket_times, batched_times = [], []
    for n in sizes:
        r = shared_lhs_workload(n)
        bucket_time = time_call(
            lambda: check_fds_bucket(r, SHARED_LHS_FDS, CONVENTION_WEAK),
            repeat=bench_repeat(3),
        )
        batched_time = time_call(
            lambda: check_fds_batched(r, SHARED_LHS_FDS, CONVENTION_WEAK),
            repeat=bench_repeat(3),
        )
        bucket_times.append(bucket_time)
        batched_times.append(batched_time)
        table.add_row(
            n, bucket_time, batched_time,
            f"{bucket_time / batched_time:.2f}x",
        )
    table.show()
    print(
        f"\nlog-log slope, batched:    {loglog_slope(sizes, batched_times):.2f}"
        "  (expected ~1, n·p per distinct lhs)"
    )
    print(
        "batched speedup over per-FD bucket at largest n: "
        f"{bucket_times[-1] / batched_times[-1]:.1f}x "
        f"(|F| = {len(list(SHARED_LHS_FDS))} FDs, 1 distinct lhs)"
    )


def bench_sortmerge_2000_rows(benchmark) -> None:
    r = workload(2000)
    outcome = benchmark(lambda: check_fds_sortmerge(r, FDS, CONVENTION_WEAK))
    assert outcome.satisfied


def bench_pairwise_2000_rows(benchmark) -> None:
    r = workload(2000)
    outcome = benchmark(lambda: check_fds_pairwise(r, FDS, CONVENTION_WEAK))
    assert outcome.satisfied


if __name__ == "__main__":
    main()
