"""E4 — Figure 3's "Additional Assumptions": bucket sort and the presorted
linear case.

Paper artifact: "If bucket sort is used, sorting takes time O(n·p) where p
is the number of attributes in X ... if there is only one dependency (e.g.
BCNF with one key), and the relation is already sorted, the test requires
linear time on the relation size."

Reproduced series: (a) bucket vs comparison-sort TEST-FDs over n; (b) the
presorted single-FD test vs re-sorting, over n.  Expected shape: bucket ≤
sort-merge with the gap growing slowly (log n), presorted beating sortmerge
by the sort factor.
"""

import random

from repro.bench.report import (
    Table,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
    time_call,
)
from repro.core.fd import FD, FDSet
from repro.core.relation import Relation
from repro.core.values import constant_key, is_null
from repro.testfd import (
    CONVENTION_WEAK,
    check_fds_batched,
    check_fds_bucket,
    check_fds_sortmerge,
    check_single_fd_presorted,
)
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

FDS = FDSet(["A1 A2 -> A3", "A2 -> A4"])
SINGLE = "A1 -> A2 A3"


def workload(n_rows: int, seed: int = 23):
    rng = random.Random(seed)
    schema = random_schema(4)
    total = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 4)
    )
    return inject_nulls(rng, total, density=0.1)


def shared_lhs_set(width: int):
    """``A1 -> A2, ..., A1 -> A(width)``: one key, width-1 determined
    attributes — the BCNF-with-one-key shape the paper's linear special
    case singles out, listed as a canonical cover."""
    return [FD("A1", f"A{i}") for i in range(2, width + 1)]


def shared_lhs_workload(width: int, n_rows: int, seed: int = 31):
    rng = random.Random(seed)
    schema = random_schema(width)
    total = random_satisfiable_instance(
        rng, schema, shared_lhs_set(width), n_rows,
        pool_size=max(8, n_rows // 4),
    )
    return inject_nulls(rng, total, density=0.1)


def sorted_single_fd_workload(n_rows: int, seed: int = 29):
    rng = random.Random(seed)
    schema = random_schema(3)
    from repro.core.fd import FD

    total = random_satisfiable_instance(
        rng, schema, [FD.parse(SINGLE)], n_rows, pool_size=max(8, n_rows // 4)
    )
    punched = inject_nulls(rng, total, density=0.1, attributes=["A2", "A3"])
    ordinals: dict = {}

    def key(row):
        v = row["A1"]
        if is_null(v):
            return (1, ordinals.setdefault(id(v), len(ordinals)))
        return (0,) + constant_key(v)

    return Relation(punched.schema, sorted(punched.rows, key=key))


def main() -> None:
    sizes = geometric_sizes(250, 2.0, 4)

    table = Table(
        "E4a — bucket grouping vs comparison sort (weak convention)",
        ["n", "sortmerge (s)", "bucket (s)", "sortmerge/bucket"],
    )
    bucket_times = []
    for n in sizes:
        r = workload(n)
        sm = time_call(lambda: check_fds_sortmerge(r, FDS, CONVENTION_WEAK))
        bk = time_call(lambda: check_fds_bucket(r, FDS, CONVENTION_WEAK))
        bucket_times.append(bk)
        table.add_row(n, sm, bk, f"{sm / bk:.2f}x")
    table.show()
    print(f"\nbucket log-log slope: {loglog_slope(sizes, bucket_times):.2f} (paper: ~1, n·p)")

    # E4c — the batching payoff grows with the number of FDs sharing a
    # left-hand side: per-FD bucket re-keys every row once per FD, the
    # batched variant once per distinct LHS (here: once, total)
    fixed_n = 2000
    table = Table(
        f"E4c — shared-LHS batching vs per-FD bucket (n = {fixed_n})",
        ["|F| (one lhs)", "bucket (s)", "batched (s)", "bucket/batched"],
    )
    last_ratio = 0.0
    for count in bench_sizes((2, 4, 8, 16)):
        fds = shared_lhs_set(count + 1)
        r = shared_lhs_workload(count + 1, fixed_n)
        bk = time_call(lambda: check_fds_bucket(r, fds, CONVENTION_WEAK))
        bt = time_call(lambda: check_fds_batched(r, fds, CONVENTION_WEAK))
        last_ratio = bk / bt
        table.add_row(count, bk, bt, f"{last_ratio:.2f}x")
    table.show()
    print(
        f"\nbatched speedup at widest shared-LHS set: {last_ratio:.1f}x"
        " (one grouping decides the whole set)"
    )

    table = Table(
        "E4b — single FD, presorted input: linear scan vs full sort-merge",
        ["n", "sortmerge (s)", "presorted (s)", "sortmerge/presorted"],
    )
    presorted_times = []
    for n in sizes:
        r = sorted_single_fd_workload(n)
        sm = time_call(lambda: check_fds_sortmerge(r, [SINGLE], CONVENTION_WEAK))
        ps = time_call(lambda: check_single_fd_presorted(r, SINGLE))
        presorted_times.append(ps)
        table.add_row(n, sm, ps, f"{sm / ps:.2f}x")
    table.show()
    print(
        f"\npresorted log-log slope: {loglog_slope(sizes, presorted_times):.2f}"
        " (paper: linear)"
    )


def bench_bucket_2000_rows(benchmark) -> None:
    r = workload(2000)
    outcome = benchmark(lambda: check_fds_bucket(r, FDS, CONVENTION_WEAK))
    assert outcome.satisfied


def bench_presorted_2000_rows(benchmark) -> None:
    r = sorted_single_fd_workload(2000)
    outcome = benchmark(lambda: check_single_fd_presorted(r, SINGLE))
    assert outcome.satisfied


if __name__ == "__main__":
    main()
