"""S1 (serving) — what group commit buys and what snapshot readers cost.

Two series over the serving layer (`repro.server`):

* **S1a — sustained ops/sec and p99 ack latency vs concurrent clients**,
  three ways to run the same deterministic insert stream at full
  durability (``sync=fsync``):

  - *direct serial*: a plain single-caller `Database` loop — every op
    pays its own fsync, the serialize-everything baseline;
  - *served, per-op fsync*: the server with ``max_batch=1`` — same
    fsync-per-op cost, plus the queueing machinery (its honest price);
  - *served, group commit*: the real configuration — concurrent
    clients' ops latched into one WAL append + fsync per burst.

  The headline (the regression-guard metric) is group commit's
  throughput multiple at 8 clients over the per-op-fsync server.  The
  final fixpoint of every mode must be field-identical to the direct
  baseline's — batching may change *when* records hit disk, never what
  state they build.

* **S1b — snapshot readers never stall the writer**: a writer streams
  inserts while k isolated readers hammer ``result`` reads (each a
  consistent cut, re-chased off the loop).  Writer throughput and the
  writer's largest ack-to-ack gap are reported by reader count; the gap
  must stay bounded (no read ever holds the writer), and every read
  must equal a serial prefix (row count == its ``as_of``).
"""

import asyncio
import shutil
import tempfile
import time
from pathlib import Path

from repro.bench.report import Table, bench_repeat, quick_mode
from repro.chase import canonical_form
from repro.core.values import null
from repro.db import Database
from repro.server import ReproServer

ATTRS = "A B C"
FDS = ["A -> B", "B -> C"]
CLIENT_LADDER = (1, 2, 4, 8)
POOL = 7  # distinct A-keys: FDs fire real merges without contradictions


def build_row(i: int):
    """Deterministic, satisfiable, chase-provoking: B/C are functions of
    A's key so FDs merge rather than contradict; every third row carries
    a fresh null for the chase to fill."""
    key = i % POOL
    return (
        f"a{key}",
        None if i % 3 == 0 else f"b{key}",
        f"c{key}",
    )


def wire_row(i: int):
    row = build_row(i)
    return [cell if cell is not None else {"n": None} for cell in row]


def total_ops() -> int:
    return 96 if quick_mode() else 400


# ---------------------------------------------------------------------------
# S1a — throughput and latency by client count
# ---------------------------------------------------------------------------


def run_direct(n_ops: int):
    """The serial baseline: one caller, one fsync per op."""
    root = Path(tempfile.mkdtemp(prefix="bench_s1_direct_"))
    try:
        latencies = []
        with Database.open(root / "db", sync="fsync") as db:
            relation = db.create("r", ATTRS, FDS)
            start = time.perf_counter()
            for i in range(n_ops):
                row = tuple(
                    null() if cell is None else cell for cell in build_row(i)
                )
                op_start = time.perf_counter()
                relation.insert(row)
                latencies.append(time.perf_counter() - op_start)
            elapsed = time.perf_counter() - start
            reference = canonical_form(relation.result().relation)
        return elapsed, latencies, reference, {}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_served(n_ops: int, n_clients: int, max_batch: int):
    """The same op stream, partitioned round-robin over ``n_clients``
    concurrent in-process clients, each awaiting its ack before its next
    op (so bursts form exactly as far as real concurrency creates them)."""
    root = Path(tempfile.mkdtemp(prefix="bench_s1_served_"))
    try:

        async def run():
            server = ReproServer(
                root / "db", sync="fsync", create=True, max_batch=max_batch
            )
            await server.start()
            await server.handle(
                {"do": "create", "name": "r", "attrs": ATTRS, "fds": FDS}
            )
            latencies = []

            async def client(c: int) -> None:
                for i in range(c, n_ops, n_clients):
                    op_start = time.perf_counter()
                    reply = await server.handle(
                        {"id": i, "do": "insert", "rel": "r", "row": wire_row(i)}
                    )
                    latencies.append(time.perf_counter() - op_start)
                    assert reply["ok"], reply

            start = time.perf_counter()
            await asyncio.gather(*(client(c) for c in range(n_clients)))
            elapsed = time.perf_counter() - start
            stats = (await server.handle({"do": "stats", "rel": "r"}))["stats"]
            await server.stop()
            return elapsed, latencies, stats

        elapsed, latencies, stats = asyncio.run(run())
        with Database.open(root / "db", sync="none", create=False) as db:
            reference = canonical_form(db["r"].result().relation)
        return elapsed, latencies, reference, stats
    finally:
        shutil.rmtree(root, ignore_errors=True)


def best_of(fn, repeat: int = 3):
    best = None
    for _ in range(bench_repeat(repeat)):
        outcome = fn()
        if best is None or outcome[0] < best[0]:
            best = outcome
    return best


def p99_ms(latencies) -> float:
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(len(ranked) * 0.99))] * 1000.0


def throughput_series() -> None:
    n_ops = total_ops()
    direct_time, direct_lat, direct_ref, _ = best_of(lambda: run_direct(n_ops))
    direct_rate = n_ops / direct_time

    table = Table(
        f"S1a — sustained ops/sec and p99 ack latency, {n_ops} fsync'd inserts",
        ["clients", "direct (ops/s)", "per-op fsync (ops/s)",
         "group commit (ops/s)", "GC p99 (ms)", "per-op p99 (ms)",
         "largest batch", "same fixpoint"],
    )
    perop_rates, gc_rates, gc_p99s, perop_p99s = [], [], [], []
    gc_stats_at_8 = None
    for n_clients in CLIENT_LADDER:
        perop_time, perop_lat, perop_ref, _ = best_of(
            lambda: run_served(n_ops, n_clients, max_batch=1)
        )
        gc_time, gc_lat, gc_ref, gc_stats = best_of(
            lambda: run_served(n_ops, n_clients, max_batch=512)
        )
        same = direct_ref == perop_ref == gc_ref
        if not same:
            raise SystemExit(
                f"served fixpoint diverged from the direct baseline at "
                f"{n_clients} clients"
            )
        perop_rates.append(n_ops / perop_time)
        gc_rates.append(n_ops / gc_time)
        gc_p99s.append(p99_ms(gc_lat))
        perop_p99s.append(p99_ms(perop_lat))
        if n_clients == 8:
            gc_stats_at_8 = gc_stats
        table.add_row(
            n_clients, f"{direct_rate:.0f}", f"{n_ops / perop_time:.0f}",
            f"{n_ops / gc_time:.0f}", f"{p99_ms(gc_lat):.2f}",
            f"{p99_ms(perop_lat):.2f}", gc_stats["largest_batch"], same,
        )
    table.show()

    if gc_stats_at_8["largest_batch"] < 2:
        raise SystemExit(
            f"no batching formed at 8 clients: stats {gc_stats_at_8}"
        )
    print(f"\nseries per-op-fsync ops/sec by clients: "
          + " ".join(f"{rate:.0f}" for rate in perop_rates))
    print(f"series group-commit ops/sec by clients: "
          + " ".join(f"{rate:.0f}" for rate in gc_rates))
    print(f"series group-commit p99 ms by clients: "
          + " ".join(f"{ms:.2f}" for ms in gc_p99s))
    print(f"series per-op-fsync p99 ms by clients: "
          + " ".join(f"{ms:.2f}" for ms in perop_p99s))
    print(
        f"group-commit speedup at 8 clients over per-op-fsync serving: "
        f"{gc_rates[-1] / perop_rates[-1]:.1f}x  (one append+fsync per "
        f"burst, largest batch {gc_stats_at_8['largest_batch']})"
    )
    print(
        f"group-commit speedup at 8 clients over the direct serial baseline: "
        f"{gc_rates[-1] / direct_rate:.1f}x"
    )


# ---------------------------------------------------------------------------
# S1b — snapshot readers vs the writer
# ---------------------------------------------------------------------------


def run_write_storm(n_ops: int, n_readers: int):
    """Writer streams inserts; isolated readers hammer consistent-cut
    ``result`` reads.  Returns (writer elapsed, max ack-to-ack gap,
    reads) where each read is ``(as_of, row count)``."""
    root = Path(tempfile.mkdtemp(prefix="bench_s1_readers_"))
    try:

        async def run():
            server = ReproServer(root / "db", sync="fsync", create=True)
            await server.start()
            await server.handle(
                {"do": "create", "name": "r", "attrs": "A B", "fds": []}
            )
            reads = []
            done = False

            async def writer() -> tuple:
                nonlocal done
                max_gap = 0.0
                start = time.perf_counter()
                last_ack = start
                for i in range(n_ops):
                    reply = await server.handle(
                        {"id": i, "do": "insert", "rel": "r",
                         "row": [f"a{i}", f"b{i}"]}
                    )
                    assert reply["ok"], reply
                    now = time.perf_counter()
                    max_gap = max(max_gap, now - last_ack)
                    last_ack = now
                done = True
                return time.perf_counter() - start, max_gap

            async def reader(c: int) -> None:
                # a polling reader: each poll is a full consistent-cut
                # re-chase off the loop.  The 1ms pacing models watchers,
                # not a saturating read storm — the stall question is
                # whether any single read *holds* the writer, which the
                # ack-gap metric answers.
                while not done:
                    reply = await server.handle(
                        {"id": f"r{c}", "do": "result", "rel": "r",
                         "isolated": True}
                    )
                    assert reply["ok"], reply
                    reads.append((reply["as_of"], len(reply["rows"])))
                    await asyncio.sleep(0.001)

            writer_task = asyncio.create_task(writer())
            reader_tasks = [
                asyncio.create_task(reader(c)) for c in range(n_readers)
            ]
            elapsed, max_gap = await writer_task
            await asyncio.gather(*reader_tasks)
            await server.stop()
            return elapsed, max_gap, reads

        return asyncio.run(run())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def reader_series() -> None:
    n_ops = max(60, total_ops() // 2)
    reader_counts = (0, 2, 4)
    table = Table(
        f"S1b — writer vs isolated snapshot readers, {n_ops} fsync'd inserts",
        ["readers", "writer ops/s", "max ack gap (ms)", "reads served",
         "all prefix-consistent"],
    )
    rates, gaps = [], []
    for n_readers in reader_counts:
        elapsed, max_gap, reads = run_write_storm(n_ops, n_readers)
        consistent = all(n_rows == as_of for as_of, n_rows in reads)
        if not consistent:
            raise SystemExit(
                f"a snapshot read was not a serial prefix: {reads[:5]} ..."
            )
        rates.append(n_ops / elapsed)
        gaps.append(max_gap * 1000.0)
        table.add_row(
            n_readers, f"{n_ops / elapsed:.0f}", f"{max_gap * 1000.0:.2f}",
            len(reads), consistent,
        )
    table.show()

    # the stall guard: a reader-induced writer stall would show up as an
    # ack gap far beyond the no-reader run's (fsync-bound) worst gap
    stall_budget_ms = max(50.0, 10.0 * gaps[0])
    if max(gaps) > stall_budget_ms:
        raise SystemExit(
            f"writer stalled under readers: max ack gap {max(gaps):.1f}ms "
            f"exceeds the {stall_budget_ms:.1f}ms budget (no-reader worst "
            f"gap {gaps[0]:.2f}ms)"
        )
    print(f"\nseries writer ops/sec by reader count: "
          + " ".join(f"{rate:.0f}" for rate in rates))
    print(f"series writer max ack gap ms by reader count: "
          + " ".join(f"{gap:.2f}" for gap in gaps))
    print(
        f"writer max ack gap under {reader_counts[-1]} readers: "
        f"{gaps[-1]:.2f} ms (budget {stall_budget_ms:.1f} ms) — zero stalls"
    )


def main() -> None:
    throughput_series()
    reader_series()
    print(
        "\nEvery served fixpoint matched the direct serial baseline and every"
        "\nsnapshot read equaled a serial prefix; only the fsync schedule"
        "\ndiffers."
    )


def bench_served_group_commit_96(benchmark) -> None:
    benchmark(lambda: run_served(96, 8, max_batch=512))


if __name__ == "__main__":
    main()
