"""E11 — Section 2: query evaluation under the least-extension rule.

Paper artifact: the Q/Q' example ("Is John married?" = unknown, "Is John
married or single?" = yes), the observation that "the use of such an
evaluation rule has an unacceptable complexity for practical
considerations", and the [Vassiliou 79] pointer to transformed evaluation.

Reproduced series: (a) the Q/Q' truth table across evaluators; (b) cost of
full-row substitution enumeration vs the relevant-null evaluator vs Kleene
as the number of *irrelevant* null columns grows — the exactness/cost
triangle the paper describes.  (c) informativeness: how often Kleene
answers unknown where the least extension is definite.
"""

import random

from repro.bench.report import Table, time_call
from repro.core.domain import Domain
from repro.core.relation import Relation
from repro.core.schema import RelationSchema
from repro.core.truth import UNKNOWN, from_bool, is_definite, lub
from repro.core.values import null
from repro.nullsem.queries import (
    Eq,
    OrP,
    _evaluate_total,
    evaluate_kleene,
    evaluate_least_extension,
)

MARITAL = Domain(["married", "single"], name="marital")


def john_row(extra_nulls: int = 0):
    attrs = "name marital " + " ".join(f"X{i}" for i in range(extra_nulls))
    domains = {"marital": MARITAL}
    for i in range(extra_nulls):
        domains[f"X{i}"] = Domain(["u", "v", "w"], name=f"X{i}")
    schema = RelationSchema("people", attrs, domains=domains)
    values = ["John", null()] + [null() for _ in range(extra_nulls)]
    return Relation(schema, [values])[0]


def brute_force(pred, row):
    """Ground EVERY null in the row (the untransformed rule)."""
    return lub(
        from_bool(_evaluate_total(pred, grounded))
        for grounded in row.completions()
    )


def main() -> None:
    q = Eq("marital", "married")
    q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
    row = john_row()
    table = Table(
        "E11a — the Q/Q' example",
        ["query", "least extension", "Kleene"],
    )
    table.add_row("Q:  married?", str(evaluate_least_extension(q, row)), str(evaluate_kleene(q, row)))
    table.add_row(
        "Q': married or single?",
        str(evaluate_least_extension(q_prime, row)),
        str(evaluate_kleene(q_prime, row)),
    )
    table.show()

    table = Table(
        "E11b — evaluation cost vs irrelevant null columns (Q')",
        ["irrelevant nulls", "full enumeration (s)", "relevant-null (s)", "Kleene (s)"],
    )
    for extra in (0, 4, 8, 10):
        row = john_row(extra)
        brute_time = time_call(lambda: brute_force(q_prime, row), repeat=1)
        smart_time = time_call(lambda: evaluate_least_extension(q_prime, row))
        kleene_time = time_call(lambda: evaluate_kleene(q_prime, row))
        table.add_row(extra, brute_time, smart_time, kleene_time)
    table.show()
    print(
        "\nShape: full enumeration grows 3^k with irrelevant nulls; the"
        "\ntransformed evaluator is flat; Kleene is flat but weaker."
    )

    rng = random.Random(41)
    trials = 300
    kleene_definite = exact_definite = 0
    statuses = ["married", "single", None]
    for _ in range(trials):
        status = rng.choice(statuses)
        row = john_row()
        if status is not None:
            row = row.substitute({row["marital"]: status})
        pred = rng.choice([q, q_prime])
        if is_definite(evaluate_kleene(pred, row)):
            kleene_definite += 1
        if is_definite(evaluate_least_extension(pred, row)):
            exact_definite += 1
    table = Table(
        f"E11c — informativeness over {trials} random queries",
        ["evaluator", "definite answers"],
    )
    table.add_row("Kleene", kleene_definite)
    table.add_row("least extension", exact_definite)
    table.show()


def bench_least_extension_query(benchmark) -> None:
    q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
    row = john_row(8)
    value = benchmark(lambda: evaluate_least_extension(q_prime, row))
    assert str(value) == "true"


def bench_kleene_query(benchmark) -> None:
    q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
    row = john_row(8)
    value = benchmark(lambda: evaluate_kleene(q_prime, row))
    assert value is UNKNOWN


if __name__ == "__main__":
    main()
