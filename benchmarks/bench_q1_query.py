"""Q1 (querying) — what certain/maybe evaluation costs, and what query
readers cost the writer.

Two series over the query layer (`repro.query`):

* **Q1a — evaluation wall time over a size × null-density ladder**, the
  two modes side by side on the same instances:

  - *kleene*: truth-functional condition evaluation — linear in the
    conditional table, under-informative (domain-exhausting disjunctions
    stay "maybe");
  - *least*: the paper's least-extension semantics — each surviving
    condition is grounded over its nulls' consistent domains, so the
    certain set is exact.

  The workload is a disjunctive select that exhausts the declared
  domain (every null-bearing row is *certainly* in the answer — but
  only least evaluation can tell) plus a natural join with shared
  attributes.  In-bench asserts pin the mode ladder on every rung:
  kleene-certain ⊆ least-certain and least-possible ⊆ kleene-possible,
  with the promoted rows exactly the null-density share.

* **Q1c — the planner's equi-join vs the naive nested loop**: the same
  instances joined twice, once through the default evaluator (the
  optimizer routes the shared-attribute join through signature buckets,
  nulls bucketed by identity) and once with the planner and hash joins
  disabled (pure nested loop).  Field-identity asserts compare both
  answers null-by-identity on every rung; at the largest configuration
  the bucket join must clear 2x.

* **Q1b — query readers never stall the writer**: a writer streams
  fsync'd inserts while k clients hammer the server's ``query`` verb
  (full scans, least mode — each a leased consistent cut, evaluated off
  the loop when the writer is busy).  Writer throughput and largest
  ack-to-ack gap by reader count; the gap must stay within the same
  stall budget bench_s1's snapshot readers are held to, and every
  answer must equal a serial prefix (certain-row count == its
  ``as_of`` cut).
"""

import asyncio
import shutil
import tempfile
import time
from pathlib import Path

from repro import Domain, Relation, RelationSchema, null
from repro.bench.report import Table, bench_repeat, bench_sizes, quick_mode
from repro.query import MODE_KLEENE, MODE_LEAST, Evaluator, parse_query
from repro.server import ReproServer

B_DOMAIN = ["b0", "b1", "b2"]
EXHAUSTIVE = "r where B = 'b0' or B = 'b1' or B = 'b2'"
JOIN = "r join s"


def build_env(n_rows: int, density: float):
    """r(A B C) with ``density`` of B-cells null over a 3-value domain,
    plus s(C D) joining on C; nulls in C are shared across both."""
    r_schema = RelationSchema(
        "r", "A B C", domains={"B": Domain(B_DOMAIN, name="B")}
    )
    s_schema = RelationSchema("s", "C D")
    shared = [null() for _ in range(max(1, n_rows // 10))]
    r_rows = []
    for i in range(n_rows):
        is_null_cell = (i * 7919) % 1000 < density * 1000
        r_rows.append(
            [
                f"a{i}",
                null() if is_null_cell else B_DOMAIN[i % 3],
                shared[i % len(shared)] if i % 5 == 0 else f"c{i % 7}",
            ]
        )
    # unique D values keep merged join conditions small: deduplication
    # only unions conditions of value-identical rows
    s_rows = [
        [shared[j % len(shared)] if j % 3 == 0 else f"c{j % 7}", f"d{j}"]
        for j in range(max(4, n_rows // 4))
    ]
    return {
        "r": Relation(r_schema, r_rows),
        "s": Relation(s_schema, s_rows),
    }


def eval_once(env, query, mode):
    evaluator = Evaluator(env)
    node = parse_query(query)
    start = time.perf_counter()
    result = evaluator.run(node, mode=mode)
    return time.perf_counter() - start, result


def row_keys(answer):
    return {
        tuple(
            ("n", id(v)) if hasattr(v, "label") else ("c", v) for v in row
        )
        for row in answer.rows
    }


def evaluation_ladder() -> None:
    sizes = bench_sizes((100, 200, 400, 800))
    densities = (0.0, 0.25, 0.5)
    repeat = bench_repeat(3)

    table = Table(
        "Q1a — certain/maybe evaluation, disjunctive select + natural join",
        ["rows", "null density", "least (ms)", "kleene (ms)",
         "least certain", "kleene certain", "join least (ms)", "ladder holds"],
    )
    least_by_size, kleene_by_size = [], []
    join_by_size = []
    promoted_by_density = []
    for density in densities:
        promoted_at_largest = 0
        for n_rows in sizes:
            env = build_env(n_rows, density)
            best = {}
            for mode in (MODE_LEAST, MODE_KLEENE):
                timing, result = min(
                    (eval_once(env, EXHAUSTIVE, mode) for _ in range(repeat)),
                    key=lambda pair: pair[0],
                )
                best[mode] = (timing, result)
            least_t, least_r = best[MODE_LEAST]
            kleene_t, kleene_r = best[MODE_KLEENE]
            join_t, _ = eval_once(env, JOIN, MODE_LEAST)

            k_certain = row_keys(kleene_r.certain)
            l_certain = row_keys(least_r.certain)
            k_possible = k_certain | row_keys(kleene_r.maybe)
            l_possible = l_certain | row_keys(least_r.maybe)
            ladder = k_certain <= l_certain and l_possible <= k_possible
            if not ladder:
                raise SystemExit(
                    f"mode ladder violated at {n_rows} rows, "
                    f"density {density}"
                )
            # the disjunction exhausts B's domain: every row is certain
            # under least evaluation, only the ground ones under kleene
            if len(least_r.certain) != n_rows:
                raise SystemExit(
                    f"least evaluation missed a certain row: "
                    f"{len(least_r.certain)} of {n_rows}"
                )
            if density == densities[1]:
                least_by_size.append(least_t * 1000.0)
                kleene_by_size.append(kleene_t * 1000.0)
                join_by_size.append(join_t * 1000.0)
            if n_rows == sizes[-1]:
                promoted_at_largest = len(least_r.certain) - len(
                    kleene_r.certain
                )
            table.add_row(
                n_rows, f"{density:.2f}", f"{least_t * 1000.0:.2f}",
                f"{kleene_t * 1000.0:.2f}", len(least_r.certain),
                len(kleene_r.certain), f"{join_t * 1000.0:.2f}", ladder,
            )
        promoted_by_density.append(promoted_at_largest)
    table.show()

    print(f"\nseries least select wall ms by size: "
          + " ".join(f"{ms:.2f}" for ms in least_by_size))
    print(f"series kleene select wall ms by size: "
          + " ".join(f"{ms:.2f}" for ms in kleene_by_size))
    print(f"series least join wall ms by size: "
          + " ".join(f"{ms:.2f}" for ms in join_by_size))
    print(f"series rows promoted to certain by density: "
          + " ".join(str(count) for count in promoted_by_density))
    # PR 9 printed this ratio the other way up ("kleene over least"):
    # exact evaluation trailed the truth-functional pass because it
    # ground every surviving disjunction.  The planner's least-mode
    # tautology elimination now drops the domain-exhausting select
    # statically, so least evaluation is the cheaper of the two here —
    # the label changed because the thing it measured did.
    print(
        f"least over kleene evaluation speedup at largest configuration: "
        f"{kleene_by_size[-1] / least_by_size[-1]:.1f}x"
    )
    print(
        f"least-extension promoted {promoted_by_density[-1]} maybe-rows to "
        f"certain at {sizes[-1]} rows, density {densities[-1]:.2f} "
        f"(kleene cannot see domain exhaustion)"
    )


# ---------------------------------------------------------------------------
# Q1c — optimized equi-join vs the naive nested loop
# ---------------------------------------------------------------------------


def build_selective_env(n_rows: int):
    """r(A C) joined to s(C D) on an almost-key C: every C value is
    unique bar a handful of shared nulls, so bucket probing touches
    about one right row per left row while the nested loop still
    enumerates all n² pairs.  The nulls (shared across both sides, by
    identity) keep the wildcard path honest: a null join cell can never
    be refuted by a constant mismatch, so it must see every row."""
    r_schema = RelationSchema("r", "A C")
    s_schema = RelationSchema("s", "C D")
    shared = [null() for _ in range(4)]
    r_rows = [
        [f"a{i}", shared[i] if i < len(shared) else f"c{i}"]
        for i in range(n_rows)
    ]
    s_rows = [
        [shared[j] if j < len(shared) else f"c{j}", f"d{j}"]
        for j in range(n_rows)
    ]
    return {
        "r": Relation(r_schema, r_rows),
        "s": Relation(s_schema, s_rows),
    }


def join_once(env, optimize: bool):
    """One join evaluation, planned or naive.  Kleene tagging keeps the
    measurement on the join itself (least-mode grounding cost is Q1a's
    subject, and the optimize-vs-naive identity in BOTH modes is pinned
    by tests/query/test_optimize.py)."""
    evaluator = (
        Evaluator(env)
        if optimize
        else Evaluator(env, optimize=False, hash_joins=False)
    )
    node = parse_query(JOIN)
    start = time.perf_counter()
    result = evaluator.run(node, mode=MODE_KLEENE)
    return time.perf_counter() - start, result


def optimizer_ladder() -> None:
    sizes = bench_sizes((100, 200, 400, 800))
    repeat = bench_repeat(3)

    table = Table(
        "Q1c — equi-join: planner bucket strategy vs nested loop",
        ["rows", "naive (ms)", "optimized (ms)", "speedup",
         "certain", "maybe", "answers identical"],
    )
    naive_by_size, optimized_by_size = [], []
    for n_rows in sizes:
        env = build_selective_env(n_rows)
        plan_text = Evaluator(env).explain(parse_query(JOIN))
        if "strategy=bucket(C)" not in plan_text:
            raise SystemExit(
                f"planner did not route the equi-join through buckets:\n"
                f"{plan_text}"
            )
        naive_t, naive_r = min(
            (join_once(env, optimize=False) for _ in range(repeat)),
            key=lambda pair: pair[0],
        )
        optimized_t, optimized_r = min(
            (join_once(env, optimize=True) for _ in range(repeat)),
            key=lambda pair: pair[0],
        )
        # field identity, nulls by identity: the rewrite is an equivalence
        identical = all(
            row_keys(getattr(optimized_r, side))
            == row_keys(getattr(naive_r, side))
            for side in ("certain", "maybe")
        )
        if not identical:
            raise SystemExit(
                f"optimized join answer diverged from naive evaluation "
                f"at {n_rows} rows"
            )
        naive_by_size.append(naive_t * 1000.0)
        optimized_by_size.append(optimized_t * 1000.0)
        table.add_row(
            n_rows, f"{naive_t * 1000.0:.2f}", f"{optimized_t * 1000.0:.2f}",
            f"{naive_t / optimized_t:.1f}x", len(optimized_r.certain),
            len(optimized_r.maybe), identical,
        )
    table.show()

    speedup = naive_by_size[-1] / optimized_by_size[-1]
    print(f"\nseries naive join wall ms by size: "
          + " ".join(f"{ms:.2f}" for ms in naive_by_size))
    print(f"series optimized join wall ms by size: "
          + " ".join(f"{ms:.2f}" for ms in optimized_by_size))
    print(
        f"optimized over naive equi-join speedup at largest configuration: "
        f"{speedup:.1f}x"
    )
    if speedup < 2.0:
        raise SystemExit(
            f"bucket equi-join under 2x at {sizes[-1]} rows: {speedup:.2f}x"
        )
    print(
        f"the bucket join answered {sizes[-1]} rows field-identically to "
        f"the nested loop, {speedup:.1f}x faster"
    )


# ---------------------------------------------------------------------------
# Q1b — query readers vs the writer
# ---------------------------------------------------------------------------


def run_query_storm(n_ops: int, n_readers: int):
    """Writer streams inserts; readers hammer the ``query`` verb.

    Returns (writer elapsed, max ack-to-ack gap, answers) where each
    answer is ``(as_of, certain-row count)``.
    """
    root = Path(tempfile.mkdtemp(prefix="bench_q1_readers_"))
    try:

        async def run():
            server = ReproServer(root / "db", sync="fsync", create=True)
            await server.start()
            await server.handle(
                {"do": "create", "name": "r", "attrs": "A B", "fds": []}
            )
            answers = []
            done = False

            async def writer() -> tuple:
                nonlocal done
                max_gap = 0.0
                start = time.perf_counter()
                last_ack = start
                for i in range(n_ops):
                    reply = await server.handle(
                        {"id": i, "do": "insert", "rel": "r",
                         "row": [f"a{i}", f"b{i % 5}"]}
                    )
                    assert reply["ok"], reply
                    now = time.perf_counter()
                    max_gap = max(max_gap, now - last_ack)
                    last_ack = now
                done = True
                return time.perf_counter() - start, max_gap

            async def reader(c: int) -> None:
                # full-scan queries in least mode: every poll leases a
                # cut, evaluates off the loop when the writer is busy
                while not done:
                    reply = await server.handle(
                        {"id": f"q{c}", "do": "query", "q": "r",
                         "mode": "least", "isolated": True}
                    )
                    assert reply["ok"], reply
                    answers.append(
                        (
                            reply["certain"]["as_of"],
                            len(reply["certain"]["rows"]),
                        )
                    )
                    await asyncio.sleep(0.001)

            writer_task = asyncio.create_task(writer())
            reader_tasks = [
                asyncio.create_task(reader(c)) for c in range(n_readers)
            ]
            elapsed, max_gap = await writer_task
            await asyncio.gather(*reader_tasks)
            await server.stop()
            return elapsed, max_gap, answers

        return asyncio.run(run())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def reader_series() -> None:
    n_ops = 60 if quick_mode() else 200
    reader_counts = (0, 2, 4)
    table = Table(
        f"Q1b — writer vs query readers, {n_ops} fsync'd inserts",
        ["query readers", "writer ops/s", "max ack gap (ms)",
         "answers served", "all prefix-consistent"],
    )
    rates, gaps = [], []
    for n_readers in reader_counts:
        elapsed, max_gap, answers = run_query_storm(n_ops, n_readers)
        consistent = all(count == as_of for as_of, count in answers)
        if not consistent:
            raise SystemExit(
                f"a query answer was not a serial prefix: {answers[:5]} ..."
            )
        rates.append(n_ops / elapsed)
        gaps.append(max_gap * 1000.0)
        table.add_row(
            n_readers, f"{n_ops / elapsed:.0f}", f"{max_gap * 1000.0:.2f}",
            len(answers), consistent,
        )
    table.show()

    # the same stall guard bench_s1 holds snapshot readers to: a
    # query-induced writer stall would blow the ack gap far past the
    # no-reader (fsync-bound) worst case
    stall_budget_ms = max(50.0, 10.0 * gaps[0])
    if max(gaps) > stall_budget_ms:
        raise SystemExit(
            f"writer stalled under query readers: max ack gap "
            f"{max(gaps):.1f}ms exceeds the {stall_budget_ms:.1f}ms budget "
            f"(no-reader worst gap {gaps[0]:.2f}ms)"
        )
    print(f"\nseries writer ops/sec by query-reader count: "
          + " ".join(f"{rate:.0f}" for rate in rates))
    print(f"series writer max ack gap ms by query-reader count: "
          + " ".join(f"{gap:.2f}" for gap in gaps))
    print(
        f"writer max ack gap under {reader_counts[-1]} query readers: "
        f"{gaps[-1]:.2f} ms (budget {stall_budget_ms:.1f} ms) — zero stalls"
    )


def main() -> None:
    evaluation_ladder()
    optimizer_ladder()
    reader_series()
    print(
        "\nLeast-extension evaluation recovered every domain-exhausted"
        "\ncertain answer Kleene evaluation left as maybe, the planner's"
        "\nbucket join matched the nested loop field for field, and query"
        "\nreaders never held the writer."
    )


if __name__ == "__main__":
    main()
