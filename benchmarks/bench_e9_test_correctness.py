"""E9 — Theorems 2 and 3: TEST-FDs against brute-force ground truth.

Paper artifact: Theorem 2 ("F is strongly satisfied in r iff
TEST-FDs(r,F) = yes" under the strong convention) and Theorem 3 (the weak
convention on minimally incomplete instances decides weak satisfiability).

Reproduced series: agreement counts on random instances (both theorems,
100 trials per configuration), plus the speedup of the tests over
completion enumeration as null count grows — "to find these cases of
satisfiability is not computationally hard" made measurable.
"""

import random

from repro.bench.report import Table, time_call
from repro.core.satisfaction import strongly_satisfied, weakly_satisfied
from repro.testfd import CONVENTION_STRONG, CONVENTION_WEAK, check_fds
from repro.workloads.generator import (
    inject_nulls,
    random_instance,
    random_schema,
)

FDS = ["A1 -> A2", "A2 -> A3"]

#: Domains are finite but comfortably larger than any column's constant
#: count, so the domain-blind chase stays exact (the paper's "carefully
#: designed database ... attributes with large domains") while brute-force
#: completion enumeration remains feasible.
DOMAIN_SIZE = 5
ENUM_GUARD = 50_000


def random_case(rng, n_rows=4, density=0.3):
    schema = random_schema(3, domain_size=DOMAIN_SIZE)
    return inject_nulls(
        rng,
        random_instance(rng.randint(0, 10**6), schema, n_rows, pool_size=2),
        density,
    )


def main() -> None:
    rng = random.Random(19)
    trials = 100
    done = strong_agree = weak_agree = 0
    strong_yes = weak_yes = 0
    while done < trials:
        r = random_case(rng)
        if r.completion_count() > ENUM_GUARD:
            continue
        done += 1
        strong_fast = check_fds(r, FDS, CONVENTION_STRONG).satisfied
        strong_true = strongly_satisfied(FDS, r)
        weak_fast = check_fds(r, FDS, CONVENTION_WEAK, ensure_minimal=True).satisfied
        weak_true = weakly_satisfied(FDS, r)
        strong_agree += strong_fast == strong_true
        weak_agree += weak_fast == weak_true
        strong_yes += strong_true
        weak_yes += weak_true
    table = Table(
        f"E9a — theorem agreement over {trials} random instances",
        ["theorem", "agreements", "positive instances"],
    )
    table.add_row("Theorem 2 (strong)", f"{strong_agree}/{trials}", strong_yes)
    table.add_row("Theorem 3 (weak, chased)", f"{weak_agree}/{trials}", weak_yes)
    table.show()
    assert strong_agree == trials and weak_agree == trials

    table = Table(
        "E9b — test cost vs brute-force completion enumeration",
        ["nulls", "completions", "TEST-FDs weak (s)", "brute ∃-completion (s)", "speedup"],
    )
    rng = random.Random(20)
    for n_rows, density in ((3, 0.3), (4, 0.35), (5, 0.4)):
        r = random_case(rng, n_rows=n_rows, density=density)
        while r.completion_count() > ENUM_GUARD * 10:
            r = random_case(rng, n_rows=n_rows, density=density)
        fast = time_call(
            lambda: check_fds(r, FDS, CONVENTION_WEAK, ensure_minimal=True)
        )
        slow = time_call(lambda: weakly_satisfied(FDS, r), repeat=1)
        table.add_row(
            r.null_count(),
            r.completion_count(),
            fast,
            slow,
            f"{slow / fast:.0f}x",
        )
    table.show()
    print("\nShape: the enumeration column explodes with null count; the test")
    print("stays flat — section 6's complexity story.")


def bench_strong_test(benchmark) -> None:
    rng = random.Random(21)
    r = random_case(rng, n_rows=200, density=0.2)
    benchmark(lambda: check_fds(r, FDS, CONVENTION_STRONG))


def bench_weak_test_with_chase(benchmark) -> None:
    rng = random.Random(22)
    r = random_case(rng, n_rows=200, density=0.2)
    benchmark(lambda: check_fds(r, FDS, CONVENTION_WEAK, ensure_minimal=True))


if __name__ == "__main__":
    main()
