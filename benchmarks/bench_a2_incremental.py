"""A2 (ablation) — maintained fixpoints vs re-chasing, on insert streams
and mixed update workloads.

A guarded relation (the §7 modification programme, `repro.updates`) must
re-establish the minimally incomplete instance after every accepted
change.  Two strategies:

* **re-chase** — run the batch chase from scratch after each operation
  (the seed's `GuardedRelation` behavior; simple, stateless);
* **session** — maintain the chase state (`repro.chase.ChaseSession`):
  inserts sign only the new tuple's application terms; deletes and
  updates rewind the backtrackable trail to the victim row's mark and
  replay the surviving suffix (falling back to a level rebuild for old
  rows).

Two series:

* **insert stream** (the original A2): n insertions; re-chase pays Θ(n)
  chases of growing instances (≈ quadratic total), the session stays
  near-linear.
* **mixed workload** (PR 3): a heavy-traffic shape — half inserts, half
  deletes/updates — with churn concentrated on recent rows (the common
  OLTP skew: fresh data gets corrected, old data settles).  Re-chase pays
  a full chase per op regardless of which row changed; the session pays
  for the suffix behind the touched row only.

Both strategies must agree on every final fixpoint (`canonical_form`
compared per size; a divergence aborts the benchmark with a non-zero
exit, which `run_all.py` records as an error).
"""

import random

from repro.bench.report import (
    Table,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
    time_call,
)
from repro.chase import ChaseSession, canonical_form, congruence_chase
from repro.core.fd import FDSet
from repro.core.relation import Relation
from repro.core.values import null
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

FDS = FDSet(["A1 -> A2", "A2 -> A3", "A1 -> A4"])
ATTRS = ("A1", "A2", "A3", "A4")


def insert_stream(n_rows: int, seed: int = 61):
    rng = random.Random(seed)
    schema = random_schema(4)
    base = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 6)
    )
    return schema, inject_nulls(rng, base, density=0.25)


def run_rechase(schema, stream) -> Relation:
    rows = []
    result = None
    for row in stream.rows:
        rows.append(row)
        result = congruence_chase(Relation(schema, rows), FDS)
    return result.relation


def run_incremental(schema, stream) -> Relation:
    session = ChaseSession(schema, FDS)
    for row in stream.rows:
        session.insert(row)
    return session.result().relation


# ---------------------------------------------------------------------------
# mixed workload: insert / delete / update with recency-skewed churn
# ---------------------------------------------------------------------------


def mixed_ops(n_ops: int, seed: int = 67):
    """A scripted op sequence: ~1/2 inserts, ~1/4 updates, ~1/4 deletes.

    Update/delete targets are drawn from the most recent eighth of the
    live rows.  The script is materialized up front (op kind, payload,
    *relative* index from the end) so both strategies replay the exact
    same workload.
    """
    rng = random.Random(seed)
    schema, stream = insert_stream(max(8, n_ops), seed=seed)
    fresh_rows = iter(stream.rows)
    ops = []
    live = 0
    for _ in range(n_ops):
        kind = rng.choice(("insert", "insert", "update", "delete"))
        if live < 4 or kind == "insert":
            ops.append(("insert", next(fresh_rows), 0))
            live += 1
            continue
        back = rng.randrange(1, max(2, live // 8))
        if kind == "delete":
            ops.append(("delete", None, back))
            live -= 1
        else:
            attr = rng.choice(ATTRS)
            value = (
                null()
                if rng.random() < 0.2
                else f"u{rng.randrange(max(4, n_ops // 8))}"
            )
            ops.append(("update", (attr, value), back))
    return schema, ops


def run_mixed_rechase(schema, ops) -> Relation:
    rows = []
    result = congruence_chase(Relation(schema, ()), FDS)
    for kind, payload, back in ops:
        if kind == "insert":
            rows.append(payload)
        elif kind == "delete":
            rows.pop(len(rows) - back)
        else:
            attr, value = payload
            index = len(rows) - back
            mapping = rows[index].as_dict()
            mapping[attr] = value
            rows[index] = rows[index].from_mapping(schema, mapping)
        result = congruence_chase(Relation(schema, rows), FDS)
    return result.relation


def run_mixed_session(schema, ops) -> Relation:
    session = ChaseSession(schema, FDS)
    for kind, payload, back in ops:
        if kind == "insert":
            session.insert(payload)
        elif kind == "delete":
            session.delete(len(session) - back)
        else:
            attr, value = payload
            session.update(len(session) - back, {attr: value})
    return session.result().relation


def main() -> None:
    sizes = bench_sizes(geometric_sizes(50, 2.0, 5))
    table = Table(
        "A2 — maintaining the fixpoint over an insert stream",
        ["inserts", "re-chase total (s)", "incremental total (s)", "ratio", "same fixpoint"],
    )
    re_times, inc_times = [], []
    for n in sizes:
        schema, stream = insert_stream(n)
        re_result = run_rechase(schema, stream)
        inc_result = run_incremental(schema, stream)
        same = canonical_form(re_result) == canonical_form(inc_result)
        if not same:
            raise SystemExit(f"insert-stream fixpoints diverged at n={n}")
        re_time = time_call(lambda: run_rechase(schema, stream), repeat=1)
        inc_time = time_call(lambda: run_incremental(schema, stream), repeat=1)
        re_times.append(re_time)
        inc_times.append(inc_time)
        table.add_row(n, re_time, inc_time, f"{re_time / inc_time:.1f}x", same)
    table.show()
    print(f"\nre-chase log-log slope:    {loglog_slope(sizes, re_times):.2f}  (expected ~2)")
    print(f"incremental log-log slope: {loglog_slope(sizes, inc_times):.2f}  (expected ~1)")

    mixed = Table(
        "A2b — mixed insert/delete/update workload (recency-skewed churn)",
        ["ops", "re-chase total (s)", "session total (s)", "ratio", "same fixpoint"],
    )
    mixed_re, mixed_inc = [], []
    for n in sizes:
        schema, ops = mixed_ops(n)
        re_result = run_mixed_rechase(schema, ops)
        session_result = run_mixed_session(schema, ops)
        same = canonical_form(re_result) == canonical_form(session_result)
        if not same:
            raise SystemExit(f"mixed-workload fixpoints diverged at n={n}")
        re_time = time_call(lambda: run_mixed_rechase(schema, ops), repeat=1)
        inc_time = time_call(lambda: run_mixed_session(schema, ops), repeat=1)
        mixed_re.append(re_time)
        mixed_inc.append(inc_time)
        mixed.add_row(n, re_time, inc_time, f"{re_time / inc_time:.1f}x", same)
    mixed.show()
    print(f"\nmixed re-chase log-log slope: {loglog_slope(sizes, mixed_re):.2f}  (expected ~2)")
    print(f"mixed session log-log slope:  {loglog_slope(sizes, mixed_inc):.2f}  (expected ~1)")
    print(
        f"session mixed-workload speedup at largest configuration: "
        f"{mixed_re[-1] / mixed_inc[-1]:.1f}x"
    )
    print(
        "\nBoth strategies agree on every fixpoint; only the maintenance"
        "\ncost differs."
    )


def bench_rechase_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_rechase(schema, stream))


def bench_incremental_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_incremental(schema, stream))


def bench_mixed_session_200(benchmark) -> None:
    schema, ops = mixed_ops(200)
    benchmark(lambda: run_mixed_session(schema, ops))


if __name__ == "__main__":
    main()
