"""A2 (ablation) — incremental fixpoint maintenance vs re-chasing.

A guarded relation (the §7 modification programme, `repro.updates`) must
re-establish the minimally incomplete instance after every accepted
insertion.  Two strategies:

* **re-chase** — run the batch chase from scratch after each insert
  (what `GuardedRelation` does; simple, stateless);
* **incremental** — maintain the congruence-closure state and only sign /
  propagate the new tuple's application terms
  (`repro.chase.IncrementalChase`).

Expected shape: over a stream of n insertions the re-chase strategy pays
Θ(n) chases of growing instances (≈ quadratic total) while the incremental
engine's total stays near-linear — the amortized-maintenance argument.
"""

import random

from repro.bench.report import Table, geometric_sizes, loglog_slope, time_call
from repro.chase import IncrementalChase, canonical_form, congruence_chase
from repro.core.fd import FDSet
from repro.core.relation import Relation
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

FDS = FDSet(["A1 -> A2", "A2 -> A3", "A1 -> A4"])


def insert_stream(n_rows: int, seed: int = 61):
    rng = random.Random(seed)
    schema = random_schema(4)
    base = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 6)
    )
    return schema, inject_nulls(rng, base, density=0.25)


def run_rechase(schema, stream) -> Relation:
    rows = []
    result = None
    for row in stream.rows:
        rows.append(row)
        result = congruence_chase(Relation(schema, rows), FDS)
    return result.relation


def run_incremental(schema, stream) -> Relation:
    inc = IncrementalChase(schema, FDS)
    for row in stream.rows:
        inc.insert(row)
    return inc.current().relation


def main() -> None:
    sizes = geometric_sizes(50, 2.0, 5)
    table = Table(
        "A2 — maintaining the fixpoint over an insert stream",
        ["inserts", "re-chase total (s)", "incremental total (s)", "ratio", "same fixpoint"],
    )
    re_times, inc_times = [], []
    for n in sizes:
        schema, stream = insert_stream(n)
        re_result = run_rechase(schema, stream)
        inc_result = run_incremental(schema, stream)
        same = canonical_form(re_result) == canonical_form(inc_result)
        re_time = time_call(lambda: run_rechase(schema, stream), repeat=1)
        inc_time = time_call(lambda: run_incremental(schema, stream), repeat=1)
        re_times.append(re_time)
        inc_times.append(inc_time)
        table.add_row(n, re_time, inc_time, f"{re_time / inc_time:.1f}x", same)
    table.show()
    print(f"\nre-chase log-log slope:    {loglog_slope(sizes, re_times):.2f}  (expected ~2)")
    print(f"incremental log-log slope: {loglog_slope(sizes, inc_times):.2f}  (expected ~1)")
    print(
        "\nBoth strategies agree on every prefix's fixpoint; only the"
        "\nmaintenance cost differs."
    )


def bench_rechase_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_rechase(schema, stream))


def bench_incremental_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_incremental(schema, stream))


if __name__ == "__main__":
    main()
