"""A2 (ablation) — maintained fixpoints vs re-chasing, on insert streams
and mixed update workloads.

A guarded relation (the §7 modification programme, `repro.updates`) must
re-establish the minimally incomplete instance after every accepted
change.  Two strategies:

* **re-chase** — run the batch chase from scratch after each operation
  (the seed's `GuardedRelation` behavior; simple, stateless);
* **session** — maintain the chase state (`repro.chase.ChaseSession`):
  inserts sign only the new tuple's application terms; deletes and
  updates rewind the backtrackable trail to the victim row's mark and
  replay the surviving suffix (falling back to a level rebuild for old
  rows).

Two series:

* **insert stream** (the original A2): n insertions; re-chase pays Θ(n)
  chases of growing instances (≈ quadratic total), the session stays
  near-linear.
* **mixed workload** (PR 3): a heavy-traffic shape — half inserts, half
  deletes/updates — with churn concentrated on recent rows (the common
  OLTP skew: fresh data gets corrected, old data settles).  Re-chase pays
  a full chase per op regardless of which row changed; the session pays
  for the suffix behind the touched row only.
* **old-row deletions** (PR 4): the shape the trail is worst at — a long
  settled prefix (ground rows, unique keys: no NS-rule ever fired on
  them) under a merge-heavy recent tail, then a stream of deletes at the
  *oldest* end.  The rewind/replay discipline must either unwind the
  whole trail or level-rebuild per delete (O(instance) each); in-place
  retirement (`fast_retire=True`, the default) excises each victim from
  the occurrence index and bucket member lists in O(its own cells).
  `session.stats()` is asserted, not inferred: every delete must be
  served by the `retire_fast` counter with zero rebuilds.
* **parallel verification** (PR 6): `session.verify(workers=N)` routes
  the from-scratch reference chase through the sharded parallel executor
  on the session's cached shard plan — a worker series (1/2/4) over a
  two-component workload with a wide bypass payload.

Both strategies must agree on every final fixpoint (`canonical_form`
compared per size; a divergence aborts the benchmark with a non-zero
exit, which `run_all.py` records as an error).
"""

import random
import time

from repro.bench.report import (
    Table,
    bench_repeat,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
    time_call,
)
from repro.chase import ChaseSession, canonical_form, congruence_chase
from repro.core.fd import FDSet
from repro.core.relation import Relation
from repro.core.values import null
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

FDS = FDSet(["A1 -> A2", "A2 -> A3", "A1 -> A4"])
ATTRS = ("A1", "A2", "A3", "A4")


def insert_stream(n_rows: int, seed: int = 61):
    rng = random.Random(seed)
    schema = random_schema(4)
    base = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 6)
    )
    return schema, inject_nulls(rng, base, density=0.25)


def run_rechase(schema, stream) -> Relation:
    rows = []
    result = None
    for row in stream.rows:
        rows.append(row)
        result = congruence_chase(Relation(schema, rows), FDS)
    return result.relation


def run_incremental(schema, stream) -> Relation:
    session = ChaseSession(schema, FDS)
    for row in stream.rows:
        session.insert(row)
    return session.result().relation


# ---------------------------------------------------------------------------
# mixed workload: insert / delete / update with recency-skewed churn
# ---------------------------------------------------------------------------


def mixed_ops(n_ops: int, seed: int = 67):
    """A scripted op sequence: ~1/2 inserts, ~1/4 updates, ~1/4 deletes.

    Update/delete targets are drawn from the most recent eighth of the
    live rows.  The script is materialized up front (op kind, payload,
    *relative* index from the end) so both strategies replay the exact
    same workload.
    """
    rng = random.Random(seed)
    schema, stream = insert_stream(max(8, n_ops), seed=seed)
    fresh_rows = iter(stream.rows)
    ops = []
    live = 0
    for _ in range(n_ops):
        kind = rng.choice(("insert", "insert", "update", "delete"))
        if live < 4 or kind == "insert":
            ops.append(("insert", next(fresh_rows), 0))
            live += 1
            continue
        back = rng.randrange(1, max(2, live // 8))
        if kind == "delete":
            ops.append(("delete", None, back))
            live -= 1
        else:
            attr = rng.choice(ATTRS)
            value = (
                null()
                if rng.random() < 0.2
                else f"u{rng.randrange(max(4, n_ops // 8))}"
            )
            ops.append(("update", (attr, value), back))
    return schema, ops


def run_mixed_rechase(schema, ops) -> Relation:
    rows = []
    result = congruence_chase(Relation(schema, ()), FDS)
    for kind, payload, back in ops:
        if kind == "insert":
            rows.append(payload)
        elif kind == "delete":
            rows.pop(len(rows) - back)
        else:
            attr, value = payload
            index = len(rows) - back
            mapping = rows[index].as_dict()
            mapping[attr] = value
            rows[index] = rows[index].from_mapping(schema, mapping)
        result = congruence_chase(Relation(schema, rows), FDS)
    return result.relation


def run_mixed_session(schema, ops) -> Relation:
    session = ChaseSession(schema, FDS)
    for kind, payload, back in ops:
        if kind == "insert":
            session.insert(payload)
        elif kind == "delete":
            session.delete(len(session) - back)
        else:
            attr, value = payload
            session.update(len(session) - back, {attr: value})
    return session.result().relation


# ---------------------------------------------------------------------------
# parallel verification: the sharded executor behind session.verify(workers=)
# ---------------------------------------------------------------------------

#: two independent FD chains (one shard each) over A1..A8, leaving the
#: trailing payload columns to the planner's bypass
PAR_FDS = FDSet(
    ["A3 -> A4", "A2 -> A3", "A1 -> A2", "A7 -> A8", "A6 -> A7", "A5 -> A6"]
)
PAR_PAYLOAD = 24


def verification_session(n_rows: int) -> ChaseSession:
    """A session holding full/holey row pairs over two FD components plus
    ``PAR_PAYLOAD`` constant columns no FD mentions."""
    schema = random_schema(8 + PAR_PAYLOAD)
    session = ChaseSession(schema, PAR_FDS)
    for j in range(n_rows // 2):
        full, holey = [], []
        for c in range(2):
            full += [f"k{c}_{j}"] + [f"v{c}_{j}_{i}" for i in range(3)]
            holey += [f"k{c}_{j}"] + [null() for _ in range(3)]
        full += [f"p{j}_{i}" for i in range(PAR_PAYLOAD)]
        holey += [f"q{j}_{i}" for i in range(PAR_PAYLOAD)]
        session.insert(full)
        session.insert(holey)
    return session


def run_verification_series(sizes):
    worker_counts = (1, 2, 4)
    table = Table(
        "A2d — session.verify: serial reference chase vs chase(workers=N)",
        ["rows", "serial (s)"]
        + [f"workers={w} (s)" for w in worker_counts]
        + ["speedup@2"],
    )
    serial_times = []
    worker_times = {w: [] for w in worker_counts}
    for n in sizes:
        session = verification_session(n)
        if not session.verify():
            raise SystemExit(f"serial verification failed at n={n}")
        repeat = bench_repeat(2)
        serial_t = time_call(lambda: session.verify(), repeat=repeat)
        serial_times.append(serial_t)
        for w in worker_counts:
            if not session.verify(workers=w):
                raise SystemExit(
                    f"parallel verification (workers={w}) failed at n={n}"
                )
            worker_times[w].append(
                time_call(
                    lambda w=w: session.verify(workers=w), repeat=repeat
                )
            )
        table.add_row(
            n,
            serial_t,
            *(worker_times[w][-1] for w in worker_counts),
            f"{serial_t / worker_times[2][-1]:.1f}x",
        )
    table.show()
    print()
    print(
        "series serial verify wall s by size: "
        + " ".join(f"{t:.4f}" for t in serial_times)
    )
    for w in worker_counts:
        print(
            f"series parallel({w}) verify wall s by size: "
            + " ".join(f"{t:.4f}" for t in worker_times[w])
        )
    print(
        "parallel verify speedup at 2 workers at largest configuration: "
        f"{serial_times[-1] / worker_times[2][-1]:.1f}x"
    )


# ---------------------------------------------------------------------------
# old-row deletions: in-place retirement vs trail rewind / level rebuild
# ---------------------------------------------------------------------------


def retirement_workload(n_rows: int, seed: int = 71):
    """``n_rows`` settled ground rows + a merge-heavy recent tail.

    The settled prefix has unique values in every column, so no NS-rule
    ever fires on those rows — they are exactly the retirable shape.  The
    tail re-uses keys and carries nulls, so the trail above the prefix is
    deep and full of merges (the worst case for suffix replay).
    """
    rng = random.Random(seed)
    schema = random_schema(4)
    rows = [
        (f"k{i}", f"m{i}", f"n{i}", f"p{i}") for i in range(n_rows)
    ]
    tail = max(8, n_rows // 8)
    for i in range(tail):
        key = f"hot{rng.randrange(max(2, tail // 4))}"
        rows.append(
            (
                key,
                null() if rng.random() < 0.5 else f"tm{i}",
                null() if rng.random() < 0.5 else f"tn{i}",
                f"tp{rng.randrange(4)}",
            )
        )
    return schema, rows


def _build_session(schema, rows, fast_retire: bool) -> ChaseSession:
    session = ChaseSession(schema, FDS, fast_retire=fast_retire)
    for row in rows:
        session.insert(row)
    return session


def time_old_row_deletes(schema, rows, deletes: int, fast_retire: bool):
    """Best-of-repeats wall time of the delete stream alone (build
    excluded), plus the last run's session for result/stats checks."""
    best = None
    session = None
    for _ in range(bench_repeat(3)):
        session = _build_session(schema, rows, fast_retire)
        start = time.perf_counter()
        for _ in range(deletes):
            session.delete(0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, session


def run_retirement_series(sizes):
    table = Table(
        "A2c — deleting old rows: in-place retirement vs rewind/rebuild",
        [
            "rows",
            "deletes",
            "rewind/rebuild (s)",
            "retirement (s)",
            "ratio",
            "same fixpoint",
        ],
    )
    slow_times, fast_times = [], []
    for n in sizes:
        schema, rows = retirement_workload(n)
        deletes = n // 2
        slow_time, slow_session = time_old_row_deletes(
            schema, rows, deletes, fast_retire=False
        )
        fast_time, fast_session = time_old_row_deletes(
            schema, rows, deletes, fast_retire=True
        )
        stats = fast_session.stats()
        if stats["retire_fast"] != deletes or stats["level_rebuild"]:
            raise SystemExit(
                f"retirement fast path did not serve every old-row delete "
                f"at n={n}: {stats}"
            )
        same = canonical_form(slow_session.result().relation) == canonical_form(
            fast_session.result().relation
        ) and canonical_form(fast_session.result().relation) == canonical_form(
            congruence_chase(fast_session.raw_relation(), FDS).relation
        )
        if not same:
            raise SystemExit(f"old-row-deletion fixpoints diverged at n={n}")
        slow_times.append(slow_time)
        fast_times.append(fast_time)
        table.add_row(
            n, deletes, slow_time, fast_time,
            f"{slow_time / fast_time:.1f}x", same,
        )
    table.show()
    print(
        f"\nrewind/rebuild delete-stream log-log slope: "
        f"{loglog_slope(sizes, slow_times):.2f}  (expected ~2)"
    )
    print(
        f"retirement delete-stream log-log slope:     "
        f"{loglog_slope(sizes, fast_times):.2f}  (expected ~1)"
    )
    print(
        f"old-row retirement speedup at largest configuration: "
        f"{slow_times[-1] / fast_times[-1]:.1f}x"
    )


def main() -> None:
    sizes = bench_sizes(geometric_sizes(50, 2.0, 5))
    table = Table(
        "A2 — maintaining the fixpoint over an insert stream",
        ["inserts", "re-chase total (s)", "incremental total (s)", "ratio", "same fixpoint"],
    )
    re_times, inc_times = [], []
    for n in sizes:
        schema, stream = insert_stream(n)
        re_result = run_rechase(schema, stream)
        inc_result = run_incremental(schema, stream)
        same = canonical_form(re_result) == canonical_form(inc_result)
        if not same:
            raise SystemExit(f"insert-stream fixpoints diverged at n={n}")
        re_time = time_call(lambda: run_rechase(schema, stream), repeat=1)
        inc_time = time_call(lambda: run_incremental(schema, stream), repeat=1)
        re_times.append(re_time)
        inc_times.append(inc_time)
        table.add_row(n, re_time, inc_time, f"{re_time / inc_time:.1f}x", same)
    table.show()
    print(f"\nre-chase log-log slope:    {loglog_slope(sizes, re_times):.2f}  (expected ~2)")
    print(f"incremental log-log slope: {loglog_slope(sizes, inc_times):.2f}  (expected ~1)")

    mixed = Table(
        "A2b — mixed insert/delete/update workload (recency-skewed churn)",
        ["ops", "re-chase total (s)", "session total (s)", "ratio", "same fixpoint"],
    )
    mixed_re, mixed_inc = [], []
    for n in sizes:
        schema, ops = mixed_ops(n)
        re_result = run_mixed_rechase(schema, ops)
        session_result = run_mixed_session(schema, ops)
        same = canonical_form(re_result) == canonical_form(session_result)
        if not same:
            raise SystemExit(f"mixed-workload fixpoints diverged at n={n}")
        re_time = time_call(lambda: run_mixed_rechase(schema, ops), repeat=1)
        inc_time = time_call(lambda: run_mixed_session(schema, ops), repeat=1)
        mixed_re.append(re_time)
        mixed_inc.append(inc_time)
        mixed.add_row(n, re_time, inc_time, f"{re_time / inc_time:.1f}x", same)
    mixed.show()
    print(f"\nmixed re-chase log-log slope: {loglog_slope(sizes, mixed_re):.2f}  (expected ~2)")
    print(f"mixed session log-log slope:  {loglog_slope(sizes, mixed_inc):.2f}  (expected ~1)")
    print(
        f"session mixed-workload speedup at largest configuration: "
        f"{mixed_re[-1] / mixed_inc[-1]:.1f}x"
    )

    run_retirement_series(sizes)
    run_verification_series(bench_sizes(geometric_sizes(500, 2.0, 3)))
    print(
        "\nBoth strategies agree on every fixpoint; only the maintenance"
        "\ncost differs."
    )


def bench_rechase_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_rechase(schema, stream))


def bench_incremental_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_incremental(schema, stream))


def bench_mixed_session_200(benchmark) -> None:
    schema, ops = mixed_ops(200)
    benchmark(lambda: run_mixed_session(schema, ops))


def bench_retirement_deletes_200(benchmark) -> None:
    schema, rows = retirement_workload(200)

    def run() -> None:
        session = _build_session(schema, rows, fast_retire=True)
        for _ in range(100):
            session.delete(0)

    benchmark(run)


if __name__ == "__main__":
    main()
