"""E7 — Section 6's opening example: FD interaction under weak semantics.

Paper artifact: F = {A -> B, B -> C} on r = {(a,⊥,c1), (a,⊥,c2)} — "the
functional dependencies f1 and f2 evaluated independently on r take the
value unknown (they are weakly satisfied).  This is not the case when the
dependencies are evaluated simultaneously."

Reproduced series: (a) the example itself, all three notions side by side;
(b) how *often* the gap bites: over random instances, the fraction that
are per-FD weakly fine yet jointly unsatisfiable, as null density grows —
the quantitative case for chasing before testing.
"""

import random

from repro.bench.report import Table
from repro.chase import weakly_satisfiable
from repro.core.satisfaction import weakly_holds_each, weakly_satisfied
from repro.workloads.generator import (
    inject_nulls,
    random_instance,
    random_schema,
)
from repro.workloads.paper import section_6_example


def main() -> None:
    _, fds, relation = section_6_example()
    table = Table(
        "E7a — the section 6 example",
        ["notion", "verdict"],
    )
    table.add_row("each FD weakly holds (independent)", weakly_holds_each(fds, relation))
    table.add_row("jointly weakly satisfied (∃ completion)", weakly_satisfied(fds, relation))
    table.add_row("chase verdict (Theorem 4b)", weakly_satisfiable(relation, fds))
    table.show()

    rng = random.Random(13)
    # finite domains keep the per-FD brute-force evaluation bounded
    schema = random_schema(3, domain_size=3)
    fds_fixed = ["A1 -> A2", "A2 -> A3"]
    table = Table(
        "E7b — interaction rate over random instances (100 trials each)",
        ["null density", "per-FD weak", "jointly weak", "gap (interaction)"],
    )
    for density in (0.1, 0.3, 0.5, 0.7):
        per_fd = jointly = gap = 0
        for trial in range(100):
            r = inject_nulls(
                rng,
                random_instance(rng.randint(0, 10**6), schema, 5, pool_size=2),
                density,
            )
            each = weakly_holds_each(fds_fixed, r)
            joint = weakly_satisfiable(r, fds_fixed)
            per_fd += each
            jointly += joint
            gap += each and not joint
        table.add_row(density, per_fd, jointly, gap)
    table.show()
    print(
        "\nShape: the gap column is nonzero — per-FD weak testing"
        "\noverpromises, exactly the paper's reason for section 6."
    )


def bench_joint_weak_satisfiability(benchmark) -> None:
    _, fds, relation = section_6_example()
    verdict = benchmark(lambda: weakly_satisfiable(relation, fds))
    assert verdict is False


def bench_per_fd_weak_evaluation(benchmark) -> None:
    _, fds, relation = section_6_example()
    verdict = benchmark(lambda: weakly_holds_each(fds, relation))
    assert verdict is True


if __name__ == "__main__":
    main()
