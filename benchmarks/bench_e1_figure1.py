"""E1 — Figure 1: the employee scheme, its instances, and classical checks.

Paper artifact: Figures 1.1-1.3 plus the section 3 claim "It is trivial to
verify that the functional dependencies E# -> SL,D# and D# -> CT hold in
the instance r of figure 1.2."

Reproduced series (printed by ``main()``, recorded in EXPERIMENTS.md):
per-FD classical verdicts on Figure 1.2, per-tuple three-valued profiles on
Figure 1.3, and strong/weak verdicts.  The pytest-benchmark half times the
two checks at scale (the "trivial to verify" claim, quantified).
"""

import random

from repro.bench.report import Table
from repro.core.fd import holds_classical
from repro.core.satisfaction import (
    fd_value_profile,
    strongly_satisfied,
    weakly_satisfied,
)
from repro.testfd import CONVENTION_STRONG, CONVENTION_WEAK, check_fds
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
)
from repro.workloads.paper import (
    figure_1_2_instance,
    figure_1_3_instance,
    figure_1_scheme,
)


def main() -> None:
    schema, fds = figure_1_scheme()

    table = Table(
        "E1a — Figure 1.2 (null-free): classical satisfaction",
        ["fd", "holds"],
    )
    r12 = figure_1_2_instance()
    for fd in fds:
        table.add_row(repr(fd), holds_classical(fd, r12))
    table.show()

    table = Table(
        "E1b — Figure 1.3 (with nulls): per-tuple values",
        ["fd", "t1", "t2", "t3"],
    )
    r13 = figure_1_3_instance()
    for fd in fds:
        profile = fd_value_profile(fd, r13)
        table.add_row(repr(fd), *[str(v) for v in profile])
    table.show()

    table = Table(
        "E1c — Figure 1.3: satisfiability verdicts",
        ["notion", "verdict"],
    )
    table.add_row("strongly satisfied", strongly_satisfied(fds, r13))
    table.add_row("weakly satisfied", weakly_satisfied(fds, r13))
    table.add_row(
        "TEST-FDs strong", check_fds(r13, fds, CONVENTION_STRONG).satisfied
    )
    table.add_row(
        "TEST-FDs weak (chased)",
        check_fds(r13, fds, CONVENTION_WEAK, ensure_minimal=True).satisfied,
    )
    table.show()


def _employee_workload(n_rows: int, density: float):
    schema, fds = figure_1_scheme()
    rng = random.Random(7)
    total = random_satisfiable_instance(
        rng, schema, list(fds), n_rows, pool_size=max(4, n_rows // 4)
    )
    return inject_nulls(rng, total, density, attributes=["SL", "CT"]), fds


def bench_classical_check_1000_rows(benchmark) -> None:
    """Classical satisfaction of both FDs on 1000 null-free employee rows."""
    schema, fds = figure_1_scheme()
    rng = random.Random(7)
    r = random_satisfiable_instance(rng, schema, list(fds), 1000, pool_size=256)
    result = benchmark(
        lambda: all(holds_classical(fd, r) for fd in fds)
    )
    assert result is True


def bench_weak_testfds_1000_rows(benchmark) -> None:
    """Weak TEST-FDs (with chase) on 1000 employee rows, 20% nulls."""
    r, fds = _employee_workload(1000, density=0.2)
    outcome = benchmark(
        lambda: check_fds(r, fds, CONVENTION_WEAK, ensure_minimal=True)
    )
    assert outcome.satisfied


if __name__ == "__main__":
    main()
