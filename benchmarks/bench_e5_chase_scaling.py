"""E5 — NS-rule chase complexity: the multi-pass bound vs congruence closure.

Paper artifact: section 6's analysis — "The NS-rules are applied in several
passes ... Every pass reduces the number of distinct symbols, hence we have
at most n·p passes.  Therefore, no rule can be applied after O(|F|·n³·p)
time", against the footnote: "According to a recent result by [Downey et
al 80] the time complexity of the test is O(|F|·n·log(|F|·n))".

The separation is driven by the *pass count*.  Workload: an FD chain
``A1 -> A2 -> ... -> Ap`` whose substitutions must cascade forward, with
the FD list handed to the engine in anti-dependency order — every sweep
then unlocks exactly one more level, so the pass-based engine performs
Θ(p) sweeps of Θ(|F|·n) work each (quadratic in the chain width p), while
congruence closure processes the same merges from a worklist with no
sweeps at all (linear in p).

Reproduced series: (a) wall time vs chain width p at fixed n — expected
log-log slopes ≈ 2 (fixpoint) vs ≈ 1 (congruence); (b) wall time vs n at
fixed p — both near-linear, congruence ahead; fixpoint identity checked at
every point.
"""

from repro.bench.report import Table, geometric_sizes, loglog_slope, time_call
from repro.chase import MODE_EXTENDED, canonical_form, chase, congruence_chase
from repro.core.fd import FD
from repro.core.relation import Relation
from repro.core.values import null
from repro.workloads.generator import attribute_names, random_schema


def chain_fds(width: int):
    """A1 -> A2, ..., A(p-1) -> Ap, listed in ANTI-dependency order."""
    return [FD(f"A{i}", f"A{i + 1}") for i in range(width - 1, 0, -1)]


def chain_workload(width: int, n_rows: int) -> Relation:
    """Row pairs whose null halves fill level by level along the chain."""
    schema = random_schema(width)
    rows = []
    for j in range(n_rows // 2):
        key = f"k{j}"
        full = [key] + [f"v{j}_{i}" for i in range(2, width + 1)]
        holey = [key] + [null() for _ in range(2, width + 1)]
        rows.append(full)
        rows.append(holey)
    return Relation(schema, rows)


def main() -> None:
    widths = (4, 8, 16, 32)
    fixed_n = 400
    table = Table(
        f"E5a — chase cost vs chain width p (n = {fixed_n} rows)",
        ["p", "|F|", "passes", "fixpoint (s)", "congruence (s)", "ratio", "same fixpoint"],
    )
    fix_times, cong_times = [], []
    for width in widths:
        fds = chain_fds(width)
        r = chain_workload(width, fixed_n)
        slow = chase(r, fds, mode=MODE_EXTENDED)
        fast = congruence_chase(r, fds)
        same = canonical_form(slow.relation) == canonical_form(fast.relation)
        fix_time = time_call(lambda: chase(r, fds, mode=MODE_EXTENDED), repeat=1)
        cong_time = time_call(lambda: congruence_chase(r, fds), repeat=1)
        fix_times.append(fix_time)
        cong_times.append(cong_time)
        table.add_row(
            width, len(fds), slow.passes, fix_time, cong_time,
            f"{fix_time / cong_time:.1f}x", same,
        )
    table.show()
    print(f"\nfixpoint log-log slope in p:   {loglog_slope(widths, fix_times):.2f}  (expected ~2)")
    print(f"congruence log-log slope in p: {loglog_slope(widths, cong_times):.2f}  (expected ~1)")

    sizes = geometric_sizes(200, 2.0, 4)
    fixed_p = 8
    table = Table(
        f"E5b — chase cost vs n (chain width p = {fixed_p})",
        ["n", "fixpoint (s)", "congruence (s)", "ratio", "same fixpoint"],
    )
    fix_times, cong_times = [], []
    fds = chain_fds(fixed_p)
    for n in sizes:
        r = chain_workload(fixed_p, n)
        slow = chase(r, fds, mode=MODE_EXTENDED)
        fast = congruence_chase(r, fds)
        same = canonical_form(slow.relation) == canonical_form(fast.relation)
        fix_time = time_call(lambda: chase(r, fds, mode=MODE_EXTENDED), repeat=1)
        cong_time = time_call(lambda: congruence_chase(r, fds), repeat=1)
        fix_times.append(fix_time)
        cong_times.append(cong_time)
        table.add_row(n, fix_time, cong_time, f"{fix_time / cong_time:.1f}x", same)
    table.show()
    print(f"\nfixpoint log-log slope in n:   {loglog_slope(sizes, fix_times):.2f}")
    print(f"congruence log-log slope in n: {loglog_slope(sizes, cong_times):.2f}")
    print(
        "\n(the paper's O(|F|·n³·p) is a conservative bound; measured"
        "\nbehaviour is governed by the pass count, which the anti-ordered"
        "\nchain drives to Θ(p) — and congruence closure avoids outright)"
    )


def bench_fixpoint_chase_chain(benchmark) -> None:
    fds = chain_fds(12)
    r = chain_workload(12, 300)
    result = benchmark(lambda: chase(r, fds, mode=MODE_EXTENDED))
    assert not result.has_nothing


def bench_congruence_chase_chain(benchmark) -> None:
    fds = chain_fds(12)
    r = chain_workload(12, 300)
    result = benchmark(lambda: congruence_chase(r, fds))
    assert not result.has_nothing


if __name__ == "__main__":
    main()
