"""E5 — NS-rule chase complexity: the multi-pass bound vs worklist engines.

Paper artifact: section 6's analysis — "The NS-rules are applied in several
passes ... Every pass reduces the number of distinct symbols, hence we have
at most n·p passes.  Therefore, no rule can be applied after O(|F|·n³·p)
time", against the footnote: "According to a recent result by [Downey et
al 80] the time complexity of the test is O(|F|·n·log(|F|·n))".

The separation is driven by the *pass count*.  Workload: an FD chain
``A1 -> A2 -> ... -> Ap`` whose substitutions must cascade forward, with
the FD list handed to the engine in anti-dependency order — every sweep
then unlocks exactly one more level, so the pass-based engine performs
Θ(p) sweeps of Θ(|F|·n) work each (quadratic in the chain width p), while
the two worklist engines (the indexed NS-rule engine, now the default
behind ``chase(mode="extended")``, and congruence closure) process the
same merges from a worklist with no sweeps at all (linear in p).

Head-to-head series (three engines, identical fixpoints checked at every
point): (a) wall time vs chain width p at fixed n — expected log-log
slopes ≈ 2 (sweep) vs ≈ 1 (worklist engines); (b) wall time vs n at fixed
p — all near-linear, worklist engines ahead.  The headline number is the
speedup of the default extended-mode chase over the legacy sweep at the
largest configuration (the PR-1 acceptance asks for ≥5×).
"""

from repro.bench.report import (
    Table,
    bench_repeat,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
    time_call,
)
from repro.chase import MODE_EXTENDED, canonical_form, chase, congruence_chase
from repro.chase.parallel import parallel_chase
from repro.chase.plan import plan_shards
from repro.core.fd import FD
from repro.core.relation import Relation
from repro.core.values import null
from repro.workloads.generator import attribute_names, random_schema


def chain_fds(width: int):
    """A1 -> A2, ..., A(p-1) -> Ap, listed in ANTI-dependency order."""
    return [FD(f"A{i}", f"A{i + 1}") for i in range(width - 1, 0, -1)]


def component_fds(n_components: int, comp_width: int):
    """``n_components`` disjoint anti-ordered chains of ``comp_width``
    attributes each — the shard planner splits them into one shard per
    chain."""
    fds = []
    for c in range(n_components):
        base = c * comp_width + 1
        for i in range(base + comp_width - 2, base - 1, -1):
            fds.append(FD(f"A{i}", f"A{i + 1}"))
    return fds


def component_workload(
    n_rows: int, n_components: int, comp_width: int, payload_cols: int
) -> Relation:
    """Per-component row pairs (full/holey, as in :func:`chain_workload`)
    plus ``payload_cols`` trailing constant columns no FD mentions — the
    bypass columns the sharded executor never hands to a chase engine."""
    width = n_components * comp_width + payload_cols
    schema = random_schema(width)
    rows = []
    for j in range(n_rows // 2):
        full, holey = [], []
        for c in range(n_components):
            full += [f"k{c}_{j}"] + [f"v{c}_{j}_{i}" for i in range(1, comp_width)]
            holey += [f"k{c}_{j}"] + [null() for _ in range(1, comp_width)]
        full += [f"p{j}_{i}" for i in range(payload_cols)]
        holey += [f"q{j}_{i}" for i in range(payload_cols)]
        rows.append(full)
        rows.append(holey)
    return Relation(schema, rows)


def closure_chain_fds(width: int):
    """The FULL transitive closure of a ``width``-chain — every implied
    shortcut ``Ai -> Aj`` (i < j) spelled out, p(p-1)/2 FDs in all,
    anti-ordered like :func:`chain_fds`.  Cover pruning collapses it back
    to the (p-1)-FD chain."""
    return [
        FD(f"A{i}", f"A{j}")
        for j in range(width, 1, -1)
        for i in range(j - 1, 0, -1)
    ]


def chain_workload(width: int, n_rows: int) -> Relation:
    """Row pairs whose null halves fill level by level along the chain."""
    schema = random_schema(width)
    rows = []
    for j in range(n_rows // 2):
        key = f"k{j}"
        full = [key] + [f"v{j}_{i}" for i in range(2, width + 1)]
        holey = [key] + [null() for _ in range(2, width + 1)]
        rows.append(full)
        rows.append(holey)
    return Relation(schema, rows)


def _engines(r, fds):
    """(sweep, indexed-default, congruence) wall times + identity check."""
    sweep = chase(r, fds, mode=MODE_EXTENDED, engine="sweep")
    fast = chase(r, fds, mode=MODE_EXTENDED)  # default path: indexed
    cong = congruence_chase(r, fds)
    same = (
        canonical_form(sweep.relation)
        == canonical_form(fast.relation)
        == canonical_form(cong.relation)
    )
    repeat = bench_repeat(1)
    sweep_t = time_call(
        lambda: chase(r, fds, mode=MODE_EXTENDED, engine="sweep"), repeat=repeat
    )
    fast_t = time_call(lambda: chase(r, fds, mode=MODE_EXTENDED), repeat=repeat)
    cong_t = time_call(lambda: congruence_chase(r, fds), repeat=repeat)
    return sweep, same, sweep_t, fast_t, cong_t


def main() -> None:
    widths = bench_sizes((4, 8, 16, 32))
    fixed_n = 400
    table = Table(
        f"E5a — chase cost vs chain width p (n = {fixed_n} rows)",
        [
            "p", "|F|", "sweep passes", "sweep (s)", "indexed (s)",
            "congruence (s)", "indexed speedup", "same fixpoint",
        ],
    )
    sweep_times, fast_times, cong_times = [], [], []
    largest_speedup = 0.0
    for width in widths:
        fds = chain_fds(width)
        r = chain_workload(width, fixed_n)
        slow, same, sweep_t, fast_t, cong_t = _engines(r, fds)
        sweep_times.append(sweep_t)
        fast_times.append(fast_t)
        cong_times.append(cong_t)
        largest_speedup = sweep_t / fast_t
        table.add_row(
            width, len(fds), slow.passes, sweep_t, fast_t, cong_t,
            f"{largest_speedup:.1f}x", same,
        )
    table.show()
    print(f"\nsweep log-log slope in p:      {loglog_slope(widths, sweep_times):.2f}  (expected ~2)")
    print(f"indexed log-log slope in p:    {loglog_slope(widths, fast_times):.2f}  (expected ~1)")
    print(f"congruence log-log slope in p: {loglog_slope(widths, cong_times):.2f}  (expected ~1)")
    print(
        f"indexed speedup at largest configuration: {largest_speedup:.1f}x "
        "(PR-1 target: >=5x)"
    )
    print(
        "congruence speedup at largest configuration: "
        f"{sweep_times[-1] / cong_times[-1]:.1f}x "
        "(shared-core congruence engine vs legacy sweep)"
    )

    sizes = bench_sizes(geometric_sizes(200, 2.0, 4))
    fixed_p = 8
    table = Table(
        f"E5b — chase cost vs n (chain width p = {fixed_p})",
        ["n", "sweep (s)", "indexed (s)", "congruence (s)", "indexed speedup", "same fixpoint"],
    )
    sweep_times, fast_times, cong_times = [], [], []
    fds = chain_fds(fixed_p)
    for n in sizes:
        r = chain_workload(fixed_p, n)
        _, same, sweep_t, fast_t, cong_t = _engines(r, fds)
        sweep_times.append(sweep_t)
        fast_times.append(fast_t)
        cong_times.append(cong_t)
        table.add_row(
            n, sweep_t, fast_t, cong_t, f"{sweep_t / fast_t:.1f}x", same
        )
    table.show()
    print(f"\nsweep log-log slope in n:      {loglog_slope(sizes, sweep_times):.2f}")
    print(f"indexed log-log slope in n:    {loglog_slope(sizes, fast_times):.2f}")
    print(f"congruence log-log slope in n: {loglog_slope(sizes, cong_times):.2f}")
    print(
        "\n(the paper's O(|F|·n³·p) is a conservative bound; measured"
        "\nbehaviour is governed by the pass count, which the anti-ordered"
        "\nchain drives to Θ(p) — and both worklist engines avoid outright)"
    )

    # E5c — the sharded parallel executor on a multi-component workload:
    # 4 independent FD chains (one shard each) plus a wide payload of
    # bypass columns the planner never hands to any chase engine.  The
    # speedup is measured through the public chase(workers=N) entry point,
    # whatever execution shape it picks for this machine (process pool on
    # multi-core boxes, in-process vector-engine shards on single-core).
    n_components, comp_width, payload_cols = 4, 4, 48
    sizes = bench_sizes(geometric_sizes(1000, 2.0, 3))
    worker_counts = (1, 2, 4)
    fds = component_fds(n_components, comp_width)
    table = Table(
        f"E5c — sharded parallel chase ({n_components} FD components x "
        f"{comp_width} cols + {payload_cols} bypass cols)",
        ["n", "unified (s)"]
        + [f"workers={w} (s)" for w in worker_counts]
        + ["speedup@2", "same fixpoint"],
    )
    unified_times = []
    worker_times = {w: [] for w in worker_counts}
    for n in sizes:
        r = component_workload(n, n_components, comp_width, payload_cols)
        unified = chase(r, fds)
        repeat = bench_repeat(2)
        unified_t = time_call(lambda: chase(r, fds), repeat=repeat)
        unified_times.append(unified_t)
        same = True
        for w in worker_counts:
            sharded = chase(r, fds, workers=w)
            same = same and (
                canonical_form(sharded.relation)
                == canonical_form(unified.relation)
            )
            worker_times[w].append(
                time_call(lambda w=w: chase(r, fds, workers=w), repeat=repeat)
            )
        table.add_row(
            n,
            unified_t,
            *(worker_times[w][-1] for w in worker_counts),
            f"{unified_t / worker_times[2][-1]:.1f}x",
            same,
        )
    table.show()
    print()
    print(
        "series unified chase wall s by size: "
        + " ".join(f"{t:.4f}" for t in unified_times)
    )
    for w in worker_counts:
        print(
            f"series parallel({w}) chase wall s by size: "
            + " ".join(f"{t:.4f}" for t in worker_times[w])
        )
    for w in worker_counts[1:]:
        print(
            f"parallel chase speedup at {w} workers at largest configuration: "
            f"{unified_times[-1] / worker_times[w][-1]:.1f}x "
            "(PR-6 target at 2+: >=1.5x)"
        )

    # E5d — cover-pruned planning on a redundant FD set: the workload's
    # rules are the full transitive closure of a p-chain (p(p-1)/2 FDs),
    # which prune_fds collapses back to the (p-1)-FD chain cover.  Both
    # sides run the same single-shard executor with a precomputed plan —
    # the session-cached scenario — so the delta is purely the rule count
    # the chase signs and fires.  Theorem 4 makes the fixpoints identical
    # (checked every point).
    widths = bench_sizes((4, 8, 16))
    pruned_n = 300
    table = Table(
        f"E5d — cover-pruned planning vs the spelled-out closure "
        f"(n = {pruned_n} rows)",
        [
            "p", "|F| input", "|F| pruned", "unpruned (s)", "pruned (s)",
            "pruning speedup", "same fixpoint",
        ],
    )
    unpruned_times, pruned_times = [], []
    for width in widths:
        fds = closure_chain_fds(width)
        r = chain_workload(width, pruned_n)
        unpruned_plan = plan_shards(r.schema, fds, prune=False)
        pruned_plan = plan_shards(r.schema, fds, prune=True)
        baseline = parallel_chase(r, fds, workers=1, plan=unpruned_plan)
        covered = parallel_chase(r, fds, workers=1, plan=pruned_plan)
        same = canonical_form(baseline.relation) == canonical_form(
            covered.relation
        )
        repeat = bench_repeat(2)
        unpruned_t = time_call(
            lambda: parallel_chase(r, fds, workers=1, plan=unpruned_plan),
            repeat=repeat,
        )
        pruned_t = time_call(
            lambda: parallel_chase(r, fds, workers=1, plan=pruned_plan),
            repeat=repeat,
        )
        unpruned_times.append(unpruned_t)
        pruned_times.append(pruned_t)
        table.add_row(
            width, len(fds), len(pruned_plan.fds), unpruned_t, pruned_t,
            f"{unpruned_t / pruned_t:.1f}x", same,
        )
    table.show()
    print()
    print(
        "series unpruned plan chase wall s by width: "
        + " ".join(f"{t:.4f}" for t in unpruned_times)
    )
    print(
        "series pruned plan chase wall s by width: "
        + " ".join(f"{t:.4f}" for t in pruned_times)
    )
    print(
        "cover-pruning speedup at largest configuration: "
        f"{unpruned_times[-1] / pruned_times[-1]:.1f}x "
        "(PR-8 target: >=1.2x)"
    )


def bench_sweep_chase_chain(benchmark) -> None:
    fds = chain_fds(12)
    r = chain_workload(12, 300)
    result = benchmark(lambda: chase(r, fds, mode=MODE_EXTENDED, engine="sweep"))
    assert not result.has_nothing


def bench_indexed_chase_chain(benchmark) -> None:
    fds = chain_fds(12)
    r = chain_workload(12, 300)
    result = benchmark(lambda: chase(r, fds, mode=MODE_EXTENDED))
    assert not result.has_nothing


def bench_congruence_chase_chain(benchmark) -> None:
    fds = chain_fds(12)
    r = chain_workload(12, 300)
    result = benchmark(lambda: congruence_chase(r, fds))
    assert not result.has_nothing


if __name__ == "__main__":
    main()
