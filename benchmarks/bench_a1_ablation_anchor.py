"""A1 (ablation) — Figure 3's literal merge scan vs the exact anchor.

DESIGN.md calls out one deliberate refinement over the paper: under the
weak convention, "not unequal" is not transitive through a null, so
comparing only against a run's *first* tuple (Figure 3 verbatim) can miss
a constant/constant conflict hiding behind a leading null.  On Theorem 3's
intended inputs — minimally incomplete instances — the case cannot arise.

This ablation measures both halves of that claim:

* on RAW random instances, the literal anchor's miss rate vs the exact
  constant-preferring anchor (ground truth: the pairwise variant);
* on CHASED (minimally incomplete) instances, both anchors agree — and
  cost the same.
"""

import random

from repro.bench.report import Table, time_call
from repro.chase import MODE_BASIC, minimally_incomplete
from repro.testfd import CONVENTION_WEAK, check_fds_pairwise
from repro.testfd.sortmerge import (
    ANCHOR_CONSTANT_PREFERRING,
    ANCHOR_LITERAL,
    check_fds_sortmerge,
)
from repro.workloads.generator import (
    inject_nulls,
    random_instance,
    random_schema,
)

FDS = ["A1 -> A2", "A3 -> A2"]
TRIALS = 300


def main() -> None:
    rng = random.Random(53)
    schema = random_schema(3)

    raw_disagree = chased_disagree = 0
    raw_literal_wrong = 0
    for _ in range(TRIALS):
        r = inject_nulls(
            rng,
            random_instance(rng.randint(0, 10**6), schema, 6, pool_size=2),
            density=0.35,
        )
        truth = check_fds_pairwise(r, FDS, CONVENTION_WEAK).satisfied
        literal = check_fds_sortmerge(
            r, FDS, CONVENTION_WEAK, anchor=ANCHOR_LITERAL
        ).satisfied
        exact = check_fds_sortmerge(
            r, FDS, CONVENTION_WEAK, anchor=ANCHOR_CONSTANT_PREFERRING
        ).satisfied
        raw_disagree += literal != exact
        raw_literal_wrong += literal != truth
        assert exact == truth  # the refined anchor is always exact

        minimal = minimally_incomplete(r, FDS, mode=MODE_BASIC).relation
        literal_min = check_fds_sortmerge(
            minimal, FDS, CONVENTION_WEAK, anchor=ANCHOR_LITERAL
        ).satisfied
        exact_min = check_fds_sortmerge(
            minimal, FDS, CONVENTION_WEAK, anchor=ANCHOR_CONSTANT_PREFERRING
        ).satisfied
        chased_disagree += literal_min != exact_min

    table = Table(
        f"A1 — literal vs constant-preferring anchor ({TRIALS} instances)",
        ["input", "literal wrong / disagrees", "exact wrong"],
    )
    table.add_row(
        "raw (non-minimal)", f"{raw_literal_wrong} / {raw_disagree}", 0
    )
    table.add_row("minimally incomplete", f"0 / {chased_disagree}", 0)
    table.show()
    assert chased_disagree == 0, "Theorem 3's setting must equalize the anchors"
    print(
        "\nOn Theorem 3's inputs the two scans coincide (the NS-rule has"
        "\nalready substituted any null that could hide a conflict); on raw"
        "\ninputs only the refined anchor matches the pairwise ground truth."
    )

    r = inject_nulls(
        rng, random_instance(0, schema, 2000, pool_size=200), density=0.2
    )
    literal_time = time_call(
        lambda: check_fds_sortmerge(r, FDS, CONVENTION_WEAK, anchor=ANCHOR_LITERAL)
    )
    exact_time = time_call(
        lambda: check_fds_sortmerge(
            r, FDS, CONVENTION_WEAK, anchor=ANCHOR_CONSTANT_PREFERRING
        )
    )
    table = Table("A1b — cost of the refinement (n = 2000)", ["anchor", "seconds"])
    table.add_row("literal", literal_time)
    table.add_row("constant-preferring", exact_time)
    table.show()


def bench_literal_anchor(benchmark) -> None:
    rng = random.Random(54)
    schema = random_schema(3)
    r = inject_nulls(rng, random_instance(0, schema, 1000, pool_size=100), 0.2)
    benchmark(
        lambda: check_fds_sortmerge(r, FDS, CONVENTION_WEAK, anchor=ANCHOR_LITERAL)
    )


def bench_constant_preferring_anchor(benchmark) -> None:
    rng = random.Random(54)
    schema = random_schema(3)
    r = inject_nulls(rng, random_instance(0, schema, 1000, pool_size=100), 0.2)
    benchmark(
        lambda: check_fds_sortmerge(
            r, FDS, CONVENTION_WEAK, anchor=ANCHOR_CONSTANT_PREFERRING
        )
    )


if __name__ == "__main__":
    main()
