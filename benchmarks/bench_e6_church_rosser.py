"""E6 — Figure 5 and Theorem 4(a): order (in)dependence of the NS-rules.

Paper artifact: "The NS-rules applied in a different order may result in
different minimally incomplete states" (Figure 5's r' vs r'') and Theorem
4(a): with the extension to *nothing*, "the application of the NS-rules
will produce a unique minimally incomplete instance (the NS-rules
constitute a Church-Rosser system)".

Reproduced series: on Figure 5 and on random instances, the number of
distinct fixpoints reached across 11 application orders — basic rules may
exceed 1; extended rules must equal 1 everywhere.
"""

import random

from repro.bench.report import Table
from repro.chase import (
    MODE_BASIC,
    MODE_EXTENDED,
    canonical_form,
    chase,
    church_rosser_orders,
    congruence_chase,
)
from repro.core.values import NOTHING
from repro.workloads.generator import (
    inject_nulls,
    random_fds,
    random_instance,
    random_schema,
)
from repro.workloads.paper import figure_5


def distinct_fixpoints(relation, fds, mode) -> int:
    results = church_rosser_orders(relation, fds, mode=mode, seeds=range(8))
    return len({canonical_form(result.relation) for result in results})


def main() -> None:
    _, fds, relation = figure_5()
    table = Table(
        "E6a — Figure 5: fixpoints across 11 application orders",
        ["rules", "distinct fixpoints", "B column"],
    )
    basic = chase(relation, fds, mode=MODE_BASIC, strategy="fd_order")
    extended = chase(relation, fds, mode=MODE_EXTENDED)
    table.add_row(
        "basic (Definition 2)",
        distinct_fixpoints(relation, fds, MODE_BASIC),
        "order-dependent (b1 or b2)",
    )
    table.add_row(
        "extended (nothing)",
        distinct_fixpoints(relation, fds, MODE_EXTENDED),
        "all NOTHING" if all(
            row["B"] is NOTHING for row in extended.relation
        ) else "NOT all nothing (!)",
    )
    table.show()

    rng = random.Random(5)
    schema = random_schema(4)
    trials = 60
    basic_divergent = 0
    extended_divergent = 0
    for trial in range(trials):
        fds_random = random_fds(rng.randint(0, 10_000), schema.attributes, 3)
        r = inject_nulls(
            rng,
            random_instance(rng.randint(0, 10_000), schema, 8, pool_size=3),
            density=0.3,
        )
        if distinct_fixpoints(r, fds_random, MODE_BASIC) > 1:
            basic_divergent += 1
        if distinct_fixpoints(r, fds_random, MODE_EXTENDED) > 1:
            extended_divergent += 1
    table = Table(
        f"E6b — random instances ({trials} trials, 11 orders each)",
        ["rules", "instances with >1 fixpoint"],
    )
    table.add_row("basic", basic_divergent)
    table.add_row("extended", extended_divergent)
    table.show()
    print(
        "\nTheorem 4(a) shape: extended must be 0; basic is free to diverge"
        f" (observed {basic_divergent})."
    )


def bench_church_rosser_verification(benchmark) -> None:
    """11-order fixpoint comparison on Figure 5."""
    _, fds, relation = figure_5()
    count = benchmark(lambda: distinct_fixpoints(relation, fds, MODE_EXTENDED))
    assert count == 1


def bench_congruence_on_figure5(benchmark) -> None:
    _, fds, relation = figure_5()
    result = benchmark(lambda: congruence_chase(relation, fds))
    assert result.has_nothing


if __name__ == "__main__":
    main()
