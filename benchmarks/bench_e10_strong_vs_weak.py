"""E10 — Section 7's claim: "very few relation instances are
strongly-consistent" and "null values and weak satisfiability allow
constraints to be valid in more instances".

Reproduced series: over seeded workloads built by punching nulls into FD-
satisfying instances, the fraction that remain strongly vs weakly
satisfiable as the null density grows.  Expected shape: the weak curve
stays at 1.0 (the witness completion survives by construction); the strong
curve collapses as soon as nulls touch determined attributes whose
determinants repeat — weak ≥ strong everywhere, with a widening gap.

A second series uses *random* (unrepaired) instances, where both curves
may fall, but weak must dominate strong pointwise.
"""

import random

from repro.bench.report import Table
from repro.chase import weakly_satisfiable
from repro.core.fd import FD
from repro.testfd import CONVENTION_STRONG, check_fds
from repro.workloads.generator import (
    inject_nulls,
    random_instance,
    random_satisfiable_instance,
    random_schema,
)

FDS = ["A1 -> A2", "A3 -> A4"]
FD_OBJECTS = [FD.parse(f) for f in FDS]
TRIALS = 80


def main() -> None:
    rng = random.Random(37)
    schema = random_schema(4)

    table = Table(
        f"E10a — satisfaction rate vs null density (satisfiable base, {TRIALS} trials)",
        ["density", "strong rate", "weak rate"],
    )
    for density in (0.0, 0.1, 0.2, 0.4, 0.6):
        strong = weak = 0
        for _ in range(TRIALS):
            base = random_satisfiable_instance(
                rng.randint(0, 10**6), schema, FD_OBJECTS, 12, pool_size=4
            )
            r = inject_nulls(rng, base, density)
            strong += check_fds(r, FDS, CONVENTION_STRONG).satisfied
            weak += weakly_satisfiable(r, FDS)
        table.add_row(density, strong / TRIALS, weak / TRIALS)
    table.show()

    table = Table(
        f"E10b — unconstrained random instances ({TRIALS} trials)",
        ["density", "strong rate", "weak rate"],
    )
    for density in (0.0, 0.2, 0.4, 0.6):
        strong = weak = 0
        for _ in range(TRIALS):
            r = inject_nulls(
                rng,
                random_instance(rng.randint(0, 10**6), schema, 8, pool_size=3),
                density,
            )
            strong += check_fds(r, FDS, CONVENTION_STRONG).satisfied
            weak += weakly_satisfiable(r, FDS)
        table.add_row(density, strong / TRIALS, weak / TRIALS)
    table.show()
    print(
        "\nShape: weak dominates strong at every density; with any"
        "\nappreciable null density the strong rate collapses — 'very few"
        "\nrelation instances are strongly-consistent'."
    )


def bench_strong_rate_sweep(benchmark) -> None:
    rng = random.Random(38)
    schema = random_schema(4)
    base = random_satisfiable_instance(rng, schema, FD_OBJECTS, 100, pool_size=10)
    r = inject_nulls(rng, base, 0.3)
    benchmark(lambda: check_fds(r, FDS, CONVENTION_STRONG))


def bench_weak_rate_sweep(benchmark) -> None:
    rng = random.Random(39)
    schema = random_schema(4)
    base = random_satisfiable_instance(rng, schema, FD_OBJECTS, 100, pool_size=10)
    r = inject_nulls(rng, base, 0.3)
    verdict = benchmark(lambda: weakly_satisfiable(r, FDS))
    assert verdict is True


if __name__ == "__main__":
    main()
