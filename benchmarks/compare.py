"""Bench-regression guard: diff a fresh run against the committed baseline.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_all.py --quick --out BENCH_QUICK.json
    python benchmarks/compare.py --fresh BENCH_QUICK.json

The baseline is the **latest** committed ``BENCH_PR<N>.json`` at the repo
root (highest ``N``), overridable with ``--baseline``.  Two checks, both
hard failures (nonzero exit) so CI's bench job goes red:

* **schema equality** — both files must carry the BENCH contract
  (top-level ``quick``/``python``/``platform``/``benchmarks``; per-entry
  ``status`` + ``wall_s`` with optional ``slopes``/``speedups``/``series``
  maps), and every benchmark that was ``ok`` in the baseline must still
  run and be ``ok``;
* **ratio tolerance on the headline series** — for every speedup label
  present in both files, the fresh value must be at least
  ``baseline / --speedup-tolerance``; for every slope label in both, the
  fresh value must sit within ``--slope-tolerance`` of the baseline.

Tolerances default loose (3x on speedups, ±1.25 on slopes) because the
fresh run usually happens on a cold shared runner while the baseline
came from a quiet box: the guard is meant to catch "the fast path
stopped firing" and "the scaling curve changed shape", not 10% timing
noise.  Absolute wall times are never compared — they are
machine-relative; the speedup ratios are not (both sides of each ratio
ran on the same machine).

One asymmetry is handled explicitly: a ``--quick`` fresh run halves
every size ladder, so its "at largest configuration" speedups are taken
at a much smaller size than a full baseline's and a fixed ratio would
flag every size-dependent optimization.  When the two files' ``quick``
flags differ, the speedup check therefore degrades to a floor
(``--min-speedup``, default 1.0): the optimization must still *win* at
the quick ladder's top, and the benchmark's own internal assertions
(``session.stats()`` fast-path counts, fixpoint equality) plus the
status check cover the rest.

The guard is deliberately **one-directional**: benchmarks, speedup
labels, or slope labels that exist only in the *fresh* run are new work
being introduced by the current PR and are fine — they become guarded
once a baseline that contains them is committed.  Only what the
baseline promised is held.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")

#: the BENCH_PR*.json contract (mirrors tests/workloads/test_run_all.py)
TOP_LEVEL_KEYS = {"quick", "python", "platform", "benchmarks"}
ENTRY_STATUSES = ("ok", "error", "timeout")

#: metric labels a later PR *deliberately* stopped printing, with the
#: reason — a vanished label normally means "the fast path stopped
#: firing", so retirement must be explicit and explained here.  Keyed
#: by (benchmark stem, label); matching vanishes are reported as info,
#: not regressions.
RETIRED_LABELS = {
    (
        "bench_q1_query",
        "kleene over least evaluation speedup at largest configuration",
    ): (
        "PR 10: the planner's least-mode tautology elimination drops the "
        "domain-exhausting select statically, making exact evaluation "
        "cheaper than the truth-functional pass this ratio assumed it "
        "trailed; superseded by 'least over kleene evaluation speedup "
        "at largest configuration'"
    ),
}


def latest_baseline(root: Path) -> Path:
    """The committed ``BENCH_PR<N>.json`` with the highest N."""
    candidates = []
    for path in root.glob("BENCH_PR*.json"):
        matched = BASELINE_PATTERN.match(path.name)
        if matched:
            candidates.append((int(matched.group(1)), path))
    if not candidates:
        raise SystemExit(f"no BENCH_PR*.json baseline found under {root}")
    return max(candidates)[1]


def check_schema(report: dict, label: str, problems: list) -> None:
    """The BENCH contract, field by field; violations are recorded."""
    if set(report) != TOP_LEVEL_KEYS:
        problems.append(
            f"{label}: top-level keys {sorted(report)} != {sorted(TOP_LEVEL_KEYS)}"
        )
        return
    if not isinstance(report["quick"], bool):
        problems.append(f"{label}: 'quick' is not a bool")
    for field in ("python", "platform"):
        if not isinstance(report[field], str):
            problems.append(f"{label}: {field!r} is not a string")
    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append(f"{label}: 'benchmarks' empty or not a mapping")
        return
    for name, entry in benchmarks.items():
        if not name.startswith("bench_"):
            problems.append(f"{label}: unexpected benchmark name {name!r}")
        if entry.get("status") not in ENTRY_STATUSES:
            problems.append(
                f"{label}: {name}: status {entry.get('status')!r} not in "
                f"{ENTRY_STATUSES}"
            )
        if not isinstance(entry.get("wall_s"), (int, float)):
            problems.append(f"{label}: {name}: missing numeric wall_s")
        for metrics_key in ("slopes", "speedups"):
            if metrics_key in entry:
                metrics = entry[metrics_key]
                if not metrics:
                    problems.append(f"{label}: {name}: empty {metrics_key}")
                    continue
                for metric_label, value in metrics.items():
                    if not isinstance(metric_label, str) or not isinstance(
                        value, (int, float)
                    ):
                        problems.append(
                            f"{label}: {name}: malformed {metrics_key} entry "
                            f"{metric_label!r}: {value!r}"
                        )
        if "series" in entry:
            if not entry["series"]:
                problems.append(f"{label}: {name}: empty series")
            for series_label, values in entry["series"].items():
                if (
                    not isinstance(series_label, str)
                    or not isinstance(values, list)
                    or not values
                    or not all(isinstance(v, (int, float)) for v in values)
                ):
                    problems.append(
                        f"{label}: {name}: malformed series entry "
                        f"{series_label!r}: {values!r}"
                    )


def compare(
    fresh: dict,
    baseline: dict,
    speedup_tolerance: float,
    slope_tolerance: float,
    min_speedup: float,
) -> list:
    """Regressions of the fresh run relative to the baseline.

    The iteration is over the *baseline's* benchmarks and labels only:
    entries present only in the fresh run (new benchmarks, new speedup or
    slope lines landing in the current PR) are tolerated by construction —
    they start being guarded once a baseline containing them is committed.
    """
    problems: list = []
    same_mode = fresh["quick"] == baseline["quick"]
    fresh_benchmarks = fresh["benchmarks"]
    for name, base_entry in baseline["benchmarks"].items():
        if base_entry["status"] != "ok":
            continue  # the baseline itself was broken there; nothing to hold
        fresh_entry = fresh_benchmarks.get(name)
        if fresh_entry is None:
            problems.append(f"{name}: present in baseline, missing from fresh run")
            continue
        if fresh_entry["status"] != "ok":
            problems.append(
                f"{name}: status {fresh_entry['status']!r} (baseline was ok)"
            )
            continue
        for metric_label, base_value in base_entry.get("speedups", {}).items():
            fresh_value = fresh_entry.get("speedups", {}).get(metric_label)
            floor = (
                base_value / speedup_tolerance if same_mode else min_speedup
            )
            if fresh_value is None:
                reason = RETIRED_LABELS.get((name, metric_label))
                if reason is not None:
                    print(f"[compare] retired: {name}: {metric_label!r} ({reason})")
                else:
                    problems.append(
                        f"{name}: speedup line {metric_label!r} vanished"
                    )
            elif fresh_value < floor:
                problems.append(
                    f"{name}: {metric_label!r} regressed: {fresh_value}x vs "
                    f"baseline {base_value}x (floor {floor:.2f}x)"
                )
        for metric_label, base_value in base_entry.get("slopes", {}).items():
            fresh_value = fresh_entry.get("slopes", {}).get(metric_label)
            if fresh_value is None:
                problems.append(f"{name}: slope line {metric_label!r} vanished")
            elif abs(fresh_value - base_value) > slope_tolerance:
                problems.append(
                    f"{name}: {metric_label!r} drifted: {fresh_value} vs "
                    f"baseline {base_value} (tolerance ±{slope_tolerance})"
                )
    return problems


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        default=str(REPO_ROOT / "BENCH_QUICK.json"),
        help="fresh trajectory to judge (default: BENCH_QUICK.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: the latest committed BENCH_PR*.json)",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=3.0,
        help="fresh speedup may be at most this factor below baseline",
    )
    parser.add_argument(
        "--slope-tolerance",
        type=float,
        default=1.25,
        help="fresh log-log slopes may drift at most this far from baseline",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="speedup floor used instead of the ratio tolerance when the "
        "fresh and baseline runs disagree on --quick (different ladders)",
    )
    args = parser.parse_args(argv)

    baseline_path = (
        Path(args.baseline) if args.baseline else latest_baseline(REPO_ROOT)
    )
    fresh_path = Path(args.fresh)
    print(f"[compare] baseline: {baseline_path.name}")
    print(f"[compare] fresh:    {fresh_path}")
    try:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"[compare] cannot load reports: {error}", file=sys.stderr)
        return 2

    problems: list = []
    check_schema(baseline, baseline_path.name, problems)
    check_schema(fresh, "fresh", problems)
    if not problems:
        problems = compare(
            fresh,
            baseline,
            args.speedup_tolerance,
            args.slope_tolerance,
            args.min_speedup,
        )
        extras = sorted(set(fresh["benchmarks"]) - set(baseline["benchmarks"]))
        if extras:
            print(
                "[compare] note: fresh-only benchmark(s), not yet guarded: "
                + ", ".join(extras)
            )
    if problems:
        print(f"[compare] REGRESSION ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"[compare]   - {problem}")
        return 1
    print("[compare] ok: schema matches, headline series within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
