"""A3 (durability) — the price of the write-ahead log and the payoff of
checkpoints.

Three series over the durable layer (`repro.db`):

* **logged vs unlogged op throughput** — the same insert stream through a
  bare `ChaseSession` and through a `Database` relation at each sync
  level (``none`` / ``flush`` / ``fsync``).  The WAL must cost a bounded
  constant factor, not a complexity class: both slopes are ~1.
* **recovery time vs log length** — an update-heavy op log (old-row
  updates that force level rebuilds) replayed from scratch by
  `Database.open`.  Replay re-pays the original maintenance cost, so the
  curve is superlinear in ops — the motivation for checkpoints.
* **checkpoint cadence** — the same workload with a checkpoint every k
  ops: recovery replays only the tail.  The headline speedup line
  (checkpointed vs full-log recovery at the largest configuration) is the
  captured regression-guard metric; growth with log length is the point.

Every recovered state is verified against the uninterrupted session's
fixpoint (`canonical_form` equality plus the recovered session's own
result-vs-from-scratch-chase invariant); a divergence aborts the run.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.bench.report import (
    Table,
    bench_repeat,
    bench_sizes,
    geometric_sizes,
    loglog_slope,
)
from repro.chase import ChaseSession, canonical_form
from repro.core.fd import FDSet
from repro.core.values import null
from repro.db import Database
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
    random_schema,
)

import random

FDS = FDSet(["A1 -> A2", "A2 -> A3", "A1 -> A4"])
ATTRS = ("A1", "A2", "A3", "A4")


def insert_stream(n_rows: int, seed: int = 83):
    rng = random.Random(seed)
    schema = random_schema(4)
    base = random_satisfiable_instance(
        rng, schema, list(FDS), n_rows, pool_size=max(8, n_rows // 6)
    )
    return schema, inject_nulls(rng, base, density=0.25)


def run_unlogged(schema, stream) -> ChaseSession:
    session = ChaseSession(schema, FDS)
    for row in stream.rows:
        session.insert(row)
    return session


def run_logged(schema, stream, sync: str) -> ChaseSession:
    root = Path(tempfile.mkdtemp(prefix="bench_a3_"))
    try:
        with Database.open(root / "db", sync=sync) as database:
            relation = database.create("r", schema, FDS)
            for row in stream.rows:
                relation.insert(row)
            return relation.session
    finally:
        shutil.rmtree(root, ignore_errors=True)


def time_best(fn, repeat: int):
    best = None
    result = None
    for _ in range(bench_repeat(repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def throughput_series(sizes) -> None:
    table = Table(
        "A3a — logged vs unlogged insert throughput",
        ["inserts", "unlogged (s)", "wal none (s)", "wal flush (s)",
         "wal fsync (s)", "flush overhead", "same fixpoint"],
    )
    unlogged_times, flush_times = [], []
    for n in sizes:
        schema, stream = insert_stream(n)
        bare_time, bare = time_best(lambda: run_unlogged(schema, stream), 3)
        none_time, _ = time_best(lambda: run_logged(schema, stream, "none"), 3)
        flush_time, logged = time_best(
            lambda: run_logged(schema, stream, "flush"), 3
        )
        fsync_time, _ = time_best(lambda: run_logged(schema, stream, "fsync"), 1)
        same = canonical_form(bare.result().relation) == canonical_form(
            logged.result().relation
        )
        if not same:
            raise SystemExit(f"logged/unlogged fixpoints diverged at n={n}")
        unlogged_times.append(bare_time)
        flush_times.append(flush_time)
        table.add_row(
            n, bare_time, none_time, flush_time, fsync_time,
            f"{flush_time / bare_time:.2f}x", same,
        )
    table.show()
    print(
        f"\nunlogged insert-stream log-log slope:    "
        f"{loglog_slope(sizes, unlogged_times):.2f}  (expected ~1)"
    )
    print(
        f"wal-flush insert-stream log-log slope:   "
        f"{loglog_slope(sizes, flush_times):.2f}  (expected ~1: a constant "
        "factor, not a complexity class)"
    )


# ---------------------------------------------------------------------------
# recovery: log length and checkpoint cadence
# ---------------------------------------------------------------------------


def build_update_heavy(root: Path, n_rows: int, checkpoint_every: int = 0):
    """``n_rows`` settled inserts, then ``n_rows // 2`` old-row updates that
    each introduce a fresh null (null-bearing replacements of old rows are
    neither retirable nor rewind-payable: every one level-rebuilds, so
    replaying this log re-pays quadratic maintenance)."""
    rng = random.Random(97)
    database = Database.open(root, sync="none")
    relation = database.create("r", "A1 A2 A3 A4", FDS)
    since = 0

    def maybe_checkpoint():
        nonlocal since
        since += 1
        if checkpoint_every and since >= checkpoint_every:
            database.checkpoint()
            since = 0

    for i in range(n_rows):
        relation.insert((f"k{i}", f"m{i}", f"n{i}", f"p{i}"))
        maybe_checkpoint()
    for _ in range(n_rows // 2):
        victim = rng.randrange(max(1, n_rows // 2))
        relation.update(victim, {"A2": null()})
        maybe_checkpoint()
    reference = canonical_form(relation.result().relation)
    database.close()
    return reference


def time_recovery(root: Path, reference) -> float:
    best = None
    for _ in range(bench_repeat(3)):
        start = time.perf_counter()
        database = Database.open(root, sync="none")
        elapsed = time.perf_counter() - start
        relation = database["r"]
        if canonical_form(relation.result().relation) != reference:
            raise SystemExit(f"recovered fixpoint diverged under {root}")
        if not relation.verify():
            raise SystemExit(f"recovered session invariant failed under {root}")
        database.close()
        best = elapsed if best is None else min(best, elapsed)
    return best


def recovery_series(sizes) -> None:
    table = Table(
        "A3b — recovery time vs log length vs checkpoint cadence",
        ["rows", "ops", "full-log replay (s)", "ckpt n/4 (s)",
         "ckpt every op (s)", "speedup (full vs every-op)"],
    )
    full_times, checkpointed_times = [], []
    scratch = Path(tempfile.mkdtemp(prefix="bench_a3_rec_"))
    try:
        for n in sizes:
            ops = n + n // 2
            cases = {}
            for label, cadence in (
                ("full", 0), ("quarter", max(1, ops // 4)), ("every", 1)
            ):
                root = scratch / f"{label}{n}"
                reference = build_update_heavy(root, n, checkpoint_every=cadence)
                cases[label] = time_recovery(root, reference)
            full_times.append(cases["full"])
            checkpointed_times.append(cases["every"])
            table.add_row(
                n, ops, cases["full"], cases["quarter"], cases["every"],
                f"{cases['full'] / cases['every']:.1f}x",
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    table.show()
    print(
        f"\nfull-log recovery log-log slope:        "
        f"{loglog_slope(sizes, full_times):.2f}  (expected ~2: replay "
        "re-pays the maintenance)"
    )
    print(
        f"checkpointed recovery log-log slope:    "
        f"{loglog_slope(sizes, checkpointed_times):.2f}  (expected ~1)"
    )
    print(
        f"checkpoint recovery speedup at largest configuration: "
        f"{full_times[-1] / checkpointed_times[-1]:.1f}x"
    )


def main() -> None:
    throughput_series(bench_sizes(geometric_sizes(50, 2.0, 5)))
    recovery_series(bench_sizes(geometric_sizes(24, 2.0, 5)))
    print(
        "\nEvery recovered state matched the uninterrupted fixpoint; only"
        "\nthe recovery cost differs."
    )


def bench_logged_stream_200(benchmark) -> None:
    schema, stream = insert_stream(200)
    benchmark(lambda: run_logged(schema, stream, "flush"))


if __name__ == "__main__":
    main()
