"""Run every experiment benchmark and record a machine-readable trajectory.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_all.py --quick
    PYTHONPATH=src python benchmarks/run_all.py --only e5 e3 --out BENCH.json

Each ``bench_e*.py`` (and, with ``--ablations``, each ``bench_a*.py``) is
executed as a subprocess; ``--quick`` sets the ``REPRO_BENCH_QUICK``
environment switch that :mod:`repro.bench.report` helpers honor (halved
size ladders, single-repetition timing), so the whole suite doubles as a
fast perf smoke test.  Results land in a JSON file::

    {
      "quick": true,
      "python": "3.11.7",
      "benchmarks": {
        "bench_e5_chase_scaling": {
          "status": "ok",
          "wall_s": 1.93,
          "slopes": {"sweep log-log slope in p": 1.9, ...},
          "speedups": {"indexed speedup at largest configuration": 7.6},
          "series": {"parallel(2) wall ms by size": [1.2, 2.6, 5.1]}
        },
        ...
      }
    }

Per-benchmark wall times plus every printed log-log slope, "...x"
speedup line, and ``series <label>: v1 v2 ...`` per-size series are
captured, giving later PRs a perf trajectory to compare against
(committed baselines: ``BENCH_PR1.json`` … ``BENCH_PR10.json`` — the
latest adds bench_q1's Q1c planner series: the optimizer's bucket
equi-join vs the naive nested loop over a size ladder, field-identity
asserted in-bench).
The JSON schema — top-level ``quick`` / ``python`` / ``platform`` /
``benchmarks``, per-benchmark ``status`` + ``wall_s`` with optional
``slopes`` / ``speedups`` / ``series`` — is guarded by
``tests/workloads/test_run_all.py``, and ``benchmarks/compare.py`` diffs
a fresh ``--quick`` run against the latest committed baseline (CI's
bench-regression guard).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: printed lines like "sweep log-log slope in p:      1.90  (expected ~2)"
SLOPE_LINE = re.compile(r"^(?P<label>[^:]*slope[^:]*):\s*(?P<value>-?\d+(?:\.\d+)?)")
#: printed lines like "indexed speedup at largest configuration: 7.6x ..."
SPEEDUP_LINE = re.compile(
    r"^(?P<label>[^:]*speedup[^:]*):\s*(?P<value>-?\d+(?:\.\d+)?)x"
)
#: printed lines like "series parallel(2) wall ms by size: 1.2 2.6 5.1"
SERIES_LINE = re.compile(
    r"^series\s+(?P<label>[^:]+):\s*"
    r"(?P<values>-?\d+(?:\.\d+)?(?:\s+-?\d+(?:\.\d+)?)*)\s*$"
)


def discover(only: list[str], ablations: bool) -> list[Path]:
    # bench_a2 graduated from optional ablation to default: its mixed
    # insert/delete/update series is the maintained-session perf baseline
    # (BENCH_PR3.json) and runs in --quick too.  bench_a3 (durability:
    # WAL overhead + recovery-vs-checkpoint-cadence) joined it in PR 5,
    # bench_s1 (serving: group commit + snapshot readers) in PR 7, and
    # bench_q1 (querying: certain/maybe evaluation + query readers) in
    # PR 9.
    patterns = [
        "bench_e*.py", "bench_a2*.py", "bench_a3*.py", "bench_s*.py",
        "bench_q*.py",
    ] + (
        ["bench_a*.py"] if ablations else []
    )
    scripts: list[Path] = []
    seen: set[Path] = set()
    for pattern in patterns:
        for script in sorted(BENCH_DIR.glob(pattern)):
            if script not in seen:
                seen.add(script)
                scripts.append(script)
    if only:
        wanted = [token.lower() for token in only]
        scripts = [
            s for s in scripts if any(token in s.stem.lower() for token in wanted)
        ]
    return scripts


def parse_metrics(stdout: str) -> tuple[dict, dict, dict]:
    slopes: dict = {}
    speedups: dict = {}
    series: dict = {}
    for line in stdout.splitlines():
        line = line.strip()
        matched = SERIES_LINE.match(line)
        if matched:
            series[" ".join(matched["label"].split())] = [
                float(token) for token in matched["values"].split()
            ]
            continue
        matched = SLOPE_LINE.match(line)
        if matched:
            slopes[" ".join(matched["label"].split())] = float(matched["value"])
            continue
        matched = SPEEDUP_LINE.match(line)
        if matched:
            speedups[" ".join(matched["label"].split())] = float(matched["value"])
    return slopes, speedups, series


def run_one(script: Path, quick: bool, timeout: float) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    else:
        env.pop("REPRO_BENCH_QUICK", None)
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=timeout,
            cwd=str(REPO_ROOT),
        )
    except subprocess.TimeoutExpired:
        return {"status": "timeout", "wall_s": round(time.perf_counter() - start, 3)}
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        return {
            "status": "error",
            "wall_s": round(wall, 3),
            "returncode": proc.returncode,
            "stderr_tail": proc.stderr.strip().splitlines()[-5:],
        }
    slopes, speedups, series = parse_metrics(proc.stdout)
    entry: dict = {"status": "ok", "wall_s": round(wall, 3)}
    if slopes:
        entry["slopes"] = slopes
    if speedups:
        entry["speedups"] = speedups
    if series:
        entry["series"] = series
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="set REPRO_BENCH_QUICK=1: halved ladders, single repetitions",
    )
    parser.add_argument(
        "--ablations", action="store_true", help="include bench_a*.py scripts"
    )
    parser.add_argument(
        "--only", nargs="*", default=[],
        help="substring filters on script names (e.g. --only e5 e3)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, help="per-benchmark timeout (s)"
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_PR10.json at the repo root "
        "for full runs, BENCH_QUICK.json for --quick runs, so a smoke pass "
        "never overwrites the committed full baseline)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = str(
            REPO_ROOT / ("BENCH_QUICK.json" if args.quick else "BENCH_PR10.json")
        )

    scripts = discover(args.only, args.ablations)
    if not scripts:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    report: dict = {
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {},
    }
    failures = 0
    for script in scripts:
        print(f"[run_all] {script.name} ...", flush=True)
        entry = run_one(script, args.quick, args.timeout)
        report["benchmarks"][script.stem] = entry
        status = entry["status"]
        if status != "ok":
            failures += 1
        print(f"[run_all]   {status} in {entry['wall_s']}s", flush=True)

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[run_all] wrote {out} ({len(scripts)} benchmarks, {failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
