#!/usr/bin/env python3
"""The paper's running example: the employee relation of Figure 1.

R(E#, SL, D#, CT) with the semantic rules "employees have only one salary
and work in only one department" (E# -> SL,D#) and "a department has one
contract type" (D# -> CT).  The example walks through:

* the null-free instance (Figure 1.2) and classical satisfaction;
* the instance with nulls (Figure 1.3): per-tuple three-valued values,
  strong vs weak satisfaction;
* what the database may *infer* about the nulls (NS-rules), and what it
  must not (X-side substitutions);
* an update scenario: which insertions stay weakly consistent.

Run:  python examples/employee_database.py
"""

from repro import (
    FDSet,
    Relation,
    check_fds,
    evaluate_fd,
    fd_value_profile,
    holds_classical,
    minimally_incomplete,
    null,
    weakly_satisfiable,
)
from repro.chase import x_side_substitutions
from repro.core.satisfaction import satisfaction_summary
from repro.workloads.paper import (
    figure_1_2_instance,
    figure_1_3_instance,
    figure_1_scheme,
)


def classical_world() -> None:
    print("=" * 64)
    print("Figure 1.2 — the null-free instance")
    print("=" * 64)
    schema, fds = figure_1_scheme()
    r = figure_1_2_instance()
    print(r.to_text(), "\n")
    for fd in fds:
        print(f"{fd!r} holds classically: {holds_classical(fd, r)}")


def null_world() -> Relation:
    print()
    print("=" * 64)
    print("Figure 1.3 — the instance with nulls")
    print("=" * 64)
    schema, fds = figure_1_scheme()
    r = figure_1_3_instance()
    print(r.to_text(), "\n")
    for fd in fds:
        profile = fd_value_profile(fd, r)
        rendered = ", ".join(
            f"t{i + 1}={value}" for i, value in enumerate(profile)
        )
        print(f"{fd!r}: {rendered}")
    summary = satisfaction_summary(fds, r)
    print(f"\nstrongly satisfied: {summary['strongly_satisfied']}")
    print(f"weakly satisfied:   {summary['weakly_satisfied']}")
    print("\nUnknown salary / contract types do not *contradict* the rules:")
    print("the instance is weakly but not strongly consistent.")
    return r


def inference_about_nulls() -> None:
    print()
    print("=" * 64)
    print("What the database may infer (NS-rules)")
    print("=" * 64)
    schema, fds = figure_1_scheme()
    # employee 104 joins department d1, contract unknown; 105 joins an
    # unknown department with the same manager-entered salary
    r = Relation(
        schema,
        [
            (101, 50, "d1", "permanent"),
            (104, 45, "d1", null()),
            (105, 45, "d2", null()),
        ],
    )
    print(r.to_text(), "\n")
    result = minimally_incomplete(r, fds)
    print("after the chase:")
    print(result.relation.to_text(), "\n")
    for original, value in result.substitutions.items():
        print(f"  inferred: {original!r} := {value!r}")
    print(
        "\n104's contract type is forced to 'permanent' (same department as"
        "\n101); 105's stays unknown — d2's contract type is not recorded."
    )
    print(
        "This is the paper's point: the substitution 'is the only piece of"
        "\ninformation that makes the dependency true' — never a guess."
    )


def x_side_caution() -> None:
    print()
    print("=" * 64)
    print("X-side nulls: reported, never applied (section 4)")
    print("=" * 64)
    schema, fds = figure_1_scheme()
    # an employee record whose department is unknown, but whose contract
    # type matches exactly one department
    r = Relation(
        schema,
        [
            (201, 70, "d1", "permanent"),
            (202, 80, "d2", "temporary"),
            (203, 90, null(), "permanent"),
        ],
    )
    print(r.to_text(), "\n")
    from repro.core.domain import Domain
    from repro.core.schema import RelationSchema

    bounded = RelationSchema(
        "R", "E# SL D# CT", domains={"D#": Domain(["d1", "d2"], name="D#")}
    )
    rebound = Relation(bounded, [tuple(row.values) for row in r.rows])
    forced = x_side_substitutions(rebound, "D# -> CT")
    for sub in forced:
        print(
            f"  row {sub.row_index}: {sub.attribute} := {sub.value!r} "
            f"({sub.condition})"
        )
    print(
        "\nWith dom(D#) = {d1, d2} the null department *must* be d1 — but"
        "\nthe condition is domain-dependent, so the chase only reports it"
        "\n(the paper: 'it may be better to leave the database incomplete')."
    )


def update_scenario() -> None:
    print()
    print("=" * 64)
    print("Insertions under weak consistency")
    print("=" * 64)
    schema, fds = figure_1_scheme()
    base = figure_1_3_instance()
    candidates = [
        ("a new employee in a new department", (104, 55, "d3", null())),
        ("a contract disagreeing with d1's", (105, 70, "d1", "temporary")),
        # 101's salary is null, so a concrete salary GROUNDS the unknown
        ("employee 101 with a concrete salary", (101, 99, "d1", "permanent")),
        # 103's salary is known (50), so a different one contradicts
        ("employee 103 with a second salary", (103, 99, "d2", "temporary")),
    ]
    for description, values in candidates:
        attempt = base.with_rows([values])
        ok = weakly_satisfiable(attempt, fds)
        verdict = "ACCEPT" if ok else "REJECT"
        print(f"  {verdict}: {description}")
    print(
        "\nWeak satisfiability is the paper's proposed admission test: keep"
        "\nevery state that is not *certainly* inconsistent."
    )


def main() -> None:
    classical_world()
    null_world()
    inference_about_nulls()
    x_side_caution()
    update_scenario()


if __name__ == "__main__":
    main()
