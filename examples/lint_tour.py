"""Static analysis tour: lint op scripts before a single op runs.

``repro lint`` (backed by :mod:`repro.analysis`) interprets a session
script over an *abstract* instance — constants and null-sharing tracked
exactly, no engine, no side effects — and reports **every** wrong op in
one pass, where execution would abort at the first:

* structural errors: unknown ops and attributes, wrong arity, indexes
  that are provably out of bounds *at that point in the script*;
* semantic errors: filling a cell that provably holds a constant,
  rolling back without a snapshot, ``check`` on a provably poisoned
  instance;
* admissibility warnings by the paper's own oracle: an op whose
  post-state chase derives NOTHING is provably inadmissible (Theorem
  4(b) — the chase verdict *is* the weak-satisfiability verdict), and
  the message names the FD forcing the conflict.

The same pass guards the server: a mutation batch with any lint error is
refused before it consumes a group-commit slot or a WAL byte.  And the
flip side of static checking is dynamic checking: ``REPRO_SANITIZE=1``
(or ``ChaseSession(..., sanitize=True)``) arms an invariant sanitizer
that audits the engine's internal mirrors (occurrence index, signature
buckets, union-find weights, null registry, WAL seq contiguity) after
every public mutation.
"""

from repro.analysis import has_errors, lint_script, render_report
from repro.chase.session import ChaseSession
from repro.cli import _SessionTarget, run_script
from repro.core.schema import RelationSchema

SCHEMA = RelationSchema("emp", "name dept mgr")
FDS = ["dept -> mgr"]

# -- a script with one of everything wrong ---------------------------------

BROKEN = [
    "insert ada, eng",                 # arity: 2 cells for 3 attributes
    "insert ada, eng, -",              # fine: mgr unknown (a fresh null)
    "insert bob, eng, turing",         # fine: shares ada's dept
    "fill 0 mgr knuth",                # inadmissible: dept -> mgr links the
    #                                    two mgr cells, knuth != turing
    "update 9 dept=ops",               # index 9 does not exist here
    "update 1 salary=120",             # unknown attribute
    "fill 1 dept web",                 # dept provably holds a constant
    "rollback",                        # no snapshot outstanding
]

diagnostics = lint_script(SCHEMA, FDS, BROKEN)
print(f"one pass over {len(BROKEN)} lines: {len(diagnostics)} finding(s)")
print(render_report(diagnostics))
errors = sum(1 for d in diagnostics if d.severity == "error")
print(f"errors: {errors}, warnings: {len(diagnostics) - errors}")

# -- the guarantee: a lint-clean script executes without raising -----------

CLEAN = [
    "insert -, eng, -",
    "insert bob, eng, turing",         # same dept: the chase grounds row 0's
    "fill 0 name ada",                 # mgr to turing; name stays fillable
    "snapshot",
    "delete 0",
    "rollback",
    "check weak",
]
clean_diagnostics = lint_script(SCHEMA, FDS, CLEAN)
print(f"\nclean script: {len(clean_diagnostics)} finding(s) "
      f"(errors: {has_errors(clean_diagnostics)})")

session = ChaseSession(SCHEMA, FDS, sanitize=True)  # sanitizer armed
run_script(_SessionTarget(session), CLEAN)
print("lint-clean script executed without raising: True")

# -- check on a provably poisoned state is a static error ------------------

POISONED = [
    "insert ada, eng, knuth",
    "insert bob, eng, turing",         # same dept, different mgr constants
    "check weak",                      # TEST-FDs on NOTHING: refused here
]
findings = lint_script(SCHEMA, FDS, POISONED)
print(f"\npoisoned script: {len(findings)} finding(s)")
for finding in findings:
    print(f"  line {finding.line}: {finding.code} ({finding.severity})")
