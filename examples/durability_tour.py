"""Durability tour: open → mutate → crash → recover → verify.

The chase fixpoint outlives the process.  ``repro.Database`` journals
every op to a write-ahead log *before* applying it, so any crash — a
dropped handle, a torn mid-append write, even ``SIGKILL`` — recovers to
the last completed op by replaying the log over the last checkpoint.

Two crashes are staged here:

1. an **in-process crash**: the database object is abandoned without
   ``close()`` and a half-written record is torn onto the log, exactly
   the bytes a power cut mid-append leaves; the reopened database must
   match an uninterrupted in-memory reference session;
2. a **forced kill**: a child process streams scripted ops and
   ``SIGKILL``\\ s itself mid-stream (no cleanup, no ``atexit``); the
   parent recovers the directory and verifies the surviving prefix.
   This mode backs the CI crash-injection smoke step.

Run with ``--kill-after N`` to choose where the child dies.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import ChaseSession, Database
from repro.chase import canonical_form, chase
from repro.core.values import null
from repro.db.storage import WAL_NAME

FDS = ["zip -> city"]
ATTRS = "name zip city"


# ---------------------------------------------------------------------------
# a deterministic scripted op stream (both processes replay the same one)
# ---------------------------------------------------------------------------


def scripted_ops(count=24):
    """Mutations only — each op journals exactly one record, so the
    recovered ``seq`` tells the parent how many ops survived the kill."""
    ops = []
    for i in range(count):
        if i % 7 == 5:
            ops.append(("delete", 0))
        elif i % 5 == 3:
            ops.append(("update", i % 3, {"name": f"patched{i}"}))
        else:
            city = "-" if i % 4 == 2 else f"city{i % 6}"
            ops.append(("insert", (f"user{i}", f"{10000 + i % 6}", city)))
    return ops


def apply_op(target, op):
    kind = op[0]
    if kind == "insert":
        values = [null() if cell == "-" else cell for cell in op[1]]
        target.insert(values)
    elif kind == "delete":
        if len(target):
            target.delete(op[1] % len(target))
    else:
        if len(target):
            target.update(op[1] % len(target), op[2])


# ---------------------------------------------------------------------------
# child mode: stream ops, then die without warning
# ---------------------------------------------------------------------------


def writer_main(root: str, kill_after: int) -> None:
    database = Database.open(root, sync="fsync")
    relation = database.create("people", ATTRS, FDS)
    for op in scripted_ops()[:kill_after]:
        apply_op(relation, op)
    # tear a half-written record onto the log, then die mid-instruction:
    # the next op "started journalling" when the power went out
    with open(Path(root) / "relations" / "people" / WAL_NAME, "a") as handle:
        handle.write('{"seq":9999,"op":"ins')
        handle.flush()
    os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


# ---------------------------------------------------------------------------
# the tour
# ---------------------------------------------------------------------------


def part_one(base: Path) -> None:
    print("== part 1: op log, checkpoint, torn-write recovery ==")
    root = base / "tour"
    database = Database.open(root, sync="fsync")
    people = database.create("people", ATTRS, FDS)

    shared = null()  # one unknown, soon occupying two cells
    people.insert(("Ada", "10001", "New York"))
    people.insert(("Bob", "10001", null()))   # grounded by zip -> city
    people.insert(("Cid", "60601", shared))
    people.insert(("Dan", "60601", shared))
    print("\nmaintained instance (Bob grounded, Cid/Dan share one unknown):")
    print(people.result().relation.to_text())

    absorbed = database.checkpoint()["people"]
    print(f"\ncheckpoint: {absorbed} op(s) absorbed; log truncated")

    people.update(0, {"name": "Ada L."})
    people.fill(2, "city", "Chicago")        # grounds the *shared* null
    reference = ChaseSession(people.raw_relation().schema, FDS,
                             rows=people.rows)

    # crash: abandon the handles and tear a half-written record onto the log
    with open(root / "relations" / "people" / WAL_NAME, "a") as handle:
        handle.write('{"seq":9999,"op":"upd')

    recovered = Database.open(root, sync="fsync")["people"]
    info = recovered.recovery_info
    print(
        f"\nreopened: {info['rows']} row(s) = checkpoint seq "
        f"{info['checkpoint_seq']} + {info['replayed']} replayed op(s); "
        f"torn tail dropped: {info['torn_tail_dropped']}"
    )
    print(recovered.result().relation.to_text())
    same = canonical_form(recovered.result().relation) == canonical_form(
        reference.result().relation
    )
    print(f"\nrecovered fixpoint verified: {same and recovered.verify()}")


def part_two(base: Path, kill_after: int) -> None:
    print(f"\n== part 2: SIGKILL injection after {kill_after} op(s) ==")
    root = base / "killed"
    child = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--writer", str(root), "--kill-after", str(kill_after)],
        capture_output=True,
        text=True,
    )
    print(f"child exited with {child.returncode} (killed, no cleanup ran)")

    recovered = Database.open(root, sync="fsync")["people"]
    survived = recovered.stats()["seq"]
    print(
        f"recovered {recovered.recovery_info['rows']} row(s) from "
        f"{survived} journalled op(s); torn tail dropped: "
        f"{recovered.recovery_info['torn_tail_dropped']}"
    )

    reference = ChaseSession(recovered.raw_relation().schema, FDS)
    for op in scripted_ops()[:survived]:
        apply_op(reference, op)
    same = canonical_form(recovered.result().relation) == canonical_form(
        reference.result().relation
    )
    fixpoint = recovered.verify()
    print(
        f"crash-injected recovery verified: {same and fixpoint} "
        f"({survived} op(s) survived the kill, the torn one did not apply)"
    )
    if not (same and fixpoint and survived == kill_after):
        raise SystemExit("crash-injection verification FAILED")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kill-after", type=int, default=13,
                        help="ops the child applies before SIGKILLing itself")
    parser.add_argument("--writer", help=argparse.SUPPRESS)
    # parse_known_args: the test suite drives this file through runpy with
    # pytest's own argv still in place
    args, _ = parser.parse_known_args()
    if args.writer:
        writer_main(args.writer, args.kill_after)
        return
    with tempfile.TemporaryDirectory(prefix="repro_tour_") as tmp:
        part_one(Path(tmp))
        part_two(Path(tmp), args.kill_after)


if __name__ == "__main__":
    main()
