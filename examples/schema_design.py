#!/usr/bin/env python3
"""Schema design with incomplete information (sections 5 and 7).

Theorem 1 is the paper's licence: Armstrong's rules stay sound and complete
over nulls (strong satisfiability), so closure, keys, covers, BCNF/3NF and
lossless-join machinery apply unchanged.  Section 7 then proposes the
*weakened universal relation assumption*: store components, re-pad with
nulls, and require only weak satisfiability of the universal instance.

This example designs a small order-management schema end to end and
round-trips an incomplete universal instance through the design.

Run:  python examples/schema_design.py
"""

from repro import FDSet, Relation, RelationSchema
from repro.armstrong import (
    attribute_closure,
    candidate_keys,
    derive_fd,
    minimal_cover,
)
from repro.normalization import (
    bcnf_decompose,
    is_3nf,
    is_bcnf,
    is_dependency_preserving,
    is_lossless_join,
    project_fds,
    synthesize_3nf,
    universal_instance,
    weak_universal_check,
)

UNIVERSE = "order cust cname item qty price whouse"
RULES = FDSet(
    [
        "order -> cust item qty",
        "cust -> cname",
        "item -> price whouse",
    ]
)


def analyze() -> None:
    print("=" * 64)
    print("Dependency analysis")
    print("=" * 64)
    print(f"universe: {UNIVERSE}")
    print(f"rules:    {RULES!r}\n")
    closure = attribute_closure("order", RULES)
    print(f"closure(order) = {sorted(closure)}")
    keys = candidate_keys(UNIVERSE, RULES)
    print(f"candidate keys: {keys}")
    cover = minimal_cover(RULES)
    print(f"minimal cover:  {cover!r}")
    derivation = derive_fd(RULES, "order -> cname")
    print("\na derivation of order -> cname (statement system of section 5):")
    print(derivation.render())


def decompose() -> list:
    print()
    print("=" * 64)
    print("BCNF decomposition and 3NF synthesis")
    print("=" * 64)
    print(f"universal scheme in BCNF? {is_bcnf(UNIVERSE, RULES)}")
    components = bcnf_decompose(UNIVERSE, RULES)
    print("\nBCNF components:")
    for attrs, local in components:
        print(f"  {attrs}: {local!r}")
    schemes = [attrs for attrs, _ in components]
    print(f"\nlossless join: {is_lossless_join(UNIVERSE, schemes, RULES)}")
    print(
        "dependency preserving: "
        f"{is_dependency_preserving(UNIVERSE, schemes, RULES)}"
    )
    synthesized = synthesize_3nf(UNIVERSE, RULES)
    print(f"\n3NF synthesis: {synthesized}")
    for component in synthesized:
        local = project_fds(RULES, component)
        print(f"  {component}: 3NF={is_3nf(component, local)}")
    return schemes


def weak_universal(schemes: list) -> None:
    print()
    print("=" * 64)
    print("The weakened universal relation assumption (section 7)")
    print("=" * 64)
    universal_schema = RelationSchema("U", UNIVERSE)

    orders = Relation(
        RelationSchema("orders", "order cust item qty"),
        [(1, "c1", "nails", 10), (2, "c2", "screws", 5)],
    )
    customers = Relation(
        RelationSchema("customers", "cust cname"),
        [("c1", "Ada"), ("c2", "Bob")],
    )
    items = Relation(
        RelationSchema("items", "item price whouse"),
        [("nails", 3, "east")],  # note: no record for 'screws' yet
    )

    padded = universal_instance(universal_schema, [orders, customers, items])
    print("universal instance, gaps padded with nulls:")
    print(padded.to_text(), "\n")
    ok, _ = weak_universal_check(
        universal_schema, [orders, customers, items], RULES
    )
    print(f"weakly satisfies the rules: {ok}")
    print(
        "\nNo row is fully filled, yet the state is coherent: this is the"
        "\npaper's 'more realistic instances may now be perceived; the ones"
        "\nwhere nulls are allowed'."
    )

    # now poison it: two different prices for the same item
    items_bad = Relation(
        RelationSchema("items", "item price whouse"),
        [("nails", 3, "east"), ("nails", 4, "west")],
    )
    ok_bad, _ = weak_universal_check(
        universal_schema, [orders, customers, items_bad], RULES
    )
    print(f"\nwith conflicting item records: weakly satisfies = {ok_bad}")


def main() -> None:
    analyze()
    schemes = decompose()
    weak_universal(schemes)


if __name__ == "__main__":
    main()
