"""Tour of the FD-aware query planner: EXPLAIN, rewrites, plan lint.

Walks the PR 10 surface end to end:

1. ``EXPLAIN``: the optimizer's plan rendered with inferred keys (from
   the relations' FDs), join strategies, and the rewrites it applied;
2. proved-equivalent rewrites — a contradictory select collapses to an
   ``Empty`` node statically, a select over a join is pushed below the
   join — with the optimized answer pinned field-identical (nulls by
   identity) to brute-force unoptimized evaluation;
3. the plan linter: one three-line script triggers ``W_CROSS_PRODUCT``,
   ``E_EMPTY_CERTAIN``, and ``W_GROUND_BLOWUP``, each on its own line;
4. the server: ``explain: true`` answers lease-free, and a statically
   dead query is refused by lint *before any lease is taken*.

Run: ``PYTHONPATH=src python examples/optimize_tour.py``
"""

import asyncio
import shutil
import tempfile
from pathlib import Path

from repro import Domain, FDSet, Relation, RelationSchema, null
from repro.analysis import lint_query_script
from repro.query import Evaluator, collect_stats, parse_query
from repro.server import ReproServer


def banner(text):
    print(f"\n=== {text} ===")


# ---------------------------------------------------------------------------
# a small incomplete environment with declared FDs
# ---------------------------------------------------------------------------

dept_domain = Domain(["sales", "eng"], name="dept")
emp_schema = RelationSchema("emp", "name dept", domains={"dept": dept_domain})
mgr_schema = RelationSchema("mgr", "dept boss", domains={"dept": dept_domain})
emp = Relation(emp_schema, [["ann", "sales"], ["bob", null()]])
mgr = Relation(mgr_schema, [["sales", "dana"], ["eng", "eve"]])
env = {"emp": emp, "mgr": mgr}
fds = {
    "emp": tuple(FDSet.parse("name -> dept")),
    "mgr": tuple(FDSet.parse("dept -> boss")),
}

# ---------------------------------------------------------------------------
# 1. EXPLAIN: inferred keys, join strategy, applied rewrites
# ---------------------------------------------------------------------------

banner("EXPLAIN: keys inferred from FDs, equi-join routed through buckets")

evaluator = Evaluator(env, fds=fds)
plan_text = evaluator.explain(parse_query("(emp join mgr) where boss = 'dana'"))
print(plan_text)
assert "strategy=bucket(dept)" in plan_text  # equi-join, not nested loop
assert "keys=(name)" in plan_text            # name -> dept makes name a key
assert "select-pushdown(join)" in plan_text  # boss filter moved below join

# ---------------------------------------------------------------------------
# 2. rewrites are proved-equivalent: optimized == unoptimized, field by field
# ---------------------------------------------------------------------------

banner("a contradiction is eliminated statically, answers stay identical")

dead = parse_query("emp where dept = 'sales' and dept != 'sales'")
print(evaluator.explain(dead))
assert "Empty" in evaluator.explain(dead)

for text in ("(emp join mgr) where boss = 'dana'", "emp where dept = 'eng'"):
    node = parse_query(text)
    optimized = Evaluator(env, fds=fds).run(node)
    naive = Evaluator(env, optimize=False, hash_joins=False).run(node)
    for side in ("certain", "maybe"):
        fast = [tuple(map(str, r)) for r in getattr(optimized, side).rows]
        slow = [tuple(map(str, r)) for r in getattr(naive, side).rows]
        assert sorted(fast) == sorted(slow), (text, side)
print("optimized answers are field-identical to naive evaluation: True")

# ---------------------------------------------------------------------------
# 3. the plan linter: every code fires on its own line, statically
# ---------------------------------------------------------------------------

banner("plan lint: a three-line script, three findings with line numbers")

wide_schema = RelationSchema("t", "A", domains={"A": Domain(["a", "b"], name="A")})
wide = Relation(wide_schema, [[null()] for _ in range(20)])
env["t"] = wide

script = (
    "emp join t",                                 # no shared attributes
    "emp where name = 'zz' and name != 'zz'",     # unsatisfiable
    "emp[dept] rename dept -> A minus t",         # 2^20 groundings
)
catalog = {name: r.schema for name, r in env.items()}
findings = lint_query_script(catalog, script, stats=collect_stats(env))
for d in findings:
    print(f"  line {d.line}: {d.code} ({d.severity})")
assert [(d.line, d.code) for d in findings] == [
    (1, "W_CROSS_PRODUCT"),
    (2, "E_EMPTY_CERTAIN"),
    (3, "W_GROUND_BLOWUP"),
]
print(f"findings: {len(findings)}, nothing was evaluated")

# ---------------------------------------------------------------------------
# 4. the server lints (and explains) before any lease
# ---------------------------------------------------------------------------

banner("server: explain is lease-free, dead queries refused pre-lease")


async def serve(root: Path):
    server = ReproServer(root / "db", sync="none", create=True)
    await server.start()
    await server.handle({"do": "create", "name": "emp", "attrs": "name dept"})
    await server.handle(
        {"id": 1, "do": "insert", "rel": "emp", "row": ["ann", "sales"]}
    )
    explained = await server.handle(
        {"id": 2, "do": "query", "q": "emp[name]", "explain": True}
    )
    refused = await server.handle(
        {"id": 3, "do": "query", "q": "emp where name = 'x' and name != 'x'"}
    )
    await server.stop()
    return explained, refused


root = Path(tempfile.mkdtemp(prefix="optimize_tour_"))
try:
    explained, refused = asyncio.run(serve(root))
finally:
    shutil.rmtree(root, ignore_errors=True)

assert explained["ok"] and "Project" in explained["plan"]
print("explain reply carries a plan, no lease: True")
assert refused["ok"] is False and "refused by lint" in refused["error"]
assert refused["diagnostics"][0]["code"] == "E_EMPTY_CERTAIN"
print("statically dead query refused before any lease: True")
