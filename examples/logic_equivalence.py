#!/usr/bin/env python3
"""Section 5's reduction, end to end: FDs ↔ implicational statements in C.

The paper proves Armstrong completeness over nulls (Theorem 1) by routing
through Bertram's modal logic C.  This example makes every leg of that
journey concrete:

1. System C's evaluation scheme and its non-truth-functionality;
2. implicational statements and the strong/weak inference gap;
3. Lemma 3: assignments ↔ two-tuple relations with nulls;
4. a full Armstrong derivation rendered as an I-rule proof tree;
5. the boundary: why everything lives in the normalized (X ∩ Y = ∅)
   fragment.

Run:  python examples/logic_equivalence.py
"""

from repro.core.fd import FD
from repro.core.satisfaction import strongly_holds, weakly_holds
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.logic import (
    ImplicationalStatement,
    Nec,
    Not,
    Or,
    Var,
    assignment_to_relation,
    assignments_over,
    counterexample,
    derive,
    evaluate,
    evaluate_truth_functional,
    fd_counterexample_relation,
    infers,
)


def system_c_tour() -> None:
    print("=" * 64)
    print("1. System C: rule 1 before everything")
    print("=" * 64)
    p = Var("p")
    excluded_middle = Or((p, Not(p)))
    a = {"p": UNKNOWN}
    print(f"V(p ∨ ¬p) with p unknown:           {evaluate(excluded_middle, a)}")
    print(
        "without rule 1 (pure Kleene):        "
        f"{evaluate_truth_functional(excluded_middle, a)}"
    )
    print(f"V(V(p)) with p unknown (modal rule): {evaluate(Nec(p), a)}")
    contradiction = Not(Or((Not(p), Not(Not(p)))))
    print(
        "\nC is not truth-functional: a formula and its double negation can"
        "\ndisagree, because tautology detection fires at every level."
    )


def inference_gap() -> None:
    print()
    print("=" * 64)
    print("2. Strong vs weak logical inference")
    print("=" * 64)
    premises = ["A => B", "B => C"]
    goal = "A => C"
    print(f"premises: {premises}, goal: {goal}")
    print(f"  strong inference: {infers(premises, goal)}")
    print(f"  weak inference:   {infers(premises, goal, weak=True)}")
    witness = counterexample(premises, goal, weak=True)
    rendered = {k: str(v) for k, v in witness.items()}
    print(f"  weak counterexample assignment: {rendered}")
    print(
        "\nTransitivity is strongly valid but weakly invalid — the logical"
        "\nshadow of section 6's 'FDs cannot be tested for weak"
        "\nsatisfiability independently'."
    )


def lemma_3() -> None:
    print()
    print("=" * 64)
    print("3. Lemma 3: assignments are two-tuple relations")
    print("=" * 64)
    assignment = {"A": UNKNOWN, "B": TRUE, "C": FALSE}
    relation = assignment_to_relation(assignment)
    print({k: str(v) for k, v in assignment.items()})
    print()
    print(relation.to_text(), "\n")
    for fd_text in ("A -> B", "B -> C", "A -> C"):
        statement = ImplicationalStatement.from_fd(FD.parse(fd_text))
        left = strongly_holds(fd_text, relation)
        right = statement.evaluate(assignment) is TRUE
        print(
            f"  {fd_text:10s}  strongly holds: {str(left):5s}  "
            f"V(statement)=true: {right}"
        )
    print("\nThe two columns agree on every FD — that is Lemma 3.")


def proof_tree() -> None:
    print()
    print("=" * 64)
    print("4. An I-rule derivation (Lemma 2 made visible)")
    print("=" * 64)
    derivation = derive(
        ["E# => SL D#", "D# => CT"], "E# => SL CT"
    )
    print(derivation.render())
    print(f"\nverified: {derivation.verify()}  ({len(derivation)} steps)")

    print("\nAnd a non-consequence refuted by a relation (Lemma 4):")
    witness = fd_counterexample_relation(["E# -> SL"], "SL -> E#")
    print(witness.to_text())
    print(
        f"  E# -> SL strongly holds: {strongly_holds('E# -> SL', witness)}"
    )
    print(
        f"  SL -> E# strongly holds: {strongly_holds('SL -> E#', witness)}"
    )


def normalized_boundary() -> None:
    print()
    print("=" * 64)
    print("5. The normalized fragment boundary")
    print("=" * 64)
    raw = ImplicationalStatement("A", "A B")
    a = {"A": UNKNOWN, "B": TRUE}
    print(f"V(A => AB) at A=unknown, B=true:  {raw.evaluate(a)}")
    print(f"V(A => B)  at the same assignment: {raw.normalized().evaluate(a)}")
    print(
        "\nThe FDs A -> AB and A -> B hold in exactly the same instances,"
        "\nbut raw C-evaluation distinguishes the statements: the paper's"
        "\nequivalences live in the X ∩ Y = ∅ fragment (as Proposition 1"
        "\nassumes), so the library normalizes at the inference boundary."
    )


def main() -> None:
    system_c_tour()
    inference_gap()
    lemma_3()
    proof_tree()
    normalized_boundary()


if __name__ == "__main__":
    main()
