#!/usr/bin/env python3
"""Quickstart: functional dependencies over relations with nulls.

A five-minute tour of the library following the paper's storyline:

1. build a relation instance containing nulls;
2. evaluate an FD on it (three-valued: true / false / unknown);
3. distinguish strong from weak satisfiability;
4. chase with the NS-rules to the minimally incomplete instance;
5. run TEST-FDs, the paper's O(|F| n log n) satisfiability test.

Run:  python examples/quickstart.py
"""

from repro import (
    FALSE,
    TRUE,
    UNKNOWN,
    Domain,
    FDSet,
    Relation,
    RelationSchema,
    check_fds,
    evaluate_fd,
    minimally_incomplete,
    null,
    proposition1_case,
    strongly_holds,
    weakly_holds,
    weakly_satisfiable,
)


def step_1_build_an_instance() -> Relation:
    print("=" * 64)
    print("1. An instance with incomplete information")
    print("=" * 64)
    schema = RelationSchema(
        "R", "A B C", domains={"A": Domain(["a1", "a2"], name="A")}
    )
    # Figure 2's fourth instance: the null's substitutions are exhausted
    r = Relation(
        schema,
        [
            (null(), "b1", "c1"),
            ("a1", "b1", "c2"),
            ("a2", "b1", "c3"),
        ],
    )
    print(r.to_text(), "\n")
    print("dom(A) =", list(schema.domain("A")))
    return r


def step_2_evaluate_an_fd(r: Relation) -> None:
    print()
    print("=" * 64)
    print("2. The extended FD interpretation (Proposition 1)")
    print("=" * 64)
    fd = "A B -> C"
    for index, row in enumerate(r):
        value = evaluate_fd(fd, row, r)
        print(f"f(t{index + 1}, r) = {value}")
    result = proposition1_case(fd, r[0], r)
    print(
        f"\nProposition 1 on t1: value={result.value}, "
        f"condition=[{result.condition}]"
    )
    print("(t1's null can only be a1 or a2; both rows disagree with t1 on C,")
    print(" so every substitution violates the FD: the paper's case F2.)")


def step_3_strong_vs_weak() -> None:
    print()
    print("=" * 64)
    print("3. Strong vs weak satisfiability")
    print("=" * 64)
    schema = RelationSchema("S", "A B")
    r = Relation(schema, [("a", null()), ("a", 1)])
    fd = "A -> B"
    print(r.to_text(), "\n")
    print(f"strongly holds: {strongly_holds(fd, r)}")
    print(f"weakly holds:   {weakly_holds(fd, r)}")
    print("\nThe null might be 1 (fine) or something else (violation):")
    print("unknown — so not strong; but no certain contradiction — weak.")


def step_4_chase() -> None:
    print()
    print("=" * 64)
    print("4. The NS-rule chase (section 6)")
    print("=" * 64)
    schema = RelationSchema("T", "A B C")
    r = Relation(
        schema,
        [
            ("a", null(), null()),
            ("a", "b1", null()),
            ("z", "b1", "c7"),
        ],
    )
    fds = FDSet(["A -> B", "B -> C"])
    print("before the chase:")
    print(r.to_text(), "\n")
    result = minimally_incomplete(r, fds)
    print("after the chase (minimally incomplete):")
    print(result.relation.to_text(), "\n")
    print(result.summary())
    for original, value in result.substitutions.items():
        print(f"  forced substitution: {original!r} := {value!r}")
    for nec in result.nec_classes:
        print(f"  null equality constraint: {' := '.join(map(repr, nec))}")


def step_5_test_fds() -> None:
    print()
    print("=" * 64)
    print("5. TEST-FDs (Figure 3)")
    print("=" * 64)
    schema = RelationSchema("U", "A B C")
    r = Relation(
        schema,
        [("a", null(), "c1"), ("a", null(), "c2")],
    )
    fds = ["A -> B", "B -> C"]
    print(r.to_text(), "\n")
    outcome = check_fds(r, fds, convention="weak", ensure_minimal=True)
    print(f"weakly satisfiable? {outcome.satisfied}")
    if outcome.witness:
        w = outcome.witness
        print(
            f"violation: {w.fd!r} between rows {w.first_row} and "
            f"{w.second_row} on {w.attribute}"
        )
    print("\n(section 6's example: each FD alone is weakly satisfiable, but")
    print(" B -> C forces the two B-nulls apart, which falsifies A -> B —")
    print(" the chase's null-equality constraint exposes the interaction.)")
    print(f"\nchase agrees: weakly_satisfiable = {weakly_satisfiable(r, fds)}")


def main() -> None:
    r = step_1_build_an_instance()
    step_2_evaluate_an_fd(r)
    step_3_strong_vs_weak()
    step_4_chase()
    step_5_test_fds()
    print("\nDone.  See the other examples for deeper dives.")


if __name__ == "__main__":
    main()
