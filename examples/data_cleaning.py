#!/usr/bin/env python3
"""Data cleaning with the NS-rule chase: FDs as repair rules.

A practical reading of section 6: functional dependencies + nulls give a
principled imputation engine.  Whenever two records agree on a determinant,
the determined values must match — so a missing value next to a present one
is *forced* (rule a), two missing values are *linked* (rule b, a NEC), and
two conflicting constants expose dirty data (the extended rule's *nothing*).

The scenario: a customer table with postal codes.  Business rules:

    zip  -> city, state        (a postal code pins down the place)
    city -> state              (a city lies in one state)

Run:  python examples/data_cleaning.py
"""

import random

from repro import FDSet, Relation, RelationSchema, null
from repro.bench.report import Table, time_call
from repro.chase import (
    MODE_BASIC,
    MODE_EXTENDED,
    chase,
    congruence_chase,
    minimally_incomplete,
    weakly_satisfiable,
)
from repro.core.values import NOTHING, is_null
from repro.workloads.generator import (
    inject_nulls,
    random_satisfiable_instance,
)

RULES = FDSet(["zip -> city state", "city -> state"])


def customer_schema() -> RelationSchema:
    return RelationSchema("customers", "name zip city state")


def dirty_table() -> Relation:
    schema = customer_schema()
    return Relation(
        schema,
        [
            ("Ada", "10001", "New York", "NY"),
            ("Bob", "10001", null(), null()),        # fixable from Ada
            ("Cid", "60601", "Chicago", null()),      # state inferable via city
            ("Dee", "60601", null(), "IL"),           # city inferable via zip
            ("Eve", "94105", null(), null()),         # linked unknowns (NEC)
            ("Fay", "94105", null(), null()),
        ],
    )


def clean() -> None:
    print("=" * 64)
    print("Imputation by chase")
    print("=" * 64)
    table = dirty_table()
    print(table.to_text(), "\n")
    result = minimally_incomplete(table, RULES)
    print("minimally incomplete repair:")
    print(result.relation.to_text(), "\n")
    print(result.summary())
    filled = sum(
        1 for value in result.substitutions.values() if value is not NOTHING
    )
    print(f"\ncells grounded: {filled}")
    for nec in result.nec_classes:
        print(f"linked unknowns (NEC): {' = '.join(map(repr, nec))}")
    print(
        "\nEve's and Fay's cities are still unknown — but the chase knows"
        "\nthey are the SAME unknown city, and in the same unknown state."
    )


def detect_conflicts() -> None:
    print()
    print("=" * 64)
    print("Conflict detection (the extended rule's *nothing*)")
    print("=" * 64)
    schema = customer_schema()
    table = Relation(
        schema,
        [
            ("Ada", "10001", "New York", "NY"),
            ("Mal", "10001", "Newark", null()),  # same zip, different city!
            ("Cid", "60601", "Chicago", "IL"),
        ],
    )
    print(table.to_text(), "\n")
    print(f"weakly satisfiable: {weakly_satisfiable(table, RULES)}")
    result = chase(table, RULES, mode=MODE_EXTENDED)
    print("\nextended chase result (inconsistent cells shown as '!'):")
    print(result.relation.to_text())
    poisoned = [
        (row_index, attr)
        for row_index, row in enumerate(result.relation.rows)
        for attr in result.relation.schema.attributes
        if row[attr] is NOTHING
    ]
    print(f"\npoisoned cells: {poisoned}")
    print("Both city values join to *nothing*: records 0 and 1 cannot both")
    print("be right — a data-quality incident, localized to the zip 10001.")


def throughput() -> None:
    print()
    print("=" * 64)
    print("Throughput: fixpoint engine vs congruence closure")
    print("=" * 64)
    rng = random.Random(42)
    from repro.workloads.generator import random_schema

    schema = random_schema(5)
    fds = FDSet(["A1 -> A2 A3", "A2 -> A4", "A4 -> A5"])
    report = Table(
        "chase wall time (seconds, best of 3)",
        ["rows", "nulls", "fixpoint", "congruence", "speedup"],
    )
    for n_rows in (200, 400, 800):
        base = random_satisfiable_instance(rng, schema, fds, n_rows, pool_size=n_rows // 8)
        dirty = inject_nulls(rng, base, density=0.25)
        fixpoint_time = time_call(lambda: chase(dirty, fds, mode=MODE_EXTENDED))
        congruence_time = time_call(lambda: congruence_chase(dirty, fds))
        report.add_row(
            n_rows,
            dirty.null_count(),
            fixpoint_time,
            congruence_time,
            f"{fixpoint_time / congruence_time:.1f}x",
        )
    report.show()
    print("\nSame fixpoint, different engines (Theorem 4's congruence")
    print("closure); benchmarks/bench_e5_chase_scaling.py sweeps this.")


def main() -> None:
    clean()
    detect_conflicts()
    throughput()


if __name__ == "__main__":
    main()
