#!/usr/bin/env python3
"""Querying incomplete data: the least-extension rule of section 2.

The paper's motivating example: with dom(marital-status) = {married,
single} and the tuple ("John", null),

    Q : "Is John married?"            -> lub{yes, no}  = unknown
    Q': "Is John married or single?"  -> lub{yes, yes} = yes

A truth-functional evaluator answers unknown to both; the least extension
is sharper because it reasons over *all substitutions* of the null.  This
example reproduces Q/Q', contrasts Kleene with least-extension evaluation,
and shows certain/possible selection over a table.

Run:  python examples/null_queries.py
"""

from repro import Domain, Relation, RelationSchema, null
from repro.core.truth import from_bool
from repro.nullsem import (
    AttrEq,
    Eq,
    In,
    NotP,
    OrP,
    evaluate_kleene,
    evaluate_least_extension,
    least_extension_truth,
    least_extension_value,
    select,
)


def people() -> Relation:
    schema = RelationSchema(
        "people",
        "name marital spouse_city home_city",
        domains={"marital": Domain(["married", "single"], name="marital")},
    )
    return Relation(
        schema,
        [
            ("John", null(), "Oslo", "Oslo"),
            ("Mary", "married", null(), "Lyon"),
            ("Ann", "single", "Turin", null()),
        ],
    )


def q_and_q_prime() -> None:
    print("=" * 64)
    print("Q and Q' (the paper's section 2 example)")
    print("=" * 64)
    table = people()
    john = table[0]
    q = Eq("marital", "married")
    q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
    print(table.to_text(), "\n")
    print(f"Q  (John married?)          least-ext: {evaluate_least_extension(q, john)}")
    print(f"Q' (married or single?)     least-ext: {evaluate_least_extension(q_prime, john)}")
    print(f"Q' under Kleene (weaker):              {evaluate_kleene(q_prime, john)}")


def function_extensions() -> None:
    print()
    print("=" * 64)
    print("Least extensions of ordinary functions")
    print("=" * 64)
    marital = Domain(["married", "single"], name="marital")
    files_jointly = least_extension_truth(
        lambda status: from_bool(status == "married"), [marital]
    )
    tax_code = least_extension_value(
        lambda status: "J" if status == "married" else "S", [marital]
    )
    flat_fee = least_extension_value(lambda status: 120, [marital])
    unknown_status = null()
    print(f"files_jointly(⊥) = {files_jointly(unknown_status)}")
    print(f"tax_code(⊥)      = {tax_code(unknown_status)!r}   (depends on the null)")
    print(f"flat_fee(⊥)      = {flat_fee(unknown_status)!r}  (insensitive: collapses)")


def selections() -> None:
    print()
    print("=" * 64)
    print("Certain vs possible selection")
    print("=" * 64)
    table = people()
    q = Eq("marital", "married")
    certain = select(table, q, mode="certain")
    possible = select(table, q, mode="possible")
    print(f"certainly married: {[row['name'] for row in certain]}")
    print(f"possibly married:  {[row['name'] for row in possible]}")

    same_city = AttrEq("spouse_city", "home_city")
    print(
        "\nspouse in the same city (certain): "
        f"{[row['name'] for row in select(table, same_city, 'certain')]}"
    )
    print(
        "spouse in the same city (possible): "
        f"{[row['name'] for row in select(table, same_city, 'possible')]}"
    )
    print(
        "\nJohn qualifies certainly (both cities are Oslo); Mary and Ann"
        "\nonly possibly — their unknown city might be the other one."
    )


def main() -> None:
    q_and_q_prime()
    function_extensions()
    selections()


if __name__ == "__main__":
    main()
