"""Tour of the query layer: certain and maybe answers over incomplete
relations.

Walks the PR 9 surface end to end:

1. a disjunctive select where *least-extension* evaluation proves rows
   certain that truth-functional (Kleene) evaluation can only call
   maybe — the paper's central point about evaluating queries over
   nulls;
2. a join across two relations sharing one null, where the shared
   unknown makes the joined row certain while a distinct null would
   leave it maybe;
3. query results as first-class relations: a maybe-answer materializes
   (nulls intact, by identity) and seeds a chase session;
4. the server's ``query`` verb: the same evaluation over a leased
   consistent cut, tagged with the journal seq it equals (``as_of``).

Run: ``PYTHONPATH=src python examples/query_tour.py``
"""

import asyncio
import shutil
import tempfile
from pathlib import Path

from repro import ChaseSession, Domain, FDSet, Relation, RelationSchema, null
from repro.query import MODE_KLEENE, MODE_LEAST, evaluate, parse_query
from repro.server import ReproServer


def show(title, result):
    print(f"\n{title}")
    print(f"  certain: {sorted(map(str, result.certain))}")
    print(f"  maybe:   {sorted(map(str, result.maybe))}")


def banner(text):
    print(f"\n=== {text} ===")


# ---------------------------------------------------------------------------
# 1. Kleene vs least-extension evaluation
# ---------------------------------------------------------------------------

banner("kleene vs least: a domain-exhausting disjunction")

dept_domain = Domain(["sales", "eng"], name="dept")
emp_schema = RelationSchema("emp", "name dept", domains={"dept": dept_domain})
emp = Relation(
    emp_schema,
    [["ann", "sales"], ["bob", null()]],
)

query = parse_query("emp where dept = 'sales' or dept = 'eng'")
kleene = evaluate(query, {"emp": emp}, mode=MODE_KLEENE)
least = evaluate(query, {"emp": emp}, mode=MODE_LEAST)

# bob's department is unknown — but it is SOME department, and the
# disjunction covers the whole (finite) domain.  Kleene evaluation is
# truth-functional: unknown or unknown = unknown, so bob stays maybe.
# Least-extension evaluation grounds the condition over the consistent
# domain and finds it true in every completion: bob is certain.
show("kleene (truth-functional):", kleene)
show("least (the paper's semantics):", least)
assert len(kleene.certain) == 1 and len(kleene.maybe) == 1
assert len(least.certain) == 2 and len(least.maybe) == 0
print("\nleast evaluation promoted bob: the disjunction exhausts the domain")

# ---------------------------------------------------------------------------
# 2. a join where one shared null decides certainty
# ---------------------------------------------------------------------------

banner("joins and shared nulls")

unknown_dept = null()
emp2 = Relation(emp_schema, [["carol", unknown_dept]])
# declare dept's domain here too: both relations' unknowns range over
# the same set of departments, so the evaluator can compare them
mgr_schema = RelationSchema("mgr", "dept boss", domains={"dept": dept_domain})
mgr = Relation(mgr_schema, [[unknown_dept, "dana"]])

joined = evaluate(parse_query("emp join mgr"), {"emp": emp2, "mgr": mgr})
show("emp join mgr (ONE null shared across both relations):", joined)
# whatever carol's department is, it is the SAME unknown the mgr row
# names, so the join holds in every completion
assert len(joined.certain) == 1

mgr_distinct = Relation(mgr_schema, [[null(), "dana"]])
joined_distinct = evaluate(
    parse_query("emp join mgr"), {"emp": emp2, "mgr": mgr_distinct}
)
show("the same join with two DISTINCT nulls:", joined_distinct)
assert len(joined_distinct.certain) == 0
assert len(joined_distinct.maybe) == 1
print("\nnull identity is semantics: shared null -> certain, distinct -> maybe")

# ---------------------------------------------------------------------------
# 3. query results are first-class: feed a chase
# ---------------------------------------------------------------------------

banner("query result -> relation -> chase input")

materialized = joined.relation(name="staffing")
print(f"\nmaterialized scheme: {materialized.schema.attributes}")
session = ChaseSession(materialized.schema, FDSet.parse("name -> dept boss"))
for row in materialized.rows:
    session.insert(list(row.values))
outcome = session.result()
print(f"chased rows: {[tuple(map(str, r.values)) for r in outcome.relation.rows]}")
assert not outcome.has_nothing

# ---------------------------------------------------------------------------
# 4. the server's query verb
# ---------------------------------------------------------------------------

banner("the server query verb: evaluation at a consistent cut")


async def serve_and_query(root: Path):
    server = ReproServer(root / "db", sync="flush", create=True)
    await server.start()
    await server.handle(
        {"do": "create", "name": "emp", "attrs": "name dept", "fds": []}
    )
    await server.handle(
        {"id": 1, "do": "insert", "rel": "emp", "row": ["ann", "sales"]}
    )
    await server.handle(
        {"id": 2, "do": "insert", "rel": "emp", "row": ["bob", {"n": None}]}
    )
    reply = await server.handle(
        {"id": 3, "do": "query", "q": "emp[name]", "mode": "least"}
    )
    await server.stop()
    return reply


root = Path(tempfile.mkdtemp(prefix="query_tour_"))
try:
    reply = asyncio.run(serve_and_query(root))
finally:
    shutil.rmtree(root, ignore_errors=True)

assert reply["ok"] and reply["v"] == 1
print(f"\nanswer as_of journal seq: {reply['certain']['as_of']}")
print(f"certain names: {sorted(r[0] for r in reply['certain']['rows'])}")
assert reply["certain"]["as_of"] == 2
assert sorted(r[0] for r in reply["certain"]["rows"]) == ["ann", "bob"]
print("\nevery answer is a serial prefix: as_of names the cut it equals")
