#!/usr/bin/env python3
"""Maintaining an incomplete database: guarded modifications + explanation.

The paper's closing research programme (section 7) separates two channels
by which a database "acquires information":

* **external** — users insert/update/delete tuples; the database admits a
  change iff the constraints stay *weakly* satisfiable (not certainly
  violated);
* **internal** — the NS-rules ground nulls whose value the constraints
  force ("the only piece of information that makes the dependency true").

``repro.updates.GuardedRelation`` implements both on top of a maintained
``repro.ChaseSession``; this walkthrough runs a small ticketing system
through a day of edits, narrates every decision with ``repro.explain``,
and closes with the raw session API (snapshot / rollback / live
consistency verdicts).

Run:  python examples/update_workflow.py
"""

from repro import ChaseSession, RelationSchema, null
from repro.chase import MODE_EXTENDED, chase
from repro.explain import explain_chase, explain_fd_value
from repro.updates import GuardedRelation

SCHEMA = RelationSchema("tickets", "ticket team priority oncall")
RULES = [
    "ticket -> team priority",  # a ticket sits with one team at one priority
    "team -> oncall",           # each team has one on-call engineer
]


def open_desk() -> GuardedRelation:
    print("=" * 64)
    print("Morning: the ticket desk opens")
    print("=" * 64)
    guard = GuardedRelation(
        SCHEMA,
        RULES,
        rows=[
            ("T-1", "storage", "high", "ada"),
            ("T-2", "network", "low", null()),
        ],
    )
    print(guard.to_text(), "\n")
    return guard


def a_day_of_edits(guard: GuardedRelation) -> None:
    print("=" * 64)
    print("A day of edits")
    print("=" * 64)
    # a new ticket for storage: its on-call is already determined
    guard.insert(("T-3", "storage", "low", null()))
    # a contradictory report: T-1 at a different priority
    guard.insert(("T-1", "storage", "low", "ada"))
    # network's on-call comes online
    guard.fill(1, "oncall", "bob")
    # someone tries to reassign storage's on-call through a side door
    guard.update(0, {"oncall": "mal"})
    # T-2 is resolved
    guard.delete(1)

    for line in guard.history():
        print(" ", line)
    print()
    print("state at end of day:")
    print(guard.to_text())


def night_audit(guard: GuardedRelation) -> None:
    print()
    print("=" * 64)
    print("Night audit: explanations")
    print("=" * 64)
    relation = guard.relation
    print(explain_fd_value("team -> oncall", relation[0], relation))
    print()
    result = chase(relation, RULES, mode=MODE_EXTENDED)
    print(explain_chase(result))


def session_tour() -> None:
    print()
    print("=" * 64)
    print("Under the hood: the chase session")
    print("=" * 64)
    session = ChaseSession(SCHEMA, RULES)
    session.insert(("T-7", "storage", "high", null()))
    session.insert(("T-8", "storage", "low", "ada"))
    print("storage's on-call grounded live:",
          session.result().relation[0]["oncall"])

    snap = session.snapshot()
    session.insert(("T-7", "storage", "low", "ada"))  # contradicts T-7
    print("after conflicting report, weakly satisfiable?",
          not session.has_nothing)
    session.rollback(snap)
    print("after rollback,             weakly satisfiable?",
          not session.has_nothing)

    session.delete(1)  # drop T-8: the grounding dissolves with its forcer
    cell = session.result().relation[0]["oncall"]
    print("after deleting the forcer, on-call is unknown again:",
          f"{cell!r}")
    print("TEST-FDs on the maintained instance:",
          "satisfied" if session.check().satisfied else "violated")


def main() -> None:
    guard = open_desk()
    a_day_of_edits(guard)
    night_audit(guard)
    session_tour()


if __name__ == "__main__":
    main()
