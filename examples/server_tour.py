"""Serving tour: many clients, one writer, one fsync per burst.

``repro serve`` (backed by :class:`repro.server.ReproServer`) multiplexes
any number of clients onto **one writer task per relation**.  Three
things make that worth a tour:

* **group commit** — a burst of concurrent mutations is journalled as a
  single WAL append + fsync; each client's ack resolves only after its
  batch is durable, so the per-op fsync tax is shared, not skipped;
* **snapshot-isolated reads** — every read answers from a consistent
  cut tagged ``as_of`` (the journal seq it equals), and a reader never
  blocks the writer: stale cuts re-chase off the event loop;
* **exclusive ownership** — the served directory is flock'd for the
  whole run, so a second process cannot scribble on it from the side.

Everything here runs in one process over a real TCP socket on
loopback; the same requests work against ``repro serve PATH --port N``.
"""

import asyncio
import tempfile
from pathlib import Path

from repro.chase import canonical_form
from repro.db import Database
from repro.errors import DatabaseError
from repro.server import Client, ReproServer

ATTRS = "name zip city"
FDS = "zip -> city"
N_CLIENTS = 6
OPS_EACH = 8


async def tour(root: Path) -> None:
    # a tiny auto-checkpoint threshold so the tour shows one firing;
    # production thresholds are thousands of ops
    server = ReproServer(
        root, sync="fsync", create=True, window_s=0.002, checkpoint_wal_ops=40
    )
    await server.start()
    host, port = await server.listen("127.0.0.1", 0)
    print(f"serving {root.name} on {host} (one writer task, group commit)")

    # -- the directory is exclusively owned while serving ------------------
    try:
        Database.open(root)
    except DatabaseError:
        print("directory locked while serving: True")

    # -- a burst of concurrent clients over TCP ----------------------------
    client = await Client.connect(host, port)
    await client.call("create", name="people", attrs=ATTRS, fds=FDS)

    async def one_client(c: int) -> None:
        own = await Client.connect(host, port)
        try:
            for i in range(OPS_EACH):
                op = c * OPS_EACH + i
                await own.call(
                    "insert",
                    rel="people",
                    row=[
                        f"user{op}",
                        f"{10000 + op % 4}",
                        # every fourth city is unknown: the chase grounds
                        # it from zip -> city once a grounded peer lands
                        {"n": None} if op % 4 == 2 else f"city{op % 4}",
                    ],
                )
        finally:
            await own.close()

    await asyncio.gather(*(one_client(c) for c in range(N_CLIENTS)))

    stats = (await client.call("stats", rel="people"))["stats"]
    n_ops = N_CLIENTS * OPS_EACH
    print(
        f"group commit: {stats['batches']} append+fsync(s) for {n_ops} ops "
        f"(largest batch {stats['largest_batch']})"
    )
    print(f"auto-checkpoint fired: {stats['auto_checkpoints'] >= 1}")

    # -- a snapshot-isolated read ------------------------------------------
    read = await client.call("result", rel="people", isolated=True)
    grounded = sum(
        1 for row in read["rows"]
        if not any(isinstance(cell, dict) for cell in row)
    )
    print(
        f"snapshot read at seq {read['as_of']}: {len(read['rows'])} row(s), "
        f"{grounded} fully grounded by the chase"
    )
    print(f"read equals the acked prefix: {read['as_of'] == n_ops}")

    check = await client.call("check", rel="people", convention="weak")
    print(f"zip -> city weakly satisfied while serving: {check['satisfied']}")

    await client.close()
    await server.stop()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro_serve_") as tmp:
        root = Path(tmp) / "served"
        asyncio.run(tour(root))

        # -- after shutdown the directory is a plain database again -------
        with Database.open(root, sync="none", create=False) as db:
            people = db["people"]
            fixpoint = canonical_form(people.result().relation)
            print(
                f"reopened without the server: seq {people.seq}, "
                f"{len(people)} row(s), checkpoint at "
                f"{people.checkpoint_seq}"
            )
            print(
                "recovered fixpoint verified: "
                f"{people.verify() and len(fixpoint) == len(people)}"
            )


if __name__ == "__main__":
    main()
