"""Shared hypothesis strategies for randomized instances and FD sets.

One `instances()` generator serves every property suite — the cross-engine
chase equivalence tests, the TEST-FDs variant agreement tests, and the
merge-order invariance tests — instead of each file hand-rolling its own.
Cells mix a small constant pool (collisions are what make FDs fire), fresh
nulls, optionally *shared* nulls (one object in several cells: an initial
NEC class), and optionally NOTHING (chase inputs only; TEST-FDs refuses
it, so those suites pass ``allow_nothing=False``).

`assert_field_identical` is the acceptance contract for engine
equivalence: byte-identical result fields, with null equality as object
*identity* — the same representative null object must appear in the same
cells of both results.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.values import NOTHING, null

from .helpers import schema_of

#: FD pool over A B C D for the chase engine suites: chains, a cycle,
#: composite left- and right-hand sides
CHASE_FD_POOL = (
    "A -> B",
    "B -> C",
    "A -> C",
    "C -> B",
    "A B -> C",
    "C -> A B",
    "D -> A",
    "B -> D",
    "A C -> D",
)

#: FD pool over A B C for the TEST-FDs suites (three columns keep
#: brute-force completion oracles affordable)
TESTFD_FD_POOL = ("A -> B", "B -> C", "A B -> C", "C -> A")

#: like TESTFD_FD_POOL but with shared left-hand sides well represented —
#: the batched TEST-FDs differential suite wants groups to actually group
SHARED_LHS_FD_POOL = (
    "A -> B",
    "A -> C",
    "A -> B C",
    "B -> A",
    "B -> C",
    "A B -> C",
    "C -> A",
)


@st.composite
def instances(
    draw,
    attributes: str = "A B C D",
    max_rows: int = 6,
    n_constants: int = 3,
    shared_nulls: int = 3,
    allow_nothing: bool = True,
):
    """Random instances over ``attributes``.

    Per-column constants are drawn from a pool of ``n_constants`` values
    (small enough to collide, which is what exercises the algorithms);
    ``shared_nulls`` distinct null objects may each appear in any number
    of cells; ``allow_nothing`` adds NOTHING cells (chase inputs only).
    """
    schema = schema_of(attributes)
    n_cols = len(schema)
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    shared = [null() for _ in range(shared_nulls)]
    tokens = [f"v{i}" for i in range(n_constants)] + ["fresh"]
    tokens += [f"s{i}" for i in range(shared_nulls)]
    if allow_nothing:
        tokens.append("nothing")
    cell = st.sampled_from(tokens)
    rows = []
    for _ in range(n_rows):
        values = []
        for _ in range(n_cols):
            token = draw(cell)
            if token == "fresh":
                values.append(null())
            elif token == "nothing":
                values.append(NOTHING)
            elif token.startswith("s"):
                values.append(shared[int(token[1:])])
            else:
                values.append(token)
        rows.append(values)
    return Relation(schema, rows)


def fd_sets(pool=CHASE_FD_POOL, min_size: int = 1, max_size: int = 4):
    """Duplicate-free FD lists sampled from ``pool`` (order preserved —
    several suites check order invariance explicitly)."""
    return st.lists(
        st.sampled_from(list(pool)),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


def assert_field_identical(fast, slow):
    """The engine-equivalence acceptance contract: byte-identical fields.

    Rows are compared by value tuples — null equality is object identity,
    so this also checks that the *same* representative null object appears
    in the same cells of both results.
    """
    assert [r.values for r in fast.relation.rows] == [
        r.values for r in slow.relation.rows
    ]
    assert fast.nec_classes == slow.nec_classes
    assert {id(k): v for k, v in fast.substitutions.items()} == {
        id(k): v for k, v in slow.substitutions.items()
    }
    assert fast.has_nothing == slow.has_nothing


# ---------------------------------------------------------------------------
# cross-scope alignment: comparing a recovered session with its reference
# ---------------------------------------------------------------------------


def null_alignment(recovered_rows, reference_rows):
    """A recovered-null → reference-null bijection via canonical ids.

    A session recovered from disk holds *different* ``Null`` objects than
    the uninterrupted reference, so `assert_field_identical` cannot apply
    directly.  Encoding both raw-row lists with fresh
    :class:`~repro.core.codec.ValueCodec` scopes names each side's nulls
    by first-occurrence order; identical encodings mean identical sharing
    structure, and matching canonical ids pair up corresponding unknowns.
    """
    from repro.core.codec import ValueCodec

    recovered_codec, reference_codec = ValueCodec(), ValueCodec()
    recovered_encoded = [
        recovered_codec.encode_row(row.values) for row in recovered_rows
    ]
    reference_encoded = [
        reference_codec.encode_row(row.values) for row in reference_rows
    ]
    assert recovered_encoded == reference_encoded, (
        "raw rows differ structurally:\n"
        f"recovered: {recovered_encoded}\nreference: {reference_encoded}"
    )
    reference_table = reference_codec.table()
    return {
        null_obj: reference_table[canonical]
        for canonical, null_obj in recovered_codec.table().items()
    }


def aligned_result(result, mapping):
    """``result`` with every null renamed through ``mapping`` (a
    :class:`~repro.chase.engine.ChaseResult` suitable for
    `assert_field_identical` against the reference side)."""
    from repro.chase.engine import ChaseResult
    from repro.core.relation import Relation

    return ChaseResult(
        relation=Relation(
            result.relation.schema,
            [row.substitute(mapping) for row in result.relation.rows],
        ),
        nec_classes=[
            tuple(mapping.get(null_obj, null_obj) for null_obj in cls)
            for cls in result.nec_classes
        ],
        substitutions={
            mapping.get(null_obj, null_obj): value
            for null_obj, value in result.substitutions.items()
        },
        applications=[],
        passes=result.passes,
        mode=result.mode,
        strategy=result.strategy,
    )


def assert_recovered_identical(recovered, reference):
    """The crash-recovery acceptance contract: the recovered session is
    field-identical to the uninterrupted reference — same rows, same
    shared-null structure (via canonical-id alignment), same forced
    substitutions and NEC classes, same NOTHING verdict."""
    mapping = null_alignment(recovered.rows, reference.rows)
    assert_field_identical(
        aligned_result(recovered.result(), mapping), reference.result()
    )
