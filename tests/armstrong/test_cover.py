"""Tests for minimal covers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.cover import (
    is_minimal,
    left_reduce,
    minimal_cover,
    remove_redundant,
    right_reduce,
)
from repro.armstrong.implication import equivalent
from repro.core.fd import FD, FDSet


class TestPasses:
    def test_right_reduce_splits(self):
        out = right_reduce(["A -> B C"])
        assert set(out) == {FD("A", "B"), FD("A", "C")}

    def test_right_reduce_drops_trivial_components(self):
        out = right_reduce(["A -> A B"])
        assert out == [FD("A", "B")]

    def test_left_reduce_removes_extraneous(self):
        # in  A B -> C  with  A -> B,  B is extraneous
        out = left_reduce(["A B -> C", "A -> B"])
        assert FD("A", "C") in out

    def test_left_reduce_keeps_needed(self):
        out = left_reduce(["A B -> C"])
        assert out == [FD("A B", "C")]

    def test_remove_redundant(self):
        out = remove_redundant(["A -> B", "B -> C", "A -> C"])
        assert FD("A", "C") not in out
        assert len(out) == 2


class TestMinimalCover:
    def test_textbook_example(self):
        fds = ["A -> B C", "B -> C", "A -> B", "A B -> C"]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert is_minimal(cover)
        assert cover == FDSet(["A -> B", "B -> C"])

    def test_already_minimal_unchanged_up_to_equivalence(self):
        fds = ["A -> B", "B -> C"]
        cover = minimal_cover(fds)
        assert set(cover) == {FD("A", "B"), FD("B", "C")}

    def test_is_minimal_rejects_composite_rhs(self):
        assert not is_minimal(["A -> B C"])

    def test_is_minimal_rejects_redundancy(self):
        assert not is_minimal(["A -> B", "B -> C", "A -> C"])

    def test_is_minimal_rejects_extraneous_lhs(self):
        assert not is_minimal(["A -> B", "A B -> C"])

    def test_empty(self):
        assert list(minimal_cover([])) == []
        assert is_minimal([])


# ---------------------------------------------------------------------------
# property-based: covers are equivalent and minimal
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=3, unique=True)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@given(fd_sets())
@settings(max_examples=80, deadline=None)
def test_minimal_cover_is_equivalent_and_minimal(fds):
    nontrivial = [fd for fd in fds if not fd.is_trivial()]
    cover = minimal_cover(fds)
    assert equivalent(cover, nontrivial)
    assert is_minimal(cover)
