"""Tests for Armstrong rule checkers and FD-level derivations.

Includes the per-axiom soundness test against brute-force strong
satisfiability over relations with nulls — the axioms' side of Theorem 1.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.rules import (
    check_augmentation,
    check_decomposition,
    check_pseudotransitivity,
    check_reflexivity,
    check_transitivity,
    check_union,
    derive_fd,
)
from repro.core.fd import FD
from repro.core.satisfaction import strongly_holds
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.logic.bridge import assignment_to_relation


class TestCheckers:
    def test_reflexivity(self):
        assert check_reflexivity("A B -> A")
        assert not check_reflexivity("A -> B")

    def test_augmentation(self):
        assert check_augmentation("A -> B", "A C -> B C")
        assert check_augmentation("A -> B", "A -> A B")  # Z ⊆ X allowed
        assert not check_augmentation("A -> B", "A C -> B")

    def test_transitivity(self):
        assert check_transitivity("A -> B", "B -> C", "A -> C")
        assert not check_transitivity("A -> B", "C -> D", "A -> D")

    def test_union(self):
        assert check_union("A -> B", "A -> C", "A -> B C")
        assert not check_union("A -> B", "B -> C", "A -> B C")

    def test_decomposition(self):
        assert check_decomposition("A -> B C", "A -> B")
        assert not check_decomposition("A -> B", "A -> C")

    def test_pseudotransitivity(self):
        assert check_pseudotransitivity("A -> B", "B C -> D", "A C -> D")
        assert not check_pseudotransitivity("A -> B", "C -> D", "A C -> D")


class TestDeriveFd:
    def test_derivation_for_paper_fds(self):
        derivation = derive_fd(["E# -> SL D#", "D# -> CT"], "E# -> CT")
        assert derivation is not None
        assert derivation.verify()

    def test_none_for_non_consequence(self):
        assert derive_fd(["A -> B"], "B -> A") is None


# ---------------------------------------------------------------------------
# Axiom soundness over relations WITH NULLS (strong satisfiability)
# ---------------------------------------------------------------------------

ALL = [TRUE, FALSE, UNKNOWN]


def _strong_in_all_two_tuple_worlds(premise_fds, conclusion_fd, attrs):
    """Check premises-strong => conclusion-strong over every two-tuple
    relation with nulls on `attrs` (via the assignment enumeration)."""
    for values in itertools.product(ALL, repeat=len(attrs)):
        assignment = dict(zip(attrs, values))
        for placement in (True, False):
            relation = assignment_to_relation(assignment, null_in_second=placement)
            if all(strongly_holds(fd, relation) for fd in premise_fds):
                if not strongly_holds(conclusion_fd, relation):
                    return False
    return True


class TestAxiomSoundnessWithNulls:
    """Armstrong's axioms remain sound on two-tuple relations with nulls
    under strong satisfiability (one half of Theorem 1), checked by brute
    force over every null pattern."""

    def test_reflexivity_sound(self):
        assert _strong_in_all_two_tuple_worlds([], FD("A B", "A"), ("A", "B"))

    def test_transitivity_sound(self):
        assert _strong_in_all_two_tuple_worlds(
            [FD("A", "B"), FD("B", "C")], FD("A", "C"), ("A", "B", "C")
        )

    def test_augmentation_sound(self):
        assert _strong_in_all_two_tuple_worlds(
            [FD("A", "B")], FD("A C", "B C"), ("A", "B", "C")
        )

    def test_union_sound(self):
        assert _strong_in_all_two_tuple_worlds(
            [FD("A", "B"), FD("A", "C")], FD("A", "B C"), ("A", "B", "C")
        )

    def test_pseudotransitivity_sound(self):
        assert _strong_in_all_two_tuple_worlds(
            [FD("A", "B"), FD("B C", "D")], FD("A C", "D"), ("A", "B", "C", "D")
        )

    def test_transitivity_not_weakly_sound(self):
        """The contrast: under WEAK satisfiability transitivity fails (the
        same phenomenon as section 6's example)."""
        from repro.core.satisfaction import weakly_holds

        found_gap = False
        for values in itertools.product(ALL, repeat=3):
            assignment = dict(zip(("A", "B", "C"), values))
            relation = assignment_to_relation(assignment)
            if weakly_holds(FD("A", "B"), relation) and weakly_holds(
                FD("B", "C"), relation
            ):
                if not weakly_holds(FD("A", "C"), relation):
                    found_gap = True
                    break
        assert found_gap
