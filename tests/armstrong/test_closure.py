"""Tests for attribute closure (naive and linear-time)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.closure import (
    attribute_closure,
    attribute_closure_linear,
    closure_trace,
)
from repro.core.fd import FD


class TestNaiveClosure:
    def test_chain(self):
        assert attribute_closure("A", ["A -> B", "B -> C"]) == {"A", "B", "C"}

    def test_needs_full_lhs(self):
        assert attribute_closure("A", ["A B -> C"]) == {"A"}
        assert attribute_closure("A B", ["A B -> C"]) == {"A", "B", "C"}

    def test_no_fds(self):
        assert attribute_closure("A B", []) == {"A", "B"}

    def test_cascading_multiattribute(self):
        fds = ["A -> B", "B C -> D", "A -> C"]
        assert attribute_closure("A", fds) == {"A", "B", "C", "D"}

    def test_cycle(self):
        fds = ["A -> B", "B -> A"]
        assert attribute_closure("A", fds) == {"A", "B"}
        assert attribute_closure("B", fds) == {"A", "B"}


class TestLinearClosure:
    def test_matches_naive_on_known_cases(self):
        cases = [
            ("A", ["A -> B", "B -> C"]),
            ("A B", ["A B -> C", "C -> D", "D -> A"]),
            ("C", ["A -> B"]),
            ("E#", ["E# -> SL D#", "D# -> CT"]),
        ]
        for seed, fds in cases:
            assert attribute_closure_linear(seed, fds) == attribute_closure(
                seed, fds
            )

    def test_fd_firing_once(self):
        # an FD whose LHS attribute appears twice in other FDs
        fds = ["A -> B", "A -> C", "B C -> D"]
        assert attribute_closure_linear("A", fds) == {"A", "B", "C", "D"}


class TestClosureTrace:
    def test_trace_replays_to_closure(self):
        fds = ["A -> B", "B -> C", "C -> D"]
        trace = closure_trace("A", fds)
        reached = {"A"}
        for fd, new in trace:
            assert set(fd.lhs) <= reached
            reached.update(new)
        assert reached == attribute_closure("A", fds)

    def test_trace_empty_when_nothing_fires(self):
        assert closure_trace("A", ["B -> C"]) == []


# ---------------------------------------------------------------------------
# property-based equivalence and algebraic laws
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D", "E"])
_side = st.lists(_attr, min_size=1, max_size=3, unique=True)


@st.composite
def fd_sets(draw, max_size=6):
    count = draw(st.integers(min_value=0, max_value=max_size))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@given(_side, fd_sets())
@settings(max_examples=150, deadline=None)
def test_linear_equals_naive(seed, fds):
    assert attribute_closure_linear(seed, fds) == attribute_closure(seed, fds)


@given(_side, fd_sets())
@settings(max_examples=100, deadline=None)
def test_closure_is_extensive_and_idempotent(seed, fds):
    closure = attribute_closure(seed, fds)
    assert set(seed) <= closure
    assert attribute_closure(tuple(closure), fds) == closure


@given(_side, _side, fd_sets())
@settings(max_examples=100, deadline=None)
def test_closure_is_monotone(seed_a, seed_b, fds):
    union = tuple(dict.fromkeys(seed_a + seed_b))
    assert attribute_closure(seed_a, fds) <= attribute_closure(union, fds)
