"""Tests for candidate-key enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.closure import attribute_closure_linear
from repro.armstrong.keys import (
    candidate_keys,
    is_candidate_key,
    is_superkey,
    prime_attributes,
    shrink_to_key,
)
from repro.core.fd import FD


class TestSuperkeys:
    def test_whole_scheme_is_superkey(self):
        assert is_superkey("A B", "A B", [])

    def test_determinant_chain(self):
        assert is_superkey("A B C", "A", ["A -> B", "B -> C"])

    def test_not_superkey(self):
        assert not is_superkey("A B C", "A", ["A -> B"])


class TestShrink:
    def test_shrinks_to_minimal(self):
        key = shrink_to_key("A B C", "A B C", ["A -> B", "B -> C"])
        assert key == ("A",)

    def test_deterministic_order(self):
        # both A and B alone are keys; shrinking tries A-removal first,
        # keeping B... then C; deterministic outcome
        key1 = shrink_to_key("A B", "A B", ["A -> B", "B -> A"])
        key2 = shrink_to_key("A B", "A B", ["A -> B", "B -> A"])
        assert key1 == key2


class TestCandidateKeys:
    def test_single_key(self):
        keys = candidate_keys("A B C", ["A -> B", "B -> C"])
        assert keys == [("A",)]

    def test_two_keys_cycle(self):
        keys = candidate_keys("A B", ["A -> B", "B -> A"])
        assert {frozenset(k) for k in keys} == {frozenset("A"), frozenset("B")}

    def test_paper_scheme(self):
        keys = candidate_keys("E# SL D# CT", ["E# -> SL D#", "D# -> CT"])
        assert keys == [("E#",)]

    def test_composite_key(self):
        keys = candidate_keys("A B C", ["A B -> C"])
        assert keys == [("A", "B")]

    def test_many_keys(self):
        # R(A,B,C) with A->B, B->C, C->A: every single attribute is a key
        keys = candidate_keys("A B C", ["A -> B", "B -> C", "C -> A"])
        assert {frozenset(k) for k in keys} == {
            frozenset("A"),
            frozenset("B"),
            frozenset("C"),
        }

    def test_no_fds_key_is_everything(self):
        assert candidate_keys("A B", []) == [("A", "B")]


class TestPrimeAttributes:
    def test_prime(self):
        prime = prime_attributes("A B C", ["A -> B", "B -> A", "A -> C"])
        assert prime == {"A", "B"}

    def test_is_candidate_key(self):
        fds = ["A -> B", "B -> C"]
        assert is_candidate_key("A B C", "A", fds)
        assert not is_candidate_key("A B C", "A B", fds)  # not minimal
        assert not is_candidate_key("A B C", "B", fds)  # not a superkey


# ---------------------------------------------------------------------------
# property-based key laws
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=2, unique=True)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@given(fd_sets())
@settings(max_examples=80, deadline=None)
def test_every_enumerated_key_is_candidate(fds):
    attrs = "A B C D"
    for key in candidate_keys(attrs, fds):
        assert is_candidate_key(attrs, key, fds)


@given(fd_sets())
@settings(max_examples=80, deadline=None)
def test_keys_are_pairwise_incomparable(fds):
    keys = [frozenset(k) for k in candidate_keys("A B C D", fds)]
    for i, first in enumerate(keys):
        for second in keys[i + 1 :]:
            assert not first <= second and not second <= first


@given(fd_sets())
@settings(max_examples=60, deadline=None)
def test_lucchesi_osborn_finds_all_keys_small_universe(fds):
    """Cross-check enumeration against brute force over all subsets."""
    import itertools

    attrs = ("A", "B", "C", "D")
    brute = set()
    for size in range(1, 5):
        for combo in itertools.combinations(attrs, size):
            if is_candidate_key(attrs, combo, fds):
                brute.add(frozenset(combo))
    assert {frozenset(k) for k in candidate_keys(attrs, fds)} == brute
