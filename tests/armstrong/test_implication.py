"""Tests for FD implication and FD-set equivalence — including the
Theorem 1 cross-check against System-C inference and against brute-force
strong satisfiability over relations with nulls."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.implication import (
    equivalent,
    implied_fds,
    implies,
    implies_all,
    is_redundant,
    membership_equivalence_class,
)
from repro.core.fd import FD
from repro.logic.implicational import infers


class TestImplies:
    def test_transitivity(self):
        assert implies(["A -> B", "B -> C"], "A -> C")

    def test_reflexivity(self):
        assert implies([], "A B -> A")

    def test_augmentation(self):
        assert implies(["A -> B"], "A C -> B C")

    def test_non_implication(self):
        assert not implies(["A -> B"], "B -> A")

    def test_paper_running_example(self):
        fds = ["E# -> SL D#", "D# -> CT"]
        assert implies(fds, "E# -> CT")
        assert implies(fds, "E# -> SL CT")
        assert not implies(fds, "SL -> E#")

    def test_implies_all(self):
        assert implies_all(["A -> B C"], ["A -> B", "A -> C"])
        assert not implies_all(["A -> B"], ["A -> B", "A -> C"])


class TestEquivalence:
    def test_union_decomposition_equivalence(self):
        assert equivalent(["A -> B C"], ["A -> B", "A -> C"])

    def test_inequivalent(self):
        assert not equivalent(["A -> B"], ["B -> A"])

    def test_fingerprints_agree_with_equivalence(self):
        first = ["A -> B C"]
        second = ["A -> B", "A -> C"]
        attrs = "A B C"
        assert membership_equivalence_class(
            first, attrs
        ) == membership_equivalence_class(second, attrs)

    def test_redundancy(self):
        fds = ["A -> B", "B -> C", "A -> C"]
        assert is_redundant(fds, 2)
        assert not is_redundant(fds, 0)


class TestImpliedFds:
    def test_small_universe(self):
        result = implied_fds(["A -> B", "B -> C"], "A B C")
        assert FD("A", "B C") in result
        assert FD("B", "C") in result
        assert all(not fd.is_trivial() for fd in result)

    def test_max_lhs_truncates(self):
        result = implied_fds(["A -> B"], "A B C D", max_lhs=1)
        assert all(len(fd.lhs) == 1 for fd in result)


# ---------------------------------------------------------------------------
# Theorem 1: Armstrong implication == System-C strong inference
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=2, unique=True)


@st.composite
def fd_sets(draw, max_size=4):
    count = draw(st.integers(min_value=0, max_value=max_size))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@st.composite
def single_fd(draw):
    return FD(tuple(draw(_side)), tuple(draw(_side)))


@given(fd_sets(), single_fd())
@settings(max_examples=100, deadline=None)
def test_theorem1_armstrong_equals_c_inference(fds, goal):
    """F ⊨ f by attribute closure iff the statements infer in C."""
    assert implies(fds, goal) == infers(fds, goal)


@given(fd_sets(max_size=2), single_fd())
@settings(max_examples=30, deadline=None)
def test_implication_refuted_by_two_tuple_relation(fds, goal):
    """When implication fails, the Lemma 4 witness relation separates the
    FD sets under strong satisfiability (completeness made concrete)."""
    from repro.core.satisfaction import strongly_holds
    from repro.logic.bridge import fd_counterexample_relation

    if implies(fds, goal):
        return
    witness = fd_counterexample_relation(fds, goal)
    assert witness is not None
    for fd in fds:
        assert strongly_holds(fd, witness)
    assert not strongly_holds(goal, witness)
