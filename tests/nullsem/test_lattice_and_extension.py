"""Tests for the approximation lattice and least extensions of functions."""

import pytest

from repro.core.domain import Domain
from repro.core.relation import Relation
from repro.core.truth import FALSE, TRUE, UNKNOWN, from_bool
from repro.core.values import NOTHING, is_null, null
from repro.errors import DomainError, SchemaError
from repro.nullsem.lattice import (
    information_content,
    is_consistent_pair,
    row_approximates,
    row_lub,
    rows_lub,
)
from repro.nullsem.least_extension import (
    least_extension_truth,
    least_extension_value,
    substitutions,
)

from ..helpers import rel, schema_of


class TestRowLattice:
    def test_row_lub_pointwise(self):
        schema = schema_of("A B")
        first = rel(schema, [("x", "-")])[0]
        second = rel(schema, [("x", "y")])[0]
        joined = row_lub(first, second)
        assert joined.values == ("x", "y")

    def test_row_lub_conflict_is_nothing(self):
        schema = schema_of("A")
        first = rel(schema, [("x",)])[0]
        second = rel(schema, [("y",)])[0]
        assert row_lub(first, second).values == (NOTHING,)

    def test_row_lub_schema_mismatch(self):
        with pytest.raises(SchemaError):
            row_lub(rel("A", [("x",)])[0], rel("B", [("x",)])[0])

    def test_rows_lub_many(self):
        schema = schema_of("A B")
        r = rel(schema, [("x", "-"), ("-", "y")])
        joined = rows_lub(r.rows)
        assert joined.values == ("x", "y")
        assert rows_lub([]) is None

    def test_consistency(self):
        schema = schema_of("A B")
        r = rel(schema, [("x", "-"), ("x", "y"), ("z", "y")])
        assert is_consistent_pair(r[0], r[1])
        assert not is_consistent_pair(r[1], r[2])

    def test_information_content(self):
        r = rel("A B C", [("x", "-", "-")])
        assert information_content(r[0]) == 1

    def test_approximation_via_completion(self):
        r = rel("A B", [("x", "-")], domains={"B": ["u", "v"]})
        for completed in r[0].completions():
            assert row_approximates(r[0], completed)


class TestSubstitutions:
    def test_grounds_nulls_over_domains(self):
        d = Domain(["u", "v"])
        grounded = list(substitutions((null(), "k"), [d, d]))
        assert [g[0] for g in grounded] == ["u", "v"]
        assert all(g[1] == "k" for g in grounded)

    def test_shared_null_consistent(self):
        n = null()
        d = Domain(["u", "v"])
        grounded = list(substitutions((n, n), [d, d]))
        assert grounded == [("u", "u"), ("v", "v")]

    def test_shared_null_intersects_domains(self):
        n = null()
        grounded = list(
            substitutions((n, n), [Domain(["u", "v"]), Domain(["v", "w"])])
        )
        assert grounded == [("v", "v")]

    def test_arity_mismatch(self):
        with pytest.raises(DomainError):
            list(substitutions(("x",), []))


class TestLeastExtensionTruth:
    """The paper's Q / Q' example."""

    MARITAL = Domain(["married", "single"], name="marital-status")

    def test_q_is_unknown(self):
        # Q: "Is John married?" -> lub{yes, no} = unknown
        is_married = least_extension_truth(
            lambda status: from_bool(status == "married"), [self.MARITAL]
        )
        assert is_married(null()) is UNKNOWN

    def test_q_prime_is_yes(self):
        # Q': "Is John married or single?" -> lub{yes, yes} = yes
        married_or_single = least_extension_truth(
            lambda status: from_bool(status in ("married", "single")),
            [self.MARITAL],
        )
        assert married_or_single(null()) is TRUE

    def test_definite_inputs_pass_through(self):
        is_married = least_extension_truth(
            lambda status: from_bool(status == "married"), [self.MARITAL]
        )
        assert is_married("married") is TRUE
        assert is_married("single") is FALSE

    def test_all_no_is_no(self):
        is_other = least_extension_truth(
            lambda status: from_bool(status == "divorced"), [self.MARITAL]
        )
        assert is_other(null()) is FALSE


class TestLeastExtensionValue:
    def test_agreeing_function_collapses(self):
        d = Domain([1, 2, 3])
        constant_7 = least_extension_value(lambda x: 7, [d])
        assert constant_7(null()) == 7

    def test_disagreeing_function_returns_null(self):
        d = Domain([1, 2, 3])
        double = least_extension_value(lambda x: x * 2, [d])
        assert is_null(double(null()))

    def test_partial_nulls(self):
        d = Domain([1, 2])
        add = least_extension_value(lambda x, y: x + y, [d, d])
        assert add(1, 2) == 3
        assert is_null(add(null(), 2))

    def test_insensitive_argument(self):
        d = Domain([1, 2])
        first = least_extension_value(lambda x, y: x, [d, d])
        assert first(1, null()) == 1
