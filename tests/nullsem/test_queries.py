"""Tests for query evaluation over rows with nulls (section 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.truth import FALSE, TRUE, UNKNOWN, is_definite
from repro.core.values import null
from repro.nullsem.queries import (
    AndP,
    AttrEq,
    Eq,
    In,
    NotP,
    OrP,
    evaluate_kleene,
    evaluate_least_extension,
    referenced_attributes,
    select,
)

from ..helpers import rel, schema_of


def _john(status="-"):
    return rel(
        "name marital",
        [("John", status)],
        domains={"marital": ["married", "single"]},
    )[0]


class TestPaperExample:
    def test_q_unknown_under_both(self):
        q = Eq("marital", "married")
        row = _john()
        assert evaluate_least_extension(q, row) is UNKNOWN
        assert evaluate_kleene(q, row) is UNKNOWN

    def test_q_prime_separates_the_evaluators(self):
        q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
        row = _john()
        # least extension sees the domain is exhausted: yes
        assert evaluate_least_extension(q_prime, row) is TRUE
        # Kleene cannot: unknown
        assert evaluate_kleene(q_prime, row) is UNKNOWN

    def test_definite_row_agrees(self):
        q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
        assert evaluate_least_extension(q_prime, _john("married")) is TRUE
        assert evaluate_kleene(q_prime, _john("married")) is TRUE


class TestPredicates:
    def test_in_predicate(self):
        row = _john()
        assert evaluate_least_extension(In("marital", ("married", "single")), row) is TRUE
        assert evaluate_least_extension(In("marital", ("married",)), row) is UNKNOWN

    def test_negation_duality(self):
        row = _john()
        q = Eq("marital", "married")
        not_q = NotP(q)
        assert evaluate_least_extension(not_q, row) is UNKNOWN
        impossible = NotP(OrP((Eq("marital", "married"), Eq("marital", "single"))))
        assert evaluate_least_extension(impossible, row) is FALSE

    def test_attr_eq_with_shared_null(self):
        n = null()
        schema = schema_of("A B")
        row = Relation(schema, [(n, n)])[0]
        assert evaluate_least_extension(AttrEq("A", "B"), row) is TRUE
        assert evaluate_kleene(AttrEq("A", "B"), row) is TRUE

    def test_attr_eq_with_distinct_nulls_unbounded(self):
        row = rel("A B", [("-", "-")])[0]
        assert evaluate_least_extension(AttrEq("A", "B"), row) is UNKNOWN

    def test_attr_eq_null_vs_constant_unbounded(self):
        row = rel("A B", [("-", "x")])[0]
        # the null could be 'x' or something else
        assert evaluate_least_extension(AttrEq("A", "B"), row) is UNKNOWN

    def test_attr_eq_singleton_domain_forced(self):
        row = rel("A B", [("-", "x")], domains={"A": ["x"]})[0]
        assert evaluate_least_extension(AttrEq("A", "B"), row) is TRUE

    def test_unreferenced_nulls_do_not_matter(self):
        row = rel("A B C", [("x", "-", "-")])[0]
        assert evaluate_least_extension(Eq("A", "x"), row) is TRUE

    def test_referenced_attributes(self):
        pred = AndP((Eq("A", 1), NotP(AttrEq("B", "C"))))
        assert referenced_attributes(pred) == {"A", "B", "C"}


class TestSelect:
    def _people(self):
        return rel(
            "name marital",
            [
                ("John", "-"),
                ("Mary", "married"),
                ("Ann", "single"),
            ],
            domains={"marital": ["married", "single"]},
        )

    def test_certain_selection(self):
        out = select(self._people(), Eq("marital", "married"), mode="certain")
        assert [row["name"] for row in out] == ["Mary"]

    def test_possible_selection(self):
        out = select(self._people(), Eq("marital", "married"), mode="possible")
        assert [row["name"] for row in out] == ["John", "Mary"]

    def test_exhaustive_predicate_certain_for_all(self):
        q_prime = OrP((Eq("marital", "married"), Eq("marital", "single")))
        out = select(self._people(), q_prime, mode="certain")
        assert len(out) == 3

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            select(self._people(), Eq("marital", "married"), mode="maybe")


# ---------------------------------------------------------------------------
# property: Kleene is a sound under-approximation of the least extension
# ---------------------------------------------------------------------------

_preds = st.deferred(
    lambda: st.one_of(
        st.builds(Eq, st.sampled_from(["A", "B"]), st.sampled_from(["u", "v", "w"])),
        st.builds(AttrEq, st.just("A"), st.just("B")),
        st.builds(NotP, _preds),
        st.builds(lambda p, q: AndP((p, q)), _preds, _preds),
        st.builds(lambda p, q: OrP((p, q)), _preds, _preds),
    )
)

_cells = st.sampled_from(["u", "v", None])


@given(_preds, _cells, _cells)
@settings(max_examples=200, deadline=None)
def test_kleene_refined_by_least_extension(pred, a_val, b_val):
    row = rel(
        "A B",
        [(a_val or "-", b_val or "-")],
        domains={"A": ["u", "v", "w"], "B": ["u", "v", "w"]},
    )[0]
    kleene = evaluate_kleene(pred, row)
    exact = evaluate_least_extension(pred, row)
    if is_definite(kleene):
        assert exact is kleene


@given(_preds, _cells, _cells)
@settings(max_examples=100, deadline=None)
def test_least_extension_matches_full_enumeration(pred, a_val, b_val):
    """The relevant-nulls shortcut equals grounding the whole row."""
    from repro.core.truth import from_bool, lub
    from repro.nullsem.queries import _evaluate_total

    row = rel(
        "A B C",
        [(a_val or "-", b_val or "-", "-")],  # C is never referenced
        domains={"A": ["u", "v", "w"], "B": ["u", "v", "w"], "C": ["u", "v"]},
    )[0]
    exact = evaluate_least_extension(pred, row)
    brute = lub(
        from_bool(_evaluate_total(pred, grounded))
        for grounded in row.completions()
    )
    assert exact is brute
