"""Tests for the FD ↔ implicational bridge: Lemmas 3 and 4, exhaustively."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.core.satisfaction import strongly_holds
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.errors import ReproError
from repro.logic.bridge import (
    assignment_to_relation,
    fd_counterexample_relation,
    fd_strongly_holds_two_tuple,
    lemma3_agrees,
    relation_to_assignment,
)
from repro.logic.implicational import ImplicationalStatement
from repro.logic.system_c import assignments_over

from ..helpers import rel

ALL = [TRUE, FALSE, UNKNOWN]


class TestAssignmentToRelation:
    def test_true_gives_equal_constants(self):
        r = assignment_to_relation({"A": TRUE})
        assert r[0]["A"] == r[1]["A"]

    def test_false_gives_distinct_constants(self):
        r = assignment_to_relation({"A": FALSE})
        assert r[0]["A"] != r[1]["A"]

    def test_unknown_gives_one_null(self):
        r = assignment_to_relation({"A": UNKNOWN})
        from repro.core.values import is_null

        values = [r[0]["A"], r[1]["A"]]
        assert sum(1 for v in values if is_null(v)) == 1

    def test_null_placement_flag(self):
        r_second = assignment_to_relation({"A": UNKNOWN}, null_in_second=True)
        r_first = assignment_to_relation({"A": UNKNOWN}, null_in_second=False)
        from repro.core.values import is_null

        assert is_null(r_second[1]["A"]) and not is_null(r_second[0]["A"])
        assert is_null(r_first[0]["A"]) and not is_null(r_first[1]["A"])

    def test_round_trip(self):
        assignment = {"A": TRUE, "B": FALSE, "C": UNKNOWN}
        r = assignment_to_relation(assignment)
        assert relation_to_assignment(r) == assignment


class TestRelationToAssignment:
    def test_requires_two_tuples(self):
        with pytest.raises(ReproError):
            relation_to_assignment(rel("A", [("x",)]))

    def test_both_null_reads_unknown(self):
        r = rel("A", [("-",), ("-",)])
        assert relation_to_assignment(r) == {"A": UNKNOWN}

    def test_fd_strongly_holds_requires_two_tuples(self):
        with pytest.raises(ReproError):
            fd_strongly_holds_two_tuple("A -> A", rel("A", [("x",)]))


class TestLemma3Exhaustive:
    """Lemma 3 over every assignment of two and three attributes, both null
    placements — the paper's equivalence, verified wholesale."""

    def test_two_attributes_fd_a_to_b(self):
        for a_val, b_val in itertools.product(ALL, ALL):
            assignment = {"A": a_val, "B": b_val}
            for placement in (True, False):
                assert lemma3_agrees("A -> B", assignment, null_in_second=placement), (
                    f"Lemma 3 fails at {assignment} placement={placement}"
                )

    def test_three_attributes_all_fd_shapes(self):
        fds = ["A -> B", "A B -> C", "C -> A B", "A -> B C"]
        for values in itertools.product(ALL, repeat=3):
            assignment = dict(zip("ABC", values))
            for fd in fds:
                for placement in (True, False):
                    assert lemma3_agrees(fd, assignment, null_in_second=placement), (
                        f"Lemma 3 fails for {fd} at {assignment} "
                        f"placement={placement}"
                    )

    def test_statement_true_iff_fd_strong(self):
        # spot-check the two directions separately on a mixed assignment
        assignment = {"A": UNKNOWN, "B": TRUE}
        statement = ImplicationalStatement("A", "B")
        relation = assignment_to_relation(assignment)
        assert statement.evaluate(assignment) is TRUE
        assert strongly_holds(FD("A", "B"), relation)


class TestLemma4Witnesses:
    def test_invalid_inference_realized_as_relation(self):
        witness = fd_counterexample_relation(["A -> B"], "B -> A")
        assert witness is not None
        # premises strongly hold in the witness, the conclusion does not
        assert strongly_holds(FD("A", "B"), witness)
        assert not strongly_holds(FD("B", "A"), witness)

    def test_valid_inference_has_no_witness(self):
        assert fd_counterexample_relation(["A -> B", "B -> C"], "A -> C") is None

    def test_weak_witness_for_transitivity(self):
        from repro.core.satisfaction import weakly_holds

        witness = fd_counterexample_relation(
            ["A -> B", "B -> C"], "A -> C", weak=True
        )
        assert witness is not None
        assert weakly_holds(FD("A", "B"), witness)
        assert weakly_holds(FD("B", "C"), witness)
        assert not weakly_holds(FD("A", "C"), witness)


# ---------------------------------------------------------------------------
# property-based Lemma 3
# ---------------------------------------------------------------------------

truth_values = st.sampled_from(ALL)


@given(
    st.fixed_dictionaries(
        {"A": truth_values, "B": truth_values, "C": truth_values, "D": truth_values}
    ),
    st.sampled_from(["A -> B", "A B -> C D", "D -> A", "B C -> A", "A D -> B C"]),
    st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_lemma3_property(assignment, fd, placement):
    assert lemma3_agrees(fd, assignment, null_in_second=placement)
