"""Tests for the I1-I4 derivation system: soundness, completeness, proofs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.derivation import (
    RULE_AUGMENTATION,
    RULE_DECOMPOSITION,
    RULE_PREMISE,
    RULE_REFLEXIVITY,
    RULE_TRANSITIVITY,
    RULE_UNION,
    Step,
    check_step,
    derivable,
    derive,
    variable_closure,
)
from repro.logic.implicational import ImplicationalStatement, infers

S = ImplicationalStatement


class TestVariableClosure:
    def test_basic_chain(self):
        closure = variable_closure(["A"], ["A => B", "B => C"])
        assert closure == {"A", "B", "C"}

    def test_requires_full_lhs(self):
        closure = variable_closure(["A"], ["A B => C"])
        assert closure == {"A"}

    def test_multi_attribute_seed(self):
        closure = variable_closure(["A", "B"], ["A B => C", "C => D"])
        assert closure == {"A", "B", "C", "D"}


class TestDerivable:
    def test_transitivity(self):
        assert derivable(["A => B", "B => C"], "A => C")

    def test_not_derivable(self):
        assert not derivable(["A => B"], "B => A")

    def test_reflexivity_from_empty(self):
        assert derivable([], "A B => B")


class TestCheckStep:
    def test_premise_must_occur(self):
        step = Step(S("A", "B"), RULE_PREMISE)
        assert check_step(step, ["A => B"])
        assert not check_step(step, ["A => C"])

    def test_reflexivity(self):
        assert check_step(Step(S("A B", "A"), RULE_REFLEXIVITY), [])
        assert not check_step(Step(S("A", "B"), RULE_REFLEXIVITY), [])

    def test_augmentation(self):
        inner = Step(S("A", "B"), RULE_PREMISE)
        good = Step(S("A C", "B C"), RULE_AUGMENTATION, (inner,))
        assert check_step(good, ["A => B"])
        # augmenting with Z already inside X is fine: A => B gives A => A B
        also_good = Step(S("A", "A B"), RULE_AUGMENTATION, (inner,))
        assert check_step(also_good, ["A => B"])
        bad = Step(S("A C", "B"), RULE_AUGMENTATION, (inner,))
        assert not check_step(bad, ["A => B"])

    def test_transitivity(self):
        first = Step(S("A", "B"), RULE_PREMISE)
        second = Step(S("B", "C"), RULE_PREMISE)
        good = Step(S("A", "C"), RULE_TRANSITIVITY, (first, second))
        assert check_step(good, ["A => B", "B => C"])
        bad = Step(S("A", "C"), RULE_TRANSITIVITY, (second, first))
        assert not check_step(bad, ["A => B", "B => C"])

    def test_decomposition(self):
        inner = Step(S("A", "B C"), RULE_PREMISE)
        assert check_step(Step(S("A", "B"), RULE_DECOMPOSITION, (inner,)), ["A => B C"])
        assert not check_step(
            Step(S("A", "D"), RULE_DECOMPOSITION, (inner,)), ["A => B C"]
        )

    def test_union(self):
        first = Step(S("A", "B"), RULE_PREMISE)
        second = Step(S("A", "C"), RULE_PREMISE)
        good = Step(S("A", "B C"), RULE_UNION, (first, second))
        assert check_step(good, ["A => B", "A => C"])

    def test_unknown_rule_rejected(self):
        assert not check_step(Step(S("A", "B"), "made-up"), ["A => B"])


class TestDerive:
    def test_none_when_underivable(self):
        assert derive(["A => B"], "C => B") is None

    def test_derivation_verifies(self):
        derivation = derive(["A => B", "B => C"], "A => C")
        assert derivation is not None
        assert derivation.verify()
        assert len(derivation) >= 3

    def test_derivation_render_mentions_rules(self):
        derivation = derive(["A => B", "B => C"], "A => C")
        text = derivation.render()
        assert "I2-transitivity" in text
        assert "premise" in text

    def test_reflexive_goal(self):
        derivation = derive([], "A B => A")
        assert derivation is not None and derivation.verify()

    def test_goal_with_multi_rhs(self):
        derivation = derive(["A => B", "B => C"], "A => B C")
        assert derivation is not None and derivation.verify()

    def test_deep_chain(self):
        premises = [f"V{i} => V{i + 1}" for i in range(8)]
        derivation = derive(premises, "V0 => V8")
        assert derivation is not None and derivation.verify()


# ---------------------------------------------------------------------------
# soundness + completeness against semantic inference (Lemma 2)
# ---------------------------------------------------------------------------

_sides = st.lists(
    st.sampled_from(["A", "B", "C", "D"]), min_size=1, max_size=3, unique=True
)


@st.composite
def statements(draw):
    return S(tuple(draw(_sides)), tuple(draw(_sides)))


@given(st.lists(statements(), max_size=4), statements())
@settings(max_examples=100, deadline=None)
def test_lemma2_soundness_and_completeness(premises, goal):
    """Derivable(I1-I4) == strongly inferred in C (Lemma 2), exhaustively."""
    assert derivable(premises, goal) == infers(premises, goal)


@given(st.lists(statements(), max_size=3), statements())
@settings(max_examples=50, deadline=None)
def test_constructed_proofs_always_verify(premises, goal):
    derivation = derive(premises, goal)
    if derivation is not None:
        assert derivation.verify()
        # derivations are over the normalized fragment
        assert derivation.root.statement == goal.normalized()
