"""Tests for implicational statements and (weak) logical inference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.errors import SchemaError
from repro.logic.implicational import (
    ImplicationalStatement,
    as_statement,
    counterexample,
    infers,
    strong_consequences,
)
from repro.logic.system_c import assignments_over


class TestSyntax:
    def test_parse(self):
        s = ImplicationalStatement.parse("A B => C")
        assert s.lhs == ("A", "B") and s.rhs == ("C",)

    def test_parse_rejects_garbage(self):
        with pytest.raises(SchemaError):
            ImplicationalStatement.parse("A B C")

    def test_fd_round_trip(self):
        fd = FD("A B", "C")
        assert ImplicationalStatement.from_fd(fd).to_fd() == fd

    def test_as_statement_coercions(self):
        assert as_statement("A => B") == ImplicationalStatement("A", "B")
        assert as_statement(FD("A", "B")) == ImplicationalStatement("A", "B")

    def test_set_equality(self):
        assert ImplicationalStatement("A B", "C") == ImplicationalStatement("B A", "C")

    def test_variables_sorted(self):
        assert ImplicationalStatement("B", "A C").variables == ("A", "B", "C")


class TestEvaluation:
    def test_rule_one_reflexive_statement(self):
        s = ImplicationalStatement("A B", "A")
        for assignment in assignments_over(["A", "B"]):
            assert s.evaluate(assignment) is TRUE

    def test_kleene_table_single_vars(self):
        s = ImplicationalStatement("A", "B")
        table = {
            (TRUE, TRUE): TRUE,
            (TRUE, FALSE): FALSE,
            (TRUE, UNKNOWN): UNKNOWN,
            (FALSE, TRUE): TRUE,
            (FALSE, FALSE): TRUE,
            (FALSE, UNKNOWN): TRUE,
            (UNKNOWN, TRUE): TRUE,
            (UNKNOWN, FALSE): UNKNOWN,
            (UNKNOWN, UNKNOWN): UNKNOWN,
        }
        for (a, b), expected in table.items():
            assert s.evaluate({"A": a, "B": b}) is expected

    def test_fast_evaluation_agrees_with_formula(self):
        statements = [
            ImplicationalStatement("A", "B"),
            ImplicationalStatement("A B", "C"),
            ImplicationalStatement("A", "B C"),
            ImplicationalStatement("A B", "B"),
            ImplicationalStatement("A B", "A B"),
        ]
        for s in statements:
            for assignment in assignments_over(s.variables):
                assert s.evaluate(assignment) is s.evaluate_fast(assignment)


class TestInference:
    def test_transitivity_chain(self):
        assert infers(["A => B", "B => C"], "A => C")

    def test_augmentation(self):
        assert infers(["A => B"], "A C => B C")

    def test_no_inference_without_connection(self):
        assert not infers(["A => B"], "B => A")
        assert not infers(["A => B"], "C => B")

    def test_union_and_decomposition(self):
        assert infers(["A => B", "A => C"], "A => B C")
        assert infers(["A => B C"], "A => B")

    def test_reflexivity_from_nothing(self):
        assert infers([], "A B => A")

    def test_counterexample_is_a_witness(self):
        witness = counterexample(["A => B"], "B => A")
        assert witness is not None
        s_premise = ImplicationalStatement("A", "B")
        s_goal = ImplicationalStatement("B", "A")
        assert s_premise.evaluate(witness) is TRUE
        assert s_goal.evaluate(witness) is not TRUE

    def test_counterexample_none_for_valid(self):
        assert counterexample(["A => B", "B => C"], "A => C") is None


class TestWeakInference:
    def test_weak_transitivity_fails(self):
        """Weak inference does NOT support transitivity.

        a(A)=true, a(B)=unknown, a(C)=false keeps both premises not-false
        (A=>B is unknown, B=>C is unknown) while A=>C is false — mirroring
        section 6's observation that FDs cannot be tested for weak
        satisfiability independently.
        """
        assert not infers(["A => B", "B => C"], "A => C", weak=True)
        witness = counterexample(["A => B", "B => C"], "A => C", weak=True)
        assert witness is not None
        assert witness["A"] is TRUE and witness["C"] is FALSE

    def test_weak_reflexivity_still_holds(self):
        assert infers([], "A B => A", weak=True)

    def test_weak_decomposition_holds(self):
        # X => YZ not-false forces X => Y not-false: And can only lose truth
        assert infers(["A => B C"], "A => B", weak=True)

    def test_strong_inference_does_not_imply_weak(self):
        # the classic gap: transitivity is strongly valid, weakly invalid
        assert infers(["A => B", "B => C"], "A => C", weak=False)
        assert not infers(["A => B", "B => C"], "A => C", weak=True)


class TestStrongConsequences:
    def test_small_universe(self):
        consequences = strong_consequences(["A => B"], ["A", "B"])
        assert ImplicationalStatement("A", "B") in consequences
        assert ImplicationalStatement("A", "A B") in consequences
        assert ImplicationalStatement("B", "B") in consequences
        assert ImplicationalStatement("B", "A") not in consequences


# ---------------------------------------------------------------------------
# property-based checks
# ---------------------------------------------------------------------------

_sides = st.lists(
    st.sampled_from(["A", "B", "C"]), min_size=1, max_size=3, unique=True
)


@st.composite
def statements(draw):
    return ImplicationalStatement(tuple(draw(_sides)), tuple(draw(_sides)))


@given(statements(), statements())
@settings(max_examples=80, deadline=None)
def test_inference_is_reflexive_and_monotone(s1, s2):
    assert infers([s1], s1)
    assert infers([s1, s2], s1)


@given(statements())
@settings(max_examples=80, deadline=None)
def test_weak_inference_from_self(s):
    assert infers([s], s, weak=True)


@given(st.lists(statements(), max_size=3), statements())
@settings(max_examples=60, deadline=None)
def test_strong_inference_decided_consistently_with_c_evaluation(premises, goal):
    """infers() agrees with raw C evaluation of the *normalized* statements."""
    from repro.core.truth import TRUE as T

    norm_premises = [p.normalized() for p in premises]
    norm_goal = goal.normalized()
    names = sorted(
        {v for s in norm_premises for v in s.variables} | set(norm_goal.variables)
    )
    expected = all(
        norm_goal.evaluate(a) is T
        for a in assignments_over(names)
        if all(p.evaluate(a) is T for p in norm_premises)
    )
    assert infers(premises, goal) == expected


class TestNormalizedFragment:
    """The divergence that motivates boundary normalization (see module doc)."""

    def test_unnormalized_statement_diverges_from_fd_reading(self):
        # V(A => AB) is unknown at a = {A: unknown, B: true} ...
        raw = ImplicationalStatement("A", "A B")
        a = {"A": UNKNOWN, "B": TRUE}
        assert raw.evaluate(a) is UNKNOWN
        # ... while the FD-equivalent normalized statement is true.
        assert raw.normalized() == ImplicationalStatement("A", "B")
        assert raw.normalized().evaluate(a) is TRUE

    def test_augmentation_unsound_on_raw_statements(self):
        # premises true, raw augmented conclusion not true
        premise = ImplicationalStatement("A", "B")
        conclusion = ImplicationalStatement("A C", "B C")
        a = {"A": TRUE, "B": TRUE, "C": UNKNOWN}
        assert premise.evaluate(a) is TRUE
        assert conclusion.evaluate(a) is UNKNOWN
        # normalized, the inference is accepted (and sound)
        assert infers([premise], conclusion)

    def test_trivial_statements(self):
        assert ImplicationalStatement("A B", "A").is_trivial()
        trivial = ImplicationalStatement("A B", "B A").normalized()
        assert trivial.is_trivial()
