"""Tests for the System C evaluation scheme (rules 1-5) and its quirks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.logic.syntax import And, Nec, Not, Or, Var, conj, implies
from repro.logic.system_c import (
    assignments_over,
    evaluate,
    evaluate_truth_functional,
    is_c_tautology,
)
from repro.logic.tautology import is_contradiction, is_tautology

p, q = Var("p"), Var("q")


class TestTautologyOracle:
    def test_excluded_middle(self):
        assert is_tautology(Or((p, Not(p))))

    def test_variable_not_tautology(self):
        assert not is_tautology(p)

    def test_implication_tautology_iff_rhs_subset(self):
        assert is_tautology(implies(conj("A B"), conj("A")))
        assert not is_tautology(implies(conj("A"), conj("A B")))

    def test_modal_subformulas_are_opaque(self):
        # Vp ∨ ¬Vp is a tautology by skeleton; Vp ∨ ¬p is not.
        assert is_tautology(Or((Nec(p), Not(Nec(p)))))
        assert not is_tautology(Or((Nec(p), Not(p))))

    def test_contradiction(self):
        assert is_contradiction(And((p, Not(p))))
        assert not is_contradiction(p)


class TestEvaluationRules:
    def test_rule2_variable(self):
        for value in (TRUE, FALSE, UNKNOWN):
            assert evaluate(p, {"p": value}) is value

    def test_rule3_negation(self):
        assert evaluate(Not(p), {"p": TRUE}) is FALSE
        assert evaluate(Not(p), {"p": FALSE}) is TRUE
        assert evaluate(Not(p), {"p": UNKNOWN}) is UNKNOWN

    def test_rule4_kleene(self):
        a = {"p": UNKNOWN, "q": TRUE}
        assert evaluate(Or((p, q)), a) is TRUE
        assert evaluate(And((p, q)), a) is UNKNOWN

    def test_rule5_necessity_collapses_unknown(self):
        assert evaluate(Nec(p), {"p": TRUE}) is TRUE
        assert evaluate(Nec(p), {"p": FALSE}) is FALSE
        assert evaluate(Nec(p), {"p": UNKNOWN}) is FALSE

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate(p, {})


class TestRuleOnePrecedence:
    """The paper's worked example: p ∨ ¬p."""

    def test_paper_example_p_or_not_p(self):
        formula = Or((p, Not(p)))
        a = {"p": UNKNOWN}
        # Rule 1 fires: the formula is a two-valued tautology.
        assert evaluate(formula, a) is TRUE
        # "if evaluated without rule 1 it has the value unknown"
        assert evaluate_truth_functional(formula, a) is UNKNOWN

    def test_non_truth_functionality(self):
        # p∧¬p and its negation: the negation is a tautology (true), while
        # the conjunction itself evaluates to unknown — C assigns different
        # values to Q and ¬¬Q in general.
        contradiction = And((p, Not(p)))
        a = {"p": UNKNOWN}
        assert evaluate(contradiction, a) is UNKNOWN
        assert evaluate(Not(contradiction), a) is TRUE

    def test_rule_one_applies_at_depth(self):
        # V(...) of a tautology: rule 1 on the operand makes Nec true.
        formula = Nec(Or((p, Not(p))))
        assert evaluate(formula, {"p": UNKNOWN}) is TRUE


class TestCTautologies:
    def test_classical_tautologies_are_c_tautologies(self):
        assert is_c_tautology(Or((p, Not(p))))
        assert is_c_tautology(implies(conj("A B"), conj("B")))

    def test_modal_t_axiom(self):
        # Vp => p holds under V: if Vp true then p true; if Vp false the
        # implication's antecedent is false... but with unknown p, ¬Vp is
        # true, so the implication is true: a C-tautology.
        assert is_c_tautology(implies(Nec(p), p))

    def test_p_implies_nec_p_fails(self):
        # p => Vp is NOT a C-tautology (p unknown: ¬p ∨ Vp = unknown ∨ false).
        assert not is_c_tautology(implies(p, Nec(p)))

    def test_variable_is_not(self):
        assert not is_c_tautology(p)


class TestAssignmentEnumeration:
    def test_counts(self):
        assert len(list(assignments_over(["a", "b"]))) == 9
        assert len(list(assignments_over([]))) == 1

    def test_covers_all_values(self):
        seen = {frozenset(a.items()) for a in assignments_over(["x"])}
        assert len(seen) == 3


# ---------------------------------------------------------------------------
# property-based structure checks
# ---------------------------------------------------------------------------

truth_values = st.sampled_from([TRUE, FALSE, UNKNOWN])


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return Var(draw(st.sampled_from("pqr")))
    kind = draw(st.sampled_from(["var", "not", "and", "or", "nec"]))
    if kind == "var":
        return Var(draw(st.sampled_from("pqr")))
    if kind in ("not", "nec"):
        inner = draw(formulas(depth=depth - 1))
        return Not(inner) if kind == "not" else Nec(inner)
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return And((left, right)) if kind == "and" else Or((left, right))


def _has_nec(node):
    if isinstance(node, Nec):
        return True
    if hasattr(node, "operand"):
        return _has_nec(node.operand)
    if hasattr(node, "operands"):
        return any(_has_nec(op) for op in node.operands)
    return False


@given(formulas(), st.fixed_dictionaries({"p": truth_values, "q": truth_values, "r": truth_values}))
@settings(max_examples=150, deadline=None)
def test_rule_one_refines_kleene_on_nec_free_formulas(formula, assignment):
    """For Nec-free formulas, V only *refines* the Kleene value.

    Rule 1 promotes tautologous subformulas from unknown to true; Kleene
    connectives are monotone in the information order, so a definite Kleene
    value is never changed — only unknowns can become definite.  (With the
    modal operator this fails — Nec is not monotone — which is why the
    property is restricted; C's non-truth-functional surprises live there.)
    """
    if _has_nec(formula):
        return
    with_rule = evaluate(formula, assignment)
    without_rule = evaluate_truth_functional(formula, assignment)
    assert without_rule is UNKNOWN or with_rule is without_rule


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_two_valued_assignments_agree_with_classical_logic(formula):
    """On definite assignments without modal operators, V is classical."""
    from repro.logic.syntax import variables_of
    from repro.logic.tautology import evaluate_two_valued
    from repro.logic.syntax import Nec as NecCls

    def has_nec(node):
        if isinstance(node, NecCls):
            return True
        if hasattr(node, "operand"):
            return has_nec(node.operand)
        if hasattr(node, "operands"):
            return any(has_nec(op) for op in node.operands)
        return False

    if has_nec(formula):
        return
    names = variables_of(formula)
    for bits in [
        dict(zip(names, combo))
        for combo in __import__("itertools").product([True, False], repeat=len(names))
    ]:
        classical = evaluate_two_valued(
            formula, {Var(n): v for n, v in bits.items()}
        )
        three_valued = evaluate(
            formula, {n: (TRUE if v else FALSE) for n, v in bits.items()}
        )
        assert three_valued is (TRUE if classical else FALSE)
