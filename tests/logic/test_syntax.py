"""Tests for System C formula syntax."""

import pytest

from repro.logic.syntax import (
    And,
    Nec,
    Not,
    Or,
    Var,
    conj,
    implies,
    variables_of,
)


class TestConstruction:
    def test_var(self):
        assert Var("p").name == "p"
        assert repr(Var("p")) == "p"

    def test_structural_equality_and_hash(self):
        assert Var("p") == Var("p")
        assert Not(Var("p")) == Not(Var("p"))
        assert hash(And((Var("p"), Var("q")))) == hash(And((Var("p"), Var("q"))))
        assert And((Var("p"), Var("q"))) != And((Var("q"), Var("p")))

    def test_empty_connectives_rejected(self):
        with pytest.raises(ValueError):
            And(())
        with pytest.raises(ValueError):
            Or(())

    def test_operator_sugar(self):
        p, q = Var("p"), Var("q")
        assert ~p == Not(p)
        assert (p & q) == And((p, q))
        assert (p | q) == Or((p, q))
        assert (p >> q) == Or((Not(p), q))


class TestBuilders:
    def test_conj_single_variable_is_bare_var(self):
        assert conj("A") == Var("A")
        assert conj(["A"]) == Var("A")

    def test_conj_many(self):
        assert conj("A B") == And((Var("A"), Var("B")))

    def test_conj_empty_rejected(self):
        with pytest.raises(ValueError):
            conj("")

    def test_implies_is_defined_not_primitive(self):
        # P => Q := ¬P ∨ Q
        formula = implies(Var("p"), Var("q"))
        assert formula == Or((Not(Var("p")), Var("q")))


class TestVariables:
    def test_collects_and_sorts(self):
        formula = Or((Not(Var("q")), And((Var("a"), Nec(Var("m"))))))
        assert variables_of(formula) == ("a", "m", "q")

    def test_duplicates_once(self):
        formula = And((Var("p"), Var("p")))
        assert variables_of(formula) == ("p",)

    def test_repr_is_readable(self):
        formula = implies(conj("A B"), conj("C"))
        assert "∧" in repr(formula) and "∨" in repr(formula)
