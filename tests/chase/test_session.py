"""Differential suite for ChaseSession: every operation leaves the session
field-identical to a from-scratch chase of its raw rows.

The acceptance contract of the session is a single invariant: after *any*
sequence of insert / delete / update / fill / snapshot / rollback, ::

    session.result()  ==  chase(Relation(schema, session.rows), fds)

field by field (rows, NEC classes, substitutions with null identity,
``has_nothing``) — including NOTHING-bearing (poisoned) states.  The
hypothesis driver below mirrors the session's raw semantics op by op and
asserts the invariant after every single step, so a journaling bug in any
trail entry kind surfaces with a minimal counterexample.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import ChaseSession, IncrementalChase, chase
from repro.core.relation import Relation
from repro.core.tuples import Row
from repro.core.values import NOTHING, is_null, null
from repro.errors import ReproError, SchemaError

from ..helpers import schema_of
from ..strategies import assert_field_identical

SCHEMA = schema_of("A B C")
FDS = ["A -> B", "B -> C", "A B -> C", "C -> B"]


def from_scratch(session):
    return chase(session.raw_relation(), list(session.fds))


def assert_session_identical(session):
    assert_field_identical(session.result(), from_scratch(session))


# ---------------------------------------------------------------------------
# unit coverage of each operation and both rewind paths
# ---------------------------------------------------------------------------


class TestBasics:
    def test_empty(self):
        session = ChaseSession(SCHEMA, FDS)
        assert len(session) == 0
        assert not session.has_nothing
        assert session.result().relation.rows == []

    def test_relation_source(self):
        relation = Relation(SCHEMA, [("a", "b", "c"), ("a", null(), "c")])
        session = ChaseSession(relation, ["A -> B"])
        assert len(session) == 2
        assert session.result().relation[1]["B"] == "b"
        assert_session_identical(session)

    def test_insert_returns_index(self):
        session = ChaseSession(SCHEMA, FDS)
        assert session.insert(("a", "b", "c")) == 0
        assert session.insert(("d", "e", "f")) == 1

    def test_arity_error_leaves_state_untouched(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))
        with pytest.raises(SchemaError):
            session.insert(("only", "two"))
        assert len(session) == 1
        assert_session_identical(session)

    def test_bad_indices(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))
        for op in (
            lambda: session.delete(1),
            lambda: session.update(-1, {"A": "x"}),
            lambda: session.replace(5, ("x", "y", "z")),
            lambda: session.fill(2, "A", "v"),
        ):
            with pytest.raises(SchemaError):
                op()

    def test_update_unknown_attribute(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))
        with pytest.raises(SchemaError):
            session.update(0, {"Z": 1})

    def test_fill_non_null_rejected(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))
        with pytest.raises(ReproError):
            session.fill(0, "A", "x")


class TestDeleteRewinds:
    def test_delete_last_row_unpoisons(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.insert(("a", "b2", "c"))
        assert session.has_nothing
        session.delete(1)  # recent row: trail rewind path
        assert not session.has_nothing
        assert_session_identical(session)

    def test_delete_first_row_rebuilds(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        for i in range(6):
            session.insert(("a", null(), f"c{i}"))
        session.delete(0)  # old row: level-rebuild path
        assert len(session) == 6
        assert_session_identical(session)
        # the b1 grounding came only from the deleted row
        assert all(is_null(row["B"]) for row in session.result().relation)

    def test_delete_shifts_indices(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))
        session.insert(("d", "e", "f"))
        session.insert(("g", "h", "i"))
        session.delete(1)
        assert [row["A"] for row in session.rows] == ["a", "g"]


class TestFill:
    def test_fill_shared_null_fills_everywhere(self):
        shared = null()
        session = ChaseSession(SCHEMA, [])
        session.insert(("a", shared, "c1"))
        session.insert(("d", shared, "c2"))
        session.fill(0, "B", "v")
        assert [row["B"] for row in session.rows] == ["v", "v"]
        assert_session_identical(session)

    def test_fill_multi_column_null(self):
        shared = null()
        session = ChaseSession(SCHEMA, ["B -> C"])
        session.insert((shared, shared, "c0"))
        session.insert(("z", "v", "c1"))
        session.fill(0, "A", "v")  # now both rows have B = v: C conflict
        assert session.has_nothing
        assert_session_identical(session)

    def test_fill_conflicting_forced_value_poisons(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.insert(("a", null(), "c"))
        # the second row's B is already forced to b1 by the chase
        session.fill(1, "B", "b2")
        assert session.has_nothing
        assert_session_identical(session)

    def test_fill_forced_value_accepted_silently(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.insert(("a", null(), "c"))
        session.fill(1, "B", "b1")
        assert not session.has_nothing
        assert_session_identical(session)


class TestRatchetGuard:
    """A fill's (or adopt's) in-place row rewrites must survive later
    structural ops on *other* rows, on both rewind paths.

    Regression: the trail-undo path of delete/update used to peel the
    fill's ``rawset`` entries off rows the survivor replay never
    re-inserts, silently reverting user-supplied constants.
    """

    def _filled_session(self, n_rows=24, fill_at=20):
        session = ChaseSession(schema_of("A B"), [])
        for i in range(n_rows):
            session.insert((f"a{i}", null() if i == fill_at else f"b{i}"))
        session.fill(fill_at, "B", "FILLED")
        return session

    def test_fill_survives_deleting_a_younger_row(self):
        session = self._filled_session()
        session.delete(23)  # young victim: would take the rewind path
        assert session.rows[20]["B"] == "FILLED"
        assert_field_identical(
            session.result(), chase(session.raw_relation(), [])
        )

    def test_fill_survives_deleting_an_older_row(self):
        session = self._filled_session()
        session.delete(0)  # old victim: rebuild path
        assert session.rows[19]["B"] == "FILLED"

    def test_fill_survives_updating_a_younger_row(self):
        session = self._filled_session()
        session.update(23, {"A": "zz"})
        assert session.rows[20]["B"] == "FILLED"

    def test_adopt_survives_deleting_a_younger_row(self):
        session = ChaseSession(schema_of("A B"), ["A -> B"])
        session.insert(("a0", "b0"))
        session.insert(("a0", null()))
        for i in range(2, 16):
            session.insert((f"a{i}", f"b{i}"))
        session.adopt()
        session.delete(15)
        assert session.rows[1]["B"] == "b0"

    def test_rollback_still_crosses_a_fill(self):
        # an explicit rollback *should* revert the fill — that is its job
        session = ChaseSession(schema_of("A B"), [])
        unknown = null()
        session.insert(("a", unknown))
        snap = session.snapshot()
        session.fill(0, "B", "v")
        session.rollback(snap)
        assert session.rows[0]["B"] is unknown
        # and a fresh fill afterwards works on the restored null
        session.fill(0, "B", "w")
        assert session.rows[0]["B"] == "w"


class TestSnapshots:
    def test_rollback_fast_path(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", null(), "c"))
        snap = session.snapshot()
        session.insert(("a", "b1", "c"))
        session.insert(("a", "b2", "c"))
        assert session.has_nothing
        session.rollback(snap)
        assert len(session) == 1
        assert not session.has_nothing
        assert is_null(session.result().relation[0]["B"])
        assert_session_identical(session)

    def test_rollback_after_rewind_rebuilds(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", null(), "c"))
        session.insert(("d", "e", "f"))
        snap = session.snapshot()
        session.delete(0)  # rewinds below the snapshot's mark
        session.insert(("g", "h", "i"))
        session.rollback(snap)
        assert [row["A"] for row in session.rows] == ["a", "d"]
        assert_session_identical(session)

    def test_nested_rollbacks(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b", "c"))
        outer = session.snapshot()
        session.insert(("d", "e", "f"))
        inner = session.snapshot()
        session.insert(("g", "h", "i"))
        session.rollback(inner)
        assert len(session) == 2
        session.rollback(outer)
        assert len(session) == 1
        assert_session_identical(session)


class TestAdoptAndReset:
    def test_adopt_commits_substitutions_into_raw_rows(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.insert(("a", null(), "c"))
        committed = session.adopt()
        assert list(committed.values()) == ["b1"]
        assert session.rows[1]["B"] == "b1"  # raw, not just the view
        assert session.substitutions() == {}  # the null left the registry
        assert_session_identical(session)
        # adopted information is data: it survives deleting the forcer
        session.delete(0)
        assert session.rows[0]["B"] == "b1"
        assert_session_identical(session)

    def test_adopt_collapses_nec_classes(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", null(), "c1"))
        session.insert(("a", null(), "c2"))
        session.adopt()
        assert session.rows[0]["B"] is session.rows[1]["B"]
        assert session.result().nec_classes == []
        assert_session_identical(session)

    def test_rollback_over_adopt_restores_unadopted_rows(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        unknown = null()
        session.insert(("a", unknown, "c"))
        snap = session.snapshot()
        session.adopt()
        session.rollback(snap)
        assert session.rows[1]["B"] is unknown
        assert session.substitutions() == {unknown: "b1"}
        assert_session_identical(session)

    def test_adopt_of_cross_column_grounding_rebuilds_encoding(self):
        # regression: committing a null that spans columns writes the same
        # literal into two columns; a fresh encoding interns each copy into
        # its column's constant node, creating signature collisions the
        # maintained partition (old class, merely tagged) never saw — adopt
        # must fall back to a rebuild so both views agree
        schema = schema_of("A B C D")
        fds = ["A -> B", "C -> D"]
        session = ChaseSession(schema, fds)
        shared = null()
        session.insert(("a", shared, shared, "p"))
        session.insert(("a", "w", "w", "q"))
        session.adopt()
        assert session.has_nothing  # C -> D now fires on the committed 'w'
        assert_session_identical(session)

    def test_adopt_of_poisoned_state_rebuilds_encoding(self):
        # regression: committing a poisoned state writes NOTHING literals
        # into the rows, but the maintained partition still held the
        # poisoned *constants* merged into the nothing class — a later
        # insert reusing such a constant would spuriously poison where a
        # fresh chase of the adopted rows does not
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.insert(("a", "b2", "c"))
        session.adopt()
        session.insert(("z", "b1", "c"))  # b1 must be a fresh, clean constant
        assert session.result().relation[2]["B"] == "b1"
        assert_session_identical(session)

    def test_reset_replaces_contents(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c"))
        session.reset([("x", null(), "z"), ("x", "y", "z")])
        assert len(session) == 2
        assert session.result().relation[0]["B"] == "y"
        assert_session_identical(session)

    def test_compact_sheds_history_and_keeps_state(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        snap_before = session.snapshot()
        session.insert(("a", null(), "c1"))
        session.insert(("a", "b1", "c1"))  # grounding merges journal
        session.adopt()                    # rawset + dereg entries journal
        trail_before = len(session._trail)
        session.compact()
        # the fresh trail re-encodes two fully grounded rows: no null
        # nodes, no merges, no adoption entries — strictly less history
        assert len(session._trail) < trail_before
        assert_session_identical(session)
        # ops keep working on the compacted state
        session.insert(("a", "b9", "c9"))
        assert session.has_nothing is chase(
            session.raw_relation(), ["A -> B"]
        ).has_nothing
        session.delete(1)
        assert_session_identical(session)
        # a pre-compact snapshot is honored through the rebuild fallback
        session.rollback(snap_before)
        assert len(session) == 0
        assert_session_identical(session)


class TestViews:
    def test_check_against_maintained_instance(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", null(), "c1"))
        session.insert(("a", "b1", "c2"))
        outcome = session.check()
        assert outcome.satisfied  # the fixpoint grounded the null
        # both rows now share B = b1 with distinct C constants
        assert not session.check(["B -> C"], convention="weak").satisfied

    def test_explain_mentions_verdict(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b", "c"))
        assert "chase" in session.explain()

    def test_substitutions_view_matches_result(self):
        session = ChaseSession(SCHEMA, ["A -> B", "B -> C"])
        session.insert(("a", null(), null()))
        session.insert(("a", "b1", "c1"))
        assert session.substitutions() == session.result().substitutions

    def test_incremental_chase_is_a_session(self):
        with pytest.warns(DeprecationWarning, match="IncrementalChase"):
            inc = IncrementalChase(SCHEMA, ["A -> B"], rows=[("a", null(), "c")])
        assert isinstance(inc, ChaseSession)
        # the old private machinery is gone: the shared core's buckets are
        # the only signature structures
        for legacy in ("_signature", "_table", "_uses", "_pending"):
            assert not hasattr(inc, legacy)


# ---------------------------------------------------------------------------
# randomized differential driver
# ---------------------------------------------------------------------------

_constants = ["v0", "v1", "v2"]
_cell = st.sampled_from(_constants + ["fresh", "s0", "s1", "nothing"])
_fd_lists = st.lists(
    st.sampled_from(FDS), min_size=1, max_size=3, unique=True
)


@st.composite
def op_sequences(draw):
    """A program over the session's full vocabulary.

    Cells name constants, fresh nulls, one of two *shared* null objects
    (so fills and NECs cross rows), or NOTHING.  Indices and snapshot
    choices are drawn as raw integers and resolved modulo the live state
    when the program runs.
    """
    n_ops = draw(st.integers(min_value=1, max_value=14))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["insert", "insert", "insert", "delete", "update", "fill",
                 "replace", "adopt", "compact", "snapshot", "rollback"]
            )
        )
        ops.append(
            (
                kind,
                [draw(_cell) for _ in range(3)],
                draw(st.integers(min_value=0, max_value=11)),
                draw(st.sampled_from("ABC")),
                draw(st.sampled_from(_constants)),
            )
        )
    return ops


def _materialize(tokens, shared):
    out = []
    for token in tokens:
        if token == "fresh":
            out.append(null())
        elif token == "nothing":
            out.append(NOTHING)
        elif token.startswith("s"):
            out.append(shared[int(token[1:])])
        else:
            out.append(token)
    return out


@given(op_sequences(), _fd_lists)
@settings(max_examples=120, deadline=None)
def test_session_field_identical_after_every_op(ops, fds):
    session = ChaseSession(SCHEMA, fds)
    shared = [null(), null()]
    mirror = []  # raw rows maintained independently of the session
    snapshots = []
    for kind, cells, index, attr, value in ops:
        if kind == "insert":
            row = Row(SCHEMA, _materialize(cells, shared))
            session.insert(row)
            mirror.append(row)
        elif kind == "delete":
            if not mirror:
                continue
            index %= len(mirror)
            session.delete(index)
            mirror.pop(index)
        elif kind == "update":
            if not mirror:
                continue
            index %= len(mirror)
            changes = {attr: _materialize([cells[0]], shared)[0]}
            session.update(index, changes)
            mapping = mirror[index].as_dict()
            mapping.update(changes)
            mirror[index] = Row.from_mapping(SCHEMA, mapping)
        elif kind == "fill":
            if not mirror:
                continue
            index %= len(mirror)
            cell = mirror[index][attr]
            if not is_null(cell):
                continue
            session.fill(index, attr, value)
            mirror = [row.substitute({cell: value}) for row in mirror]
        elif kind == "replace":
            if not mirror:
                continue
            index %= len(mirror)
            row = Row(SCHEMA, _materialize(cells, shared))
            session.replace(index, row)
            mirror[index] = row
        elif kind == "adopt":
            session.adopt()
            mirror = list(chase(Relation(SCHEMA, mirror), fds).relation.rows)
        elif kind == "compact":
            session.compact()  # semantic no-op; mirror unchanged
        elif kind == "snapshot":
            snapshots.append((session.snapshot(), list(mirror)))
            continue
        else:  # rollback
            if not snapshots:
                continue
            token, saved = snapshots.pop(index % len(snapshots))
            session.rollback(token)
            mirror = list(saved)
        assert [tuple(r.values) for r in session.rows] == [
            tuple(r.values) for r in mirror
        ]
        assert_field_identical(
            session.result(), chase(Relation(SCHEMA, mirror), fds)
        )
        assert session.has_nothing == chase(
            Relation(SCHEMA, mirror), fds
        ).has_nothing


@given(op_sequences(), _fd_lists)
@settings(max_examples=40, deadline=None)
def test_session_check_agrees_with_stateless_check(ops, fds):
    """session.check() == check_fds on a freshly chased instance."""
    from repro.testfd import check_fds

    session = ChaseSession(SCHEMA, fds)
    shared = [null(), null()]
    for kind, cells, index, attr, value in ops:
        if kind != "insert":
            continue
        session.insert(_materialize(cells, shared))
    if session.has_nothing:
        return  # TEST-FDs rejects NOTHING-bearing instances by contract
    reference = check_fds(
        chase(session.raw_relation(), fds).relation, fds, convention="weak"
    )
    assert session.check().satisfied == reference.satisfied


@pytest.mark.xfail(
    reason="pre-existing engine divergence (found by the differential "
    "above, shrunk and pinned here): once an instance is inconsistent, "
    "the serial chase matches two NOTHING cells as equal LHS values and "
    "keeps deriving (here C -> B turns B into NOTHING too), while the "
    "session's indexed signature buckets skip NOTHING cells.  Both sides "
    "agree on has_nothing — only post-inconsistency row decoration "
    "differs.  See the ROADMAP open item on NOTHING-cell chase semantics.",
    strict=True,
)
def test_nothing_cells_rechase_identically_after_inconsistency():
    fds = ["A -> B", "B -> C", "C -> B"]
    session = ChaseSession(SCHEMA, fds)
    session.insert(Row(SCHEMA, ["v0", "v0", "v0"]))
    session.replace(0, Row(SCHEMA, ["v1", "v1", null()]))
    session.insert(Row(SCHEMA, ["v1", "v1", "v1"]))
    session.fill(0, "C", "v0")  # forces C: v0 vs v1 under B -> C: NOTHING
    session.insert(Row(SCHEMA, ["v0", "v0", NOTHING]))
    mirror = Relation(
        SCHEMA,
        [
            ["v1", "v1", "v0"],
            ["v1", "v1", "v1"],
            ["v0", "v0", NOTHING],
        ],
    )
    rechased = chase(mirror, fds)
    assert session.has_nothing and rechased.has_nothing
    assert_field_identical(session.result(), rechased)
