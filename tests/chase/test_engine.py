"""Tests for the NS-rule fixpoint engine (section 6, Definitions 1-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.engine import (
    MODE_BASIC,
    MODE_EXTENDED,
    STRATEGY_FD_ORDER,
    STRATEGY_RANDOM,
    STRATEGY_ROUND_ROBIN,
    chase,
    x_side_substitutions,
)
from repro.core.relation import Relation
from repro.core.values import NOTHING, is_null, null

from ..helpers import rel, schema_of
from ..strategies import assert_field_identical, fd_sets, instances


class TestRuleA_Substitution:
    """Definition 2(a): one null, one constant — substitute."""

    def test_simple_substitution(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        assert result.relation[0]["B"] == "b1"
        assert len(result.applications) == 1
        assert result.applications[0].action == "substitute"

    def test_substitution_recorded(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        original_null = r[0]["B"]
        assert result.substitutions[original_null] == "b1"

    def test_substitution_cascades_across_fds(self):
        # A -> B fills B, which enables B -> C to fill C
        r = rel("A B C", [("a", "-", "-"), ("a", "b1", "c1")])
        result = chase(r, ["A -> B", "B -> C"], mode=MODE_BASIC)
        assert result.relation[0]["B"] == "b1"
        assert result.relation[0]["C"] == "c1"

    def test_no_rule_without_x_agreement(self):
        r = rel("A B", [("a", "-"), ("a2", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        assert is_null(result.relation[0]["B"])
        assert result.applications == []


class TestRuleB_NEC:
    """Definition 2(b): both null — introduce a null equality constraint."""

    def test_nec_merges_nulls(self):
        r = rel("A B", [("a", "-"), ("a", "-")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        # the two result cells hold the SAME null object (one class)
        assert result.relation[0]["B"] is result.relation[1]["B"]
        assert len(result.nec_classes) == 1
        assert len(result.nec_classes[0]) == 2

    def test_nec_then_substitution(self):
        # NEC links the two nulls; a third matching row then grounds both
        r = rel("A B", [("a", "-"), ("a", "-"), ("a", "b9")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        assert result.relation[0]["B"] == "b9"
        assert result.relation[1]["B"] == "b9"
        assert result.nec_classes == []  # grounded classes are substitutions

    def test_nec_transitive_via_chain(self):
        # NECs across FDs: B-nulls equated, making B -> C fire
        r = rel("A B C", [("a", "-", "-"), ("a", "-", "c5")])
        result = chase(r, ["A -> B", "B -> C"], mode=MODE_BASIC)
        assert result.relation[0]["C"] == "c5"


class TestExtendedRules:
    def test_const_conflict_poisons_both(self):
        r = rel("A B", [("a", "b1"), ("a", "b2")])
        result = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        assert result.relation[0]["B"] is NOTHING
        assert result.relation[1]["B"] is NOTHING
        assert result.has_nothing

    def test_poison_propagates_to_equal_constants(self):
        # the third row's b1 is the same constant: it must become nothing too
        r = rel("A B", [("a", "b1"), ("a", "b2"), ("z", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        assert result.relation[2]["B"] is NOTHING

    def test_same_value_other_column_unaffected(self):
        # poisoning is per-column: "b1" in column C survives
        r = rel("A B C", [("a", "b1", "b1"), ("a", "b2", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        assert result.relation[0]["B"] is NOTHING
        assert result.relation[0]["C"] == "b1"

    def test_basic_mode_leaves_conflict_alone(self):
        r = rel("A B", [("a", "b1"), ("a", "b2")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        assert result.relation[0]["B"] == "b1"
        assert result.relation[1]["B"] == "b2"
        assert not result.has_nothing

    def test_null_joining_poisoned_class(self):
        # a null NEC'd into a poisoned class becomes nothing
        r = rel("A B", [("a", "b1"), ("a", "b2"), ("a", "-")])
        result = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        assert result.relation[2]["B"] is NOTHING
        original_null = r[2]["B"]
        assert result.substitutions[original_null] is NOTHING


class TestSection6Example:
    """r = {(a, ⊥, c1), (a, ⊥, c2)}, F = {A -> B, B -> C}."""

    def _instance(self):
        return rel("A B C", [("a", "-", "c1"), ("a", "-", "c2")])

    def test_extended_chase_finds_the_contradiction(self):
        result = chase(self._instance(), ["A -> B", "B -> C"], mode=MODE_EXTENDED)
        assert result.has_nothing  # not weakly satisfiable

    def test_basic_chase_reaches_nec_fixpoint(self):
        result = chase(self._instance(), ["A -> B", "B -> C"], mode=MODE_BASIC)
        assert not result.has_nothing
        assert len(result.nec_classes) == 1  # the two B-nulls are equated

    def test_firing_order_recorded(self):
        result = chase(self._instance(), ["A -> B", "B -> C"], mode=MODE_EXTENDED)
        actions = [a.action for a in result.applications]
        assert "nec" in actions and "nothing" in actions


class TestStrategies:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            chase(rel("A", [("a",)]), [], mode="nope")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            chase(rel("A B", [("a", "b")]), ["A -> B"], strategy="nope")

    def test_total_instance_is_fixpoint_when_satisfied(self):
        r = rel("A B", [("a", "b1"), ("a2", "b2")])
        result = chase(r, ["A -> B"])
        assert result.applications == []
        assert result.relation == r

    def test_shared_input_nulls_form_initial_classes(self):
        n = null()
        schema = schema_of("A B")
        r = Relation(schema, [("a", n), ("a2", n)])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        # the shared null stays shared (one class, no rule fired)
        assert result.relation[0]["B"] is result.relation[1]["B"]


# ---------------------------------------------------------------------------
# randomized: Theorem 4's order independence, on the sweep engine itself
# ---------------------------------------------------------------------------


@given(
    instances(max_rows=5),
    fd_sets(),
    st.sampled_from((STRATEGY_FD_ORDER, STRATEGY_RANDOM)),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_extended_sweep_is_strategy_invariant(instance, fds, strategy, seed):
    """Extended mode: every strategy reaches the same fixpoint (Theorem 4),
    field-identically — not just up to canonical form."""
    reference = chase(instance, fds, mode=MODE_EXTENDED, engine="sweep")
    other = chase(
        instance, fds, mode=MODE_EXTENDED, strategy=strategy, seed=seed,
        engine="sweep",
    )
    assert_field_identical(other, reference)


@given(instances(max_rows=5), fd_sets())
@settings(max_examples=100, deadline=None)
def test_engine_congruence_dispatch_matches_default(instance, fds):
    """chase(engine="congruence") runs the shared-core congruence engine
    and lands on the same fields as the default indexed path."""
    via_param = chase(instance, fds, mode=MODE_EXTENDED, engine="congruence")
    default = chase(instance, fds, mode=MODE_EXTENDED)
    assert_field_identical(via_param, default)


def test_engine_congruence_rejects_basic_mode():
    r = rel("A B", [("a", "b")])
    with pytest.raises(ValueError):
        chase(r, ["A -> B"], mode=MODE_BASIC, engine="congruence")


class TestXSideSubstitutions:
    """Section 4's domain-dependent conditions (1) and (2) — reported only."""

    def test_condition_1_unique_agreeing_completion(self):
        r = rel(
            "A B",
            [("-", "y1"), ("a1", "y1"), ("a2", "y2")],
            domains={"A": ["a1", "a2"]},
        )
        subs = x_side_substitutions(r, "A -> B")
        assert len(subs) == 1
        assert subs[0].value == "a1"
        assert subs[0].condition == "unique-agreeing-completion"

    def test_condition_2_missing_domain_value(self):
        r = rel(
            "A B",
            [("-", "y9"), ("a1", "y1"), ("a2", "y2")],
            domains={"A": ["a1", "a2", "a3"]},
        )
        subs = x_side_substitutions(r, "A -> B")
        assert len(subs) == 1
        assert subs[0].value == "a3"
        assert subs[0].condition == "missing-domain-value"

    def test_no_substitution_with_unbounded_domain(self):
        r = rel("A B", [("-", "y1"), ("a1", "y1")])
        assert x_side_substitutions(r, "A -> B") == []

    def test_no_substitution_when_ambiguous(self):
        # two agreeing completions: no forced substitution
        r = rel(
            "A B",
            [("-", "y1"), ("a1", "y1"), ("a2", "y1")],
            domains={"A": ["a1", "a2"]},
        )
        assert x_side_substitutions(r, "A -> B") == []

    def test_chase_never_applies_x_rules(self):
        r = rel(
            "A B",
            [("-", "y1"), ("a1", "y1"), ("a2", "y2")],
            domains={"A": ["a1", "a2"]},
        )
        result = chase(r, ["A -> B"])
        assert is_null(result.relation[0]["A"])
