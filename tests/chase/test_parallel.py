"""Parallel-vs-serial differential suite: the stitched result is exact.

The acceptance contract for the sharded executor
(``repro/chase/parallel.py``) is *field identity* with the single-threaded
engines — same row values (null equality as object identity), same NEC
classes in the same order, same substitutions, same NOTHING verdict.  The
bulk suite runs the in-process path over a multi-component FD pool with
shared nulls and bypass columns; a smaller suite forces a real
``multiprocessing`` pool (``processes=True``) so the codec round-trip and
fork-safe null allocation are exercised for real; directed cases pin the
payload/decode round-trip, the codec fallback, the vector engine, and the
API error surface.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.chase.engine import ENGINE_VECTOR, MODE_BASIC, chase
from repro.chase.indexed import indexed_chase
from repro.chase.parallel import (
    STRATEGY_PARALLEL,
    chase_shard_remote,
    decode_outcome,
    parallel_chase,
    shard_payload,
)
from repro.chase.plan import plan_shards
from repro.chase.session import ChaseSession
from repro.chase.vector import vectorized_chase
from repro.core.relation import Relation
from repro.core.values import null
from repro.errors import CodecError, ReproError

from ..helpers import rel, schema_of
from ..strategies import assert_field_identical, fd_sets, instances

#: FDs over A..F forming several components, leaving G H untouched —
#: the plan exercises multi-shard execution plus bypass splicing
MULTI_FD_POOL = (
    "A -> B",
    "B -> A",
    "A B -> C",
    "C -> B",
    "D -> E",
    "E -> D",
    "F -> D",
    "D E -> F",
)


class TestInProcessDifferential:
    """The bulk randomized suite: stitched == serial, no pool involved."""

    @given(
        instances(attributes="A B C D E F G H", max_rows=7, shared_nulls=4),
        fd_sets(pool=MULTI_FD_POOL, min_size=1, max_size=5),
    )
    @settings(max_examples=250, deadline=None)
    def test_workers_many_matches_indexed(self, instance, fds):
        reference = indexed_chase(instance, fds)
        stitched = parallel_chase(instance, fds, workers=4, processes=False)
        assert stitched.strategy == STRATEGY_PARALLEL
        assert_field_identical(stitched, reference)

    @given(
        instances(attributes="A B C D E F", max_rows=6, shared_nulls=3),
        fd_sets(pool=MULTI_FD_POOL, min_size=1, max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_workers_one_matches_indexed(self, instance, fds):
        assert_field_identical(
            parallel_chase(instance, fds, workers=1),
            indexed_chase(instance, fds),
        )

    def test_no_fds_returns_the_input_as_fixpoint(self):
        r = rel("A B", [("a", "-"), ("b", "-")])
        result = parallel_chase(r, [], workers=2)
        assert [row.values for row in result.relation.rows] == [
            row.values for row in r.rows
        ]
        assert result.nec_classes == []
        assert result.substitutions == {}
        assert not result.has_nothing

    def test_bypass_columns_pass_through_untouched(self):
        shared = null()
        r = rel("A B C", [("a", "b1", shared), ("a", "b2", shared)])
        result = parallel_chase(r, ["A -> B"], workers=1)
        reference = indexed_chase(r, ["A -> B"])
        assert_field_identical(result, reference)
        # the C column (bypass) still holds the original null object
        assert result.relation.rows[0].values[2] is shared


class TestMultiprocessingDifferential:
    """Real process pools: codec round-trip + fork-scoped null labels."""

    @given(
        instances(attributes="A B C D E F", max_rows=5, shared_nulls=3),
        fd_sets(pool=MULTI_FD_POOL, min_size=2, max_size=4),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_pooled_matches_indexed(self, instance, fds):
        reference = indexed_chase(instance, fds)
        stitched = parallel_chase(instance, fds, workers=2, processes=True)
        assert_field_identical(stitched, reference)

    def test_shared_null_across_shard_and_bypass_survives_the_pool(self):
        # the shard grounds the null; the stitcher must rewrite the
        # bypass occurrence too, through parent-side object identity
        shared = null()
        r = rel("A B C", [("a", shared, shared), ("a", "b", "c")])
        reference = indexed_chase(r, ["A -> B"])
        stitched = parallel_chase(r, ["A -> B"], workers=2, processes=True)
        assert_field_identical(stitched, reference)
        assert stitched.relation.rows[0].values == ("a", "b", "b")

    def test_cross_shard_representative_order_is_global(self):
        # u first occurs in shard 2's columns but joins a class in shard 1:
        # impossible by construction (shards are column-disjoint), so pin
        # the observable variant — each shard's local representative is
        # re-sorted by global first occurrence during the stitch
        u, v = null(), null()
        r = rel(
            "A B C D",
            [("a", v, "c", u), ("a", u, "c", v)],
        )
        fds = ["A -> B", "C -> D"]
        reference = indexed_chase(r, fds)
        stitched = parallel_chase(r, fds, workers=2, processes=True)
        assert_field_identical(stitched, reference)

    def test_codec_refusal_propagates_when_processes_forced(self):
        weird = ("tu", "ple")  # hashable constant the codec refuses
        r = rel("A B C D", [("a", "b", weird, "d"), ("a", "-", weird, "-")])
        with pytest.raises(CodecError):
            parallel_chase(r, ["A -> B", "C -> D"], workers=2, processes=True)

    def test_codec_refusal_degrades_to_in_process(self):
        weird = ("tu", "ple")
        r = rel("A B C D", [("a", "b", weird, "d"), ("a", "-", weird, "-")])
        fds = ["A -> B", "C -> D"]
        stitched = parallel_chase(r, fds, workers=2)  # processes=None
        assert_field_identical(stitched, indexed_chase(r, fds))


class TestPayloadRoundTrip:
    def test_payload_and_reply_resolve_to_parent_objects(self):
        shared = null()
        r = rel("A B C D", [("a", shared, "c", "d"), ("a", shared, "c", "x")])
        plan = plan_shards(r.schema, ["A -> B", "C -> D"])
        shard = plan.shards[0]
        codec, payload = shard_payload(r, plan, shard)
        assert payload["attributes"] == ["A", "B"]
        assert payload["rows"] == [["a", {"n": "n0"}], ["a", {"n": "n0"}]]
        reply = chase_shard_remote(payload)  # same process: simulate worker
        outcome = decode_outcome(codec, plan.shard_fds(shard), reply)
        # the decoded rows hold the ORIGINAL parent-side null object
        assert outcome.rows[0][1] is shared
        assert outcome.rows[1][1] is shared

    def test_remote_reply_reports_forced_substitutions_by_canonical_id(self):
        shared = null()
        r = rel("A B", [("a", shared), ("a", "b")])
        plan = plan_shards(r.schema, ["A -> B"])
        codec, payload = shard_payload(r, plan, plan.shards[0])
        reply = chase_shard_remote(payload)
        assert reply["subs"] == [["n0", "b"]]
        outcome = decode_outcome(codec, plan.shard_fds(plan.shards[0]), reply)
        assert outcome.substitutions == {shared: "b"}


class TestVectorEngine:
    @given(instances(), fd_sets(min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_vectorized_matches_indexed(self, instance, fds):
        assert_field_identical(
            vectorized_chase(instance, fds), indexed_chase(instance, fds)
        )

    def test_engine_vector_selects_the_vector_path(self):
        r = rel("A B", [("a", "-"), ("a", "b")])
        result = chase(r, ["A -> B"], engine=ENGINE_VECTOR)
        assert_field_identical(result, indexed_chase(r, ["A -> B"]))
        # the standalone entry point labels its results
        assert vectorized_chase(r, ["A -> B"]).strategy == "vector"


class TestApiSurface:
    def test_chase_workers_routes_to_parallel(self):
        r = rel("A B C D", [("a", "-", "c", "-"), ("a", "b", "c", "d")])
        fds = ["A -> B", "C -> D"]
        result = chase(r, fds, workers=2)
        assert result.strategy == STRATEGY_PARALLEL
        assert_field_identical(result, indexed_chase(r, fds))

    def test_workers_rejects_basic_mode(self):
        r = rel("A B", [("a", "b")])
        with pytest.raises(ValueError, match="extended"):
            chase(r, ["A -> B"], mode=MODE_BASIC, workers=2)

    def test_workers_rejects_explicit_engine(self):
        r = rel("A B", [("a", "b")])
        with pytest.raises(ValueError, match="engine"):
            chase(r, ["A -> B"], engine=ENGINE_VECTOR, workers=2)

    def test_workers_below_one_rejected(self):
        r = rel("A B", [("a", "b")])
        with pytest.raises(ValueError, match="workers"):
            parallel_chase(r, ["A -> B"], workers=0)


class TestSessionIntegration:
    def test_session_verify_with_workers(self):
        schema = schema_of("A B C D")
        session = ChaseSession(schema, ["A -> B", "C -> D"], workers=2)
        session.insert(["a", null(), "c", null()])
        session.insert(["a", "b", "c", "d"])
        assert session.verify()
        assert session.verify(workers=1)

    def test_set_fds_replans_and_rechases(self):
        schema = schema_of("A B")
        session = ChaseSession(schema, ["A -> B"], workers=1)
        unknown = null()
        session.insert(["a", unknown])
        session.insert(["a", "b"])
        assert session.result().relation.rows[0].values == ("a", "b")
        first_plan = session.plan()
        session.set_fds([])
        assert session.plan() is not first_plan
        assert session.plan().shards == ()
        # re-chased under the empty FD set: the null is unknown again
        assert session.result().relation.rows[0].values == ("a", unknown)
        assert session.verify()

    def test_set_fds_refused_on_journalled_sessions(self):
        schema = schema_of("A B")
        session = ChaseSession(schema, ["A -> B"])
        session.on_op = lambda payload: None
        with pytest.raises(ReproError, match="journalled"):
            session.set_fds([])
