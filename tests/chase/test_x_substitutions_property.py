"""Property: every reported X-side substitution is semantically forced.

Section 4's conditions (1)/(2) justify substituting an X-null only when
exactly one value keeps the dependency satisfiable.  The reporter must
therefore never propose a value unless (a) that value admits a satisfying
completion and (b) every other domain value does not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.engine import x_side_substitutions
from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.values import null

from ..helpers import schema_of

_a_value = st.sampled_from(["a1", "a2", None])
_b_value = st.sampled_from(["y1", "y2", "y3"])


@st.composite
def instances(draw):
    n_rows = draw(st.integers(min_value=1, max_value=4))
    rows = []
    for _ in range(n_rows):
        rows.append((draw(_a_value), draw(_b_value)))
    schema = schema_of("A B", {"A": ["a1", "a2"], "B": ["y1", "y2", "y3"]})
    return Relation(
        schema,
        [[null() if v is None else v for v in row] for row in rows],
    )


@given(instances())
@settings(max_examples=150, deadline=None)
def test_reported_substitutions_are_forced(instance):
    fd = "A -> B"
    for sub in x_side_substitutions(instance, fd):
        target_null = instance[sub.row_index][sub.attribute]
        domain = instance.schema.domain(sub.attribute)
        satisfiable_values = [
            value
            for value in domain
            if weakly_satisfied(
                [fd],
                Relation(
                    instance.schema,
                    [row.substitute({target_null: value}) for row in instance.rows],
                ),
            )
        ]
        # condition (1): the proposed value must be among the satisfiable
        # ones, and under the paper's conditions it must be the ONLY one
        # keeping the dependency *true* through this tuple; at minimum the
        # reporter must never propose a value that leads to contradiction
        # while another value would not.
        if satisfiable_values:
            assert sub.value in satisfiable_values, (
                f"forced value {sub.value!r} is not even satisfiable; "
                f"viable: {satisfiable_values}"
            )


@given(instances())
@settings(max_examples=100, deadline=None)
def test_no_substitution_reported_when_choice_remains(instance):
    """If two domain values both keep the FD weakly satisfiable AND
    condition (1)'s uniqueness is violated, nothing may be reported."""
    fd = "A -> B"
    subs = x_side_substitutions(instance, fd)
    for sub in subs:
        target_null = instance[sub.row_index][sub.attribute]
        row = instance[sub.row_index]
        others = [o for o in instance.rows if o is not row and o.is_total("A")]
        # reconstruct the paper's conditions directly
        present = {o["A"] for o in others}
        domain = set(instance.schema.domain("A"))
        if sub.condition == "unique-agreeing-completion":
            assert present >= domain  # all completions appear
            agreeing = [
                o for o in others if o.project(("B",)) == row.project(("B",))
            ]
            assert len({o["A"] for o in agreeing}) == 1
        else:
            missing = domain - present
            assert missing == {sub.value}
