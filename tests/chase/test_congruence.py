"""Tests for the congruence-closure chase engine: equivalence with the
fixpoint engine (the DST construction behind Theorem 4)."""

from hypothesis import given, settings

from repro.chase.congruence import congruence_chase
from repro.chase.engine import MODE_EXTENDED, chase
from repro.chase.minimal import canonical_form
from repro.core.relation import Relation
from repro.core.values import NOTHING, null

from ..helpers import rel, schema_of
from ..strategies import fd_sets, instances


class TestBasicBehaviour:
    def test_substitution(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        result = congruence_chase(r, ["A -> B"])
        assert result.relation[0]["B"] == "b1"

    def test_nec(self):
        r = rel("A B", [("a", "-"), ("a", "-")])
        result = congruence_chase(r, ["A -> B"])
        assert result.relation[0]["B"] is result.relation[1]["B"]
        assert len(result.nec_classes) == 1

    def test_poisoning_and_propagation(self):
        r = rel("A B", [("a", "b1"), ("a", "b2"), ("z", "b1")])
        result = congruence_chase(r, ["A -> B"])
        assert result.relation[2]["B"] is NOTHING

    def test_cascade_through_merged_signatures(self):
        # merging B-classes changes the X-signature of B -> C applications:
        # the re-signing path must fire them
        r = rel("A B C", [("a", "-", "-"), ("a", "-", "c5")])
        result = congruence_chase(r, ["A -> B", "B -> C"])
        assert result.relation[0]["C"] == "c5"

    def test_section6_example(self):
        r = rel("A B C", [("a", "-", "c1"), ("a", "-", "c2")])
        result = congruence_chase(r, ["A -> B", "B -> C"])
        assert result.has_nothing

    def test_figure5_unique_nothing_column(self):
        r = rel(
            "A B C",
            [("a1", "-", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1")],
        )
        result = congruence_chase(r, ["A -> B", "C -> B"])
        assert all(row["B"] is NOTHING for row in result.relation)

    def test_no_fds_identity(self):
        r = rel("A B", [("a", "-")])
        result = congruence_chase(r, [])
        assert canonical_form(result.relation) == canonical_form(r)


class TestDeepCascades:
    def test_long_chain(self):
        # A -> B, B -> C, ..., each level unlocked by the previous merge
        fds = ["A -> B", "B -> C", "C -> D"]
        r = rel(
            "A B C D",
            [
                ("a", "-", "-", "-"),
                ("a", "b0", "-", "-"),
                ("z", "b0", "c0", "-"),
                ("w", "q", "c0", "d0"),
            ],
        )
        result = congruence_chase(r, fds)
        expected = chase(r, fds, mode=MODE_EXTENDED)
        assert canonical_form(result.relation) == canonical_form(expected.relation)

    def test_shared_nulls_across_columns(self):
        n = null()
        schema = schema_of("A B")
        r = Relation(schema, [(n, n), ("a", "x")])
        result = congruence_chase(r, ["A -> B"])
        expected = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        assert canonical_form(result.relation) == canonical_form(expected.relation)


# ---------------------------------------------------------------------------
# property-based equivalence with the fixpoint engine
# ---------------------------------------------------------------------------

_pool = ("A -> B", "B -> C", "A -> C", "C -> B", "A B -> C", "C -> A B")


@given(
    instances(attributes="A B C", max_rows=5, shared_nulls=0, allow_nothing=False),
    fd_sets(pool=_pool),
)
@settings(max_examples=200, deadline=None)
def test_congruence_equals_extended_fixpoint(instance, fds):
    fast = congruence_chase(instance, fds)
    slow = chase(instance, fds, mode=MODE_EXTENDED)
    assert canonical_form(fast.relation) == canonical_form(slow.relation)
    assert fast.has_nothing == slow.has_nothing


@given(
    instances(attributes="A B C", max_rows=4, shared_nulls=0, allow_nothing=False),
    fd_sets(pool=_pool, max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_congruence_substitutions_match(instance, fds):
    fast = congruence_chase(instance, fds)
    slow = chase(instance, fds, mode=MODE_EXTENDED)
    fast_subs = {id(k): v for k, v in fast.substitutions.items()}
    slow_subs = {id(k): v for k, v in slow.substitutions.items()}
    assert fast_subs == slow_subs
