"""Tests for minimal incompleteness, Theorem 4, and the Figure 5 example."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase.engine import MODE_BASIC, MODE_EXTENDED, STRATEGY_FD_ORDER, chase
from repro.chase.minimal import (
    canonical_form,
    church_rosser_orders,
    is_minimally_incomplete,
    minimally_incomplete,
    weakly_satisfiable,
)
from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.values import NOTHING, null

from ..helpers import rel, schema_of


class TestFigure5:
    """R(A,B,C), F = {A -> B, C -> B},
    r = {(a1, ⊥, c1), (a1, b1, c2), (a2, b2, c1)}."""

    def _instance(self):
        return rel(
            "A B C",
            [("a1", "-", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1")],
        )

    def test_basic_rules_are_order_dependent(self):
        # applying A -> B first substitutes b1; C -> B first substitutes b2
        r_prime = chase(
            self._instance(), ["A -> B", "C -> B"],
            mode=MODE_BASIC, strategy=STRATEGY_FD_ORDER,
        )
        r_double_prime = chase(
            self._instance(), ["C -> B", "A -> B"],
            mode=MODE_BASIC, strategy=STRATEGY_FD_ORDER,
        )
        assert r_prime.relation[0]["B"] == "b1"
        assert r_double_prime.relation[0]["B"] == "b2"
        assert canonical_form(r_prime.relation) != canonical_form(
            r_double_prime.relation
        )

    def test_both_basic_fixpoints_are_minimally_incomplete(self):
        for order in (["A -> B", "C -> B"], ["C -> B", "A -> B"]):
            result = chase(
                self._instance(), order, mode=MODE_BASIC,
                strategy=STRATEGY_FD_ORDER,
            )
            assert is_minimally_incomplete(result.relation, order)

    def test_extended_rules_drive_b_column_to_nothing(self):
        # "resulting in an instance with all values in the B column equal
        #  to nothing", in either order
        for order in (["A -> B", "C -> B"], ["C -> B", "A -> B"]):
            result = chase(
                self._instance(), order, mode=MODE_EXTENDED,
                strategy=STRATEGY_FD_ORDER,
            )
            assert all(row["B"] is NOTHING for row in result.relation)

    def test_extended_rules_unique_fixpoint(self):
        results = church_rosser_orders(
            self._instance(), ["A -> B", "C -> B"], mode=MODE_EXTENDED
        )
        forms = {canonical_form(result.relation) for result in results}
        assert len(forms) == 1

    def test_not_weakly_satisfiable(self):
        # Theorem 4(b): nothing appears, so no completion satisfies F
        assert not weakly_satisfiable(self._instance(), ["A -> B", "C -> B"])
        # ground truth agrees
        assert not weakly_satisfied(["A -> B", "C -> B"], self._instance())


class TestIsMinimallyIncomplete:
    def test_fresh_instance_with_applicable_rule(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        assert not is_minimally_incomplete(r, ["A -> B"])

    def test_chase_output_is_minimal(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        result = chase(r, ["A -> B"], mode=MODE_BASIC)
        assert is_minimally_incomplete(result.relation, ["A -> B"])

    def test_nec_candidates_count_as_applicable(self):
        r = rel("A B", [("a", "-"), ("a", "-")])
        assert not is_minimally_incomplete(r, ["A -> B"])

    def test_const_conflict_is_minimal_in_basic_mode_only(self):
        r = rel("A B", [("a", "b1"), ("a", "b2")])
        assert is_minimally_incomplete(r, ["A -> B"], mode=MODE_BASIC)
        assert not is_minimally_incomplete(r, ["A -> B"], mode=MODE_EXTENDED)

    def test_total_satisfied_instance_is_minimal(self):
        r = rel("A B", [("a", "b"), ("a2", "b2")])
        assert is_minimally_incomplete(r, ["A -> B"])


class TestWeaklySatisfiable:
    def test_engine_choice_agrees(self):
        r = rel("A B C", [("a", "-", "c1"), ("a", "-", "c2")])
        fds = ["A -> B", "B -> C"]
        assert weakly_satisfiable(r, fds, engine="congruence") == (
            weakly_satisfiable(r, fds, engine="fixpoint")
        )

    def test_satisfiable_instance(self):
        r = rel("A B", [("a", "-"), ("a", "b1"), ("z", "b2")])
        assert weakly_satisfiable(r, ["A -> B"])
        assert weakly_satisfied(["A -> B"], r)

    def test_engine_validation(self):
        r = rel("A", [("a",)])
        with pytest.raises(ValueError):
            minimally_incomplete(r, [], engine="nope")
        with pytest.raises(ValueError):
            minimally_incomplete(r, [], engine="congruence", mode=MODE_BASIC)


class TestCanonicalForm:
    def test_invariant_under_null_renaming(self):
        r1 = rel("A B", [("a", "-"), ("b", "-")])
        r2 = rel("A B", [("a", "-"), ("b", "-")])
        assert canonical_form(r1) == canonical_form(r2)

    def test_detects_nec_pattern(self):
        n = null()
        schema = schema_of("A B")
        shared = Relation(schema, [(n, "x"), (n, "x")])
        separate = rel("A B", [("-", "x"), ("-", "x")])
        assert canonical_form(shared) != canonical_form(separate)

    def test_detects_constant_difference(self):
        assert canonical_form(rel("A", [("x",)])) != canonical_form(
            rel("A", [("y",)])
        )


# ---------------------------------------------------------------------------
# property-based: Theorem 4 on random instances
# ---------------------------------------------------------------------------

_cell = st.sampled_from(["v0", "v1", "v2", None])
_fd_pool = ["A -> B", "B -> C", "A -> C", "C -> B", "A B -> C", "C -> A"]


@st.composite
def instances(draw, max_rows=4):
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = [[draw(_cell) for _ in range(3)] for _ in range(n_rows)]
    schema = schema_of("A B C")  # unbounded domains: Theorem 4's setting
    return Relation(
        schema, [[null() if v is None else v for v in row] for row in rows]
    )


@st.composite
def fd_sets(draw):
    return draw(st.lists(st.sampled_from(_fd_pool), min_size=1, max_size=3, unique=True))


@given(instances(), fd_sets())
@settings(max_examples=120, deadline=None)
def test_theorem4a_church_rosser(instance, fds):
    """Extended NS-rules reach one unique fixpoint under any order."""
    results = church_rosser_orders(instance, fds, mode=MODE_EXTENDED, seeds=range(4))
    forms = {canonical_form(result.relation) for result in results}
    assert len(forms) == 1


@given(instances(max_rows=3), fd_sets())
@settings(max_examples=100, deadline=None)
def test_theorem4b_weak_satisfiability(instance, fds):
    """No nothing in the chase fixpoint iff some completion satisfies F.

    Ground truth via effective-domain completion enumeration (domains are
    unbounded, Theorem 4's setting — with exhaustible domains the chase is
    deliberately domain-blind, see the module docstring).
    """
    assume(instance.completion_count() <= 20_000)
    assert weakly_satisfiable(instance, fds) == weakly_satisfied(fds, instance)


@given(instances(), fd_sets())
@settings(max_examples=100, deadline=None)
def test_chase_fixpoints_are_minimal(instance, fds):
    for mode in (MODE_BASIC, MODE_EXTENDED):
        result = chase(instance, fds, mode=mode)
        assert is_minimally_incomplete(result.relation, fds, mode=mode)


@given(instances(), fd_sets())
@settings(max_examples=80, deadline=None)
def test_chase_is_idempotent(instance, fds):
    once = chase(instance, fds, mode=MODE_EXTENDED)
    twice = chase(once.relation, fds, mode=MODE_EXTENDED)
    assert canonical_form(once.relation) == canonical_form(twice.relation)
    assert twice.applications == []
