"""Occurrence-weighted union: the invariant and its observable neutrality.

The shared chase core weighs every union-find node by its cell-occurrence
count, so a merge keeps the occurrence-heavy class as root and moves the
short occurrence list.  Two things need pinning:

* the **invariant** — the heavier class really does become the root, in
  particular when an interned constant (one node, many cells) meets a
  multi-node null class that union-by-size would have favored;
* **neutrality** — root choice is pure bookkeeping: chase results are a
  function of the final partition alone, so they must be field-identical
  regardless of the merge order that produced them (FD list order is the
  lever that permutes merge order without changing the fixpoint).
"""

from hypothesis import given, settings

from repro.chase.congruence import congruence_chase
from repro.chase.engine import MODE_EXTENDED, chase
from repro.chase.indexed import IndexedChaseState, indexed_chase
from repro.core.relation import Relation
from repro.core.values import null

from ..helpers import schema_of
from ..strategies import assert_field_identical, fd_sets, instances


class TestOccurrenceWeightInvariant:
    def _state(self):
        """Column B: one constant interned across six cells (weight 6).
        Column A: three nulls (weight 1 each) plus three constants."""
        nulls = [null(), null(), null()]
        rows = [(n, "c") for n in nulls] + [
            ("a1", "c"), ("a2", "c"), ("a3", "c")
        ]
        state = IndexedChaseState(Relation(schema_of("A B"), rows), [])
        return state, nulls

    def test_interned_constant_carries_its_occurrence_weight(self):
        state, _ = self._state()
        const_node = state.cells[0][1]
        assert state.uf.weight[state.uf.find(const_node)] == 6

    def test_heavier_class_becomes_root(self):
        state, _ = self._state()
        uf = state.uf
        null_nodes = [state.cells[i][0] for i in range(3)]
        state._merge(null_nodes[0], null_nodes[1])
        state._merge(null_nodes[0], null_nodes[2])
        null_root = uf.find(null_nodes[0])
        const_root = uf.find(state.cells[0][1])
        # the null class has three nodes to the constant's one; union by
        # size would root it — occurrence weight (3 cells vs 6) must not
        assert uf.size[null_root] == 3 > uf.size[const_root]
        assert uf.weight[null_root] == 3 < uf.weight[const_root]
        assert state._merge(null_root, const_root) == const_root

    def test_occurrence_index_follows_the_merge(self):
        state, _ = self._state()
        null_root = state._merge(state.cells[0][0], state.cells[1][0])
        const_root = state.uf.find(state.cells[0][1])
        survivor = state._merge(null_root, const_root)
        assert survivor == const_root
        # the two moved cells joined the constant's six
        assert sorted(state._occ[survivor]) == sorted(
            [(0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (5, 1), (0, 0), (1, 0)]
        )
        assert null_root not in state._occ


# ---------------------------------------------------------------------------
# merge-order invariance (the neutrality half)
# ---------------------------------------------------------------------------


@given(instances(max_rows=5), fd_sets())
@settings(max_examples=100, deadline=None)
def test_indexed_chase_invariant_under_fd_order(instance, fds):
    forward = indexed_chase(instance, fds)
    backward = indexed_chase(instance, list(reversed(fds)))
    assert_field_identical(backward, forward)


@given(instances(max_rows=5), fd_sets())
@settings(max_examples=100, deadline=None)
def test_congruence_chase_invariant_under_fd_order(instance, fds):
    forward = congruence_chase(instance, fds)
    backward = congruence_chase(instance, list(reversed(fds)))
    assert_field_identical(backward, forward)


@given(instances(max_rows=4), fd_sets(max_size=3))
@settings(max_examples=75, deadline=None)
def test_fd_order_invariance_holds_across_engines(instance, fds):
    """Reversing the FD list and switching engines at the same time still
    lands on the same fields — partition-determined extraction composed
    with Theorem 4's unique fixpoint."""
    reference = chase(instance, fds, mode=MODE_EXTENDED, engine="sweep")
    flipped = congruence_chase(instance, list(reversed(fds)))
    assert_field_identical(flipped, reference)
