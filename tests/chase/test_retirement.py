"""In-place row retirement: the session delete/update fast path (PR 4).

Two contracts are pinned here, on top of the session suite's global
invariant (``session.result()`` field-identical to a from-scratch chase):

* **when the fast path fires** — old settled rows (no NS-rule ever fired
  on them, no shared nulls) must be served by ``retire_fast`` with zero
  rewinds and zero rebuilds, asserted through :meth:`ChaseSession.stats`
  rather than inferred from timing; merge witnesses and shared-null
  holders must fall back to the journal paths;
* **structural integrity** — after *any* randomized op sequence the
  layered engine structures must exactly mirror each other: the
  occurrence index holds precisely the live cells, every live ``(fd,
  row)`` pair is signed with its current signature, the per-bucket
  member lists partition the signed pairs, anchors are members of their
  own buckets, and witness counts never go negative.  This is the
  member-list ⇄ occurrence-index cross-check the retirement excision
  relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import ChaseSession, chase
from repro.core.tuples import Row
from repro.core.values import NOTHING, is_null, null

from ..helpers import schema_of
from ..strategies import assert_field_identical

SCHEMA = schema_of("A B C")
FDS = ["A -> B", "B -> C", "A B -> C", "C -> B"]


def from_scratch(session):
    return chase(session.raw_relation(), list(session.fds))


def assert_session_identical(session):
    assert_field_identical(session.result(), from_scratch(session))


def assert_core_integrity(session):
    """The layered structures mirror each other exactly."""
    live = list(session._slots)
    assert len(live) == len(set(live)) == len(session._raw_rows)
    assert len(session._marks) == len(session._raw_rows)
    find = session.uf.find

    # occurrence index == exactly the live cells, grouped by class root
    expected_occ = {}
    for slot in live:
        for col, node in enumerate(session.cells[slot]):
            expected_occ.setdefault(find(node), set()).add((slot, col))
    actual_occ = {
        root: set(cells) for root, cells in session._occ.items() if cells
    }
    assert actual_occ == expected_occ
    for root, cells in session._occ.items():
        assert len(cells) == len(set(cells))  # no duplicate entries

    # every live (fd, row) pair is signed with its *current* signature
    expected_sigs = {}
    for k, cols in enumerate(session._lhs_cols):
        for slot in live:
            cells_row = session.cells[slot]
            if len(cols) == 1:
                sig = find(cells_row[cols[0]])
            else:
                sig = tuple(find(cells_row[col]) for col in cols)
            expected_sigs[(k, slot)] = sig
    assert session._sigs == expected_sigs

    # member lists partition the signed pairs; anchors are members
    expected_members = {}
    for (k, slot), sig in session._sigs.items():
        expected_members.setdefault((k, sig), set()).add(slot)
    actual_members = {
        key: set(bucket) for key, bucket in session._members.items()
    }
    assert actual_members == expected_members
    for key, anchor in session._anchors.items():
        assert anchor in session._members[key]

    # witness counts are counts
    assert all(count >= 0 for count in session._row_witness.values())


def settled_session(n=16, fds=FDS, fast_retire=True):
    """A session over n ground rows with unique values everywhere: no
    NS-rule ever fires, so every row is retirable."""
    session = ChaseSession(SCHEMA, fds, fast_retire=fast_retire)
    for i in range(n):
        session.insert((f"a{i}", f"b{i}", f"c{i}"))
    return session


class TestFastPath:
    def test_old_row_deletes_all_retire(self):
        session = settled_session()
        # a recent merge-heavy tail on top (deep trail behind the victims)
        session.insert(("hot", null(), "cz"))
        session.insert(("hot", "bz", null()))
        for _ in range(10):
            session.delete(0)
            assert_session_identical(session)
            assert_core_integrity(session)
        stats = session.stats()
        assert stats["retire_fast"] == 10
        assert stats["trail_replay"] == 0
        assert stats["level_rebuild"] == 0

    def test_merge_witness_falls_back(self):
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b1", "c0"))
        session.insert(("a", null(), "c1"))  # row 0 witnesses the grounding
        for i in range(12):
            session.insert((f"z{i}", f"y{i}", f"x{i}"))
        session.delete(0)
        stats = session.stats()
        assert stats["retire_fast"] == 0
        assert stats["trail_replay"] + stats["level_rebuild"] == 1
        assert_session_identical(session)
        assert_core_integrity(session)
        # the grounding dissolved with its forcer
        assert is_null(session.result().relation[0]["B"])

    def test_shared_null_falls_back(self):
        shared = null()
        session = ChaseSession(SCHEMA, [])
        session.insert(("a0", shared, "c0"))
        for i in range(1, 10):
            session.insert((f"a{i}", f"b{i}", f"c{i}"))
        session.insert(("a10", shared, "c10"))
        session.delete(0)  # holds a null that survives in row 10
        assert session.stats()["retire_fast"] == 0
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_exclusive_null_retires_and_leaves_registry(self):
        session = settled_session(8, fds=[])
        lonely = null()
        session.insert(("x", lonely, "y"))
        for i in range(16):  # enough suffix that rewinding would not pay
            session.insert((f"t{i}", f"u{i}", f"v{i}"))
        session.delete(8)  # the lonely-null row; null occurs nowhere else
        assert session.stats()["retire_fast"] == 1
        assert lonely not in session.substitutions()
        assert all(
            obj is not lonely for obj in session._null_objects.values()
        )
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_nothing_bearing_victim_clears_verdict(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("q", NOTHING, "r"))
        assert session.has_nothing
        for i in range(10):
            session.insert((f"a{i}", f"b{i}", f"c{i}"))
        session.delete(0)  # the old NOTHING-bearing row
        assert session.stats()["retire_fast"] == 1
        assert not session.has_nothing
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_recent_eligible_victim_prefers_the_rewind(self):
        # retiring fences the trail off; a recent victim whose rewind is
        # cheap must keep the replay path even though it is retirable
        session = settled_session(12)
        session.delete(11)
        stats = session.stats()
        assert stats["retire_fast"] == 0
        assert stats["trail_replay"] == 1
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_fast_retire_off_restores_pr3_discipline(self):
        session = settled_session(16, fast_retire=False)
        session.delete(0)
        stats = session.stats()
        assert stats["retire_fast"] == 0
        assert stats["trail_replay"] + stats["level_rebuild"] == 1
        assert_session_identical(session)

    def test_anchor_promotion_keeps_future_collisions_firing(self):
        # rows 0 and 1 share an A-signature but agree on B/C, so their
        # collision fired without merging (witness-free).  Retire the
        # bucket's anchor; a later colliding insert must still fire
        # against the promoted member.
        session = ChaseSession(SCHEMA, ["A -> B"])
        session.insert(("a", "b", "c1"))
        session.insert(("a", "b", "c2"))
        for i in range(10):
            session.insert((f"f{i}", f"g{i}", f"h{i}"))
        session.delete(0)
        assert session.stats()["retire_fast"] == 1
        assert_core_integrity(session)
        session.insert(("a", null(), "c3"))  # must ground against row 0
        assert session.result().relation[-1]["B"] == "b"
        assert_session_identical(session)

    def test_retired_constant_is_clean_for_reuse(self):
        session = settled_session(8)
        session.delete(0)  # retires the row holding a0/b0/c0
        session.insert(("a0", null(), "c9"))
        session.insert(("a0", "b9", "c9"))
        assert session.result().relation[-2]["B"] == "b9"
        assert_session_identical(session)
        assert_core_integrity(session)


class TestReplaceFastPath:
    def test_ground_replacement_rotates_in_place(self):
        session = settled_session(8)
        session.replace(3, ("R", "S", "T"))
        assert [row["A"] for row in session.rows][3] == "R"
        assert session.stats()["retire_fast"] == 1
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_update_uses_the_fast_path(self):
        session = settled_session(8)
        session.update(2, {"B": "patched"})
        assert session.rows[2]["B"] == "patched"
        assert session.stats()["retire_fast"] == 1
        assert_session_identical(session)

    def test_null_bearing_replacement_falls_back(self):
        session = settled_session(8)
        session.replace(3, ("R", null(), "T"))
        assert session.stats()["retire_fast"] == 0
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_fast_replace_then_rewind_delete_stays_exact(self):
        # marks are non-monotone after the rotation; the ratchet must send
        # affected rewinds to the rebuild path instead of corrupting state
        session = settled_session(10)
        session.replace(4, ("R", "S", "T"))
        session.insert(("tail1", "u1", "w1"))
        session.insert(("tail2", null(), "w2"))
        session.delete(10)  # recent victim, above the ratchet
        assert_session_identical(session)
        assert_core_integrity(session)
        session.delete(4)  # the rotated row itself (below the ratchet)
        assert_session_identical(session)
        assert_core_integrity(session)


class TestSnapshotInterplay:
    def test_rollback_across_a_retirement_rebuilds_exactly(self):
        session = settled_session(10)
        snap = session.snapshot()
        session.delete(0)
        assert session.stats()["retire_fast"] == 1
        session.rollback(snap)  # gen bumped: must take the rebuild fallback
        assert len(session) == 10
        assert [row["A"] for row in session.rows][0] == "a0"
        assert_session_identical(session)
        assert_core_integrity(session)

    def test_snapshot_after_retirement_still_fast(self):
        session = settled_session(10)
        session.delete(0)
        snap = session.snapshot()
        rebuilds = session.stats()["level_rebuild"]
        session.insert(("n1", null(), "n2"))
        session.rollback(snap)  # no rewind since the snapshot: trail path
        assert session.stats()["level_rebuild"] == rebuilds
        assert len(session) == 9
        assert_session_identical(session)
        assert_core_integrity(session)


class TestStats:
    def test_keys_and_counts_on_old_row_script(self):
        session = settled_session(24)
        session.insert(("hot", null(), "h1"))
        session.insert(("hot", "hb", null()))
        for _ in range(12):
            session.delete(0)
        stats = session.stats()
        assert set(stats) == {"retire_fast", "trail_replay", "level_rebuild"}
        assert stats["retire_fast"] == 12
        assert stats["level_rebuild"] == 0  # bounded: the fast path served all
        # counters survive an explicit rebuild
        session.compact()
        assert session.stats()["retire_fast"] == 12
        assert session.stats()["level_rebuild"] == 1

    def test_stats_returns_a_copy(self):
        session = settled_session(2)
        stats = session.stats()
        stats["retire_fast"] = 999
        assert session.stats()["retire_fast"] == 0


class TestCompactionAndResetInterplay:
    """compact()/reset() after a retire-heavy workload: counters survive,
    the members ⇄ sigs ⇄ occurrence-index mirror is rebuilt exactly, and
    the tombstoned slots actually disappear."""

    def retire_heavy_session(self, n=24, deletes=10):
        session = settled_session(n)
        session.insert(("hot", null(), "h1"))
        session.insert(("hot", "hb", null()))
        for _ in range(deletes):
            session.delete(0)  # old settled victims: all retire in place
        assert session.stats()["retire_fast"] == deletes
        return session

    def test_compact_after_retire_heavy_workload(self):
        session = self.retire_heavy_session()
        before = session.stats()
        rows_before = [tuple(row.values) for row in session.rows]
        assert len(session.cells) > len(session)  # tombstoned slots linger
        session.compact()
        after = session.stats()
        # cumulative counters survive the rebuild; the rebuild is counted
        assert after["retire_fast"] == before["retire_fast"]
        assert after["trail_replay"] == before["trail_replay"]
        assert after["level_rebuild"] == before["level_rebuild"] + 1
        # the rebuild dropped the tombstones and rebuilt the mirrors
        assert len(session.cells) == len(session)
        assert [tuple(row.values) for row in session.rows] == rows_before
        assert_core_integrity(session)
        assert_session_identical(session)

    def test_retirement_keeps_working_after_compact(self):
        session = self.retire_heavy_session()
        session.compact()
        rebuilds = session.stats()["level_rebuild"]
        # rows are "recent" again right after a rebuild (fresh trail), so
        # age the trail with a merge-heavy tail before deleting old rows
        session.insert(("hot2", null(), "t1"))
        session.insert(("hot2", "tb", null()))
        retired = session.stats()["retire_fast"]
        session.delete(0)
        assert session.stats()["retire_fast"] == retired + 1
        assert session.stats()["level_rebuild"] == rebuilds
        assert_core_integrity(session)
        assert_session_identical(session)

    def test_reset_after_retire_heavy_workload(self):
        session = self.retire_heavy_session()
        before = session.stats()
        session.reset([("r0", "s0", "t0"), ("r1", "s1", "t1")])
        after = session.stats()
        assert after["retire_fast"] == before["retire_fast"]
        assert after["level_rebuild"] == before["level_rebuild"] + 1
        assert len(session) == 2
        assert len(session.cells) == 2  # tombstones gone
        assert_core_integrity(session)
        assert_session_identical(session)

    def test_snapshot_across_compact_takes_the_rebuild_fallback(self):
        session = self.retire_heavy_session(n=16, deletes=4)
        snap = session.snapshot()
        session.compact()
        rebuilds = session.stats()["level_rebuild"]
        session.rollback(snap)  # compaction invalidated the trail mark
        assert session.stats()["level_rebuild"] == rebuilds + 1
        assert len(session) == 14  # 16 - 4 + the 2 hot rows
        assert_core_integrity(session)
        assert_session_identical(session)

    def test_randomized_retire_then_compact_then_churn(self):
        import random

        rng = random.Random(91)
        session = self.retire_heavy_session()
        for step in range(30):
            roll = rng.random()
            if roll < 0.45 or not len(session):
                session.insert(
                    (
                        f"k{rng.randrange(6)}",
                        null() if rng.random() < 0.3 else f"m{rng.randrange(6)}",
                        f"c{rng.randrange(4)}",
                    )
                )
            elif roll < 0.7:
                session.delete(rng.randrange(len(session)))
            elif roll < 0.9:
                session.update(
                    rng.randrange(len(session)), {"B": f"u{rng.randrange(5)}"}
                )
            else:
                session.compact()
            assert_core_integrity(session)
            assert_session_identical(session)
        counters = session.stats()
        assert counters["retire_fast"] >= 10  # the seed workload's retirements


# ---------------------------------------------------------------------------
# randomized integrity driver: members ⇄ sigs ⇄ occurrence index, always
# ---------------------------------------------------------------------------

_constants = ["v0", "v1", "v2"]
_cell = st.sampled_from(_constants + ["fresh", "s0", "s1", "nothing"])
_fd_lists = st.lists(st.sampled_from(FDS), min_size=1, max_size=3, unique=True)


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["insert", "insert", "insert", "delete", "delete", "update",
                 "replace", "fill", "adopt", "compact", "snapshot", "rollback"]
            )
        )
        ops.append(
            (
                kind,
                [draw(_cell) for _ in range(3)],
                draw(st.integers(min_value=0, max_value=11)),
                draw(st.sampled_from("ABC")),
                draw(st.sampled_from(_constants)),
            )
        )
    return ops


def _materialize(tokens, shared):
    out = []
    for token in tokens:
        if token == "fresh":
            out.append(null())
        elif token == "nothing":
            out.append(NOTHING)
        elif token.startswith("s"):
            out.append(shared[int(token[1:])])
        else:
            out.append(token)
    return out


@given(op_sequences(), _fd_lists)
@settings(max_examples=120, deadline=None)
def test_structures_stay_mirrored_after_every_op(ops, fds):
    session = ChaseSession(SCHEMA, fds)
    shared = [null(), null()]
    snapshots = []
    for kind, cells, index, attr, value in ops:
        if kind == "insert":
            session.insert(Row(SCHEMA, _materialize(cells, shared)))
        elif kind in ("delete", "update", "replace", "fill"):
            if not len(session):
                continue
            index %= len(session)
            if kind == "delete":
                session.delete(index)
            elif kind == "update":
                session.update(
                    index, {attr: _materialize([cells[0]], shared)[0]}
                )
            elif kind == "replace":
                session.replace(index, Row(SCHEMA, _materialize(cells, shared)))
            else:
                if not is_null(session.rows[index][attr]):
                    continue
                session.fill(index, attr, value)
        elif kind == "adopt":
            session.adopt()
        elif kind == "compact":
            session.compact()
        elif kind == "snapshot":
            snapshots.append(session.snapshot())
            continue
        else:
            if not snapshots:
                continue
            session.rollback(snapshots.pop(index % len(snapshots)))
        assert_core_integrity(session)
        assert_session_identical(session)


@given(op_sequences(), _fd_lists)
@settings(max_examples=60, deadline=None)
def test_fast_and_slow_sessions_agree(ops, fds):
    """The same op script on fast_retire=True vs False lands on
    field-identical views and identical raw rows."""
    fast = ChaseSession(SCHEMA, fds, fast_retire=True)
    slow = ChaseSession(SCHEMA, fds, fast_retire=False)
    shared = [null(), null()]
    for kind, cells, index, attr, value in ops:
        if kind == "insert":
            row = Row(SCHEMA, _materialize(cells, shared))
            fast.insert(row)
            slow.insert(row)
        elif kind in ("delete", "update", "replace"):
            if not len(fast):
                continue
            index %= len(fast)
            if kind == "delete":
                fast.delete(index)
                slow.delete(index)
            elif kind == "update":
                changes = {attr: _materialize([cells[0]], shared)[0]}
                fast.update(index, changes)
                slow.update(index, changes)
            else:
                row = Row(SCHEMA, _materialize(cells, shared))
                fast.replace(index, row)
                slow.replace(index, row)
        else:
            continue  # snapshots etc. exercised by the driver above
        assert [tuple(r.values) for r in fast.rows] == [
            tuple(r.values) for r in slow.rows
        ]
        assert_field_identical(fast.result(), slow.result())
