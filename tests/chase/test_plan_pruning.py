"""Cover-pruned chase planning: equivalent FD sets, identical fixpoints.

``prune_fds`` rewrites a plan's FD set to an Armstrong-equivalent cover
(trivials dropped, same-LHS merged, LHSs reduced, implied FDs removed).
Theorem 4 makes the rewrite invisible to the chase *result* — the unique
minimally-incomplete fixpoint depends on the FD set only through its
closure — which the differential suite here checks field by field.
"""

import random

from repro.chase.engine import chase
from repro.chase.parallel import parallel_chase
from repro.chase.plan import fuse_for_rows, plan_shards, prune_fds
from repro.chase.session import ChaseSession
from repro.core.fd import FD
from repro.core.relation import Relation
from repro.core.schema import RelationSchema
from repro.core.tuples import Row
from repro.core.values import null

SCHEMA = RelationSchema("R", "A B C D E")


class TestPruneFds:
    def test_trivial_fds_drop(self):
        kept, dropped = prune_fds(SCHEMA, ["A -> A", "A B -> B"])
        assert kept == ()
        assert len(dropped) == 2

    def test_duplicates_collapse(self):
        kept, _ = prune_fds(SCHEMA, ["A -> B", "A -> B", "B A -> B"])
        assert kept == (FD("A", "B"),)

    def test_same_lhs_merge(self):
        kept, _ = prune_fds(SCHEMA, ["A -> B", "A -> C"])
        assert kept == (FD("A", "B C"),)

    def test_implied_fd_removed(self):
        kept, dropped = prune_fds(SCHEMA, ["A -> B", "B -> C", "A -> C"])
        assert FD("A", "C") not in kept
        assert FD("A", "C") in dropped

    def test_extraneous_lhs_attribute_reduced(self):
        kept, _ = prune_fds(SCHEMA, ["A -> B", "A B -> C"])
        # B is extraneous in AB -> C (closure(A) already holds B)
        assert set(kept) == {FD("A", "B"), FD("A", "C")} or set(kept) == {
            FD("A", "B C")
        }

    def test_pruned_set_is_equivalent(self):
        from repro.armstrong.implication import equivalent

        fds = ["A -> B", "B -> C", "A -> C", "A B -> D", "C -> C"]
        kept, _ = prune_fds(SCHEMA, fds)
        assert equivalent(kept, [FD.parse(f) for f in fds if "->" in f])

    def test_empty_input(self):
        assert prune_fds(SCHEMA, []) == ((), ())


class TestPlanIntegration:
    def test_plan_records_dropped_fds(self):
        plan = plan_shards(SCHEMA, ["A -> B", "A -> B", "E -> E"], prune=True)
        assert plan.fds == (FD("A", "B"),)
        assert len(plan.dropped) == 2
        assert "pruned" in plan.summary()

    def test_unpruned_plan_keeps_every_fd(self):
        plan = plan_shards(SCHEMA, ["A -> B", "A -> B"], prune=False)
        assert len(plan.fds) == 2
        assert plan.dropped == ()

    def test_pruning_can_widen_the_bypass(self):
        # AD -> B is implied by A -> B; dropping it frees column D
        plan = plan_shards(SCHEMA, ["A -> B", "A D -> B"], prune=True)
        d = SCHEMA.position("D")
        assert d in plan.bypass

    def test_fuse_preserves_dropped(self):
        plan = plan_shards(SCHEMA, ["A -> B", "A -> B", "C -> D"], prune=True)
        shared = null()
        rows = [
            Row(SCHEMA, ["a", shared, "c", "d", "e"]),
            Row(SCHEMA, ["x", "y", "c", shared, "e"]),
        ]
        fused = fuse_for_rows(plan, rows)
        assert len(fused.shards) == 1  # the shared null coupled the shards
        assert fused.dropped == plan.dropped

    def test_session_plan_is_pruned(self):
        session = ChaseSession(SCHEMA, ["A -> B", "A -> B", "B -> C"])
        plan = session.plan()
        assert len(plan.fds) < 3
        assert plan.dropped


def random_instance(rng, rows=6):
    pool = [null() for _ in range(4)]
    out = []
    for _ in range(rows):
        values = []
        for _ in range(len(SCHEMA)):
            r = rng.random()
            if r < 0.3:
                values.append(rng.choice(pool))
            else:
                values.append(f"v{rng.randint(0, 3)}")
        out.append(values)
    return Relation(SCHEMA, [Row(SCHEMA, v) for v in out])


def redundant_fd_set(rng):
    base = [FD("A", "B"), FD("B", "C"), FD("C", "D")]
    redundant = [FD("A", "C"), FD("A", "D"), FD("B", "D"), FD("A B", "C")]
    fds = base + rng.sample(redundant, rng.randint(1, len(redundant)))
    rng.shuffle(fds)
    return fds


class TestDifferentialGuard:
    def test_pruned_chase_is_field_identical_to_unpruned(self):
        rng = random.Random(42)
        for trial in range(25):
            fds = redundant_fd_set(rng)
            relation = random_instance(rng)
            pruned_plan = plan_shards(SCHEMA, fds, prune=True)
            unpruned_plan = plan_shards(SCHEMA, fds, prune=False)
            assert len(pruned_plan.fds) < len(unpruned_plan.fds)
            pruned = parallel_chase(relation, fds, workers=1, plan=pruned_plan)
            unpruned = parallel_chase(
                relation, fds, workers=1, plan=unpruned_plan
            )
            assert [r.values for r in pruned.relation.rows] == [
                r.values for r in unpruned.relation.rows
            ], f"trial {trial}: rows diverge"
            assert pruned.nec_classes == unpruned.nec_classes
            assert {
                id(k): v for k, v in pruned.substitutions.items()
            } == {id(k): v for k, v in unpruned.substitutions.items()}
            assert pruned.has_nothing == unpruned.has_nothing

    def test_pruned_plan_matches_the_serial_engine(self):
        rng = random.Random(7)
        for _ in range(10):
            fds = redundant_fd_set(rng)
            relation = random_instance(rng)
            reference = chase(relation, fds)
            pruned = parallel_chase(relation, fds, workers=1)
            assert [r.values for r in pruned.relation.rows] == [
                r.values for r in reference.relation.rows
            ]
            assert pruned.has_nothing == reference.has_nothing

    def test_session_verify_holds_under_pruned_plans(self):
        rng = random.Random(13)
        session = ChaseSession(SCHEMA, redundant_fd_set(rng), workers=1)
        for row in random_instance(rng, rows=5).rows:
            session.insert(row)
        assert session.verify()
        assert session.verify(workers=2)
