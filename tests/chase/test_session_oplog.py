"""The session's op-record hook (``ChaseSession.on_op``): the contract the
durable layer builds on.

Three properties:

* **one record per top-level op, none for internal work** — suffix
  replays, level rebuilds, retirement, rollback restoration and compaction
  re-apply rows through private entry points and must not re-emit;
* **validate-then-emit-then-apply** — an op that fails validation emits
  nothing; a hook that raises aborts the op with the state untouched
  (write-ahead: no record, no op);
* **replay fidelity** — feeding the emitted records back into a fresh
  session reproduces a field-identical state.
"""

import pytest

from repro.chase import ChaseSession
from repro.core.values import null
from repro.errors import ReproError, SchemaError

from ..helpers import schema_of
from ..strategies import assert_field_identical

SCHEMA = schema_of("A B C")
FDS = ["A -> B", "B -> C"]


def recording_session(fds=FDS):
    session = ChaseSession(SCHEMA, fds)
    records = []
    session.on_op = records.append
    return session, records


def replay(records, fds=FDS):
    replayed = ChaseSession(SCHEMA, fds)
    for record in records:
        op = record[0]
        if op == "insert":
            replayed.insert(record[1])
        elif op == "delete":
            replayed.delete(record[1])
        elif op == "update":
            replayed.update(record[1], record[2])
        elif op == "replace":
            replayed.replace(record[1], record[2])
        elif op == "fill":
            replayed.fill(record[1], record[2], record[3])
        elif op == "reset":
            replayed.reset(list(record[1]))
        elif op == "adopt":
            replayed.adopt()
        else:  # pragma: no cover
            raise AssertionError(record)
    return replayed


class TestEmission:
    def test_one_record_per_mutator(self):
        session, records = recording_session()
        session.insert(("a", null(), "c"))
        session.insert(("a", "b", "c2"))
        session.update(1, {"C": "c9"})
        session.replace(1, ("d", "e", "f"))
        session.delete(0)
        session.adopt()
        session.reset([("x", "y", "z")])
        assert [record[0] for record in records] == [
            "insert", "insert", "update", "replace", "delete", "adopt", "reset"
        ]

    def test_insert_record_carries_the_values(self):
        session, records = recording_session()
        unknown = null()
        session.insert(("a", unknown, "c"))
        assert records == [("insert", ("a", unknown, "c"))]

    def test_suffix_replay_does_not_reemit(self):
        session, records = recording_session()
        for i in range(6):
            session.insert((f"a{i}", f"b{i}", f"c{i}"))
        session.delete(4)  # recent victim: rewind + replay of row 5
        assert session.stats()["trail_replay"] == 1
        assert [record[0] for record in records] == ["insert"] * 6 + ["delete"]

    def test_rebuild_and_retirement_do_not_reemit(self):
        session, records = recording_session()
        for i in range(16):
            session.insert((f"a{i}", f"b{i}", f"c{i}"))
        session.delete(0)  # old settled victim: retirement
        assert session.stats()["retire_fast"] == 1
        session.compact()  # rebuild: re-inserts every row internally
        kinds = [record[0] for record in records]
        assert kinds == ["insert"] * 16 + ["delete"]  # no compact record

    def test_rollback_and_snapshot_are_not_session_records(self):
        session, records = recording_session()
        session.insert(("a", "b", "c"))
        snap = session.snapshot()
        session.insert(("a", "b9", "c9"))
        session.rollback(snap)  # restoration re-applies rows internally
        assert [record[0] for record in records] == ["insert", "insert"]

    def test_multi_column_fill_does_not_reemit(self):
        session, records = recording_session(fds=[])
        shared = null()
        session.insert((shared, "b", shared))  # null spans columns A and C
        session.fill(0, "A", "v")  # rewind-to-first-occurrence path
        assert [record[0] for record in records] == ["insert", "fill"]
        assert records[-1] == ("fill", 0, "A", "v")


class TestWriteAheadDiscipline:
    def test_failed_validation_emits_nothing(self):
        session, records = recording_session()
        session.insert(("a", "b", "c"))
        emitted = len(records)
        with pytest.raises(SchemaError):
            session.delete(7)
        with pytest.raises(SchemaError):
            session.insert(("too", "few"))
        with pytest.raises(SchemaError):
            session.update(0, {"Z": "nope"})
        with pytest.raises(ReproError):
            session.fill(0, "A", "x")  # cell is not null
        assert len(records) == emitted

    def test_raising_hook_aborts_before_application(self):
        session = ChaseSession(SCHEMA, FDS)
        session.insert(("a", "b", "c"))

        def veto(record):
            raise RuntimeError("journal unavailable")

        session.on_op = veto
        with pytest.raises(RuntimeError):
            session.insert(("a2", "b2", "c2"))
        with pytest.raises(RuntimeError):
            session.delete(0)
        session.on_op = None
        assert len(session) == 1
        assert [row["A"] for row in session.rows] == ["a"]


class TestReplayFidelity:
    def test_emitted_records_rebuild_the_state(self):
        session, records = recording_session()
        shared = null()
        session.insert(("a", shared, "c1"))
        session.insert(("a", null(), shared))
        session.insert(("a2", "b2", "c2"))
        session.update(2, {"B": null()})
        session.delete(1)
        session.adopt()
        session.insert(("a3", "b3", "c3"))
        replayed = replay(records)
        assert_field_identical(session.result(), replayed.result())
        assert [row.values for row in session.rows] == [
            row.values for row in replayed.rows
        ]

    def test_replay_reproduces_poisoning(self):
        session, records = recording_session()
        session.insert(("a", "b1", "c"))
        session.insert(("a", "b2", "c"))  # A -> B conflict: NOTHING
        assert session.has_nothing
        replayed = replay(records)
        assert replayed.has_nothing
        assert_field_identical(session.result(), replayed.result())
