"""Shard-planner tests: components are a true partition of the FD set.

The planner's claim (``repro/chase/plan.py``) is structural: FDs exchange
information only through shared attributes, so connected components of the
attribute graph chase independently.  These tests pin the partition
properties (every FD in exactly one shard, shard columns disjoint, bypass
columns disjoint from every shard), the degenerate shapes (an FD spanning
all columns collapses to one shard; no FDs means everything bypasses), the
row-level fusion rule (a null object bridging two shards' columns fuses
them), and — the acceptance contract — that a singleton plan's execution
matches the unplanned engine byte-for-byte.
"""

from hypothesis import given, settings

from repro.chase.indexed import indexed_chase
from repro.chase.parallel import parallel_chase
from repro.chase.plan import fuse_for_rows, plan_shards
from repro.core.fd import as_fd
from repro.core.relation import Relation
from repro.core.values import null

from ..helpers import rel, schema_of
from ..strategies import CHASE_FD_POOL, assert_field_identical, fd_sets, instances

#: FDs over A..H with several structural components and untouched columns
WIDE_FD_POOL = (
    "A -> B",
    "B -> A",
    "A B -> C",
    "C -> A",
    "D -> E",
    "E -> D",
    "F -> G",
    "G -> F",
    "D -> F",
)


class TestStructuralPlan:
    def test_every_fd_lands_in_exactly_one_shard(self):
        schema = schema_of("A B C D E F G H")
        fds = ["A -> B", "D -> E", "F -> G"]
        plan = plan_shards(schema, fds)
        owned = [k for shard in plan.shards for k in shard.fd_indices]
        assert sorted(owned) == list(range(len(fds)))
        assert len(owned) == len(set(owned))

    def test_shard_columns_and_bypass_partition_the_schema(self):
        schema = schema_of("A B C D E F G H")
        plan = plan_shards(schema, ["A -> B", "D -> E", "F -> G"])
        seen = [c for shard in plan.shards for c in shard.columns]
        seen += list(plan.bypass)
        assert sorted(seen) == list(range(len(schema.attributes)))
        assert len(seen) == len(set(seen))
        assert plan.bypass == (2, 7)  # C and H are untouched

    def test_fd_spanning_all_columns_degenerates_to_one_shard(self):
        schema = schema_of("A B C D")
        plan = plan_shards(schema, ["A -> B", "C -> D", "A B C -> D"])
        assert len(plan.shards) == 1
        assert plan.shards[0].columns == (0, 1, 2, 3)
        assert plan.shards[0].fd_indices == (0, 1, 2)
        assert plan.bypass == ()

    def test_no_fds_means_everything_bypasses(self):
        schema = schema_of("A B C")
        plan = plan_shards(schema, [])
        assert plan.shards == ()
        assert plan.bypass == (0, 1, 2)

    def test_shards_are_ordered_by_first_column(self):
        schema = schema_of("A B C D")
        plan = plan_shards(schema, ["C -> D", "A -> B"])
        assert [shard.columns for shard in plan.shards] == [(0, 1), (2, 3)]
        # fd_indices keep input order: "C -> D" is FD 0
        assert [shard.fd_indices for shard in plan.shards] == [(1,), (0,)]

    def test_plan_normalizes_fds(self):
        schema = schema_of("A B C")
        plan = plan_shards(schema, ["A -> A B"])
        assert plan.fds == (as_fd("A -> B").normalized(),)

    @given(fd_sets(pool=WIDE_FD_POOL, min_size=1, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_partition_property_on_random_fd_sets(self, fds):
        schema = schema_of("A B C D E F G H")
        plan = plan_shards(schema, fds)
        # every FD in exactly one shard
        owned = sorted(k for shard in plan.shards for k in shard.fd_indices)
        assert owned == list(range(len(fds)))
        # shard columns pairwise disjoint, and disjoint from bypass
        columns = [c for shard in plan.shards for c in shard.columns]
        assert len(columns) == len(set(columns))
        assert not set(columns) & set(plan.bypass)
        # each FD's attributes are contained in its shard's columns
        for shard in plan.shards:
            shard_cols = set(shard.columns)
            for k in shard.fd_indices:
                fd = plan.fds[k]
                fd_cols = set(schema.positions(fd.lhs) + schema.positions(fd.rhs))
                assert fd_cols <= shard_cols


class TestRowFusion:
    def test_shared_null_fuses_two_shards(self):
        schema = schema_of("A B C D")
        plan = plan_shards(schema, ["A -> B", "C -> D"])
        assert len(plan.shards) == 2
        shared = null()
        rows = Relation(schema, [["a", shared, shared, "d"]]).rows
        fused = fuse_for_rows(plan, rows)
        assert len(fused.shards) == 1
        assert fused.shards[0].columns == (0, 1, 2, 3)
        assert fused.shards[0].fd_indices == (0, 1)

    def test_unshared_nulls_leave_the_plan_untouched(self):
        schema = schema_of("A B C D")
        plan = plan_shards(schema, ["A -> B", "C -> D"])
        rows = Relation(schema, [["a", null(), null(), "d"]]).rows
        assert fuse_for_rows(plan, rows) is plan

    def test_null_shared_with_a_bypass_column_needs_no_fusion(self):
        # the stitcher repairs bypass occurrences from the shard's
        # substitutions, so only shard-to-shard sharing fuses
        schema = schema_of("A B C")
        plan = plan_shards(schema, ["A -> B"])
        shared = null()
        rows = Relation(schema, [["a", shared, shared]]).rows
        assert fuse_for_rows(plan, rows) is plan

    def test_transitive_sharing_fuses_a_chain_of_shards(self):
        schema = schema_of("A B C D E F")
        plan = plan_shards(schema, ["A -> B", "C -> D", "E -> F"])
        assert len(plan.shards) == 3
        u, v = null(), null()
        rows = Relation(schema, [["a", u, u, v, v, "f"]]).rows
        fused = fuse_for_rows(plan, rows)
        assert len(fused.shards) == 1
        assert fused.shards[0].fd_indices == (0, 1, 2)


class TestSingletonPlanMatchesUnplannedEngine:
    """A one-shard plan must execute byte-identically to ``indexed_chase``."""

    @given(instances(), fd_sets(pool=CHASE_FD_POOL, min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_single_component_instances(self, instance, fds):
        # CHASE_FD_POOL spans A..D densely; whatever the component shape,
        # the planned execution must match the unplanned engine exactly
        reference = indexed_chase(instance, fds)
        planned = parallel_chase(instance, fds, workers=1)
        assert_field_identical(planned, reference)

    def test_degenerate_all_columns_shard(self):
        r = rel("A B C", [("a", "-", "-"), ("a", "-", "c5")])
        fds = ["A B C -> A B C", "A -> B", "B -> C"]
        assert_field_identical(
            parallel_chase(r, fds, workers=1), indexed_chase(r, fds)
        )
