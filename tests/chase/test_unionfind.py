"""Tests for the union-find substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.unionfind import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind(3)
        assert not uf.same(0, 1)
        assert uf.find(2) == 2

    def test_union_merges(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert uf.same(0, 1)
        assert not uf.same(0, 2)

    def test_union_returns_surviving_root(self):
        uf = UnionFind(2)
        root = uf.union(0, 1)
        assert uf.find(0) == uf.find(1) == root

    def test_union_by_size(self):
        uf = UnionFind(4)
        big = uf.union(0, 1)
        survivor = uf.union(big, 2)
        assert survivor == big  # the larger class keeps its root
        assert uf.union(survivor, 3) == big

    def test_merge_count(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)  # no-op
        uf.union(1, 2)
        assert uf.merges == 2

    def test_add_grows(self):
        uf = UnionFind(1)
        node = uf.add()
        assert node == 1
        assert len(uf) == 2
        uf.union(0, node)
        assert uf.same(0, 1)

    def test_classes(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        classes = uf.classes()
        sizes = sorted(len(members) for members in classes.values())
        assert sizes == [1, 1, 2]


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
@settings(max_examples=100, deadline=None)
def test_matches_naive_partition(pairs):
    """Union-find agrees with a naive partition refinement."""
    uf = UnionFind(20)
    naive = {i: {i} for i in range(20)}
    for a, b in pairs:
        uf.union(a, b)
        if naive[a] is not naive[b]:
            merged = naive[a] | naive[b]
            for member in merged:
                naive[member] = merged
    for i in range(20):
        for j in range(20):
            assert uf.same(i, j) == (naive[i] is naive[j])


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20))
@settings(max_examples=100, deadline=None)
def test_class_count_decreases_by_real_merges(pairs):
    uf = UnionFind(10)
    for a, b in pairs:
        uf.union(a, b)
    assert len(uf.classes()) == 10 - uf.merges
