"""Tests for the union-find substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.unionfind import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind(3)
        assert not uf.same(0, 1)
        assert uf.find(2) == 2

    def test_union_merges(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert uf.same(0, 1)
        assert not uf.same(0, 2)

    def test_union_returns_surviving_root(self):
        uf = UnionFind(2)
        root = uf.union(0, 1)
        assert uf.find(0) == uf.find(1) == root

    def test_union_by_size(self):
        uf = UnionFind(4)
        big = uf.union(0, 1)
        survivor = uf.union(big, 2)
        assert survivor == big  # the larger class keeps its root
        assert uf.union(survivor, 3) == big

    def test_merge_count(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)  # no-op
        uf.union(1, 2)
        assert uf.merges == 2

    def test_add_grows(self):
        uf = UnionFind(1)
        node = uf.add()
        assert node == 1
        assert len(uf) == 2
        uf.union(0, node)
        assert uf.same(0, 1)

    def test_classes(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        classes = uf.classes()
        sizes = sorted(len(members) for members in classes.values())
        assert sizes == [1, 1, 2]


class TestWeightedUnion:
    def test_default_weights_coincide_with_union_by_size(self):
        uf = UnionFind(4)
        big = uf.union(0, 1)
        assert uf.union(big, 2) == big
        assert uf.weight[big] == 3 == uf.size[big]

    def test_heavier_singleton_beats_larger_class(self):
        # one node of weight 10 (an interned constant in 10 cells) vs a
        # class of three weight-1 nodes: node count says the trio wins,
        # occurrence weight says the constant does
        uf = UnionFind(4)
        uf.set_weight(3, 10)
        trio = uf.union(0, 1)
        trio = uf.union(trio, 2)
        assert uf.size[trio] == 3
        assert uf.union(trio, 3) == 3
        assert uf.weight[3] == 13
        assert uf.size[3] == 4

    def test_weights_accumulate_across_merges(self):
        uf = UnionFind(3)
        uf.set_weight(0, 4)
        uf.set_weight(1, 2)
        root = uf.union(0, 1)
        assert root == 0
        assert uf.weight[0] == 6
        assert uf.union(0, 2) == 0
        assert uf.weight[0] == 7

    def test_set_weight_rejects_non_singletons(self):
        uf = UnionFind(3)
        root = uf.union(0, 1)
        absorbed = 1 if root == 0 else 0
        with pytest.raises(ValueError):
            uf.set_weight(absorbed, 5)  # not a root
        with pytest.raises(ValueError):
            uf.set_weight(root, 5)  # a root, but no longer a singleton
        uf.set_weight(2, 5)  # untouched singleton: fine


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
@settings(max_examples=100, deadline=None)
def test_matches_naive_partition(pairs):
    """Union-find agrees with a naive partition refinement."""
    uf = UnionFind(20)
    naive = {i: {i} for i in range(20)}
    for a, b in pairs:
        uf.union(a, b)
        if naive[a] is not naive[b]:
            merged = naive[a] | naive[b]
            for member in merged:
                naive[member] = merged
    for i in range(20):
        for j in range(20):
            assert uf.same(i, j) == (naive[i] is naive[j])


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20))
@settings(max_examples=100, deadline=None)
def test_class_count_decreases_by_real_merges(pairs):
    uf = UnionFind(10)
    for a, b in pairs:
        uf.union(a, b)
    assert len(uf.classes()) == 10 - uf.merges
