"""Tests for the incremental chase: fixpoint maintenance across inserts."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import ChaseSession, IncrementalChase, canonical_form, congruence_chase
from repro.core.relation import Relation
from repro.core.values import NOTHING, null

from ..helpers import rel, schema_of

# this suite exercises the deprecated alias on purpose; the deprecation
# itself is pinned by TestDeprecation below
pytestmark = pytest.mark.filterwarnings("ignore:repro:DeprecationWarning")


class TestDeprecation:
    def test_incremental_chase_warns_on_construction(self):
        with pytest.warns(DeprecationWarning, match="IncrementalChase is deprecated"):
            IncrementalChase(schema_of("A B"), ["A -> B"])

    def test_chase_session_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = ChaseSession(schema_of("A B"), ["A -> B"])
            session.insert(("a", null()))
            session.delete(0)


class TestBasics:
    def test_empty_start(self):
        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        assert len(inc) == 0
        assert not inc.has_nothing

    def test_single_insert(self):
        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        inc.insert(("a", 1))
        assert len(inc) == 1
        assert inc.current().relation[0]["B"] == 1

    def test_substitution_on_insert(self):
        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        inc.insert(("a", null()))
        inc.insert(("a", "b1"))
        assert inc.current().relation[0]["B"] == "b1"

    def test_nec_on_insert(self):
        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        inc.insert(("a", null()))
        inc.insert(("a", null()))
        result = inc.current()
        assert result.relation[0]["B"] is result.relation[1]["B"]

    def test_conflict_detection_live(self):
        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        inc.insert(("a", 1))
        assert not inc.has_nothing
        inc.insert(("a", 2))
        assert inc.has_nothing
        assert inc.current().relation[0]["B"] is NOTHING

    def test_cascade_through_earlier_rows(self):
        # a late insert grounds a null from the very first row via a chain
        inc = IncrementalChase(schema_of("A B C"), ["A -> B", "B -> C"])
        inc.insert(("a", null(), null()))
        inc.insert(("a", "b1", null()))
        inc.insert(("z", "b1", "c9"))
        result = inc.current()
        assert result.relation[0]["B"] == "b1"
        assert result.relation[0]["C"] == "c9"

    def test_initial_rows_argument(self):
        inc = IncrementalChase(
            schema_of("A B"), ["A -> B"], rows=[("a", null()), ("a", 7)]
        )
        assert inc.current().relation[0]["B"] == 7


class TestEquivalenceWithBatch:
    def test_figure5_stream(self):
        from repro.workloads.paper import figure_5

        _, fds, relation = figure_5()
        inc = IncrementalChase(relation.schema, fds)
        for row in relation.rows:
            inc.insert(row)
        batch = congruence_chase(relation, fds)
        assert canonical_form(inc.current().relation) == canonical_form(
            batch.relation
        )
        assert inc.has_nothing == batch.has_nothing


# ---------------------------------------------------------------------------
# property-based: a stream of inserts equals the batch chase of the result
# ---------------------------------------------------------------------------

_cell = st.sampled_from(["v0", "v1", "v2", None])
_fd_pool = ["A -> B", "B -> C", "A -> C", "C -> B", "A B -> C"]


@given(
    st.lists(
        st.tuples(_cell, _cell, _cell), min_size=1, max_size=8
    ),
    st.lists(st.sampled_from(_fd_pool), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=150, deadline=None)
def test_incremental_equals_batch(rows, fds):
    schema = schema_of("A B C")
    materialized = [
        [null() if v is None else v for v in row] for row in rows
    ]
    relation = Relation(schema, materialized)

    inc = IncrementalChase(schema, fds)
    for row in relation.rows:
        inc.insert(row)
    batch = congruence_chase(relation, fds)
    assert canonical_form(inc.current().relation) == canonical_form(
        batch.relation
    )
    assert inc.has_nothing == batch.has_nothing


@given(
    st.lists(st.tuples(_cell, _cell, _cell), min_size=2, max_size=6),
    st.lists(st.sampled_from(_fd_pool), min_size=1, max_size=2, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_insertion_order_does_not_matter(rows, fds):
    schema = schema_of("A B C")
    materialized = [
        [null() if v is None else v for v in row] for row in rows
    ]
    forward = IncrementalChase(schema, fds)
    for row in Relation(schema, materialized).rows:
        forward.insert(row)
    backward = IncrementalChase(schema, fds)
    for row in reversed(Relation(schema, materialized).rows):
        backward.insert(row)
    # same final partition up to row order: compare sorted canonical rows
    fwd = sorted(canonical_form(forward.current().relation))
    # note: canonical_form numbers nulls by first occurrence, so compare
    # multisets of per-row shapes only when no cross-row nulls exist
    if not any(cell is None for row in rows for cell in row):
        bwd = sorted(canonical_form(backward.current().relation))
        assert fwd == bwd
    assert forward.has_nothing == backward.has_nothing