"""Engine-equivalence tests for the worklist-driven indexed chase.

The indexed engine replaces the sweep engine's per-firing group rebuild
with incrementally maintained buckets; Theorem 4 (finite Church-Rosser in
extended mode) is what licenses the different firing order.  These tests
pin the stronger, implementation-level contract: ``relation`` (up to null
*identity*, not just canonical form), ``nec_classes`` and
``substitutions`` are **field-identical** across the sweep, indexed and
congruence engines, on randomized instances with constants, fresh nulls,
shared nulls and NOTHING cells.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.congruence import congruence_chase
from repro.chase.engine import (
    MODE_BASIC,
    MODE_EXTENDED,
    STRATEGY_FD_ORDER,
    STRATEGY_RANDOM,
    STRATEGY_ROUND_ROBIN,
    chase,
)
from repro.chase.indexed import IndexedChaseState, indexed_chase
from repro.core.values import NOTHING

from ..helpers import rel
from ..strategies import assert_field_identical, fd_sets, instances

_STRATEGIES = (STRATEGY_FD_ORDER, STRATEGY_ROUND_ROBIN, STRATEGY_RANDOM)


# ---------------------------------------------------------------------------
# directed cases
# ---------------------------------------------------------------------------


class TestWorklistBehaviour:
    def test_substitution(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        result = indexed_chase(r, ["A -> B"])
        assert result.relation[0]["B"] == "b1"

    def test_cascade_through_rebucketing(self):
        # the A -> B nec must re-bucket both rows for B -> C and fire it
        r = rel("A B C", [("a", "-", "-"), ("a", "-", "c5")])
        result = indexed_chase(r, ["A -> B", "B -> C"])
        assert result.relation[0]["C"] == "c5"

    def test_poisoning_propagates_through_interning(self):
        r = rel("A B", [("a", "b1"), ("a", "b2"), ("z", "b1")])
        result = indexed_chase(r, ["A -> B"])
        assert result.relation[2]["B"] is NOTHING

    def test_figure5_unique_nothing_column(self):
        r = rel(
            "A B C",
            [("a1", "-", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1")],
        )
        result = indexed_chase(r, ["A -> B", "C -> B"])
        assert all(row["B"] is NOTHING for row in result.relation)

    def test_chase_defaults_to_indexed_in_extended_mode(self):
        r = rel("A B", [("a", "-"), ("a", "b1")])
        via_chase = chase(r, ["A -> B"], mode=MODE_EXTENDED)
        direct = indexed_chase(r, ["A -> B"])
        assert_field_identical(via_chase, direct)

    def test_basic_mode_rejected(self):
        r = rel("A B", [("a", "b")])
        with pytest.raises(ValueError):
            chase(r, ["A -> B"], mode=MODE_BASIC, engine="indexed")

    def test_unknown_engine_rejected(self):
        r = rel("A B", [("a", "b")])
        with pytest.raises(ValueError):
            chase(r, ["A -> B"], engine="nope")

    def test_fixpoint_has_no_applications_when_rechased(self):
        r = rel("A B C", [("a", "-", "c1"), ("a", "-", "c2")])
        once = indexed_chase(r, ["A -> B", "B -> C"])
        twice = indexed_chase(once.relation, ["A -> B", "B -> C"])
        assert twice.applications == []
        # relation is unchanged; nec_classes/substitutions legitimately
        # differ — the rechase's input holds ONE shared null object where
        # the original held a two-member NEC class
        assert [r.values for r in twice.relation.rows] == [
            r.values for r in once.relation.rows
        ]


# ---------------------------------------------------------------------------
# randomized equivalence (the acceptance property)
# ---------------------------------------------------------------------------


@given(
    instances(),
    fd_sets(max_size=5),
    st.sampled_from(_STRATEGIES),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=250, deadline=None)
def test_indexed_equals_sweep_on_random_instances(instance, fds, strategy, seed):
    fast = indexed_chase(instance, fds)
    slow = chase(
        instance, fds, mode=MODE_EXTENDED, strategy=strategy, seed=seed,
        engine="sweep",
    )
    assert_field_identical(fast, slow)


@given(instances(), fd_sets())
@settings(max_examples=150, deadline=None)
def test_all_three_engines_field_identical(instance, fds):
    fast = indexed_chase(instance, fds)
    cong = congruence_chase(instance, fds)
    slow = chase(instance, fds, mode=MODE_EXTENDED, engine="sweep")
    assert_field_identical(fast, slow)
    assert_field_identical(cong, slow)


@given(
    instances(max_rows=5),
    fd_sets(),
    st.sampled_from(_STRATEGIES),
)
@settings(max_examples=100, deadline=None)
def test_basic_mode_unaffected_by_engine_param(instance, fds, strategy):
    """Basic mode keeps the sweep path: auto and explicit sweep coincide."""
    auto = chase(instance, fds, mode=MODE_BASIC, strategy=strategy)
    explicit = chase(
        instance, fds, mode=MODE_BASIC, strategy=strategy, engine="sweep"
    )
    assert_field_identical(auto, explicit)
    assert auto.applications == explicit.applications
    assert auto.passes == explicit.passes
