"""Shared builders for the test suite.

These keep test bodies close to the paper's notation: ``rel("A B C", rows)``
builds a schema + instance in one line, with ``"-"`` strings standing for
fresh nulls (each occurrence a distinct null, as in the paper's figures).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from repro import Domain, Relation, RelationSchema, null

NULL_TOKEN = "-"


def schema_of(
    attributes: str,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    name: str = "R",
) -> RelationSchema:
    """Build a schema; ``domains`` maps attribute -> list of values."""
    resolved = (
        {attr: Domain(values, name=attr) for attr, values in domains.items()}
        if domains
        else None
    )
    return RelationSchema(name, attributes, domains=resolved)


def rel(
    attributes: str | RelationSchema,
    rows: Iterable[Sequence[Any]],
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
) -> Relation:
    """Build an instance; the string ``"-"`` denotes a fresh null per cell.

    Use explicit ``null()`` objects to share one null across cells.
    """
    schema = (
        attributes
        if isinstance(attributes, RelationSchema)
        else schema_of(attributes, domains)
    )
    materialized = [
        [null() if value == NULL_TOKEN else value for value in row] for row in rows
    ]
    return Relation(schema, materialized)


def truth_names(values) -> list:
    """Render truth values compactly for assertion messages."""
    return [str(v) for v in values]
