"""Tests for the universal relation with nulls (the paper's section 7)."""

import pytest

from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.values import is_null
from repro.errors import NullsNotAllowedError, SchemaError
from repro.normalization.universal import (
    decompose_instance,
    join_all,
    natural_join,
    universal_instance,
    weak_universal_check,
)

from ..helpers import rel, schema_of


def _employee_world():
    universal = schema_of("E# SL D# CT")
    emp = rel("E# SL D#", [(1, 50, "d1"), (2, 60, "d2")])
    dept = rel("D# CT", [("d1", "perm"), ("d2", "temp")])
    return universal, emp, dept


class TestUniversalInstance:
    def test_padding_with_fresh_nulls(self):
        universal, emp, dept = _employee_world()
        padded = universal_instance(universal, [emp, dept])
        assert len(padded) == 4
        # employee rows lack CT
        assert is_null(padded[0]["CT"])
        # department rows lack E#, SL
        assert is_null(padded[2]["E#"]) and is_null(padded[2]["SL"])

    def test_each_gap_is_a_distinct_unknown(self):
        universal, emp, dept = _employee_world()
        padded = universal_instance(universal, [emp, dept])
        assert padded[2]["E#"] is not padded[3]["E#"]

    def test_unknown_component_attribute_rejected(self):
        universal = schema_of("A B")
        with pytest.raises(SchemaError):
            universal_instance(universal, [rel("A Z", [(1, 2)])])


class TestWeakUniversalCheck:
    def test_consistent_world(self):
        universal, emp, dept = _employee_world()
        ok, padded = weak_universal_check(
            universal, [emp, dept], ["E# -> SL D#", "D# -> CT"]
        )
        assert ok
        assert weakly_satisfied(["E# -> SL D#", "D# -> CT"], padded)

    def test_inconsistent_world(self):
        # the two components disagree on employee 1's department
        universal = schema_of("E# D# CT")
        first = rel("E# D#", [(1, "d1")])
        second = rel("E# CT D#", [(1, "perm", "d2")])
        ok, _ = weak_universal_check(
            universal, [first, second], ["E# -> D#"]
        )
        assert not ok

    def test_nulls_bridge_the_components(self):
        # E# -> SL holds weakly even though one component never stores SL
        universal = schema_of("E# SL")
        with_sl = rel("E# SL", [(1, 50)])
        without_sl = rel("E#", [(1,)])
        ok, padded = weak_universal_check(universal, [with_sl, without_sl], ["E# -> SL"])
        assert ok


class TestJoinOperators:
    def test_round_trip_join(self):
        universal, emp, dept = _employee_world()
        total = rel(
            "E# SL D# CT",
            [(1, 50, "d1", "perm"), (2, 60, "d2", "temp")],
        )
        parts = decompose_instance(total, ["E# SL D#", "D# CT"])
        rejoined = join_all(parts)
        assert set(
            tuple(row.values) for row in rejoined
        ) == set(tuple(row.values) for row in total)

    def test_join_refuses_null_join_columns(self):
        left = rel("A B", [("-", 1)])
        right = rel("A C", [("x", 2)])
        with pytest.raises(NullsNotAllowedError):
            natural_join(left, right)

    def test_join_without_shared_attrs_is_product(self):
        left = rel("A", [(1,), (2,)])
        right = rel("B", [("x",)])
        product = natural_join(left, right)
        assert len(product) == 2

    def test_join_all_requires_input(self):
        with pytest.raises(SchemaError):
            join_all([])

    def test_lossy_projection_grows_join(self):
        # classic lossy example: projections join to MORE tuples
        total = rel("A B C", [(1, "x", "p"), (2, "x", "q")])
        parts = decompose_instance(total, ["A B", "B C"])
        rejoined = join_all(parts)
        assert len(rejoined) == 4
