"""Tests for BCNF/3NF predicates, decomposition, and FD projection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.implication import equivalent, implies
from repro.armstrong.keys import is_superkey
from repro.core.fd import FD, FDSet
from repro.normalization.decompose import (
    bcnf_decompose,
    bcnf_violations,
    is_3nf,
    is_bcnf,
)
from repro.normalization.lossless import is_lossless_join
from repro.normalization.projection import project_fds


class TestProjection:
    def test_projection_finds_transitive_fd(self):
        fds = ["A -> B", "B -> C"]
        projected = project_fds(fds, "A C")
        assert implies(projected, "A -> C")
        assert all(set(fd.attributes) <= {"A", "C"} for fd in projected)

    def test_projection_drops_outside_fds(self):
        projected = project_fds(["A -> B"], "A C")
        assert list(projected) == []

    def test_unminimized_projection(self):
        projected = project_fds(["A -> B"], "A B", minimize=False)
        assert implies(projected, "A -> B")


class TestNormalFormPredicates:
    def test_bcnf_holds_for_key_determined(self):
        assert is_bcnf("A B C", ["A -> B C"])

    def test_bcnf_fails_for_non_key_determinant(self):
        assert not is_bcnf("A B C", ["A -> B C", "B -> C"])
        violations = bcnf_violations("A B C", ["A -> B C", "B -> C"])
        assert FD("B", "C") in violations

    def test_3nf_tolerates_prime_rhs(self):
        # R(A,B,C): AB -> C, C -> B; C -> B violates BCNF but B is prime
        fds = ["A B -> C", "C -> B"]
        assert not is_bcnf("A B C", fds)
        assert is_3nf("A B C", fds)

    def test_3nf_fails_for_transitive_nonprime(self):
        assert not is_3nf("A B C", ["A -> B", "B -> C"])

    def test_paper_scheme_not_bcnf(self):
        # R(E#, SL, D#, CT): D# -> CT has a non-key determinant
        fds = ["E# -> SL D#", "D# -> CT"]
        assert not is_bcnf("E# SL D# CT", fds)
        assert not is_3nf("E# SL D# CT", fds)  # CT is not prime


class TestBcnfDecomposition:
    def test_paper_scheme_decomposition(self):
        fds = ["E# -> SL D#", "D# -> CT"]
        components = bcnf_decompose("E# SL D# CT", fds)
        schemes = [c for c, _ in components]
        # every component is in BCNF under its projected FDs
        for attrs, local in components:
            assert is_bcnf(attrs, local)
        # the decomposition is lossless
        assert is_lossless_join("E# SL D# CT", schemes, fds)
        # D#, CT live together so D# -> CT is enforceable locally
        assert any({"D#", "CT"} <= set(s) for s in schemes)

    def test_bcnf_input_is_returned_whole(self):
        components = bcnf_decompose("A B", ["A -> B"])
        assert [c for c, _ in components] == [("A", "B")]

    def test_classic_abc_transitive(self):
        components = bcnf_decompose("A B C", ["A -> B", "B -> C"])
        schemes = [set(c) for c, _ in components]
        assert {"B", "C"} in schemes
        assert {"A", "B"} in schemes


# ---------------------------------------------------------------------------
# property-based: decomposition invariants
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=2, unique=True)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@given(fd_sets())
@settings(max_examples=60, deadline=None)
def test_bcnf_decomposition_components_are_bcnf_and_lossless(fds):
    attrs = "A B C D"
    components = bcnf_decompose(attrs, fds)
    for component_attrs, local in components:
        assert is_bcnf(component_attrs, local)
    assert is_lossless_join(attrs, [c for c, _ in components], fds)


@given(fd_sets())
@settings(max_examples=60, deadline=None)
def test_components_cover_all_attributes(fds):
    attrs = ("A", "B", "C", "D")
    components = bcnf_decompose(attrs, fds)
    covered = set()
    for component_attrs, _ in components:
        covered.update(component_attrs)
    assert covered == set(attrs)
