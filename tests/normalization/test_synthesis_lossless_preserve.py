"""Tests for 3NF synthesis, the tableau lossless-join test, and dependency
preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.normalization.decompose import is_3nf
from repro.normalization.lossless import (
    binary_split_is_lossless,
    is_lossless_join,
    join_tableau,
)
from repro.normalization.preserve import (
    is_dependency_preserving,
    unpreserved_fds,
)
from repro.normalization.projection import project_fds
from repro.normalization.synthesize import synthesize_3nf


class TestSynthesis:
    def test_paper_scheme(self):
        fds = ["E# -> SL D#", "D# -> CT"]
        components = synthesize_3nf("E# SL D# CT", fds)
        assert sorted(map(sorted, components)) == [
            ["CT", "D#"],
            ["D#", "E#", "SL"],
        ]
        for component in components:
            local = project_fds(fds, component)
            assert is_3nf(component, local)
        assert is_dependency_preserving("E# SL D# CT", components, fds)
        assert is_lossless_join("E# SL D# CT", components, fds)

    def test_key_component_added_when_missing(self):
        # A -> B with extra attribute C: key is AC, no FD component holds it
        components = synthesize_3nf("A B C", ["A -> B"])
        assert any(set(c) >= {"A", "C"} for c in components)

    def test_attribute_outside_fds_kept(self):
        components = synthesize_3nf("A B Z", ["A -> B"])
        assert any("Z" in c for c in components)

    def test_subsumed_components_dropped(self):
        components = synthesize_3nf("A B C", ["A -> B", "A -> C"])
        assert components == [("A", "B", "C")]


class TestLosslessJoin:
    def test_tableau_structure(self):
        tableau = join_tableau("A B C", ["A B", "B C"])
        assert len(tableau) == 2
        assert tableau[0]["A"] == "a_A"
        from repro.core.values import is_null

        assert is_null(tableau[0]["C"])

    def test_classic_lossless(self):
        assert is_lossless_join("A B C", ["A B", "B C"], ["B -> C"])

    def test_classic_lossy(self):
        assert not is_lossless_join("A B C", ["A B", "B C"], [])

    def test_disjoint_components_lossy(self):
        assert not is_lossless_join("A B", ["A", "B"], [])

    def test_three_way(self):
        fds = ["A -> B", "B -> C"]
        assert is_lossless_join("A B C", ["A B", "B C"], fds)
        assert is_lossless_join("A B C D", ["A B", "B C", "A D"], fds)

    def test_component_equal_to_scheme(self):
        assert is_lossless_join("A B", ["A B"], [])


class TestDependencyPreservation:
    def test_preserving_decomposition(self):
        fds = ["A -> B", "B -> C"]
        assert is_dependency_preserving("A B C", ["A B", "B C"], fds)

    def test_losing_decomposition(self):
        # splitting A->C across AB / BC loses it when B determines nothing
        fds = ["A -> C"]
        assert not is_dependency_preserving("A B C", ["A B", "B C"], fds)
        assert unpreserved_fds("A B C", ["A B", "B C"], fds) == [FD("A", "C")]

    def test_classic_bcnf_loss(self):
        # R(A,B,C), AB -> C, C -> B: BCNF split loses AB -> C
        fds = ["A B -> C", "C -> B"]
        components = [("C", "B"), ("A", "C")]
        assert not is_dependency_preserving("A B C", components, fds)

    def test_indirect_preservation(self):
        # the textbook subtlety: an FD can be preserved without any single
        # component containing its attributes
        fds = ["A -> B", "B -> C", "C -> A"]
        components = [("A", "B"), ("B", "C")]
        assert is_dependency_preserving("A B C", components, fds)


# ---------------------------------------------------------------------------
# property-based: binary tableau test == closure shortcut; synthesis laws
# ---------------------------------------------------------------------------

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=2, unique=True)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@st.composite
def binary_splits(draw):
    attrs = ("A", "B", "C", "D")
    first = draw(st.lists(st.sampled_from(attrs), min_size=1, max_size=4, unique=True))
    rest = [a for a in attrs if a not in first]
    overlap = draw(st.lists(st.sampled_from(first), min_size=0, max_size=2, unique=True))
    second = tuple(rest + overlap) or ("A",)
    return tuple(first), second


@given(fd_sets(), binary_splits())
@settings(max_examples=100, deadline=None)
def test_binary_shortcut_matches_tableau(fds, split):
    first, second = split
    universe = tuple(dict.fromkeys(first + second))
    assert binary_split_is_lossless(universe, first, second, fds) == (
        is_lossless_join(universe, [first, second], fds)
    )


@given(fd_sets())
@settings(max_examples=60, deadline=None)
def test_synthesis_is_3nf_lossless_preserving(fds):
    attrs = "A B C D"
    nontrivial = [fd for fd in fds if not fd.is_trivial()]
    components = synthesize_3nf(attrs, nontrivial)
    assert is_dependency_preserving(attrs, components, nontrivial)
    assert is_lossless_join(attrs, components, nontrivial)
    for component in components:
        assert is_3nf(component, project_fds(nontrivial, component))
