"""Property: FD projection is semantically exact.

``project_fds(F, S)`` must be equivalent (over S) to the restriction of
``F+`` — i.e. for every FD over S, implication by the projection coincides
with implication by the original set.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armstrong.implication import implies
from repro.core.fd import FD
from repro.normalization.projection import project_fds

_attr = st.sampled_from(["A", "B", "C", "D"])
_side = st.lists(_attr, min_size=1, max_size=2, unique=True)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    return [FD(tuple(draw(_side)), tuple(draw(_side))) for _ in range(count)]


@given(fd_sets(), st.lists(_attr, min_size=2, max_size=3, unique=True))
@settings(max_examples=80, deadline=None)
def test_projection_is_semantically_exact(fds, sub_attrs):
    projected = project_fds(fds, sub_attrs)
    # every FD over the sub-scheme: implication by projection == by original
    for lhs_size in range(1, len(sub_attrs)):
        for lhs in itertools.combinations(sub_attrs, lhs_size):
            for rhs_attr in sub_attrs:
                if rhs_attr in lhs:
                    continue
                goal = FD(lhs, (rhs_attr,))
                assert implies(projected, goal) == implies(fds, goal), (
                    f"projection differs on {goal!r}"
                )


@given(fd_sets(), st.lists(_attr, min_size=2, max_size=3, unique=True))
@settings(max_examples=80, deadline=None)
def test_projection_mentions_only_sub_attributes(fds, sub_attrs):
    for fd in project_fds(fds, sub_attrs):
        assert set(fd.attributes) <= set(sub_attrs)
