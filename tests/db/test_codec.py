"""The canonical value/schema codec: identity preservation + determinism.

Two contracts:

* **round-trip exactness** — nulls decode to one object per canonical id
  (sharing structure preserved), NOTHING and every scalar constant
  round-trip, schemas round-trip with their finite domains;
* **byte determinism** — two runs of the same op script (each run
  creating its own fresh ``Null`` objects, with whatever process-global
  labels they happen to get) produce byte-identical WAL and checkpoint
  files, because canonical ids are assigned by first-occurrence order,
  never from object identity.
"""

import pytest

from repro.core.codec import (
    ValueCodec,
    fds_from_spec,
    fds_to_spec,
    schema_from_spec,
    schema_to_spec,
)
from repro.core.domain import UNBOUNDED, Domain
from repro.core.values import NOTHING, is_null, null
from repro.errors import CodecError, DomainError

from ..helpers import schema_of


class TestValues:
    def test_scalars_pass_through(self):
        codec = ValueCodec()
        for value in ("a", "", 0, 3, 2.5, True, False):
            assert codec.decode(codec.encode(value)) == value

    def test_none_is_a_legal_constant(self):
        codec = ValueCodec()
        token = codec.encode(None)
        assert token == {"v": None}
        assert codec.decode(token) is None

    def test_nothing_round_trips(self):
        codec = ValueCodec()
        assert codec.decode(codec.encode(NOTHING)) is NOTHING

    def test_shared_nulls_stay_shared(self):
        codec = ValueCodec()
        shared, lonely = null(), null()
        tokens = codec.encode_row([shared, lonely, shared])
        decoder = ValueCodec()
        decoded = decoder.decode_row(tokens)
        assert decoded[0] is decoded[2]
        assert decoded[0] is not decoded[1]
        assert all(is_null(value) for value in decoded)

    def test_same_codec_round_trips_to_the_same_objects(self):
        codec = ValueCodec()
        unknown = null()
        token = codec.encode(unknown)
        assert codec.decode(token) is unknown

    def test_canonical_ids_are_first_occurrence_ordered(self):
        codec = ValueCodec()
        first, second = null(), null()
        assert codec.encode(second) == {"n": "n0"}
        assert codec.encode(first) == {"n": "n1"}
        assert codec.encode(second) == {"n": "n0"}

    def test_lenient_decode_of_unknown_ids(self):
        # a WAL record may reference a null absent from the checkpoint
        # rows; first reference materializes it, later ones re-share it
        codec = ValueCodec()
        a = codec.decode({"n": "n7"})
        b = codec.decode({"n": "n7"})
        assert a is b and is_null(a)

    def test_decoded_ids_reserve_their_numbers(self):
        # recovery without a checkpoint: decoding n0/n1 from the log must
        # push the counter past them, or a fresh null encoded afterwards
        # would alias onto an existing unknown (spurious sharing on the
        # *next* recovery)
        codec = ValueCodec()
        codec.decode({"n": "n0"})
        codec.decode({"n": "n4"})
        assert codec.encode(null()) == {"n": "n5"}

    def test_counter_seeding_prevents_id_reuse(self):
        codec = ValueCodec()
        codec.seed_counter(5)
        assert codec.encode(null()) == {"n": "n5"}
        codec.seed_counter(3)  # never rewinds
        assert codec.encode(null()) == {"n": "n6"}

    def test_unserializable_constant_is_refused(self):
        codec = ValueCodec()
        with pytest.raises(CodecError):
            codec.encode(("tu", "ple"))
        with pytest.raises(CodecError):
            codec.encode(object())

    def test_malformed_tokens_are_refused(self):
        codec = ValueCodec()
        for token in ({"q": 1}, {"n": 3}, ["list"]):
            with pytest.raises(CodecError):
                codec.decode(token)
        with pytest.raises(CodecError):
            codec.decode_row("not-a-list")


class TestSchemaSpecs:
    def test_schema_round_trip_with_domains(self):
        schema = schema_of("A B C", domains={"B": ["x", "y"]})
        rebuilt = schema_from_spec(schema_to_spec(schema))
        assert rebuilt == schema
        assert list(rebuilt.domain("B")) == ["x", "y"]
        assert rebuilt.domain("A") is UNBOUNDED

    def test_domain_spec_round_trip(self):
        domain = Domain(["a", 1, 2.5, None], name="mixed")
        assert Domain.from_spec(domain.to_spec()) == domain

    def test_domain_spec_refuses_object_values(self):
        with pytest.raises(DomainError):
            Domain([("a", "b")], name="bad").to_spec()

    def test_domain_malformed_spec(self):
        with pytest.raises(DomainError):
            Domain.from_spec({"nope": 1})

    def test_schema_malformed_spec(self):
        with pytest.raises(CodecError):
            schema_from_spec({"name": "R"})

    def test_fds_round_trip(self):
        spec = fds_to_spec(["A B -> C", "C -> A"])
        assert spec == ["A B -> C", "C -> A"]
        fds = fds_from_spec(spec)
        assert [repr(fd) for fd in fds] == spec


class TestByteDeterminism:
    def _script(self, db):
        """The same logical op script, with per-run fresh nulls."""
        relation = db.create("r", "A B C", ["A -> B"])
        shared = null()
        relation.insert(("a1", shared, "c1"))
        relation.insert(("a1", null(), shared))
        relation.insert(("a2", "b2", NOTHING))
        relation.update(1, {"C": null()})
        relation.snapshot()
        relation.delete(0)
        relation.rollback()
        db.checkpoint()
        relation.insert(("a3", null(), "c3"))
        relation.fill(3, "B", "b9")
        return relation

    def test_two_runs_produce_byte_identical_dumps(self, tmp_path):
        from repro.db import Database
        from repro.db.storage import CHECKPOINT_NAME, SCHEMA_NAME, WAL_NAME

        blobs = []
        for run in ("one", "two"):
            with Database.open(tmp_path / run, sync="flush") as db:
                self._script(db)
            base = tmp_path / run / "relations" / "r"
            blobs.append(
                tuple(
                    (base / name).read_bytes()
                    for name in (SCHEMA_NAME, WAL_NAME, CHECKPOINT_NAME)
                )
            )
        assert blobs[0] == blobs[1]
