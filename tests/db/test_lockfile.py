"""Directory locking: one mutator per database directory.

Pins the PR 7 fix for the ``open(create=False)`` / concurrent
``create()`` races:

* two processes (or two handles) cannot both initialize the same
  directory — the loser sees a clear error and leaves **no** files
  behind;
* ``open(create=False)`` on a missing directory materializes nothing;
* concurrent ``create()`` calls from separate handles merge into the
  manifest instead of last-writer-wins clobbering each other;
* an ``exclusive=True`` handle (server mode) holds the lock for its
  whole lifetime, locking everyone else out until it closes.

The cross-*process* cases use a child that holds the flock and signals
readiness through a file — ``fcntl.flock`` only conflicts across file
handles, which the in-process cases cover with two ``DirectoryLock``
objects.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.db import Database, DirectoryLock
from repro.db import storage
from repro.errors import DatabaseError


@pytest.fixture(autouse=True)
def fast_lock_timeout(monkeypatch):
    """Contended opens should fail in ~0.1s, not the production 5s."""
    monkeypatch.setattr(storage, "LOCK_TIMEOUT_S", 0.1)


def test_lock_is_scoped_to_init_for_normal_opens(tmp_path):
    """A plain handle locks only while loading: two sequential opens and
    even two *live* handles are fine (single-writer discipline across
    non-exclusive handles is the caller's contract, as before PR 7)."""
    first = Database.open(tmp_path / "db", create=True)
    first.create("r", "A B").insert(("a", "b"))
    second = Database.open(tmp_path / "db")  # no exclusive flag: loads fine
    assert second["r"].seq == 1
    second.close()
    first.close()


def test_exclusive_open_blocks_other_handles(tmp_path):
    server_handle = Database.open(tmp_path / "db", create=True, exclusive=True)
    with pytest.raises(DatabaseError, match="locked by another process or handle"):
        Database.open(tmp_path / "db")
    # ... and blocks another exclusive handle too
    with pytest.raises(DatabaseError, match="locked"):
        Database.open(tmp_path / "db", exclusive=True)
    server_handle.close()
    # close releases: the directory is openable again
    reopened = Database.open(tmp_path / "db", exclusive=True)
    reopened.close()


def test_open_without_create_materializes_nothing(tmp_path):
    """A mistyped path must not leave a half-initialized directory."""
    missing = tmp_path / "no" / "such" / "db"
    with pytest.raises(DatabaseError, match="no database at"):
        Database.open(missing, create=False)
    assert not missing.exists()
    assert not (tmp_path / "no").exists()


def test_loser_of_init_race_leaves_no_files(tmp_path):
    """While another handle holds the directory lock mid-init, a second
    initializer must fail cleanly — and must NOT write a manifest the
    winner would then trip over or silently adopt."""
    root = tmp_path / "db"
    root.mkdir()
    holder = DirectoryLock(root)
    holder.acquire()
    try:
        with pytest.raises(DatabaseError, match="locked"):
            Database.open(root, create=True)
        assert not (root / storage.MANIFEST_NAME).exists()
    finally:
        holder.release()
    # lock released: the same call now initializes normally
    db = Database.open(root, create=True)
    assert db.names() == []
    db.close()


def test_two_processes_cannot_both_initialize(tmp_path):
    """The cross-process version: a child process grabs the lock on an
    empty directory and parks; the parent's ``open(create=True)`` must
    fail without materializing anything.  flock conflicts are only
    guaranteed across descriptors, so this is the case the in-process
    test cannot fully stand in for."""
    root = tmp_path / "db"
    root.mkdir()
    ready = tmp_path / "ready"
    src = str(Path(__file__).resolve().parents[2] / "src")
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            textwrap.dedent(
                f"""
                import pathlib, sys, time
                sys.path.insert(0, {src!r})
                from repro.db import DirectoryLock
                lock = DirectoryLock(pathlib.Path({str(root)!r}))
                lock.acquire()
                pathlib.Path({str(ready)!r}).touch()
                time.sleep(30)
                """
            ),
        ],
    )
    try:
        deadline = time.monotonic() + 10
        while not ready.exists():
            assert child.poll() is None, "lock-holder child died early"
            assert time.monotonic() < deadline, "child never signalled ready"
            time.sleep(0.01)
        with pytest.raises(DatabaseError, match="locked by another process"):
            Database.open(root, create=True)
        assert not (root / storage.MANIFEST_NAME).exists()
    finally:
        child.kill()
        child.wait()
    # the kernel dropped the child's flock with its fd: parent can now init
    db = Database.open(root, create=True)
    db.create("r", "A B")
    db.close()


def test_concurrent_creates_merge_into_manifest(tmp_path):
    """Two live handles each create a different relation; the manifest
    must end up with BOTH (pre-PR 7 this was last-writer-wins, orphaning
    the other handle's relation on the next open)."""
    root = tmp_path / "db"
    db1 = Database.open(root, create=True)
    db2 = Database.open(root)
    db1.create("from_one", "A B").insert(("a", "b"))
    db2.create("from_two", "C D").insert(("c", "d"))
    db1.close()
    db2.close()

    reopened = Database.open(root)
    assert reopened.names() == ["from_one", "from_two"]
    assert reopened["from_one"].seq == 1
    assert reopened["from_two"].seq == 1
    reopened.close()


def test_concurrent_create_same_name_raises(tmp_path):
    """The duplicate is caught even when the other handle created it —
    the check reads the on-disk manifest, not just this handle's view."""
    root = tmp_path / "db"
    db1 = Database.open(root, create=True)
    db2 = Database.open(root)
    db1.create("r", "A B")
    with pytest.raises(DatabaseError, match="already exists"):
        db2.create("r", "C D")
    db1.close()
    db2.close()


def test_drop_preserves_other_handles_relations(tmp_path):
    root = tmp_path / "db"
    db1 = Database.open(root, create=True)
    db2 = Database.open(root)
    db1.create("keep", "A B")
    db2.create("doomed", "C D")
    db2.drop("doomed")
    db1.close()
    db2.close()
    reopened = Database.open(root)
    assert reopened.names() == ["keep"]
    reopened.close()


def test_directory_lock_object_semantics(tmp_path):
    lock = DirectoryLock(tmp_path)
    assert not lock.held
    lock.acquire()
    assert lock.held
    with pytest.raises(DatabaseError, match="already held"):
        lock.acquire()  # double-acquire is a caller bug, flagged loudly
    # a second handle on the same directory conflicts until release
    other = DirectoryLock(tmp_path)
    with pytest.raises(DatabaseError, match="locked"):
        other.acquire(timeout_s=0.05)
    lock.release()
    assert not lock.held
    lock.release()  # idempotent
    other.acquire(timeout_s=0.05)
    other.release()
