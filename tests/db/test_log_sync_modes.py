"""`db/log.py` sync-mode coverage: append_many, failure truncation,
seq continuity, and the GroupCommitter's batching/poisoning semantics.

Async cases run via ``asyncio.run`` inside plain test functions (no
pytest-asyncio dependency).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.db import Database, GroupCommitter, OpLog
from repro.db import log as oplog
from repro.errors import DatabaseError

RECORDS = [
    {"seq": 1, "op": "insert", "row": ["a", {"n": "n0"}]},
    {"seq": 2, "op": "insert", "row": [{"n": "n0"}, "b"]},
    {"seq": 3, "op": "delete", "index": 0},
]


# ---------------------------------------------------------------------------
# append_many across the three sync modes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sync", ["fsync", "flush", "none"])
def test_append_many_round_trips(tmp_path, sync):
    path = tmp_path / "wal.jsonl"
    wal = OpLog(path, sync=sync)
    wal.append_many(RECORDS)
    wal.append_many([])  # empty batch: explicit no-op
    wal.append_many([{"seq": 4, "op": "adopt"}])
    wal.close()
    records, good_bytes, torn = oplog.scan(path)
    assert records == RECORDS + [{"seq": 4, "op": "adopt"}]
    assert not torn
    assert good_bytes == path.stat().st_size
    assert path.read_bytes().endswith(b"\n")


@pytest.mark.parametrize("sync", ["fsync", "flush", "none"])
def test_append_many_matches_per_record_appends_bytewise(tmp_path, sync):
    """One batch append and N single appends must serialize identically —
    recovery cannot tell (and must not care) how records were grouped."""
    batched, single = tmp_path / "batched.jsonl", tmp_path / "single.jsonl"
    wal = OpLog(batched, sync=sync)
    wal.append_many(RECORDS)
    wal.close()
    wal = OpLog(single, sync=sync)
    for record in RECORDS:
        wal.append(record)
    wal.close()
    assert batched.read_bytes() == single.read_bytes()


def test_append_many_unencodable_record_leaves_log_untouched(tmp_path):
    """The whole blob is encoded before any byte lands: a bad record
    anywhere in the batch aborts with prior content intact."""
    path = tmp_path / "wal.jsonl"
    wal = OpLog(path, sync="flush")
    wal.append_many(RECORDS[:1])
    before = path.read_bytes()
    with pytest.raises(TypeError):
        wal.append_many([RECORDS[1], {"seq": 3, "op": "insert", "row": [set()]}])
    wal.close()
    assert path.read_bytes() == before
    records, _, torn = oplog.scan(path)
    assert records == RECORDS[:1] and not torn


def test_append_many_failed_sync_truncates_partial_batch(tmp_path, monkeypatch):
    """A batch whose fsync fails is reported failed — so every byte of it
    must be gone: a surviving partial batch would replay unacked ops."""
    path = tmp_path / "wal.jsonl"
    wal = OpLog(path, sync="fsync")
    wal.append_many(RECORDS[:1])
    before = path.read_bytes()

    def failing_fsync(fd):
        raise OSError("injected: device error")

    monkeypatch.setattr(oplog.os, "fsync", failing_fsync)
    with pytest.raises(OSError):
        wal.append_many(RECORDS[1:])
    monkeypatch.undo()
    wal.close()
    assert path.read_bytes() == before
    records, _, torn = oplog.scan(path)
    assert records == RECORDS[:1] and not torn


def test_single_append_failed_sync_truncates_too(tmp_path, monkeypatch):
    path = tmp_path / "wal.jsonl"
    wal = OpLog(path, sync="fsync")
    wal.append(RECORDS[0])
    before = path.read_bytes()
    monkeypatch.setattr(oplog.os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("x")))
    with pytest.raises(OSError):
        wal.append(RECORDS[1])
    monkeypatch.undo()
    wal.close()
    assert path.read_bytes() == before


# ---------------------------------------------------------------------------
# seq continuity across recoveries, including batched tails
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sync", ["fsync", "flush", "none"])
def test_seq_continuity_across_recoveries(tmp_path, sync):
    """Three generations of a database — per-op appends, recovery, then a
    batched tail, then recovery again — must journal one contiguous seq
    stream with no gaps or reuse."""
    path = tmp_path / "db"
    with Database.open(path, sync=sync, create=True) as db:
        relation = db.create("r", "A B", ["A -> B"])
        for i in range(3):
            relation.insert((f"a{i}", f"b{i}"))
        assert relation.seq == 3

    with Database.open(path, sync=sync) as db:
        relation = db["r"]
        assert relation.seq == 3
        relation.insert(("a3", "b3"))
        relation.delete(0)
        assert relation.seq == 5
        # a batched tail, the way the server journals: buffer records
        # through the sink, append them in one batch
        buffered = []
        relation.journal_sink = buffered.append
        relation.insert(("a4", "b4"))
        relation.insert(("a5", "b5"))
        relation.journal_sink = relation.wal.append
        assert [record["seq"] for record in buffered] == [6, 7]
        relation.wal.append_many(buffered)
        assert relation.seq == 7

    with Database.open(path, sync=sync) as db:
        relation = db["r"]
        assert relation.seq == 7
        assert relation.recovery_info["replayed"] == 7
        assert len(relation) == 5  # 6 inserts - 1 delete
        assert relation.verify()
        # and the next op continues the stream
        relation.insert(("a6", "b6"))
        assert relation.seq == 8


def test_seq_continuity_across_checkpoint_and_recovery(tmp_path):
    path = tmp_path / "db"
    with Database.open(path, sync="flush", create=True) as db:
        relation = db.create("r", "A B", [])
        relation.insert(("a", "b"))
        relation.insert(("c", "d"))
        assert db.checkpoint() == {"r": 2}
        relation.insert(("e", "f"))

    with Database.open(path, sync="flush") as db:
        relation = db["r"]
        assert relation.seq == 3
        assert relation.checkpoint_seq == 2
        assert relation.recovery_info["replayed"] == 1


# ---------------------------------------------------------------------------
# GroupCommitter semantics
# ---------------------------------------------------------------------------


def test_group_committer_batches_and_acks(tmp_path):
    path = tmp_path / "wal.jsonl"
    committed_batches = []

    async def run():
        wal = OpLog(path, sync="flush")
        committer = GroupCommitter(
            wal, window_s=0.002, max_batch=64, on_commit=committed_batches.append
        )
        await committer.start()
        futures = [committer.stage(dict(record)) for record in RECORDS]
        await committer.drain()
        assert all(f.done() and f.result() for f in futures)
        await committer.close()
        wal.close()
        return committer.stats()

    stats = asyncio.run(run())
    # all three staged in one sweep -> one batch, one append
    assert stats["batches"] == 1
    assert stats["batched_records"] == 3
    assert stats["largest_batch"] == 3
    assert [len(batch) for batch in committed_batches] == [3]
    records, _, torn = oplog.scan(path)
    assert records == RECORDS and not torn


def test_group_committer_max_batch_splits(tmp_path):
    async def run():
        wal = OpLog(tmp_path / "wal.jsonl", sync="none")
        committer = GroupCommitter(wal, window_s=0, max_batch=2)
        await committer.start()
        for i in range(5):
            committer.stage({"seq": i + 1, "op": "adopt"})
        await committer.drain()
        await committer.close()
        wal.close()
        return committer.stats()

    stats = asyncio.run(run())
    assert stats["batched_records"] == 5
    assert stats["largest_batch"] == 2
    assert stats["batches"] == 3


def test_group_committer_append_failure_poisons(tmp_path, monkeypatch):
    """A failed batch append fails every staged future, poisons the
    committer, truncates the failed batch whole — and later recovery of
    the log sees only the records that were made durable."""
    path = tmp_path / "wal.jsonl"

    async def run():
        wal = OpLog(path, sync="fsync")
        committer = GroupCommitter(wal, window_s=0)
        await committer.start()
        first = committer.stage(RECORDS[0])
        await committer.drain()
        assert first.result() is True

        monkeypatch.setattr(oplog.os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("gone")))
        doomed = committer.stage(RECORDS[1])
        with pytest.raises(DatabaseError):
            await committer.drain()
        assert isinstance(doomed.exception(), DatabaseError)
        monkeypatch.undo()

        # poisoned: further stages are refused outright
        with pytest.raises(DatabaseError):
            committer.stage(RECORDS[2])
        assert committer.failed is not None
        await committer.close()
        wal.close()

    asyncio.run(run())
    records, _, torn = oplog.scan(path)
    assert records == RECORDS[:1] and not torn
