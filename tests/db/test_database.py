"""Database unit coverage: WAL discipline, recovery paths, checkpoints,
catalog management, and every crash window the storage format claims to
survive."""

import json

import pytest

from repro.chase import ChaseSession, chase
from repro.core.values import NOTHING, is_null, null
from repro.db import Database
from repro.db.storage import CHECKPOINT_NAME, MANIFEST_NAME, WAL_NAME
from repro.errors import CodecError, DatabaseError, ReproError, SchemaError

from ..strategies import assert_recovered_identical

FDS = ["zip -> city"]


@pytest.fixture
def root(tmp_path):
    return tmp_path / "db"


def open_db(root):
    return Database.open(root, sync="flush")


def wal_path(root, name="people"):
    return root / "relations" / name / WAL_NAME


def seed_people(db):
    people = db.create("people", "name zip city", FDS)
    people.insert(("Ada", "10001", "New York"))
    people.insert(("Bob", "10001", null()))
    return people


class TestBasics:
    def test_insert_survives_reopen(self, root):
        db = open_db(root)
        seed_people(db)
        # crash: no close()
        recovered = open_db(root)["people"]
        assert len(recovered) == 2
        assert recovered.result().relation[1]["city"] == "New York"
        assert recovered.verify()
        assert recovered.recovery_info["replayed"] == 2

    def test_wal_is_written_before_the_op_applies(self, root):
        db = open_db(root)
        people = seed_people(db)
        lines = wal_path(root).read_text().splitlines()
        assert [json.loads(line)["op"] for line in lines] == ["insert", "insert"]
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]

    def test_full_vocabulary_round_trips(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.update(0, {"name": "Ada L"})
        people.replace(1, ("Bea", "60601", null()))
        people.fill(1, "city", "Chicago")
        people.insert(("Cid", "60601", null()))
        people.adopt()
        people.delete(0)
        reference = people.session
        recovered = open_db(root)["people"]
        assert_recovered_identical(recovered, reference)

    def test_reset_round_trips(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.reset([("Zed", "11111", null()), ("Yan", "11111", "Metropolis")])
        recovered = open_db(root)["people"]
        assert_recovered_identical(recovered, people.session)

    def test_nothing_state_round_trips(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.insert(("Mal", "10001", "Newark"))
        assert people.has_nothing
        recovered = open_db(root)["people"]
        assert recovered.has_nothing
        assert_recovered_identical(recovered, people.session)

    def test_snapshot_rollback_are_journalled(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.snapshot()
        people.insert(("Mal", "10001", "Newark"))
        assert people.has_nothing
        people.rollback()
        recovered = open_db(root)["people"]
        assert not recovered.has_nothing
        assert_recovered_identical(recovered, people.session)

    def test_rollback_without_snapshot_is_refused_unjournalled(self, root):
        db = open_db(root)
        people = seed_people(db)
        with pytest.raises(DatabaseError):
            people.rollback()
        assert len(wal_path(root).read_text().splitlines()) == 2

    def test_multiple_relations_are_independent(self, root):
        db = open_db(root)
        seed_people(db)
        orders = db.create("orders", "order item", ["order -> item"])
        orders.insert(("o1", "widget"))
        recovered = open_db(root)
        assert recovered.names() == ["orders", "people"]
        assert len(recovered["orders"]) == 1
        assert len(recovered["people"]) == 2

    def test_context_manager_and_idempotent_close(self, root):
        with open_db(root) as db:
            seed_people(db)
        db.close()  # second close is a no-op
        assert len(open_db(root)["people"]) == 2


class TestValidationAndErrors:
    def test_unknown_relation(self, root):
        with pytest.raises(DatabaseError, match="no relation"):
            open_db(root).relation("ghost")

    def test_duplicate_create(self, root):
        db = open_db(root)
        seed_people(db)
        with pytest.raises(DatabaseError, match="already exists"):
            db.create("people", "A B")

    def test_bad_relation_name(self, root):
        db = open_db(root)
        for name in ("../evil", "", ".hidden", "a b"):
            with pytest.raises(DatabaseError):
                db.create(name, "A B")

    def test_bad_sync_mode(self, root):
        with pytest.raises(DatabaseError):
            Database.open(root, sync="wishful")

    def test_path_collision(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("not a directory")
        with pytest.raises(DatabaseError):
            Database.open(target)

    def test_manifest_format_mismatch(self, root):
        open_db(root)
        manifest = root / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["format"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(DatabaseError, match="format"):
            open_db(root)

    def test_failed_op_is_not_journalled_and_not_applied(self, root):
        db = open_db(root)
        people = seed_people(db)
        with pytest.raises(SchemaError):
            people.delete(9)
        with pytest.raises(SchemaError):
            people.insert(("only-one",))
        with pytest.raises(ReproError):
            people.fill(0, "city", "x")  # not a null cell
        assert len(wal_path(root).read_text().splitlines()) == 2
        assert len(people) == 2

    def test_unserializable_value_aborts_before_applying(self, root):
        db = open_db(root)
        people = seed_people(db)
        with pytest.raises(CodecError):
            people.insert(("Eve", ("tu", "ple"), "x"))
        assert len(people) == 2
        assert len(wal_path(root).read_text().splitlines()) == 2
        # the session still works and journals afterwards
        people.insert(("Eve", "30303", "Austin"))
        assert open_db(root)["people"].recovery_info["rows"] == 3


class TestCheckpoints:
    def test_checkpoint_truncates_and_recovery_uses_it(self, root):
        db = open_db(root)
        people = seed_people(db)
        absorbed = db.checkpoint()["people"]
        assert absorbed == 2
        assert wal_path(root).read_text() == ""
        people.insert(("Cid", "60601", "Chicago"))
        recovered = open_db(root)["people"]
        info = recovered.recovery_info
        assert info["checkpoint_seq"] == 2
        assert info["replayed"] == 1
        assert_recovered_identical(recovered, people.session)

    def test_checkpoint_preserves_shared_null_identity(self, root):
        db = open_db(root)
        people = db.create("people", "name zip city", FDS)
        shared = null()
        people.insert(("Ada", "10001", shared))
        people.insert(("Bob", "20002", shared))  # one unknown, two cells
        db.checkpoint()
        recovered = open_db(root)["people"]
        rows = recovered.rows
        assert rows[0]["city"] is rows[1]["city"]
        assert_recovered_identical(recovered, people.session)

    def test_null_shared_across_checkpoint_boundary(self, root):
        db = open_db(root)
        people = db.create("people", "name zip city", FDS)
        shared = null()
        people.insert(("Ada", "10001", shared))
        db.checkpoint()
        people.insert(("Bob", "20002", shared))  # WAL references n0
        recovered = open_db(root)["people"]
        rows = recovered.rows
        assert rows[0]["city"] is rows[1]["city"]
        assert_recovered_identical(recovered, people.session)

    def test_crash_between_checkpoint_write_and_log_truncate(self, root):
        db = open_db(root)
        people = seed_people(db)
        stale = wal_path(root).read_text()
        db.checkpoint()
        # simulate the crash window: checkpoint durable, log not truncated
        wal_path(root).write_text(stale)
        recovered = open_db(root)["people"]
        assert recovered.recovery_info["replayed"] == 0  # all skipped by seq
        assert_recovered_identical(recovered, people.session)

    def test_checkpoint_of_one_relation(self, root):
        db = open_db(root)
        seed_people(db)
        orders = db.create("orders", "order item")
        orders.insert(("o1", "widget"))
        assert db.checkpoint("people") == {"people": 2}
        assert wal_path(root, "orders").read_text() != ""


class TestLogDamage:
    def test_torn_final_line_is_dropped(self, root):
        db = open_db(root)
        people = seed_people(db)
        with open(wal_path(root), "a") as handle:
            handle.write('{"seq":3,"op":"ins')  # mid-append crash
        recovered = open_db(root)["people"]
        assert recovered.recovery_info["torn_tail_dropped"]
        assert recovered.recovery_info["replayed"] == 2
        assert_recovered_identical(recovered, people.session)
        # the truncation healed the file: a further reopen is clean
        again = open_db(root)["people"]
        assert not again.recovery_info["torn_tail_dropped"]

    def test_torn_unterminated_valid_json_is_dropped(self, root):
        db = open_db(root)
        people = seed_people(db)
        with open(wal_path(root), "a") as handle:
            handle.write('{"seq":3,"op":"adopt"}')  # no newline: torn
        recovered = open_db(root)["people"]
        assert recovered.recovery_info["torn_tail_dropped"]
        assert recovered.recovery_info["replayed"] == 2

    def test_mid_log_corruption_is_an_error(self, root):
        db = open_db(root)
        seed_people(db)
        blob = wal_path(root).read_text().splitlines()
        blob[0] = blob[0][:10]  # corrupt the first record, keep the second
        wal_path(root).write_text("\n".join(blob) + "\n")
        with pytest.raises(DatabaseError, match="corrupt op log"):
            open_db(root)

    def test_seq_gap_is_an_error(self, root):
        db = open_db(root)
        seed_people(db)
        lines = wal_path(root).read_text().splitlines()
        wal_path(root).write_text(lines[0] + "\n" + lines[1].replace('"seq":2', '"seq":5') + "\n")
        with pytest.raises(DatabaseError, match="gap"):
            open_db(root)


class TestCatalog:
    def test_drop(self, root):
        db = open_db(root)
        seed_people(db)
        db.create("orders", "order item")
        db.drop("orders")
        assert "orders" not in db
        assert open_db(root).names() == ["people"]

    def test_orphan_directory_is_ignored(self, root):
        db = open_db(root)
        seed_people(db)
        (root / "relations" / "halfway").mkdir()  # crash mid-create
        assert open_db(root).names() == ["people"]

    def test_stats_shape(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.delete(0)
        stats = db.stats()["people"]
        assert stats["rows"] == 1
        assert stats["seq"] == 3
        assert stats["wal_ops"] == 3
        assert stats["checkpoint_seq"] == 0
        assert {"retire_fast", "trail_replay", "level_rebuild"} <= set(stats)

    def test_iteration_and_len(self, root):
        db = open_db(root)
        seed_people(db)
        db.create("orders", "order item")
        assert len(db) == 2
        assert {relation.name for relation in db} == {"people", "orders"}


class TestSnapshotCheckpointInterplay:
    """A checkpoint must never absorb a snapshot a later rollback still
    needs — the review found the absorbed-snapshot log was unopenable."""

    def test_checkpoint_refuses_outstanding_snapshots(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.snapshot()
        with pytest.raises(DatabaseError, match="outstanding snapshot"):
            db.checkpoint()
        people.rollback()
        assert db.checkpoint() == {"people": 4}  # 2 inserts + the pair
        # the log that used to brick recovery now round-trips
        recovered = open_db(root)["people"]
        assert_recovered_identical(recovered, people.session)

    def test_discard_snapshots_unblocks_checkpoint(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.snapshot()
        people.insert(("Cid", "60601", "Chicago"))
        assert people.discard_snapshots() == 1
        assert people.discard_snapshots() == 0  # idempotent, unjournalled
        db.checkpoint()
        recovered = open_db(root)["people"]
        assert len(recovered) == 3  # discard kept the post-snapshot insert
        assert_recovered_identical(recovered, people.session)
        with pytest.raises(DatabaseError):
            recovered.rollback()  # the discard emptied the stack durably

    def test_outstanding_snapshot_survives_recovery(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.snapshot()
        people.insert(("Mal", "10001", "Newark"))
        assert people.has_nothing
        # crash with the snapshot outstanding; recovery must rebuild the
        # journalled stack so the rollback still works
        recovered = open_db(root)["people"]
        assert recovered.has_nothing
        assert recovered.rollback() == 1
        assert not recovered.has_nothing
        people.rollback()  # bring the reference to the same point
        assert_recovered_identical(recovered, people.session)


class TestCrashedDropAndCreate:
    def test_create_over_crashed_drop_leftovers_starts_clean(self, root):
        db = open_db(root)
        people = seed_people(db)
        db.checkpoint()
        # simulate drop() crashing between its manifest rewrite and its
        # rmtree: the directory (with stale checkpoint + wal) survives
        import shutil as _shutil

        aside = root.parent / "aside"
        _shutil.copytree(root / "relations" / "people", aside)
        db.drop("people")
        _shutil.copytree(aside, root / "relations" / "people")

        fresh_db = open_db(root)
        fresh = fresh_db.create("people", "name zip city", FDS)
        fresh.insert(("Zed", "30303", "Austin"))
        recovered = open_db(root)["people"]
        # neither resurrected checkpoint rows nor a swallowed insert
        assert [row["name"] for row in recovered.rows] == ["Zed"]
        assert recovered.recovery_info["checkpoint_seq"] == 0
        assert recovered.recovery_info["replayed"] == 1


class TestAppendFailure:
    def test_failed_sync_rolls_the_log_back(self, root, monkeypatch):
        db = Database.open(root)  # sync="fsync": append goes through os.fsync
        people = db.create("people", "name zip city", FDS)
        people.insert(("Ada", "10001", "New York"))

        import os as _os

        real_fsync = _os.fsync

        def failing_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.db.log.os.fsync", failing_fsync)
        with pytest.raises(OSError):
            people.insert(("Bob", "10001", "x"))
        monkeypatch.setattr("repro.db.log.os.fsync", real_fsync)
        assert len(people) == 1  # the op aborted unapplied
        # ...and left no bytes behind: the log stays appendable + scannable
        people.insert(("Cid", "60601", "Chicago"))
        recovered = open_db(root)["people"]
        assert [row["name"] for row in recovered.rows] == ["Ada", "Cid"]
        assert not recovered.recovery_info["torn_tail_dropped"]


class TestOpenCreateFlag:
    def test_create_false_refuses_missing_database(self, tmp_path):
        target = tmp_path / "nope"
        with pytest.raises(DatabaseError, match="no database"):
            Database.open(target, create=False)
        assert not target.exists()  # and nothing was materialized

    def test_cli_read_commands_do_not_materialize(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "typo"
        code = main(["db", "recover", str(target)])
        assert code == 2
        assert "no database" in capsys.readouterr().err
        assert not target.exists()


class TestRecoveredSessionKeepsWorking:
    def test_ops_after_recovery_are_journalled_and_recoverable(self, root):
        db = open_db(root)
        people = seed_people(db)
        db.checkpoint()
        people.insert(("Cid", "60601", null()))
        second = open_db(root)["people"]
        second.insert(("Dee", "60601", "Chicago"))  # grounds Cid's null
        third = open_db(root)["people"]
        assert len(third) == 4
        assert third.result().relation[2]["city"] == "Chicago"
        assert third.verify()

    def test_session_invariant_after_recovery(self, root):
        db = open_db(root)
        people = seed_people(db)
        people.insert(("Cid", "60601", NOTHING))
        recovered = open_db(root)["people"]
        result = recovered.result()
        scratch = chase(recovered.raw_relation(), FDS)
        assert [r.values for r in result.relation.rows] == [
            r.values for r in scratch.relation.rows
        ]
