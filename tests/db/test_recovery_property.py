"""The crash-recovery differential property (the PR's acceptance bar).

For randomized op sequences over the full durable vocabulary — insert /
delete / update / replace / fill / reset / adopt / snapshot / rollback,
with checkpoints injected at random positions — and for **every prefix
length L**:

    apply ops[:L] to a Database relation, crash (abandon the handles,
    optionally tear the next record's first bytes onto the log), reopen
    with ``Database.open`` →  the recovered relation is field-identical
    (`assert_field_identical`, through the canonical-null alignment) to an
    uninterrupted in-memory ``ChaseSession`` that replayed the same
    ops[:L] — including shared-null identity, forced substitutions, and
    NOTHING states.

The per-prefix directories are snapshotted from one continuously-running
database (copytree after each op), so what is tested is the actual byte
trail a crash at that instant would leave — not a convenient re-run.
"""

import random
import shutil

import pytest

from repro.chase import ChaseSession
from repro.cli import _SessionTarget
from repro.core.values import NOTHING, is_null, null
from repro.db import Database, ManagedRelation
from repro.db.storage import WAL_NAME
from repro.errors import ReproError

from ..helpers import schema_of
from ..strategies import assert_recovered_identical

SCHEMA = schema_of("A B C")
FDS = ["A -> B", "B -> C", "A B -> C", "C -> A"]

_CONSTANTS = ["v0", "v1", "v2"]
_TOKENS = _CONSTANTS + ["fresh", "s0", "s1", "nothing"]
_KINDS = (
    ["insert"] * 5
    + ["delete", "update", "replace", "fill", "adopt"]
    + ["reset", "snapshot", "rollback", "checkpoint"]
)


def _materialize(rng, shared):
    values = []
    for _ in range(len(SCHEMA)):
        token = rng.choice(_TOKENS)
        if token == "fresh":
            values.append(null())
        elif token == "nothing":
            values.append(NOTHING)
        elif token.startswith("s"):
            values.append(shared[int(token[1:])])
        else:
            values.append(token)
    return tuple(values)


def make_ops(seed, n_ops):
    """A materialized op sequence; null objects are shared between the
    database run and every reference replay."""
    rng = random.Random(seed)
    shared = [null(), null()]
    depth = 0
    ops = []
    for _ in range(n_ops):
        kind = rng.choice(_KINDS)
        if kind == "rollback" and depth == 0:
            kind = "insert"
        if kind == "checkpoint" and depth:
            kind = "discard"  # a checkpoint refuses outstanding snapshots
        if kind == "snapshot":
            depth += 1
        elif kind == "rollback":
            depth -= 1
        elif kind == "discard":
            depth = 0
        ops.append(
            (
                kind,
                _materialize(rng, shared),
                rng.randrange(64),
                rng.choice(SCHEMA.attributes),
                rng.choice(_CONSTANTS),
                tuple(_materialize(rng, shared) for _ in range(2)),
            )
        )
    return ops


def apply_op(target, op):
    """One op against either side (db relation or reference session).

    Index-dependent ops resolve their target row modulo the current size
    — both sides are at the same state, so they resolve identically.
    """
    kind, values, index, attr, constant, reset_rows = op
    size = len(target)
    if kind == "insert":
        target.insert(values)
    elif kind in ("delete", "update", "replace", "fill"):
        if not size:
            return
        row = index % size
        if kind == "delete":
            target.delete(row)
        elif kind == "update":
            target.update(row, {attr: values[0]})
        elif kind == "replace":
            target.replace(row, values)
        else:
            cell = target.rows[row][attr]
            if is_null(cell):
                target.fill(row, attr, constant)
    elif kind == "adopt":
        target.adopt()
    elif kind == "reset":
        target.reset(list(reset_rows))
    elif kind == "snapshot":
        target.snapshot()
    elif kind == "rollback":
        target.rollback()
    elif kind == "discard":
        target.discard_snapshots()
    elif kind == "checkpoint":
        if isinstance(target, ManagedRelation):
            target.checkpoint()
    else:  # pragma: no cover
        raise AssertionError(kind)


def reference_after(ops):
    """The uninterrupted in-memory session after ``ops``."""
    target = _SessionTarget(ChaseSession(SCHEMA, FDS))
    for op in ops:
        apply_op(target, op)
    return target


@pytest.mark.parametrize("seed", [7, 23, 61, 101])
def test_recovery_is_field_identical_at_every_prefix(seed, tmp_path):
    ops = make_ops(seed, n_ops=12)
    live_dir = tmp_path / "live"
    prefix_dirs = [tmp_path / f"prefix{i}" for i in range(len(ops) + 1)]

    database = Database.open(live_dir, sync="flush")
    relation = database.create("r", SCHEMA, FDS)
    shutil.copytree(live_dir, prefix_dirs[0])
    for i, op in enumerate(ops):
        apply_op(relation, op)
        # the byte trail a crash immediately after op i+1 would leave
        shutil.copytree(live_dir, prefix_dirs[i + 1])

    for length in range(len(ops) + 1):
        reference = reference_after(ops[:length])
        recovered = Database.open(prefix_dirs[length], sync="flush")["r"]
        assert_recovered_identical(recovered, reference)
        assert recovered.verify()


@pytest.mark.parametrize("seed", [13, 47])
def test_recovery_with_a_torn_tail_lands_on_the_previous_op(seed, tmp_path):
    """Tearing the first bytes of op L+1's record onto prefix L's log must
    recover to exactly the state after op L (the torn op never applied)."""
    ops = make_ops(seed, n_ops=10)
    live_dir = tmp_path / "live"
    database = Database.open(live_dir, sync="flush")
    relation = database.create("r", SCHEMA, FDS)

    for i, op in enumerate(ops):
        crash_dir = tmp_path / f"crash{i}"
        shutil.copytree(live_dir, crash_dir)
        with open(crash_dir / "relations" / "r" / WAL_NAME, "a") as handle:
            handle.write('{"seq":9999,"op":"ins')  # op i+1, torn mid-append
        reference = reference_after(ops[:i])
        recovered = Database.open(crash_dir, sync="flush")["r"]
        assert_recovered_identical(recovered, reference)
        apply_op(relation, op)


def test_double_crash_is_stable(tmp_path):
    """Recovering, mutating, crashing again, and recovering again keeps
    matching the uninterrupted reference throughout."""
    ops = make_ops(5, n_ops=8)
    extra = make_ops(6, n_ops=6)
    live_dir = tmp_path / "live"
    relation = Database.open(live_dir, sync="flush").create("r", SCHEMA, FDS)
    for op in ops:
        apply_op(relation, op)
    second = Database.open(live_dir, sync="flush")["r"]  # crash #1
    for op in extra:
        apply_op(second, op)
    third = Database.open(live_dir, sync="flush")["r"]  # crash #2
    reference = reference_after(ops + extra)
    assert_recovered_identical(third, reference)
    assert third.verify()
