"""The query surface syntax: pipeline precedence, predicates, statements."""

import pytest

from repro.nullsem.queries import AndP, AttrEq, Eq, In, NotP, OrP
from repro.query.algebra import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.query.parser import (
    QueryParseError,
    parse_query,
    parse_statement,
)


class TestPipelinePrecedence:
    def test_postfix_steps_apply_left_to_right(self):
        node = parse_query("emp join mgr [name]")
        assert node == Project(Join(Scan("emp"), Scan("mgr")), ("name",))

    def test_parens_scope_a_step_to_one_operand(self):
        node = parse_query("emp join (mgr[dept])")
        assert node == Join(Scan("emp"), Project(Scan("mgr"), ("dept",)))

    def test_where_after_join_filters_the_join(self):
        node = parse_query("emp join mgr where boss = 'carol'")
        assert node == Select(
            Join(Scan("emp"), Scan("mgr")), Eq("boss", "carol")
        )

    def test_union_binds_looser_than_the_pipeline(self):
        node = parse_query("emp[dept] union mgr[dept]")
        assert node == Union(
            Project(Scan("emp"), ("dept",)), Project(Scan("mgr"), ("dept",))
        )

    def test_minus_binds_looser_than_the_pipeline(self):
        node = parse_query("emp[dept] minus mgr[dept]")
        assert node == Difference(
            Project(Scan("emp"), ("dept",)), Project(Scan("mgr"), ("dept",))
        )

    def test_union_chain_associates_left(self):
        node = parse_query("a union b minus c")
        assert node == Difference(Union(Scan("a"), Scan("b")), Scan("c"))

    def test_rename_pairs(self):
        node = parse_query("emp rename dept -> unit, name -> who")
        assert node == Rename(
            Scan("emp"), (("dept", "unit"), ("name", "who"))
        )


class TestPredicates:
    def test_equality_with_string_constant(self):
        node = parse_query("emp where dept = 'sales'")
        assert node == Select(Scan("emp"), Eq("dept", "sales"))

    def test_bare_name_on_the_right_is_an_attribute(self):
        node = parse_query("emp where boss = name")
        assert node == Select(Scan("emp"), AttrEq("boss", "name"))

    def test_not_equal_wraps_in_negation(self):
        node = parse_query("emp where dept != 'sales'")
        assert node == Select(Scan("emp"), NotP(Eq("dept", "sales")))

    def test_in_list(self):
        node = parse_query("emp where dept in ('sales', 'eng')")
        assert node == Select(Scan("emp"), In("dept", ("sales", "eng")))

    def test_and_binds_tighter_than_or(self):
        node = parse_query(
            "emp where dept = 'sales' and boss = 'ada' or dept = 'eng'"
        )
        assert node == Select(
            Scan("emp"),
            OrP(
                (
                    AndP((Eq("dept", "sales"), Eq("boss", "ada"))),
                    Eq("dept", "eng"),
                )
            ),
        )

    def test_not_and_predicate_parens(self):
        node = parse_query("emp where not (dept = 'sales' or dept = 'eng')")
        assert node == Select(
            Scan("emp"),
            NotP(OrP((Eq("dept", "sales"), Eq("dept", "eng")))),
        )

    def test_numeric_constants(self):
        assert parse_query("emp where n = 30") == Select(
            Scan("emp"), Eq("n", 30)
        )
        assert parse_query("emp where n = 1.5") == Select(
            Scan("emp"), Eq("n", 1.5)
        )

    def test_string_escapes(self):
        node = parse_query(r"emp where name = 'o\'brien'")
        assert node == Select(Scan("emp"), Eq("name", "o'brien"))


class TestBindingsAndStatements:
    def test_bindings_splice_at_parse_time(self):
        bound = Select(Scan("emp"), Eq("dept", "sales"))
        node = parse_query("ans[name]", {"ans": bound})
        assert node == Project(bound, ("name",))

    def test_blank_and_comment_statements(self):
        assert parse_statement("").kind == "blank"
        assert parse_statement("   # a comment").kind == "blank"

    def test_bind_statement(self):
        statement = parse_statement("ans = emp[name]")
        assert statement.kind == "bind"
        assert statement.name == "ans"
        assert statement.node == Project(Scan("emp"), ("name",))

    def test_bare_expression_statement(self):
        statement = parse_statement("emp join mgr")
        assert statement.kind == "query"
        assert statement.name is None
        assert statement.node == Join(Scan("emp"), Scan("mgr"))


class TestParseErrors:
    def test_unreadable_input_reports_a_column(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_query("emp where dept = $$$")
        assert excinfo.value.column == 18

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryParseError, match="unexpected"):
            parse_query("emp mgr")

    def test_missing_comparison(self):
        with pytest.raises(QueryParseError, match="expected '=', '!=' or 'in'"):
            parse_query("emp where dept")

    def test_unclosed_projection(self):
        with pytest.raises(QueryParseError, match="expected ']'"):
            parse_query("emp[name")

    def test_rename_needs_arrow(self):
        with pytest.raises(QueryParseError, match="expected '->'"):
            parse_query("emp rename dept unit")

    def test_unquoted_string_constant_hint(self):
        with pytest.raises(QueryParseError, match="quote strings"):
            parse_query("emp where dept = in")

    def test_error_carries_bad_request_code(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_query("[x]")
        assert excinfo.value.code == "E_BAD_REQUEST"
