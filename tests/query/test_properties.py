"""Property suites over the query layer.

* certain ⊆ possible, and the mode ladder
  ``kleene-certain ⊆ least-certain`` / ``least-possible ⊆
  kleene-possible`` (least-extension evaluation is sharper, never
  contradictory);
* monotonicity under least-extension refinement: substituting a
  constant from a null's consistent domain restricts the completion
  set, so certain answers can only grow and possible answers can only
  shrink.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.values import is_null
from repro.query import (
    MODE_KLEENE,
    MODE_LEAST,
    evaluate,
    ground_answers,
    parse_query,
)

from .test_differential import QUERIES, environment_nulls, environments


def row_keys(answer):
    """Row multiset as identity-keyed tuples (null = object id)."""
    return {
        tuple(("n", id(v)) if is_null(v) else ("c", v) for v in row)
        for row in answer.rows
    }


@settings(max_examples=40)
@given(env=environments(), query=st.sampled_from(QUERIES))
def test_certain_disjoint_from_maybe_and_modes_nest(env, query):
    node = parse_query(query)
    least = evaluate(node, env, mode=MODE_LEAST)
    kleene = evaluate(node, env, mode=MODE_KLEENE)

    # within one mode: certain and maybe partition the surviving rows
    for result in (least, kleene):
        assert not (row_keys(result.certain) & row_keys(result.maybe))

    # the mode ladder on the same conditional table
    k_certain, l_certain = row_keys(kleene.certain), row_keys(least.certain)
    k_possible = k_certain | row_keys(kleene.maybe)
    l_possible = l_certain | row_keys(least.maybe)
    assert k_certain <= l_certain
    assert l_possible <= k_possible


@settings(max_examples=40)
@given(env=environments(), query=st.sampled_from(QUERIES))
def test_ground_certain_subset_of_possible(env, query):
    certain, possible = ground_answers(parse_query(query), env)
    assert certain <= possible


@settings(max_examples=40)
@given(
    env=environments(),
    query=st.sampled_from(QUERIES),
    pick=st.integers(min_value=0, max_value=7),
)
def test_certain_answers_monotone_under_refinement(env, query, pick):
    """Filling one null with a constant from its consistent domain is a
    least-extension refinement: every completion of the refined
    database is a completion of the original, so certain answers grow
    monotonically and possible answers shrink."""
    nulls, domains = environment_nulls(env)
    candidates = [n for n in nulls if domains[id(n)]]
    if not candidates:
        return
    target = candidates[pick % len(candidates)]
    constant = domains[id(target)][pick % len(domains[id(target)])]
    refined = {
        name: Relation(
            relation.schema,
            [row.substitute({target: constant}) for row in relation.rows],
        )
        for name, relation in env.items()
    }

    node = parse_query(query)
    certain, possible = ground_answers(node, env)
    refined_certain, refined_possible = ground_answers(node, refined)
    assert certain <= refined_certain
    assert refined_possible <= possible
