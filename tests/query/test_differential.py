"""The query-layer acceptance oracle: brute-force completion enumeration.

:func:`repro.query.evaluate.ground_answers` computes ground certain /
possible answer sets *locally* — per conditional row, grounding only the
nulls each membership formula references.  The oracle here shares no
code with that: it enumerates every joint completion of the whole
environment (every assignment of constants to every null, one constant
per null *object* across all its occurrences in all relations), runs a
classical two-valued evaluator over each ground database, and takes the
intersection (certain) and union (possible) of the classical results.
The two must be field-identical — including joins across relations that
share a null object, where per-completion both occurrences ground to
the same constant.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import is_null, null
from repro.nullsem.queries import AndP, AttrEq, Eq, In, NotP, OrP
from repro.query import ground_answers, parse_query
from repro.query.algebra import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)

from ..helpers import rel

# ---------------------------------------------------------------------------
# the oracle: joint completions + classical evaluation
# ---------------------------------------------------------------------------


def environment_nulls(env):
    """Every null in the environment with its intersected domain —
    the documented convention (declared-finite domains, intersected
    across all occurrences), recomputed independently here."""
    domains = {}
    order = []
    for relation in env.values():
        attributes = relation.schema.attributes
        for row in relation.rows:
            for attribute, value in zip(attributes, row.values):
                if not is_null(value):
                    continue
                column = tuple(relation.enumeration_domain(attribute))
                if id(value) not in domains:
                    domains[id(value)] = column
                    order.append(value)
                else:
                    domains[id(value)] = tuple(
                        c for c in domains[id(value)] if c in column
                    )
    return order, domains


def classical(node, genv):
    """Two-valued evaluation over a ground environment.

    Returns ``(attributes, frozenset of tuples)``.
    """
    if isinstance(node, Scan):
        attrs, rows = genv[node.name]
        return attrs, frozenset(rows)
    if isinstance(node, Select):
        attrs, rows = classical(node.source, genv)
        positions = {a: i for i, a in enumerate(attrs)}
        return attrs, frozenset(
            row for row in rows if holds(node.pred, positions, row)
        )
    if isinstance(node, Project):
        attrs, rows = classical(node.source, genv)
        positions = {a: i for i, a in enumerate(attrs)}
        keep = [positions[a] for a in node.attributes]
        return node.attributes, frozenset(
            tuple(row[i] for i in keep) for row in rows
        )
    if isinstance(node, Join):
        left_attrs, left_rows = classical(node.left, genv)
        right_attrs, right_rows = classical(node.right, genv)
        shared = [a for a in left_attrs if a in right_attrs]
        extra = [a for a in right_attrs if a not in left_attrs]
        lpos = {a: i for i, a in enumerate(left_attrs)}
        rpos = {a: i for i, a in enumerate(right_attrs)}
        out = set()
        for lrow in left_rows:
            for rrow in right_rows:
                if any(lrow[lpos[a]] != rrow[rpos[a]] for a in shared):
                    continue
                out.add(lrow + tuple(rrow[rpos[a]] for a in extra))
        return left_attrs + tuple(extra), frozenset(out)
    if isinstance(node, Rename):
        attrs, rows = classical(node.source, genv)
        mapping = dict(node.mapping)
        return tuple(mapping.get(a, a) for a in attrs), rows
    if isinstance(node, Union):
        attrs, left_rows = classical(node.left, genv)
        _, right_rows = classical(node.right, genv)
        return attrs, left_rows | right_rows
    if isinstance(node, Difference):
        attrs, left_rows = classical(node.left, genv)
        _, right_rows = classical(node.right, genv)
        return attrs, left_rows - right_rows
    raise AssertionError(node)


def holds(pred, positions, row) -> bool:
    if isinstance(pred, Eq):
        return row[positions[pred.attribute]] == pred.constant
    if isinstance(pred, In):
        return row[positions[pred.attribute]] in pred.constants
    if isinstance(pred, AttrEq):
        return row[positions[pred.first]] == row[positions[pred.second]]
    if isinstance(pred, NotP):
        return not holds(pred.operand, positions, row)
    if isinstance(pred, AndP):
        return all(holds(p, positions, row) for p in pred.operands)
    if isinstance(pred, OrP):
        return any(holds(p, positions, row) for p in pred.operands)
    raise AssertionError(pred)


def brute_force(node, env):
    """(certain, possible) by enumerating every joint completion."""
    nulls, domains = environment_nulls(env)
    certain = None
    possible = set()
    for combo in itertools.product(*(domains[id(n)] for n in nulls)):
        binding = dict(zip((id(n) for n in nulls), combo))
        genv = {}
        for name, relation in env.items():
            rows = {
                tuple(
                    binding[id(v)] if is_null(v) else v for v in row.values
                )
                for row in relation.rows
            }
            genv[name] = (relation.schema.attributes, rows)
        _, result = classical(node, genv)
        possible |= result
        certain = result if certain is None else certain & result
    return frozenset(certain or ()), frozenset(possible)


def assert_matches_oracle(node, env):
    got_certain, got_possible = ground_answers(node, env)
    want_certain, want_possible = brute_force(node, env)
    assert got_possible == want_possible, (
        f"possible answers diverge:\n got  {sorted(got_possible)}\n"
        f" want {sorted(want_possible)}"
    )
    assert got_certain == want_certain, (
        f"certain answers diverge:\n got  {sorted(got_certain)}\n"
        f" want {sorted(want_certain)}"
    )


# ---------------------------------------------------------------------------
# hand-written cases the acceptance criteria single out
# ---------------------------------------------------------------------------

DOM = ["a", "b"]


class TestSharedNullAcrossRelations:
    def test_join_on_a_shared_null(self):
        x = null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": DOM}),
            "s": rel("B C", [[x, "c"]], domains={"B": DOM}),
        }
        assert_matches_oracle(parse_query("r join s"), env)

    def test_join_on_distinct_nulls(self):
        x, y = null(), null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": DOM}),
            "s": rel("B C", [[y, "c"]], domains={"B": DOM}),
        }
        assert_matches_oracle(parse_query("r join s"), env)

    def test_unscanned_relation_still_constrains_a_shared_null(self):
        """s appears in the environment but not in the query; its column
        domain {a} still narrows x, making ``A = 'a'`` certain."""
        x = null()
        env = {
            "r": rel("A", [[x]], domains={"A": DOM}),
            "s": rel("A", [[x]], domains={"A": ["a"]}),
        }
        assert_matches_oracle(parse_query("r where A = 'a'"), env)

    def test_difference_with_shared_null_on_both_sides(self):
        x = null()
        env = {
            "r": rel("A", [["a"], [x]], domains={"A": DOM}),
            "s": rel("A", [[x]], domains={"A": DOM}),
        }
        assert_matches_oracle(parse_query("r minus s"), env)


# ---------------------------------------------------------------------------
# the randomized sweep
# ---------------------------------------------------------------------------

QUERIES = (
    "r",
    "r[A]",
    "r[B]",
    "r where A = 'a'",
    "r where A != 'a'",
    "r where A = B",
    "r where A in ('a', 'b') and B = 'a'",
    "r join s",
    "r join s [A, C]",
    "r join s where C = 'b'",
    "r[B] union s[B]",
    "r[B] minus s[B]",
    "s rename C -> A [A] minus r[A]",
    "(r where A = 'a') union (r where A = 'b')",
    "r minus (r where A = B)",
)


@st.composite
def environments(draw):
    """Two relations r(A B), s(B C) over the domain {a, b} with
    constants, fresh nulls and nulls shared within *and across* the
    relations (≤ 4 null objects total keeps the joint enumeration
    ≤ 2⁴ completions)."""
    shared = [null() for _ in range(2)]
    fresh_budget = [2]
    tokens = ["a", "b", "fresh", "s0", "s1"]

    def cell(token):
        if token == "fresh":
            if fresh_budget[0] == 0:
                return "a"
            fresh_budget[0] -= 1
            return null()
        if token.startswith("s"):
            return shared[int(token[1])]
        return token

    def build(attrs):
        n_rows = draw(st.integers(min_value=0, max_value=3))
        rows = [
            [cell(draw(st.sampled_from(tokens))) for _ in range(2)]
            for _ in range(n_rows)
        ]
        return rel(attrs, rows, domains={a: DOM for a in attrs.split()})

    return {"r": build("A B"), "s": build("B C")}


@settings(max_examples=60)
@given(env=environments(), query=st.sampled_from(QUERIES))
def test_ground_answers_match_brute_force(env, query):
    assert_matches_oracle(parse_query(query), env)
