"""The static planner: optimized evaluation is pinned to unoptimized.

Three layers of assurance:

* a randomized property sweep — for every environment (constants, fresh
  nulls, nulls shared across relations) and every query shape, the
  optimizing evaluator's certain/maybe answer *sets* equal the
  unoptimized evaluator's in both kleene and least modes (rewrites may
  reorder rows; identity-keyed sets are the contract);
* exact-order pinning for the hash join — bucket routing is a pure
  iteration-order refactor of the nested loop, so with rewrites off the
  two must produce field-identical rows *in the same order*;
* unit probes per rewrite — each fires on the plan built to trigger it
  and never changes the answer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import is_null, null
from repro.errors import DomainError
from repro.query import (
    Empty,
    Evaluator,
    Join,
    MODE_KLEENE,
    MODE_LEAST,
    QueryError,
    Scan,
    Select,
    analyze,
    collect_stats,
    optimize_tree,
    output_schema,
    parse_query,
    render_plan,
)

from ..helpers import rel, schema_of

DOM = ["a", "b"]
MODES = (MODE_KLEENE, MODE_LEAST)


def keyset(answer):
    """Identity-keyed row set: nulls by object, constants by value."""
    return {
        tuple(
            ("n", id(v)) if is_null(v) else ("c", v) for v in row
        )
        for row in answer.rows
    }


def assert_pinned(node, env, mode):
    """Optimized and unoptimized answers agree as identity-keyed sets."""
    baseline = Evaluator(env, optimize=False, hash_joins=False)
    try:
        expected = baseline.run(node, mode=mode)
    except DomainError:
        return None
    optimized = Evaluator(env)
    actual = optimized.run(node, mode=mode)
    assert keyset(actual.certain) == keyset(expected.certain), mode
    assert keyset(actual.maybe) == keyset(expected.maybe), mode
    return optimized


# ---------------------------------------------------------------------------
# the randomized sweep
# ---------------------------------------------------------------------------

QUERIES = (
    "r",
    "r[A]",
    "r where A = 'a'",
    "r where A != 'a'",
    "r where A = B",
    "r where A = 'a' and A != 'a'",
    "r where A in ('a', 'b')",
    "r join s",
    "r join s [A, C]",
    "r join s where C = 'b'",
    "r join s where A = 'a' [A, C]",
    "r[B] union s[B]",
    "((r where A = 'a') union (r where A = 'b'))[B]",
    "r[B] minus s[B]",
    "r minus (r where A = B)",
    "s rename C -> A [A] minus r[A]",
)


@st.composite
def environments(draw):
    """r(A B), s(B C) over {a, b} with constants, fresh nulls, and
    nulls shared within and across the relations."""
    shared = [null() for _ in range(2)]
    fresh_budget = [2]
    tokens = ["a", "b", "fresh", "s0", "s1"]

    def cell(token):
        if token == "fresh":
            if fresh_budget[0] == 0:
                return "a"
            fresh_budget[0] -= 1
            return null()
        if token.startswith("s"):
            return shared[int(token[1])]
        return token

    def build(attrs):
        n_rows = draw(st.integers(min_value=0, max_value=3))
        rows = [
            [cell(draw(st.sampled_from(tokens))) for _ in range(2)]
            for _ in range(n_rows)
        ]
        return rel(attrs, rows, domains={a: DOM for a in attrs.split()})

    return {"r": build("A B"), "s": build("B C")}


@settings(max_examples=60)
@given(env=environments(), query=st.sampled_from(QUERIES))
def test_optimized_is_pinned_to_unoptimized(env, query):
    node = parse_query(query)
    for mode in MODES:
        assert_pinned(node, env, mode)


# ---------------------------------------------------------------------------
# hash join: exact-order identity with the nested loop
# ---------------------------------------------------------------------------


class TestHashJoinOrder:
    def pin_order(self, env, query):
        node = parse_query(query)
        for mode in MODES:
            nested = Evaluator(env, optimize=False, hash_joins=False).run(
                node, mode=mode
            )
            bucketed = Evaluator(env, optimize=False, hash_joins=True).run(
                node, mode=mode
            )
            for which in ("certain", "maybe"):
                left = getattr(nested, which).rows
                right = getattr(bucketed, which).rows
                assert len(left) == len(right), (mode, which)
                for lrow, rrow in zip(left, right):
                    for lv, rv in zip(lrow, rrow):
                        if is_null(lv) or is_null(rv):
                            assert lv is rv, (mode, which)
                        else:
                            assert lv == rv, (mode, which)

    def test_constants_and_wildcards_interleave_identically(self):
        x, y = null(), null()
        env = {
            "r": rel("A B", [["a", "p"], ["b", x], ["a", "q"]],
                     domains={"B": ["p", "q"]}),
            "s": rel("B C", [["p", "c1"], [y, "c2"], ["q", "c3"],
                             ["p", "c4"]],
                     domains={"B": ["p", "q"]}),
        }
        self.pin_order(env, "r join s")

    def test_shared_null_across_sides_stays_identical(self):
        x = null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": ["p", "q"]}),
            "s": rel("B C", [[x, "c1"], ["p", "c2"]],
                     domains={"B": ["p", "q"]}),
        }
        self.pin_order(env, "r join s")

    def test_no_shared_attributes_falls_back_to_nested_loop(self):
        env = {
            "r": rel("A B", [["a", "p"], ["b", "q"]]),
            "s": rel("C D", [["c", "d"], ["e", "f"]]),
        }
        self.pin_order(env, "r join s")


# ---------------------------------------------------------------------------
# rewrites: each fires, none changes the answer
# ---------------------------------------------------------------------------


def plan_for(env, query, mode=MODE_LEAST, fds=None):
    evaluator = Evaluator(env, fds=fds)
    return evaluator, evaluator.plan(parse_query(query), mode=mode)


class TestRewrites:
    def env(self):
        x = null()
        return {
            "r": rel("A B", [["a1", "b1"], ["a2", x], ["a3", "b2"]],
                     domains={"B": ["b1", "b2"]}),
            "s": rel("B C", [["b1", "c1"], ["b2", "c2"]],
                     domains={"B": ["b1", "b2"]}),
        }

    def test_select_pushes_through_join(self):
        env = self.env()
        _, plan = plan_for(env, "r join s where C = 'c1'")
        assert "select-pushdown(join)" in plan.rewrites
        # the pushed select now guards the right scan, not the join
        assert isinstance(plan.node, Join)
        assert isinstance(plan.node.right, Select)
        for mode in MODES:
            assert_pinned(parse_query("r join s where C = 'c1'"), env, mode)

    def test_tautology_select_is_eliminated(self):
        env = self.env()
        _, plan = plan_for(env, "r where B in ('b1', 'b2')")
        assert "tautology-elimination" in plan.rewrites
        assert isinstance(plan.node, Scan)
        for mode in MODES:
            assert_pinned(parse_query("r where B in ('b1', 'b2')"), env, mode)

    def test_contradiction_becomes_empty(self):
        env = self.env()
        query = "r where A = 'zz' and A != 'zz'"
        _, plan = plan_for(env, query)
        assert "contradiction-elimination" in plan.rewrites
        assert isinstance(plan.node, Empty)
        for mode in MODES:
            optimized = assert_pinned(parse_query(query), env, mode)
            result = optimized.run(parse_query(query), mode=mode)
            assert result.certain.rows == () or list(result.certain.rows) == []

    def test_dead_union_arm_is_dropped(self):
        env = self.env()
        query = "(r where A = 'zz' and A != 'zz') union r"
        _, plan = plan_for(env, query)
        assert "dead-branch-elimination" in plan.rewrites
        for mode in MODES:
            assert_pinned(parse_query(query), env, mode)

    def test_projection_pushes_through_union(self):
        env = self.env()
        query = "(r union r) [A]"
        _, plan = plan_for(env, query)
        assert "project-pushdown(union)" in plan.rewrites
        for mode in MODES:
            assert_pinned(parse_query(query), env, mode)

    def test_cross_fusion_orders_by_width(self):
        env = {
            "t1": rel("A B", [["a", "b"]] * 3),
            "t2": rel("C D", [["c", "d"]] * 2),
            "t3": rel("E F", [["e", "f"]] * 1),
        }
        query = "t1 join t2 join t3"
        _, plan = plan_for(env, query)
        assert "cross-fusion" in plan.rewrites
        for mode in MODES:
            assert_pinned(parse_query(query), env, mode)

    def test_no_optimize_evaluator_never_rewrites(self):
        env = self.env()
        evaluator = Evaluator(env, optimize=False)
        evaluator.run(parse_query("r where B in ('b1', 'b2')"))
        assert evaluator.last_plan is None


# ---------------------------------------------------------------------------
# the two soundness regressions (open pools, shared sentinels)
# ---------------------------------------------------------------------------


class TestVerdictSoundness:
    def test_empty_relation_without_domains_is_not_unsatisfiable(self):
        """An instance that happens to be empty must not brand selects
        over it statically dead: the pool's fresh symbols are equality
        surrogates, not a closed value set."""
        env = {"r": rel("A B", [])}
        node = parse_query("r where B = 'b1' [A]")
        info = analyze(
            node, {"r": env["r"].schema}, stats=collect_stats(env),
            mode=MODE_LEAST,
        )
        assert not info.facts.empty
        assert not info.children[0].facts.empty

    def test_attribute_equality_is_satisfiable(self):
        """`A = B` needs sentinels shared across attributes — private
        per-attribute sentinels would brand it a contradiction."""
        x = null()
        env = {"r": rel("A B", [[x, x]],
                        domains={"A": DOM, "B": DOM})}
        node = parse_query("r where A = B")
        _, plan = plan_for(env, "r where A = B")
        assert not isinstance(plan.node, Empty)
        for mode in MODES:
            result = Evaluator(env).run(node, mode=mode)
            assert len(result.certain.rows) == 1, mode

    def test_contradiction_against_declared_domain_is_static(self):
        env = {"r": rel("A B", [["a1", "b1"]],
                        domains={"B": ["b1", "b2"]})}
        _, plan = plan_for(env, "r where B = 'b3'")
        assert isinstance(plan.node, Empty)


# ---------------------------------------------------------------------------
# inference: keys, explain, the Empty node
# ---------------------------------------------------------------------------


class TestInference:
    def test_fd_keys_propagate_to_the_plan(self):
        env = {"r": rel("A B", [["a1", "b1"], ["a2", "b1"]])}
        info = analyze(
            parse_query("r"), {"r": env["r"].schema},
            stats=collect_stats(env), fds={"r": ("A -> B",)},
            mode=MODE_LEAST,
        )
        assert ("A",) in info.keys

    def test_explain_renders_strategy_keys_and_rewrites(self):
        x = null()
        env = {
            "r": rel("A B", [["a1", "b1"], ["a2", x]],
                     domains={"B": ["b1", "b2"]}),
            "s": rel("B C", [["b1", "c1"]], domains={"B": ["b1", "b2"]}),
        }
        evaluator = Evaluator(env, fds={"r": ("A -> B",)})
        text = evaluator.explain(
            parse_query("r join s where C = 'c1'"), mode=MODE_LEAST
        )
        assert "Join strategy=bucket(B)" in text
        assert "keys=(A)" in text
        assert "rewrites: select-pushdown(join)" in text
        assert "Scan r" in text and "Scan s" in text

    def test_explain_checks_the_schema_first(self):
        env = {"r": rel("A B", [])}
        with pytest.raises(QueryError):
            Evaluator(env).explain(parse_query("r [Z]"))

    def test_empty_node_evaluates_to_nothing(self):
        env = {"r": rel("A B", [["a", "b"]])}
        result = Evaluator(env).run(Empty(("A", "B")))
        assert list(result.certain.rows) == []
        assert list(result.maybe.rows) == []

    def test_empty_node_needs_attributes(self):
        with pytest.raises(QueryError):
            output_schema(Empty(()), {})

    def test_optimize_tree_is_idempotent(self):
        env = self.env = {
            "r": rel("A B", [["a1", "b1"]], domains={"B": ["b1", "b2"]}),
        }
        catalog = {"r": env["r"].schema}
        stats = collect_stats(env)
        plan = optimize_tree(
            parse_query("r where B in ('b1', 'b2') [A]"), catalog,
            stats=stats, mode=MODE_LEAST, least_safe=True,
        )
        again = optimize_tree(
            plan.node, catalog, stats=stats, mode=MODE_LEAST,
            least_safe=True,
        )
        assert again.node == plan.node
        assert not again.rewrites
        assert "rewrites:" in render_plan(plan)
