"""The unified answer schema: round-trips, deprecations, integration.

Every read surface returns :class:`repro.api.Answer` /
:class:`~repro.api.ResultSet` shapes now; these tests pin the wire
contract (versioned payloads), the deprecation path (dict-style access
warns but works), and the first-class-result property (answers
materialize as relations that can seed a chase, nulls surviving by
identity).
"""

import warnings

import pytest

from repro import ChaseSession, Database, FDSet
from repro.api import (
    TAG_CERTAIN,
    TAG_MAYBE,
    WIRE_VERSION,
    Answer,
    ResultSet,
)
from repro.core.codec import ValueCodec
from repro.core.values import is_null, null
from repro.errors import ReproError
from repro.query import evaluate, parse_query

from ..helpers import rel


class TestAnswerShape:
    def test_rows_and_len_and_iter(self):
        answer = Answer(TAG_CERTAIN, ("A",), (("a",), ("b",)))
        assert len(answer) == 2
        assert list(answer) == [("a",), ("b",)]
        assert bool(answer)

    def test_bool_prefers_the_check_verdict(self):
        empty_but_satisfied = Answer(
            TAG_CERTAIN, (), (), meta={"satisfied": True}
        )
        assert bool(empty_but_satisfied)
        nonempty_failed = Answer(
            TAG_MAYBE, ("A",), (("a",),), meta={"satisfied": False}
        )
        assert not bool(nonempty_failed)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ReproError, match="unknown answer tag"):
            Answer("definitely", ("A",), ())

    def test_wire_round_trip_preserves_null_identity(self):
        x = null()
        answer = Answer(
            TAG_MAYBE,
            ("A", "B"),
            ((x, "b"), (x, "c")),
            as_of=7,
            provenance={x.label: {"relation": "r", "attribute": "A"}},
            meta={"mode": "least"},
        )
        codec = ValueCodec()
        payload = answer.to_payload(encode=codec.encode)
        assert payload["v"] == WIRE_VERSION
        assert payload["as_of"] == 7

        nulls = {}

        def decode(token):
            if isinstance(token, dict) and "n" in token:
                return nulls.setdefault(token["n"], null(str(token["n"])))
            return token

        back = Answer.from_payload(payload, decode=decode)
        assert back.attributes == answer.attributes
        assert back.as_of == 7 and back.meta == {"mode": "least"}
        # the two occurrences of x decode to ONE null object again
        assert back.rows[0][0] is back.rows[1][0]

    def test_version_mismatch_rejected(self):
        answer = Answer(TAG_CERTAIN, ("A",), ())
        payload = answer.to_payload()
        payload["v"] = WIRE_VERSION + 1
        with pytest.raises(ReproError, match="schema version"):
            Answer.from_payload(payload)

    def test_dict_style_access_warns_but_works(self):
        answer = Answer(
            TAG_CERTAIN, ("A",), (("a",),), meta={"satisfied": True}
        )
        with pytest.warns(DeprecationWarning, match="dict-style access"):
            assert answer["rows"] == [["a"]]
        with pytest.warns(DeprecationWarning):
            assert answer.get("satisfied") is True
        with pytest.warns(DeprecationWarning):
            assert answer.get("missing", "fallback") == "fallback"

    def test_attribute_access_does_not_warn(self):
        answer = Answer(TAG_CERTAIN, ("A",), (("a",),))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert answer.rows == (("a",),)
            assert answer.tag == TAG_CERTAIN


class TestResultSetShape:
    def build(self):
        x = null()
        env = {"r": rel("A B", [["a", "b"], [x, "b"]],
                        domains={"A": ["a", "c"]})}
        return evaluate(parse_query("r where A = 'a'"), env)

    def test_tags_are_enforced(self):
        good = self.build()
        with pytest.raises(ReproError, match="tag='certain'"):
            ResultSet(certain=good.maybe, maybe=good.maybe)

    def test_possible_is_the_union(self):
        result = self.build()
        assert result.possible().rows == (
            result.certain.rows + result.maybe.rows
        )
        assert result.possible().tag == TAG_MAYBE

    def test_payload_round_trip(self):
        result = self.build()
        codec = ValueCodec()
        payload = result.to_payload(encode=codec.encode)
        assert payload["v"] == WIRE_VERSION
        back = ResultSet.from_payload(payload)
        assert back.attributes == result.attributes
        assert len(back.certain) == 1 and len(back.maybe) == 1


class TestAnswersAsChaseInputs:
    def test_query_result_seeds_a_chase_session(self):
        """A maybe-answer relation feeds straight into a ChaseSession —
        nulls keep their identity so the chase can equate them."""
        x = null()
        env = {
            "r": rel("A B", [["k", x]], domains={"B": ["p", "q"]}),
            "s": rel("B C", [[x, "c"]], domains={"B": ["p", "q"]}),
        }
        result = evaluate(parse_query("r join s"), env)
        relation = result.relation(name="joined")
        assert relation.schema.attributes == ("A", "B", "C")

        session = ChaseSession(relation.schema, FDSet.parse("A -> B C"))
        for row in relation.rows:
            session.insert(list(row.values))
        outcome = session.result()
        assert [r.values for r in outcome.relation.rows] == [
            ("k", x, "c")
        ]

    def test_materialized_answer_carries_finite_domains(self):
        env = {"r": rel("A B", [["a", "b"]], domains={"A": ["a", "z"]})}
        result = evaluate(parse_query("r"), env)
        relation = result.relation()
        assert relation.schema.domain("A").is_finite


class TestSessionAnswers:
    def test_result_is_chase_result_and_answerable(self):
        session = ChaseSession(
            rel("A B", []).schema, FDSet.parse("A -> B")
        )
        session.insert(["a", "b"])
        outcome = session.result()
        # the old surface is intact...
        assert [r.values for r in outcome.relation.rows] == [("a", "b")]
        assert outcome.has_nothing is False
        # ...and the unified answer rides along
        answer = outcome.answer()
        assert answer.tag == TAG_CERTAIN
        assert answer.as_of is None and answer.rows == (("a", "b"),)
        assert answer.meta["has_nothing"] is False

    def test_check_answers_both_shapes(self):
        session = ChaseSession(
            rel("A B", []).schema, FDSet.parse("A -> B")
        )
        session.insert(["a", "b"])
        session.insert(["c", null()])
        outcome = session.check()
        assert outcome.satisfied in (True, False)  # old tuple surface
        answer = outcome.answer()
        assert answer.tag in (TAG_CERTAIN, TAG_MAYBE)
        assert answer.meta["satisfied"] == outcome.satisfied
        assert bool(answer) == outcome.satisfied

    def test_database_reads_carry_the_cut_seq(self, tmp_path):
        db = Database.open(tmp_path / "db", create=True)
        try:
            emp = db.create("emp", "A B", fds=["A -> B"])
            emp.insert(["a", "b"])
            result = emp.result()
            assert result.as_of == 1
            assert result.answer().as_of == 1
            emp.insert(["c", "d"])
            assert emp.check().as_of == 2
        finally:
            db.close()
