"""Evaluator semantics: certain/maybe tagging, null identity, modes.

Hand-sized instances whose answer sets are verifiable by inspection —
the randomized differential suite (test_differential.py) covers the
same semantics at scale against a brute-force oracle.
"""

import pytest

from repro.core.values import NOTHING, null
from repro.errors import InconsistentInstanceError
from repro.query import (
    Evaluator,
    MODE_KLEENE,
    MODE_LEAST,
    QueryError,
    evaluate,
    ground_answers,
    parse_query,
)

from ..helpers import rel


def rows_of(answer):
    return [tuple(row) for row in answer.rows]


class TestTagging:
    def test_ground_rows_are_certain(self):
        env = {"r": rel("A B", [["a", "b"], ["c", "d"]])}
        result = evaluate(parse_query("r where A = 'a'"), env)
        assert rows_of(result.certain) == [("a", "b")]
        assert rows_of(result.maybe) == []

    def test_null_in_a_selected_cell_is_maybe(self):
        x = null()
        env = {
            "r": rel("A B", [[x, "b"]], domains={"A": ["a", "c"]})
        }
        result = evaluate(parse_query("r where A = 'a'"), env)
        assert rows_of(result.certain) == []
        assert rows_of(result.maybe) == [(x, "b")]

    def test_false_rows_are_dropped(self):
        env = {"r": rel("A B", [["c", "b"]])}
        result = evaluate(parse_query("r where A = 'a'"), env)
        assert rows_of(result.certain) == []
        assert rows_of(result.maybe) == []

    def test_meta_records_the_mode(self):
        env = {"r": rel("A", [["a"]])}
        result = evaluate(parse_query("r"), env, mode=MODE_KLEENE)
        assert result.certain.meta["mode"] == MODE_KLEENE

    def test_unknown_mode_rejected(self):
        env = {"r": rel("A", [["a"]])}
        with pytest.raises(QueryError, match="unknown evaluation mode"):
            evaluate(parse_query("r"), env, mode="fuzzy")

    def test_possible_is_certain_union_maybe(self):
        x = null()
        env = {"r": rel("A B", [[x, "b"], ["a", "c"]],
                        domains={"A": ["a", "z"]})}
        result = evaluate(parse_query("r where A = 'a'"), env)
        assert rows_of(result.possible()) == (
            rows_of(result.certain) + rows_of(result.maybe)
        )


class TestLeastExtensionVsKleene:
    def test_domain_exhaustion_is_certain_only_under_least(self):
        """``B='a' or B='b'`` over domain {a, b}: a tautology the
        truth-functional evaluation cannot see (the paper's central
        Kleene-vs-least separation)."""
        x = null()
        env = {"r": rel("A B", [["c", x]], domains={"B": ["a", "b"]})}
        node = parse_query("r where B = 'a' or B = 'b'")
        least = evaluate(node, env, mode=MODE_LEAST)
        kleene = evaluate(node, env, mode=MODE_KLEENE)
        assert rows_of(least.certain) == [("c", x)]
        assert rows_of(kleene.certain) == []
        assert rows_of(kleene.maybe) == [("c", x)]

    def test_contradiction_is_dropped_only_under_least(self):
        x = null()
        env = {"r": rel("A B", [["c", x]], domains={"B": ["a", "b"]})}
        node = parse_query("r where B = 'a' and B = 'b'")
        least = evaluate(node, env, mode=MODE_LEAST)
        kleene = evaluate(node, env, mode=MODE_KLEENE)
        assert rows_of(least.certain) == rows_of(least.maybe) == []
        assert rows_of(kleene.maybe) == [("c", x)]

    def test_self_equality_is_certain_in_both_modes(self):
        x = null()
        env = {"r": rel("A B", [[x, x]], domains={"A": ["a", "b"],
                                                  "B": ["a", "b"]})}
        node = parse_query("r where A = B")
        for mode in (MODE_LEAST, MODE_KLEENE):
            result = evaluate(node, env, mode=mode)
            assert rows_of(result.certain) == [(x, x)], mode


class TestNullIdentityAcrossRelations:
    def test_shared_null_joins_as_one_unknown(self):
        """The same null object in r.B and s.B equates identically, so
        the join row is certain even though the value is unknown."""
        x = null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": ["p", "q"]}),
            "s": rel("B C", [[x, "c"]], domains={"B": ["p", "q"]}),
        }
        result = evaluate(parse_query("r join s"), env)
        assert rows_of(result.certain) == [("a", x, "c")]
        assert rows_of(result.maybe) == []

    def test_distinct_nulls_join_as_maybe(self):
        x, y = null(), null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": ["p", "q"]}),
            "s": rel("B C", [[y, "c"]], domains={"B": ["p", "q"]}),
        }
        result = evaluate(parse_query("r join s"), env)
        assert rows_of(result.certain) == []
        assert len(result.maybe) == 1

    def test_environment_intersects_domains_across_occurrences(self):
        """A null constrained to {p} by one column and {p, q} by another
        grounds over the intersection {p} — so equality with 'p' is
        certain under least evaluation."""
        x = null()
        env = {
            "r": rel("A B", [["a", x]], domains={"B": ["p", "q"]}),
            "s": rel("B C", [[x, "c"]], domains={"B": ["p"]}),
        }
        result = evaluate(parse_query("r where B = 'p'"), env)
        assert rows_of(result.certain) == [("a", x)]


class TestDifferenceAndUnion:
    def test_difference_removes_certain_matches(self):
        env = {
            "r": rel("A", [["a"], ["b"]]),
            "s": rel("A", [["a"]]),
        }
        result = evaluate(parse_query("r minus s"), env)
        assert rows_of(result.certain) == [("b",)]
        assert rows_of(result.maybe) == []

    def test_difference_against_a_null_is_maybe(self):
        x = null()
        env = {
            "r": rel("A", [["a"], ["b"]]),
            "s": rel("A", [[x]], domains={"A": ["a", "b", "c"]}),
        }
        result = evaluate(parse_query("r minus s"), env)
        assert rows_of(result.certain) == []
        assert rows_of(result.maybe) == [("a",), ("b",)]

    def test_union_merges_duplicate_rows(self):
        env = {
            "r": rel("A", [["a"]]),
            "s": rel("A", [["a"], ["b"]]),
        }
        result = evaluate(parse_query("r union s"), env)
        assert rows_of(result.certain) == [("a",), ("b",)]

    def test_projection_merge_can_promote_to_certain(self):
        """Two maybe-rows projecting onto the same tuple whose conditions
        jointly exhaust the domain: the merged row is certain under
        least evaluation (the dedup/any_of path)."""
        x = null()
        env = {"r": rel("A B", [[x, "k"], ["q", "k"]],
                        domains={"A": ["p", "q"]})}
        node = parse_query("((r where A = 'p') union (r where A = 'q'))[B]")
        result = evaluate(node, env, mode=MODE_LEAST)
        assert rows_of(result.certain) == [("k",)]


class TestEnvironmentGuards:
    def test_nothing_anywhere_raises(self):
        env = {
            "r": rel("A", [["a"]]),
            "s": rel("A", [[NOTHING]]),
        }
        with pytest.raises(InconsistentInstanceError, match="NOTHING"):
            Evaluator(env)

    def test_answer_domains_carry_finite_schema_domains(self):
        env = {"r": rel("A B", [["a", "b"]], domains={"A": ["a", "z"]})}
        result = evaluate(parse_query("r"), env)
        assert set(result.certain.domains) == {"A"}

    def test_provenance_points_at_first_occurrence(self):
        x = null()
        env = {"r": rel("A B", [[x, "b"]], domains={"A": ["a", "z"]})}
        result = evaluate(parse_query("r"), env)
        assert rows_of(result.maybe) == [] and len(result.certain) == 1
        record = result.certain.provenance[x.label]
        assert record == {"relation": "r", "attribute": "A"}


class TestGroundAnswers:
    def test_ground_certain_requires_every_grounding(self):
        x = null()
        env = {"r": rel("A B", [["c", x]], domains={"B": ["a", "b"]})}
        certain, possible = ground_answers(
            parse_query("r where B = 'a' or B = 'b'"), env
        )
        # every grounding keeps the row, but the ground *tuple* differs
        # per grounding — so possible has both, certain has neither
        assert possible == {("c", "a"), ("c", "b")}
        assert certain == frozenset()

    def test_ground_certain_for_fully_ground_tuple(self):
        x = null()
        env = {"r": rel("A B", [[x, "k"], ["q", "k"]],
                        domains={"A": ["p", "q"]})}
        certain, possible = ground_answers(parse_query("r[B]"), env)
        assert certain == {("k",)}
        assert possible == {("k",)}
