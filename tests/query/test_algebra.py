"""The static schema checker: output schemes, domains, diagnostic codes."""

import pytest

from repro.core.domain import UNBOUNDED
from repro.nullsem.queries import Eq
from repro.query.algebra import (
    Difference,
    Join,
    Project,
    QueryError,
    Rename,
    Scan,
    Select,
    Union,
    output_schema,
    relation_names,
)

from ..helpers import schema_of


CATALOG = {
    "emp": schema_of(
        "name dept", domains={"dept": ["sales", "eng"]}, name="emp"
    ),
    "mgr": schema_of(
        "dept boss", domains={"dept": ["sales", "ops"]}, name="mgr"
    ),
}


class TestOutputSchemes:
    def test_scan_returns_the_catalog_scheme(self):
        schema = output_schema(Scan("emp"), CATALOG)
        assert schema.attributes == ("name", "dept")
        assert list(schema.domain("dept")) == ["sales", "eng"]
        assert not schema.domain("name").is_finite

    def test_select_keeps_the_scheme(self):
        node = Select(Scan("emp"), Eq("dept", "sales"))
        assert output_schema(node, CATALOG).attributes == ("name", "dept")

    def test_project_reorders_and_restricts(self):
        node = Project(Scan("emp"), ("dept", "name"))
        schema = output_schema(node, CATALOG)
        assert schema.attributes == ("dept", "name")
        assert schema.domain("dept").is_finite

    def test_join_concatenates_left_then_right_extras(self):
        schema = output_schema(Join(Scan("emp"), Scan("mgr")), CATALOG)
        assert schema.attributes == ("name", "dept", "boss")

    def test_join_intersects_shared_domains(self):
        schema = output_schema(Join(Scan("emp"), Scan("mgr")), CATALOG)
        assert list(schema.domain("dept")) == ["sales"]

    def test_join_with_empty_intersection_drops_to_unbounded(self):
        catalog = {
            "a": schema_of("X", domains={"X": ["p"]}, name="a"),
            "b": schema_of("X", domains={"X": ["q"]}, name="b"),
        }
        schema = output_schema(Join(Scan("a"), Scan("b")), catalog)
        assert schema.domain("X") is UNBOUNDED

    def test_rename_carries_domains(self):
        node = Rename(Scan("emp"), (("dept", "unit"),))
        schema = output_schema(node, CATALOG)
        assert schema.attributes == ("name", "unit")
        assert list(schema.domain("unit")) == ["sales", "eng"]

    def test_union_unions_finite_domains(self):
        node = Union(
            Project(Scan("emp"), ("dept",)), Project(Scan("mgr"), ("dept",))
        )
        schema = output_schema(node, CATALOG)
        assert list(schema.domain("dept")) == ["sales", "eng", "ops"]

    def test_difference_keeps_left_domains(self):
        node = Difference(
            Project(Scan("emp"), ("dept",)), Project(Scan("mgr"), ("dept",))
        )
        schema = output_schema(node, CATALOG)
        assert list(schema.domain("dept")) == ["sales", "eng"]


class TestErrors:
    def check(self, node, code):
        with pytest.raises(QueryError) as excinfo:
            output_schema(node, CATALOG)
        assert excinfo.value.code == code
        return str(excinfo.value)

    def test_unknown_relation(self):
        message = self.check(Scan("ghost"), "E_UNKNOWN_RELATION")
        assert "ghost" in message and "emp" in message

    def test_select_unknown_attribute(self):
        self.check(
            Select(Scan("emp"), Eq("salary", 3)), "E_UNKNOWN_ATTR"
        )

    def test_project_unknown_attribute(self):
        self.check(Project(Scan("emp"), ("salary",)), "E_UNKNOWN_ATTR")

    def test_project_duplicate_attribute(self):
        self.check(Project(Scan("emp"), ("name", "name")), "E_ARITY")

    def test_empty_projection(self):
        self.check(Project(Scan("emp"), ()), "E_ARITY")

    def test_rename_unknown_attribute(self):
        self.check(
            Rename(Scan("emp"), (("salary", "pay"),)), "E_UNKNOWN_ATTR"
        )

    def test_rename_collision(self):
        self.check(Rename(Scan("emp"), (("name", "dept"),)), "E_ARITY")

    def test_union_scheme_mismatch(self):
        self.check(Union(Scan("emp"), Scan("mgr")), "E_ARITY")

    def test_difference_scheme_mismatch(self):
        self.check(Difference(Scan("emp"), Scan("mgr")), "E_ARITY")


class TestRelationNames:
    def test_first_occurrence_order(self):
        node = Union(
            Project(Join(Scan("mgr"), Scan("emp")), ("dept",)),
            Project(Scan("mgr"), ("dept",)),
        )
        assert relation_names(node) == ("mgr", "emp")
