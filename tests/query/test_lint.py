"""Golden lint output for query scripts and wire query requests.

The exact line numbers and codes are the contract: editor integrations
and the server's refusal payload both navigate by them.
"""

import pytest

from repro.analysis import lint_query_request, lint_query_script
from repro.cli import main

from ..helpers import schema_of

CATALOG = {
    "emp": schema_of("name dept", name="emp"),
    "mgr": schema_of("dept boss", name="mgr"),
}


SCRIPT = """\
# staffing queries
emp[name]
emp where salary = 30
emp joi mgr
ans = emp join mgr
ans where boss = 'carol'
bad = emp[ghost]
bad[name]
emp[name, name]
"""


class TestQueryScriptGoldens:
    def test_codes_pin_to_exact_lines(self):
        diagnostics = lint_query_script(CATALOG, SCRIPT.splitlines())
        assert [(d.line, d.code) for d in diagnostics] == [
            (3, "E_UNKNOWN_ATTR"),      # salary not in emp
            (4, "E_BAD_REQUEST"),       # 'joi' is a parse error
            (7, "E_UNKNOWN_ATTR"),      # ghost not in emp
            (8, "E_UNKNOWN_RELATION"),  # 'bad' never bound (line 7 failed)
            (9, "E_ARITY"),             # duplicate projection attribute
        ]

    def test_messages_carry_the_op_text(self):
        diagnostics = lint_query_script(CATALOG, SCRIPT.splitlines())
        assert diagnostics[0].op == "emp where salary = 30"
        assert "salary" in diagnostics[0].message

    def test_failed_binding_hint_lists_successful_bindings(self):
        lines = ["ok = emp[name]", "bad = emp[ghost]", "bad[name]"]
        diagnostics = lint_query_script(CATALOG, lines)
        assert [(d.line, d.code) for d in diagnostics] == [
            (2, "E_UNKNOWN_ATTR"),
            (3, "E_UNKNOWN_RELATION"),
        ]
        assert diagnostics[1].hint == "bound here: ok"

    def test_clean_script_has_no_diagnostics(self):
        lines = ["ans = emp join mgr", "ans[name, boss]"]
        assert lint_query_script(CATALOG, lines) == []


class TestQueryRequestGoldens:
    def codes(self, request):
        return [d.code for d in lint_query_request(CATALOG, request)]

    def test_well_formed_request_is_clean(self):
        assert self.codes({"do": "query", "q": "emp[name]"}) == []

    def test_non_object_request(self):
        assert self.codes(["emp"]) == ["E_BAD_REQUEST"]

    def test_missing_query_string(self):
        assert self.codes({"do": "query"}) == ["E_BAD_REQUEST"]
        assert self.codes({"do": "query", "q": "  "}) == ["E_BAD_REQUEST"]

    def test_unknown_mode(self):
        diagnostics = lint_query_request(
            CATALOG, {"do": "query", "q": "emp[name]", "mode": "fuzzy"}
        )
        assert [d.code for d in diagnostics] == ["E_BAD_REQUEST"]
        assert "fuzzy" in diagnostics[0].message

    def test_parse_error(self):
        assert self.codes({"do": "query", "q": "emp where ="}) == [
            "E_BAD_REQUEST"
        ]

    def test_unknown_relation(self):
        assert self.codes({"do": "query", "q": "ghost[name]"}) == [
            "E_UNKNOWN_RELATION"
        ]


class TestLintQueryCli:
    def run(self, tmp_path, capsys, script, *extra):
        path = tmp_path / "queries.txt"
        path.write_text(script)
        code = main(
            ["lint", "--query", "--rel", "emp=name dept",
             "--rel", "mgr=dept boss", "--script", str(path), *extra]
        )
        return code, capsys.readouterr().out

    def test_clean_script_exits_zero(self, tmp_path, capsys):
        code, out = self.run(tmp_path, capsys, "emp join mgr [name, boss]\n")
        assert code == 0
        assert "clean" in out

    def test_errors_exit_two_with_line_numbers(self, tmp_path, capsys):
        code, out = self.run(tmp_path, capsys, "emp[name]\nemp[ghost]\n")
        assert code == 2
        assert "line 2:" in out and "E_UNKNOWN_ATTR" in out

    def test_query_lint_needs_a_catalog(self, capsys, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("emp[name]\n")
        code = main(["lint", "--query", "--script", str(path)])
        assert code == 2

    def test_op_lint_still_requires_fds(self, capsys):
        code = main(["lint", "--attrs", "A B"])
        assert code == 2
