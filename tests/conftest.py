"""Shared pytest configuration: Hypothesis profiles for CI vs local runs.

The property suites lean on per-test ``@settings(...)`` for example counts
and deadlines; what a profile adds is the *environment* discipline:

* ``ci`` — loaded when ``CI`` is set (GitHub Actions exports it).
  ``derandomize=True`` draws every example from Hypothesis's fixed seed
  pool, so a red CI run is reproducible locally by exporting ``CI=1`` —
  no flaky "passed on re-run" property failures; ``deadline=None`` plus a
  suppressed ``too_slow`` health check keep slow shared runners from
  failing tests on timing alone; ``print_blob=True`` prints the
  ``@reproduce_failure`` blob for any counterexample so the failing draw
  can be replayed verbatim.
* ``dev`` (default) — Hypothesis defaults except the deadline, which is
  disabled for parity with CI: a property that only fails under a
  deadline is a timing artifact, not a finding.

Per-test ``@settings`` decorators override individual fields; everything
they leave unset falls back to the loaded profile.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile("ci" if os.environ.get("CI") else "dev")
