"""Differential suite for shared-LHS batched TEST-FDs.

The batched variant's contract has two tiers, and the suite pins both on
randomized instances under both conventions:

* against **bucket** — full field identity: same outcome, same witness
  (fd, rows, attribute), and the same strong-convention
  :class:`ConventionError` rejection on null-bearing left-hand sides.
  Bucket's observable behavior depends on its FD-major iteration order,
  so this is the strictest oracle available.
* against **pairwise** and **sort-merge** — outcome identity only: those
  variants scan in different orders and legitimately surface different
  witnesses for the same violated set, so the cross-variant check is the
  verdict plus the *semantic validity* of whatever witness batched chose
  (the named pair really agrees on X and conflicts on the named Y
  attribute under the convention).

The FD pool is deliberately heavy on shared left-hand sides — the whole
point of the variant is that ``A -> B, A -> C, A -> B C`` collapse to one
grouping — and instances carry shared nulls so NEC classes participate in
the comparisons.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConventionError
from repro.testfd import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    check_fds,
    check_fds_batched,
    check_fds_bucket,
    check_fds_pairwise,
    check_fds_sortmerge,
    x_equal,
    y_unequal,
)
from repro.testfd.conventions import class_function

from ..helpers import rel
from ..strategies import SHARED_LHS_FD_POOL, fd_sets, instances

_CONVENTIONS = (CONVENTION_WEAK, CONVENTION_STRONG)


def _instances(max_rows=6):
    return instances(
        attributes="A B C", max_rows=max_rows, shared_nulls=2,
        allow_nothing=False,
    )


def _fd_lists():
    return fd_sets(pool=SHARED_LHS_FD_POOL, max_size=5)


def _outcome_or_rejection(variant, instance, fds, convention):
    try:
        return variant(instance, fds, convention), False
    except ConventionError:
        return None, True


def assert_witness_valid(instance, convention, witness):
    """The reported pair must actually violate the reported FD."""
    class_of = class_function(None)
    first = instance.rows[witness.first_row]
    second = instance.rows[witness.second_row]
    assert witness.attribute in witness.fd.rhs
    for attr in witness.fd.lhs:
        assert x_equal(convention, first[attr], second[attr], class_of)
    assert y_unequal(
        convention, first[witness.attribute], second[witness.attribute], class_of
    )


# ---------------------------------------------------------------------------
# randomized differential properties
# ---------------------------------------------------------------------------


@given(_instances(), _fd_lists(), st.sampled_from(_CONVENTIONS))
@settings(max_examples=250, deadline=None)
def test_batched_field_identical_to_bucket(instance, fds, convention):
    bucket, bucket_rejected = _outcome_or_rejection(
        check_fds_bucket, instance, fds, convention
    )
    batched, batched_rejected = _outcome_or_rejection(
        check_fds_batched, instance, fds, convention
    )
    assert batched_rejected == bucket_rejected
    if bucket_rejected:
        assert convention == CONVENTION_STRONG
        return
    assert batched.satisfied == bucket.satisfied
    assert batched.witness == bucket.witness


@given(_instances(), _fd_lists(), st.sampled_from(_CONVENTIONS))
@settings(max_examples=250, deadline=None)
def test_batched_outcome_matches_pairwise_and_sortmerge(instance, fds, convention):
    reference = check_fds_pairwise(instance, fds, convention)
    try:
        outcome = check_fds_batched(instance, fds, convention)
    except ConventionError:
        # batched refuses exactly where sort-merge does: strong convention,
        # null-bearing LHS — where pairwise is the designated fallback
        assert convention == CONVENTION_STRONG
        with pytest.raises(ConventionError):
            check_fds_sortmerge(instance, fds, convention)
        return
    assert outcome.satisfied == reference.satisfied
    try:
        sortmerge = check_fds_sortmerge(instance, fds, convention)
    except ConventionError:
        return
    assert outcome.satisfied == sortmerge.satisfied


@given(_instances(), _fd_lists(), st.sampled_from(_CONVENTIONS))
@settings(max_examples=250, deadline=None)
def test_batched_witness_is_semantically_valid(instance, fds, convention):
    try:
        outcome = check_fds_batched(instance, fds, convention)
    except ConventionError:
        return
    if outcome.satisfied:
        assert outcome.witness is None
    else:
        assert_witness_valid(instance, convention, outcome.witness)


@given(_instances(), _fd_lists())
@settings(max_examples=100, deadline=None)
def test_check_fds_method_batched_dispatch(instance, fds):
    direct = check_fds_batched(instance, fds, CONVENTION_WEAK)
    via_dispatch = check_fds(instance, fds, CONVENTION_WEAK, method="batched")
    assert via_dispatch == direct


# ---------------------------------------------------------------------------
# directed: grouping order, rejection paths
# ---------------------------------------------------------------------------


class TestSharedLhsGrouping:
    def test_first_violated_fd_in_input_order_wins(self):
        # both A -> B and A -> C are violated; bucket answers with the
        # first FD in input order, and batched must too — even though its
        # single scan discovers the A -> C conflict at the same row
        r = rel("A B C", [("a", "b1", "c1"), ("a", "b2", "c2")])
        outcome = check_fds_batched(r, ["A -> C", "A -> B"])
        assert not outcome.satisfied
        assert outcome.witness.fd.rhs == ("C",)
        assert outcome.witness == check_fds_bucket(r, ["A -> C", "A -> B"]).witness

    def test_later_group_member_still_answered(self):
        # A -> B holds, A -> C is violated: the group scan must have kept
        # the verdict for the second member
        r = rel("A B C", [("a", "b", "c1"), ("a", "b", "c2")])
        outcome = check_fds_batched(r, ["A -> B", "A -> C"])
        assert not outcome.satisfied
        assert outcome.witness.fd.rhs == ("C",)
        assert (outcome.witness.first_row, outcome.witness.second_row) == (0, 1)

    def test_lhs_order_does_not_split_a_group(self):
        # "A B -> C" and "B A -> C" are the same left-hand side as a set
        r = rel("A B C", [("a", "b", "c1"), ("a", "b", "c2")])
        outcome = check_fds_batched(r, ["A B -> C", "B A -> C"])
        assert not outcome.satisfied
        assert outcome.witness.fd.lhs in (("A", "B"), ("B", "A"))

    def test_trivial_fds_skipped(self):
        r = rel("A B", [("-", "-"), ("-", "-")])
        assert check_fds_batched(r, ["A B -> A"], CONVENTION_STRONG).satisfied


class TestRejectionPaths:
    def test_strong_rejects_null_bearing_lhs(self):
        r = rel("A B", [("-", 1), ("a", 2)])
        with pytest.raises(ConventionError):
            check_fds_batched(r, ["A -> B"], CONVENTION_STRONG)

    def test_weak_accepts_null_bearing_lhs(self):
        r = rel("A B", [("-", 1), ("a", 2)])
        assert check_fds_batched(r, ["A -> B"], CONVENTION_WEAK).satisfied

    def test_rejection_loses_to_earlier_violation(self):
        # bucket checks FDs in order: a violation of the first FD returns
        # before the second FD's null-bearing LHS is ever inspected
        r = rel("A B C", [("a", 1, "-"), ("a", 2, "c")])
        fds = ["A -> B", "C -> B"]
        outcome = check_fds_batched(r, fds, CONVENTION_STRONG)
        assert not outcome.satisfied
        assert outcome.witness == check_fds_bucket(r, fds, CONVENTION_STRONG).witness

    def test_rejection_beats_later_violation(self):
        # ...but when the null-bearing LHS comes first, the raise wins
        r = rel("A B C", [("a", 1, "-"), ("a", 2, "c")])
        fds = ["C -> B", "A -> B"]
        with pytest.raises(ConventionError):
            check_fds_batched(r, fds, CONVENTION_STRONG)
        with pytest.raises(ConventionError):
            check_fds_bucket(r, fds, CONVENTION_STRONG)


class TestAutoRouting:
    """``check_fds(method="auto")`` is batching-aware (ROADMAP item)."""

    def test_auto_routes_shared_lhs_to_batched(self):
        r = rel("A B C", [("a", "b1", "c"), ("a", "b2", "c")])
        fds = ["A -> B", "A -> C"]
        auto = check_fds(r, fds, CONVENTION_WEAK, method="auto")
        assert auto == check_fds_batched(r, fds, CONVENTION_WEAK)

    def test_auto_without_shared_lhs_keeps_sortmerge(self):
        r = rel("A B C", [("a", "b", "c1"), ("a", "b", "c2")])
        fds = ["A -> B", "B -> C"]
        auto = check_fds(r, fds, CONVENTION_WEAK, method="auto")
        assert auto == check_fds_sortmerge(r, fds, CONVENTION_WEAK)

    def test_auto_strong_with_lhs_nulls_never_raises(self):
        # batched would raise ConventionError on the null-bearing LHS;
        # auto must detect that and keep the pairwise fallback path
        r = rel("A B C", [("-", "b1", "c"), ("a", "b2", "c")])
        fds = ["A -> B", "A -> C"]
        auto = check_fds(r, fds, CONVENTION_STRONG, method="auto")
        assert auto.satisfied == check_fds_pairwise(
            r, fds, CONVENTION_STRONG
        ).satisfied

    def test_auto_strong_null_free_lhs_routes_to_batched(self):
        r = rel("A B C", [("a", "b1", "-"), ("a", "b2", "c")])
        fds = ["A -> B", "A -> C"]
        auto = check_fds(r, fds, CONVENTION_STRONG, method="auto")
        assert auto == check_fds_batched(r, fds, CONVENTION_STRONG)

    @given(_instances(), _fd_lists(), st.sampled_from(_CONVENTIONS))
    @settings(max_examples=120, deadline=None)
    def test_auto_outcome_matches_pairwise_everywhere(
        self, instance, fds, convention
    ):
        """Whatever route auto picks: same verdict, honest witness, and
        never a ConventionError (the routing predicate must not race the
        grouping variants' rejection)."""
        auto = check_fds(instance, fds, convention, method="auto")
        reference = check_fds_pairwise(instance, fds, convention)
        assert auto.satisfied == reference.satisfied
        if not auto.satisfied:
            assert_witness_valid(instance, convention, auto.witness)
