"""Property: every *no* answer carries an honest witness.

A TEST-FDs rejection must point at a pair of rows that genuinely violates
under the convention's comparisons — and, for the weak convention on
minimally incomplete instances, at a pair that semantically blocks every
completion.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import MODE_BASIC, minimally_incomplete
from repro.core.relation import Relation
from repro.core.values import null
from repro.errors import ConventionError
from repro.testfd import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    check_fds_bucket,
    check_fds_pairwise,
    check_fds_sortmerge,
    class_function,
    x_equal,
    y_unequal,
)

from ..helpers import schema_of

_cell = st.sampled_from(["v0", "v1", None])
_fd_pool = ["A -> B", "B -> C", "A B -> C", "C -> A"]


@st.composite
def cases(draw):
    n_rows = draw(st.integers(min_value=1, max_value=6))
    rows = [
        [draw(_cell) for _ in range(3)] for _ in range(n_rows)
    ]
    fds = draw(
        st.lists(st.sampled_from(_fd_pool), min_size=1, max_size=3, unique=True)
    )
    schema = schema_of("A B C")
    relation = Relation(
        schema, [[null() if v is None else v for v in row] for row in rows]
    )
    return relation, fds


def _witness_is_honest(relation, outcome, convention):
    if outcome.satisfied:
        return True
    witness = outcome.witness
    class_of = class_function(None)
    first = relation[witness.first_row]
    second = relation[witness.second_row]
    fd = witness.fd
    x_match = all(
        x_equal(convention, first[a], second[a], class_of) for a in fd.lhs
    )
    y_conflict = y_unequal(
        convention,
        first[witness.attribute],
        second[witness.attribute],
        class_of,
    )
    return x_match and y_conflict


@given(cases(), st.sampled_from([CONVENTION_STRONG, CONVENTION_WEAK]))
@settings(max_examples=150, deadline=None)
def test_all_variants_produce_honest_witnesses(case, convention):
    relation, fds = case
    for variant in (check_fds_pairwise, check_fds_sortmerge, check_fds_bucket):
        try:
            outcome = variant(relation, fds, convention)
        except ConventionError:
            continue
        assert _witness_is_honest(relation, outcome, convention)


@given(cases())
@settings(max_examples=100, deadline=None)
def test_weak_witness_on_minimal_instance_is_constant_conflict(case):
    """On a chased instance, a weak-convention witness pins two constants."""
    relation, fds = case
    minimal = minimally_incomplete(relation, fds, mode=MODE_BASIC).relation
    outcome = check_fds_sortmerge(minimal, fds, CONVENTION_WEAK)
    if outcome.satisfied:
        return
    witness = outcome.witness
    from repro.core.values import is_constant

    first = minimal[witness.first_row][witness.attribute]
    second = minimal[witness.second_row][witness.attribute]
    assert is_constant(first) and is_constant(second) and first != second
