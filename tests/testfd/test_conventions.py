"""Tests for the strong/weak null comparison conventions."""

import pytest

from repro.core.values import NOTHING, null
from repro.errors import InconsistentInstanceError
from repro.testfd.conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    x_equal,
    y_unequal,
)

ID = class_function(None)


class TestStrongConvention:
    """Theorem 2's convention: null-involving comparisons are positive."""

    def test_equality_with_null_positive(self):
        n = null()
        assert x_equal(CONVENTION_STRONG, n, "a", ID)
        assert x_equal(CONVENTION_STRONG, "a", n, ID)
        assert x_equal(CONVENTION_STRONG, n, null(), ID)

    def test_equality_constants_ordinary(self):
        assert x_equal(CONVENTION_STRONG, "a", "a", ID)
        assert not x_equal(CONVENTION_STRONG, "a", "b", ID)

    def test_inequality_with_null_positive(self):
        n = null()
        assert y_unequal(CONVENTION_STRONG, n, "a", ID)
        assert y_unequal(CONVENTION_STRONG, "a", n, ID)

    def test_inequality_same_class_exception(self):
        # "... unless both values compared are null and they belong to the
        #  same equivalence class"
        n, m = null(), null()
        assert y_unequal(CONVENTION_STRONG, n, m, ID)
        assert not y_unequal(CONVENTION_STRONG, n, n, ID)
        classes = class_function({n: "k", m: "k"})
        assert not y_unequal(CONVENTION_STRONG, n, m, classes)

    def test_inequality_constants_ordinary(self):
        assert y_unequal(CONVENTION_STRONG, "a", "b", ID)
        assert not y_unequal(CONVENTION_STRONG, "a", "a", ID)


class TestWeakConvention:
    """Theorem 3's convention: null-involving comparisons are negative."""

    def test_equality_with_null_negative(self):
        n = null()
        assert not x_equal(CONVENTION_WEAK, n, "a", ID)
        assert not x_equal(CONVENTION_WEAK, n, null(), ID)

    def test_equality_same_class_exception(self):
        n, m = null(), null()
        assert x_equal(CONVENTION_WEAK, n, n, ID)
        classes = class_function({n: "k", m: "k"})
        assert x_equal(CONVENTION_WEAK, n, m, classes)

    def test_inequality_with_null_negative(self):
        n = null()
        assert not y_unequal(CONVENTION_WEAK, n, "a", ID)
        assert not y_unequal(CONVENTION_WEAK, n, null(), ID)
        assert not y_unequal(CONVENTION_WEAK, n, n, ID)

    def test_constants_ordinary(self):
        assert x_equal(CONVENTION_WEAK, 3, 3, ID)
        assert y_unequal(CONVENTION_WEAK, 3, 4, ID)


class TestConventionStructure:
    def test_comparisons_are_not_complements(self):
        """The same pair can be neither equal nor unequal."""
        n = null()
        # weak: null vs constant -> not equal AND not unequal
        assert not x_equal(CONVENTION_WEAK, n, "a", ID)
        assert not y_unequal(CONVENTION_WEAK, n, "a", ID)
        # strong: null vs constant -> equal AND unequal
        assert x_equal(CONVENTION_STRONG, n, "a", ID)
        assert y_unequal(CONVENTION_STRONG, n, "a", ID)

    def test_nothing_rejected(self):
        with pytest.raises(InconsistentInstanceError):
            x_equal(CONVENTION_WEAK, NOTHING, "a", ID)
        with pytest.raises(InconsistentInstanceError):
            y_unequal(CONVENTION_STRONG, "a", NOTHING, ID)

    def test_unknown_convention(self):
        with pytest.raises(ValueError):
            x_equal("median", "a", "a", ID)
        with pytest.raises(ValueError):
            y_unequal("median", "a", "a", ID)
