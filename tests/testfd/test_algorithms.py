"""Tests for the TEST-FDs variants: agreement across variants and the
Theorem 2 / Theorem 3 semantics."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase import MODE_BASIC, minimally_incomplete
from repro.core.relation import Relation
from repro.core.satisfaction import (
    strongly_satisfied,
    weakly_satisfied,
)
from repro.core.values import null
from repro.errors import ConventionError, NotMinimallyIncompleteError, ReproError
from repro.testfd import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    check_fds,
    check_fds_batched,
    check_fds_bucket,
    check_fds_pairwise,
    check_fds_sortmerge,
    check_single_fd_presorted,
)

from ..helpers import rel, schema_of
from ..strategies import TESTFD_FD_POOL, fd_sets, instances


class TestBasicAnswers:
    def test_clean_instance_passes_both_conventions(self):
        r = rel("A B", [("a", 1), ("b", 2)])
        for convention in (CONVENTION_STRONG, CONVENTION_WEAK):
            assert check_fds(r, ["A -> B"], convention).satisfied

    def test_classical_violation_fails_both(self):
        r = rel("A B", [("a", 1), ("a", 2)])
        for convention in (CONVENTION_STRONG, CONVENTION_WEAK):
            outcome = check_fds(r, ["A -> B"], convention)
            assert not outcome.satisfied
            assert outcome.witness is not None
            assert outcome.witness.attribute == "B"

    def test_null_in_y_fails_strong_passes_weak(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        assert not check_fds(r, ["A -> B"], CONVENTION_STRONG).satisfied
        assert check_fds(r, ["A -> B"], CONVENTION_WEAK, ensure_minimal=True).satisfied

    def test_trivial_fds_never_fail(self):
        r = rel("A B", [("-", "-"), ("-", "-")])
        assert check_fds(r, ["A B -> A"], CONVENTION_STRONG, method="pairwise").satisfied

    def test_witness_identifies_rows(self):
        r = rel("A B", [("x", 1), ("y", 2), ("x", 3)])
        outcome = check_fds(r, ["A -> B"], CONVENTION_WEAK)
        assert (outcome.witness.first_row, outcome.witness.second_row) == (0, 2)


class TestStrongConventionRouting:
    def test_sortmerge_refuses_lhs_nulls(self):
        r = rel("A B", [("-", 1), ("a", 2)])
        with pytest.raises(ConventionError):
            check_fds_sortmerge(r, ["A -> B"], CONVENTION_STRONG)
        with pytest.raises(ConventionError):
            check_fds_bucket(r, ["A -> B"], CONVENTION_STRONG)

    def test_auto_falls_back_to_pairwise(self):
        r = rel("A B", [("-", 1), ("a", 2)])
        outcome = check_fds(r, ["A -> B"], CONVENTION_STRONG, method="auto")
        # null in X matches 'a', Y differs -> not strongly satisfied
        assert not outcome.satisfied

    def test_sortmerge_strong_works_when_lhs_total(self):
        r = rel("A B", [("a", "-"), ("b", 1)])
        assert check_fds_sortmerge(r, ["A -> B"], CONVENTION_STRONG).satisfied

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            check_fds(rel("A", [("a",)]), [], method="quantum")


class TestTheorem3Preconditions:
    def test_verify_minimal_raises_on_non_minimal(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        with pytest.raises(NotMinimallyIncompleteError):
            check_fds(r, ["A -> B"], CONVENTION_WEAK, verify_minimal=True)

    def test_ensure_minimal_chases_first(self):
        # non-minimal instance whose chase reveals the inconsistency:
        # section 6's example
        r = rel("A B C", [("a", "-", "c1"), ("a", "-", "c2")])
        fds = ["A -> B", "B -> C"]
        # without chasing, the weak test sees no violation (nulls differ)
        assert check_fds(r, fds, CONVENTION_WEAK).satisfied
        # with the NEC from the chase, it correctly answers no
        assert not check_fds(r, fds, CONVENTION_WEAK, ensure_minimal=True).satisfied
        # matching the brute-force semantics
        assert not weakly_satisfied(fds, r)

    def test_nec_via_shared_nulls_detected(self):
        n = null()
        schema = schema_of("A B C")
        r = Relation(schema, [("a", n, "c1"), ("a2", n, "c2")])
        assert not check_fds(r, ["B -> C"], CONVENTION_WEAK).satisfied

    def test_explicit_null_classes_parameter(self):
        n, m = null(), null()
        schema = schema_of("B C")
        r = Relation(schema, [(n, "c1"), (m, "c2")])
        assert check_fds(r, ["B -> C"], CONVENTION_WEAK).satisfied
        outcome = check_fds(
            r, ["B -> C"], CONVENTION_WEAK, null_classes={n: "k", m: "k"}
        )
        assert not outcome.satisfied


class TestPresortedLinear:
    def test_accepts_sorted(self):
        r = rel("A B", [("a", 1), ("a", 1), ("b", 2)])
        assert check_single_fd_presorted(r, "A -> B").satisfied

    def test_detects_violation(self):
        r = rel("A B", [("a", 1), ("a", 2)])
        assert not check_single_fd_presorted(r, "A -> B").satisfied

    def test_rejects_unsorted(self):
        r = rel("A B", [("b", 1), ("a", 2)])
        with pytest.raises(ReproError):
            check_single_fd_presorted(r, "A -> B")

    def test_same_class_nulls_must_be_adjacent(self):
        n = null()
        schema = schema_of("A B")
        r = Relation(schema, [(n, 1), ("z", 2), (n, 3)])
        with pytest.raises(ReproError):
            check_single_fd_presorted(r, "A -> B")


# ---------------------------------------------------------------------------
# property-based: variant agreement + Theorems 2 and 3
# ---------------------------------------------------------------------------

def _instances(max_rows=5):
    """The shared generator, configured for the TEST-FDs oracles: three
    columns and fresh nulls only (no NOTHING — TEST-FDs refuses it; no
    shared nulls — the completion oracles enumerate independently)."""
    return instances(
        attributes="A B C",
        max_rows=max_rows,
        shared_nulls=0,
        allow_nothing=False,
    )


def _fd_lists():
    return fd_sets(pool=TESTFD_FD_POOL, max_size=3)


@given(
    _instances(),
    _fd_lists(),
    st.sampled_from([CONVENTION_STRONG, CONVENTION_WEAK]),
)
@settings(max_examples=150, deadline=None)
def test_variants_agree(instance, fds, convention):
    """pairwise == sortmerge == bucket == batched (wherever defined)."""
    reference = check_fds_pairwise(instance, fds, convention)
    for variant in (check_fds_sortmerge, check_fds_bucket, check_fds_batched):
        try:
            outcome = variant(instance, fds, convention)
        except ConventionError:
            assert convention == CONVENTION_STRONG
            continue
        assert outcome.satisfied == reference.satisfied


@given(_instances(max_rows=4), _fd_lists())
@settings(max_examples=100, deadline=None)
def test_theorem2_strong_convention_decides_strong_satisfiability(instance, fds):
    assume(instance.completion_count() <= 20_000)
    outcome = check_fds(instance, fds, CONVENTION_STRONG)
    assert outcome.satisfied == strongly_satisfied(fds, instance)


@given(_instances(max_rows=4), _fd_lists())
@settings(max_examples=100, deadline=None)
def test_theorem3_weak_convention_on_minimal_instances(instance, fds):
    """After the basic chase, the weak-convention test decides weak
    satisfiability (= existence of a satisfying completion)."""
    assume(instance.completion_count() <= 20_000)
    outcome = check_fds(instance, fds, CONVENTION_WEAK, ensure_minimal=True)
    assert outcome.satisfied == weakly_satisfied(fds, instance)


@given(_instances(), _fd_lists())
@settings(max_examples=80, deadline=None)
def test_single_fd_presorted_agrees_after_sorting(instance, fds):
    from repro.core.values import constant_key, is_null

    fd = fds[0]
    from repro.core.fd import as_fd

    lhs = as_fd(fd).lhs
    ordinals = {}

    def key(row):
        out = []
        for attr in lhs:
            v = row[attr]
            if is_null(v):
                out.append((1, ordinals.setdefault(id(v), len(ordinals))))
            else:
                out.append((0,) + constant_key(v))
        return tuple(out)

    ordered = Relation(instance.schema, sorted(instance.rows, key=key))
    expected = check_fds_pairwise(ordered, [fd], CONVENTION_WEAK)
    assert (
        check_single_fd_presorted(ordered, fd).satisfied == expected.satisfied
    )