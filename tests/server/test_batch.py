"""The ``batch`` verb: lint-gated contiguous mutation bundles.

The acceptance property this file pins: a batch with any error-severity
lint finding is refused *before* any WAL byte is written — no
group-commit slot, no journal append, no session mutation.
"""

import asyncio

import pytest

from repro.server.app import ReproServer


def run(coro):
    return asyncio.run(coro)


async def _server(tmp_path, **kwargs):
    server = ReproServer(tmp_path / "db", create=True, sync="flush", **kwargs)
    await server.start()
    await server.handle(
        {
            "id": 0,
            "do": "create",
            "name": "emp",
            "attrs": "name dept mgr",
            "fds": "dept -> mgr",
        }
    )
    return server


class TestAdmittedBatches:
    def test_batch_applies_contiguously_and_acks_each_op(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            response = await server.handle(
                {
                    "id": 1,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [
                        {"do": "insert", "row": ["ada", "eng", {"n": None}]},
                        {"do": "insert", "row": ["bob", "eng", "turing"]},
                        {"do": "fill", "index": 0, "attr": "mgr", "value": "turing"},
                    ],
                }
            )
            assert response["ok"] is True
            outcomes = response["results"]
            assert [o["ok"] for o in outcomes] == [True, True, True]
            assert outcomes[0]["index"] == 0 and outcomes[1]["index"] == 1
            assert outcomes[2]["seq"] == 3
            rows = await server.handle({"id": 2, "do": "rows", "rel": "emp"})
            assert len(rows["rows"]) == 2
            await server.stop()

        run(go())

    def test_batch_is_durable_when_acked(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            await server.handle(
                {
                    "id": 1,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [{"do": "insert", "row": ["ada", "eng", "knuth"]}],
                }
            )
            relation = server.db.relation("emp")
            # flushed per record: the journal already holds the batch
            assert relation.wal.path.stat().st_size > 0
            assert relation.seq == 1
            await server.stop()

        run(go())

    def test_warnings_ride_along_without_refusing(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            response = await server.handle(
                {
                    "id": 1,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [
                        {"do": "insert", "row": ["ada", "eng", "turing"]},
                        {"do": "insert", "row": ["bob", "eng", "hopper"]},
                    ],
                }
            )
            assert response["ok"] is True
            assert [d["code"] for d in response["diagnostics"]] == [
                "E_FD_CONFLICT"
            ]
            assert response["diagnostics"][0]["severity"] == "warning"
            await server.stop()

        run(go())


class TestRefusedBatches:
    def test_lint_errors_refuse_with_diagnostics_payload(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            response = await server.handle(
                {
                    "id": 1,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [
                        {"do": "insert", "row": ["ada", "eng", "turing"]},
                        {"do": "update", "index": 9, "set": {"dept": "hr"}},
                        {"do": "update", "index": 0, "set": {"salary": "1"}},
                    ],
                }
            )
            assert response["ok"] is False
            assert "refused by lint" in response["error"]
            assert [(d["code"], d["line"]) for d in response["diagnostics"]] == [
                ("E_BAD_INDEX", 1),
                ("E_UNKNOWN_ATTR", 2),
            ]
            await server.stop()

        run(go())

    def test_refusal_happens_before_any_wal_append(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            await server.handle(
                {
                    "id": 1,
                    "do": "insert",
                    "rel": "emp",
                    "row": ["ada", "eng", "knuth"],
                }
            )
            relation = server.db.relation("emp")
            wal_before = relation.wal.path.read_bytes()
            seq_before = relation.seq
            ops_before = server._writers["emp"].ops_applied
            response = await server.handle(
                {
                    "id": 2,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [
                        # op 0 alone would be applicable — the doomed op 1
                        # must keep even op 0 out of the journal
                        {"do": "insert", "row": ["bob", "ops", "hopper"]},
                        {"do": "delete", "index": 77},
                    ],
                }
            )
            assert response["ok"] is False
            assert relation.wal.path.read_bytes() == wal_before
            assert relation.seq == seq_before
            assert len(relation.session.rows) == 1
            assert server._writers["emp"].ops_applied == ops_before
            await server.stop()

        run(go())

    def test_malformed_batch_envelope(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            for ops in (None, [], "insert"):
                response = await server.handle(
                    {"id": 1, "do": "batch", "rel": "emp", "ops": ops}
                )
                assert response["ok"] is False
                assert "ops" in response["error"]
            await server.stop()

        run(go())

    def test_batch_against_outstanding_snapshot_depth(self, tmp_path):
        async def go():
            server = await _server(tmp_path)
            await server.handle({"id": 1, "do": "snapshot", "rel": "emp"})
            ok = await server.handle(
                {
                    "id": 2,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [{"do": "rollback"}],
                }
            )
            assert ok["ok"] is True
            refused = await server.handle(
                {
                    "id": 3,
                    "do": "batch",
                    "rel": "emp",
                    "ops": [{"do": "rollback"}],
                }
            )
            assert refused["ok"] is False
            assert refused["diagnostics"][0]["code"] == "E_ROLLBACK_UNDERFLOW"
            await server.stop()

        run(go())


class TestBatchOverTcp:
    def test_wire_round_trip(self, tmp_path):
        async def go():
            from repro.server.protocol import Client, ServerError

            server = await _server(tmp_path)
            host, port = await server.listen()
            client = await Client.connect(host, port)
            response = await client.call(
                "batch",
                rel="emp",
                ops=[
                    {"do": "insert", "row": ["ada", "eng", "knuth"]},
                    {"do": "insert", "row": ["bob", "ops", "hopper"]},
                ],
            )
            assert [o["ok"] for o in response["results"]] == [True, True]
            with pytest.raises(ServerError):
                await client.call(
                    "batch",
                    rel="emp",
                    ops=[{"do": "delete", "index": 99}],
                )
            await client.close()
            await server.stop()

        run(go())
