"""Concurrency differential harness: the served relation vs a serial oracle.

Randomized multi-client op schedules run against an in-process
:class:`~repro.server.ReproServer`; every *acknowledged* mutation is
recorded with the ``seq`` the server assigned it.  The acked stream,
replayed **serially** through a plain single-caller :class:`Database`
using the same wire payloads and the same decode path, must produce a
field-identical final state — pinning that the writer task imposes one
serial order and that group commit, queueing and interleaving add no
observable behavior beyond that order.

Snapshot reads are differentially checked too: every read response
carries ``as_of`` (the cut's seq), and its rows must equal the serial
replay's state after exactly that prefix — i.e. every concurrent read
equals *some serial prefix* of the acked op stream.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.db import Database
from repro.server import ReproServer
from repro.server import protocol

from ..strategies import assert_recovered_identical

ATTRS = "A B C"
FDS = "A -> B; B -> C"
SEEDS = (101, 202, 303)


def normalize(rows):
    """Wire rows with nulls renamed by first occurrence (row-major).

    The server scope and the replay scope may assign different canonical
    null ids (reads interleave differently with encodes), so comparisons
    go through this order-of-appearance normal form — same idea as
    ``tests.strategies.null_alignment``, at the wire level.
    """
    seen = {}
    out = []
    for row in rows:
        cells = []
        for token in row:
            if isinstance(token, dict) and "n" in token:
                name = token["n"]
                if name not in seen:
                    seen[name] = f"#{len(seen)}"
                cells.append({"n": seen[name]})
            else:
                cells.append(token)
        out.append(cells)
    return out


def random_op(rng: random.Random, client: int, step: int) -> dict:
    """One weighted-random mutation request (no id/rel; caller adds)."""
    roll = rng.random()
    if roll < 0.45:
        cells = []
        for col in range(3):
            pick = rng.random()
            if pick < 0.5:
                cells.append(f"v{rng.randrange(4)}")
            elif pick < 0.75:
                cells.append({"n": None})  # fresh, server-named
            else:
                cells.append({"n": f"shared{rng.randrange(3)}"})
        return {"do": "insert", "row": cells}
    if roll < 0.55:
        return {"do": "delete", "index": rng.randrange(12)}
    if roll < 0.65:
        return {
            "do": "update",
            "index": rng.randrange(12),
            "set": {rng.choice(["B", "C"]): f"v{rng.randrange(4)}"},
        }
    if roll < 0.72:
        return {
            "do": "fill",
            "index": rng.randrange(12),
            "attr": rng.choice(["A", "B", "C"]),
            "value": f"v{rng.randrange(4)}",
        }
    if roll < 0.79:
        return {
            "do": "replace",
            "index": rng.randrange(12),
            "row": [f"v{rng.randrange(4)}", {"n": None}, f"v{rng.randrange(4)}"],
        }
    if roll < 0.86:
        return {"do": "adopt"}
    if roll < 0.93:
        return {"do": "snapshot"}
    return {"do": "rollback"}


async def run_schedule(tmp_path, seed: int, n_clients: int = 4, n_ops: int = 22):
    """Drive one randomized schedule; return (acked, reads, db_path)."""
    rng = random.Random(seed)
    server = ReproServer(tmp_path / "served", sync="flush", create=True)
    await server.start()
    await server.handle({"do": "create", "name": "r", "attrs": ATTRS, "fds": FDS})

    acked = []  # (seq, request) for every ok mutation
    reads = []  # (as_of, normalized rows, has_nothing)

    async def client(c: int) -> None:
        crng = random.Random(seed * 1000 + c)
        for step in range(n_ops):
            if crng.random() < 0.2:
                response = await server.handle(
                    {"id": f"{c}r{step}", "do": "result", "rel": "r"}
                )
                assert response["ok"], response
                reads.append(
                    (
                        response["as_of"],
                        normalize(response["rows"]),
                        response["has_nothing"],
                    )
                )
                continue
            request = random_op(crng, c, step)
            request.update(id=f"{c}m{step}", rel="r")
            response = await server.handle(request)
            if response["ok"]:
                acked.append((response["seq"], request))
            if step % 5 == c % 5:
                await asyncio.sleep(0)  # shake up interleavings

    await asyncio.gather(*(client(c) for c in range(n_clients)))
    final = await server.handle({"id": "fin", "do": "result", "rel": "r"})
    assert final["ok"]
    reads.append((final["as_of"], normalize(final["rows"]), final["has_nothing"]))
    await server.stop()
    return acked, reads


def replay_serially(tmp_path, acked, wanted_prefixes):
    """Apply the acked stream in seq order through a plain Database.

    Returns the replay relation (left open; caller closes) plus the
    normalized result rows captured after each wanted prefix seq.
    """
    db = Database.open(tmp_path / "replay", sync="none", create=True)
    relation = db.create("r", ATTRS, [f for f in FDS.split(";")])
    prefix_states = {}

    def capture(seq: int) -> None:
        if seq in wanted_prefixes:
            result = relation.result()
            rows = [
                [relation.encode_value(v) for v in row.values]
                for row in result.relation.rows
            ]
            prefix_states[seq] = (normalize(rows), relation.has_nothing)

    capture(0)
    for seq, request in sorted(acked, key=lambda pair: pair[0]):
        apply_fn = protocol.mutation(relation, request["do"], request)
        fields = apply_fn()
        assert fields["seq"] == seq, (
            f"serial replay disagrees on seq: applied as {fields['seq']}, "
            f"server acked {seq} for {request}"
        )
        capture(seq)
    return db, relation, prefix_states


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_schedule_matches_serial_replay(tmp_path, seed):
    acked, reads = asyncio.run(run_schedule(tmp_path, seed))
    assert acked, "schedule produced no acknowledged ops"

    # acked seqs are a contiguous 1..N: one writer, one journal order
    seqs = sorted(seq for seq, _ in acked)
    assert seqs == list(range(1, len(seqs) + 1))

    wanted = {as_of for as_of, _, _ in reads} | {0}
    db, replayed, prefix_states = replay_serially(tmp_path, acked, wanted)
    try:
        # every snapshot read equals the serial state after exactly its
        # as_of prefix
        for as_of, rows, has_nothing in reads:
            expected_rows, expected_nothing = prefix_states[as_of]
            assert rows == expected_rows, f"read at seq {as_of} diverges"
            assert has_nothing == expected_nothing

        # final state: recover the served directory and compare
        # field-identically against the serial replay
        recovered = Database.open(tmp_path / "served", sync="none", create=False)
        try:
            assert_recovered_identical(recovered["r"], replayed)
            assert recovered["r"].verify()
        finally:
            recovered.close()
    finally:
        db.close()


def test_group_commit_batches_under_concurrency(tmp_path):
    """With a latch window and clients in flight, batches actually form
    (multiple records per append) and every op still acks."""

    async def run():
        server = ReproServer(tmp_path / "db", sync="flush", create=True, window_s=0.005)
        await server.start()
        await server.handle({"do": "create", "name": "r", "attrs": "A B", "fds": "A -> B"})

        async def client(c):
            for i in range(10):
                response = await server.handle(
                    {"id": f"{c}:{i}", "do": "insert", "rel": "r",
                     "row": [f"a{c}", f"b{c}"]}
                )
                assert response["ok"], response

        await asyncio.gather(*(client(c) for c in range(8)))
        stats = await server.handle({"id": "s", "do": "stats", "rel": "r"})
        await server.stop()
        return stats["stats"]

    stats = asyncio.run(run())
    assert stats["batched_records"] == 80
    assert stats["largest_batch"] >= 2, stats
    assert stats["batches"] < 80, "no batching happened at all"


def test_reads_during_write_storm_are_consistent_prefixes(tmp_path):
    """Isolated readers under a write storm: every answer is a prefix of
    the single-writer history (row count == as_of for an insert-only
    stream) and the writer never waits on them."""

    async def run():
        server = ReproServer(tmp_path / "db", sync="flush", create=True)
        await server.start()
        await server.handle({"do": "create", "name": "r", "attrs": "A B", "fds": []})
        observations = []

        async def writer_client():
            for i in range(60):
                response = await server.handle(
                    {"id": f"w{i}", "do": "insert", "rel": "r", "row": [f"a{i}", f"b{i}"]}
                )
                assert response["ok"], response

        async def reader_client(c):
            for i in range(12):
                response = await server.handle(
                    {"id": f"r{c}:{i}", "do": "result", "rel": "r", "isolated": True}
                )
                assert response["ok"], response
                observations.append((response["as_of"], len(response["rows"])))
                await asyncio.sleep(0)

        await asyncio.gather(writer_client(), *(reader_client(c) for c in range(3)))
        await server.stop()
        return observations

    observations = asyncio.run(run())
    assert observations
    for as_of, n_rows in observations:
        # insert-only stream: the state after prefix k has exactly k rows
        assert n_rows == as_of, observations
