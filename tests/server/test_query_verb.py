"""The ``query`` verb vs a serial oracle: every answer is a prefix cut.

Same shape as the mutation differential in
``test_concurrent_property.py``: randomized multi-client schedules mix
mutations on two relations with ``query`` requests; every query answer
carries ``as_of`` (a scalar for one scanned relation, a
``{relation: seq}`` map otherwise).  Replaying the acked mutation
streams serially and evaluating the same query with the library
evaluator over the per-relation prefix states must reproduce the
certain and maybe row lists exactly — i.e. every concurrent query
equals the serial evaluation at *some* consistent cut, per relation.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.values import is_null
from repro.db import Database
from repro.query import evaluate, parse_query, relation_names
from repro.server import ReproServer, protocol

R_ATTRS, R_FDS = "A B C", "A -> B"
S_ATTRS, S_FDS = "C D", "C -> D"
SEEDS = (11, 47)

QUERIES = (
    "r",
    "r[A, B]",
    "r where A = 'v0'",
    "r where B != 'v1'",
    "r join s",
    "r join s [A, D]",
    "r[C] union s[C]",
    "r[C] minus s[C]",
)
MODES = ("least", "kleene")


def normalize_wire(rows):
    """Wire rows with null tokens renamed by first occurrence."""
    seen = {}
    out = []
    for row in rows:
        cells = []
        for token in row:
            if isinstance(token, dict) and "n" in token:
                name = token["n"]
                if name not in seen:
                    seen[name] = f"#{len(seen)}"
                cells.append({"n": seen[name]})
            else:
                cells.append(token)
        out.append(cells)
    return out


def normalize_values(rows):
    """Engine-value rows in the same normal form (nulls by identity)."""
    seen = {}
    out = []
    for row in rows:
        cells = []
        for value in row:
            if is_null(value):
                if id(value) not in seen:
                    seen[id(value)] = f"#{len(seen)}"
                cells.append({"n": seen[id(value)]})
            else:
                cells.append(value)
        out.append(cells)
    return out


def random_mutation(rng: random.Random, rel: str) -> dict:
    arity = 3 if rel == "r" else 2
    roll = rng.random()
    if roll < 0.6:
        cells = []
        for _ in range(arity):
            pick = rng.random()
            if pick < 0.55:
                cells.append(f"v{rng.randrange(3)}")
            elif pick < 0.8:
                cells.append({"n": None})
            else:
                cells.append({"n": f"shared{rng.randrange(2)}"})
        return {"do": "insert", "rel": rel, "row": cells}
    if roll < 0.8:
        return {"do": "delete", "rel": rel, "index": rng.randrange(8)}
    return {
        "do": "fill",
        "rel": rel,
        "index": rng.randrange(8),
        "attr": "B" if rel == "r" else "D",
        "value": f"v{rng.randrange(3)}",
    }


async def run_schedule(tmp_path, seed: int, n_clients: int = 3, n_ops: int = 18):
    rng = random.Random(seed)
    server = ReproServer(tmp_path / "served", sync="flush", create=True)
    await server.start()
    await server.handle({"do": "create", "name": "r", "attrs": R_ATTRS, "fds": R_FDS})
    await server.handle({"do": "create", "name": "s", "attrs": S_ATTRS, "fds": S_FDS})

    acked = {"r": [], "s": []}  # per relation: (seq, request)
    answers = []  # (q, mode, as_of, certain rows, maybe rows)

    async def client(c: int) -> None:
        crng = random.Random(seed * 1000 + c)
        for step in range(n_ops):
            if crng.random() < 0.3:
                q = crng.choice(QUERIES)
                mode = crng.choice(MODES)
                response = await server.handle(
                    {"id": f"{c}q{step}", "do": "query", "q": q, "mode": mode}
                )
                if not response["ok"]:
                    # an FD-inconsistent cut (NOTHING in the fixpoint) has
                    # no completions; refusing it is the correct answer
                    assert "NOTHING" in response["error"], response
                    continue
                answers.append(
                    (
                        q,
                        mode,
                        response["certain"]["as_of"],
                        normalize_wire(response["certain"]["rows"]),
                        normalize_wire(response["maybe"]["rows"]),
                    )
                )
                continue
            relation = crng.choice(("r", "r", "s"))
            request = random_mutation(crng, relation)
            request["id"] = f"{c}m{step}"
            response = await server.handle(request)
            if response["ok"]:
                acked[relation].append((response["seq"], request))
            if step % 4 == c % 4:
                await asyncio.sleep(0)

    await asyncio.gather(*(client(c) for c in range(n_clients)))
    await server.stop()
    return acked, answers


def prefix_relations(tmp_path, name, attrs, fds, acked, wanted):
    """Serial replay of one relation; {seq: fixpoint Relation} snapshots."""
    db = Database.open(tmp_path / f"replay_{name}", sync="none", create=True)
    relation = db.create(name, attrs, [fds])
    states = {}

    def capture(seq: int) -> None:
        if seq in wanted:
            states[seq] = relation.result().relation

    capture(0)
    for seq, request in sorted(acked, key=lambda pair: pair[0]):
        fields = protocol.mutation(relation, request["do"], request)()
        assert fields["seq"] == seq
        capture(seq)
    return db, states


@pytest.mark.parametrize("seed", SEEDS)
def test_query_answers_match_serial_prefix_evaluation(tmp_path, seed):
    acked, answers = asyncio.run(run_schedule(tmp_path, seed))
    assert answers, "schedule produced no query answers"

    # collect the cuts each relation was queried at
    wanted = {"r": {0}, "s": {0}}
    for q, _, as_of, _, _ in answers:
        names = relation_names(parse_query(q))
        cuts = as_of if isinstance(as_of, dict) else {names[0]: as_of}
        for name, seq in cuts.items():
            wanted[name].add(seq)

    db_r, states_r = prefix_relations(
        tmp_path, "r", R_ATTRS, R_FDS, acked["r"], wanted["r"]
    )
    db_s, states_s = prefix_relations(
        tmp_path, "s", S_ATTRS, S_FDS, acked["s"], wanted["s"]
    )
    states = {"r": states_r, "s": states_s}
    try:
        for q, mode, as_of, certain_rows, maybe_rows in answers:
            node = parse_query(q)
            names = relation_names(node)
            cuts = as_of if isinstance(as_of, dict) else {names[0]: as_of}
            assert set(cuts) == set(names)
            env = {name: states[name][seq] for name, seq in cuts.items()}
            result = evaluate(node, env, mode=mode)
            label = f"{q!r} ({mode}) at {cuts}"
            assert certain_rows == normalize_values(
                result.certain.rows
            ), f"certain answers diverge for {label}"
            assert maybe_rows == normalize_values(
                result.maybe.rows
            ), f"maybe answers diverge for {label}"
    finally:
        db_r.close()
        db_s.close()


def test_query_refused_by_lint_leases_nothing(tmp_path):
    """A refused query must not touch the writers: no lease, no stall —
    the writer's pending queue is untouched and a subsequent mutation
    acks immediately."""

    async def go():
        server = ReproServer(tmp_path / "db", sync="flush", create=True)
        await server.start()
        await server.handle(
            {"do": "create", "name": "r", "attrs": "A B", "fds": "A -> B"}
        )
        refused = await server.handle(
            {"id": 1, "do": "query", "q": "ghost[A]"}
        )
        assert refused["ok"] is False
        assert refused["diagnostics"][0]["code"] == "E_UNKNOWN_RELATION"
        ack = await server.handle(
            {"id": 2, "do": "insert", "rel": "r", "row": ["a", "b"]}
        )
        assert ack["ok"] is True and ack["seq"] == 1
        await server.stop()

    asyncio.run(go())


def test_single_relation_query_carries_scalar_as_of(tmp_path):
    async def go():
        server = ReproServer(tmp_path / "db", sync="flush", create=True)
        await server.start()
        await server.handle(
            {"do": "create", "name": "r", "attrs": "A B", "fds": "A -> B"}
        )
        await server.handle(
            {"id": 1, "do": "insert", "rel": "r", "row": ["a", "b"]}
        )
        response = await server.handle({"id": 2, "do": "query", "q": "r"})
        assert response["ok"]
        assert response["certain"]["as_of"] == 1
        assert response["v"] == 1
        await server.stop()

    asyncio.run(go())
