"""Crash injection for group commit: kill at every batch boundary.

Extends the PR 5 torn-record suite to *batched* records.  The contract
under group commit is stage-before-apply, durable-before-ack:

* recovery yields a **whole-record prefix of the staged order** — never
  a half-applied batch, never a record the committer didn't stage;
* that prefix contains **every client-acknowledged op** (acks resolve
  only after the batch fsync);
* applied-but-unsynced ops may be lost — their clients were never
  acked, so nothing observable is lost.

``crash_writer.py`` (a subprocess — SIGKILL must take the whole
process, WAL handles and all) streams a deterministic multi-client
schedule through a real server and dies at an instrumented point; the
parent recovers the directory and checks it against the instrument
files and a serial replay of the durable records.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chase import ChaseSession
from repro.core.codec import ValueCodec, fds_from_spec
from repro.core.schema import RelationSchema
from repro.db import Database, OpLog
from repro.db import log as oplog
from repro.db import storage
from repro.db.recovery import replay

from ..strategies import assert_recovered_identical

CHILD = Path(__file__).with_name("crash_writer.py")
ATTRS = "A B C"
FDS = ["A -> B", "B -> C"]


def run_child(tmp_path: Path, label: str, *flags: str) -> subprocess.CompletedProcess:
    import os

    src = str(CHILD.parent.parent.parent / "src")
    root = tmp_path / label
    out = tmp_path / f"{label}.inst"
    process = subprocess.run(
        [sys.executable, str(CHILD), str(root), str(out), *flags],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "REPRO_SRC": src, "PYTHONPATH": src},
    )
    return process


def read_lines(path: Path) -> list:
    if not path.exists():
        return []
    return [line for line in path.read_text().splitlines() if line.strip()]


def durable_records(tmp_path: Path, label: str) -> list:
    return [json.loads(line) for line in read_lines(tmp_path / f"{label}.inst.commits")]


def client_acked_seqs(tmp_path: Path, label: str) -> list:
    return [int(line) for line in read_lines(tmp_path / f"{label}.inst.acks")]


def reference_replay(records: list) -> ChaseSession:
    """The durable records driven through a fresh session serially."""
    session = ChaseSession(RelationSchema("r", ATTRS), fds_from_spec(FDS))
    replay(session, records, ValueCodec(), base_seq=0, snapshots=[])
    return session


def assert_recovery_contract(tmp_path: Path, label: str) -> Database:
    """The shared postcondition: recovered state == serial replay of the
    commit log, containing every client-acked seq."""
    records = durable_records(tmp_path, label)
    seqs = [record["seq"] for record in records]
    assert seqs == list(range(1, len(seqs) + 1)), "commit log has a seq gap"

    db = Database.open(tmp_path / label, sync="none", create=False)
    relation = db["r"]
    assert relation.seq == len(records), (
        f"recovered seq {relation.seq} != durable history {len(records)}"
    )
    acked = client_acked_seqs(tmp_path, label)
    if acked:
        assert max(acked) <= relation.seq, "an acked op was lost in recovery"
    assert_recovered_identical(relation, reference_replay(records))
    assert relation.verify()
    return db


def test_kill_at_every_batch_boundary(tmp_path):
    """SIGKILL inside on_commit after batch K, for every K.

    A completion run first discovers how many batch boundaries this
    schedule has on this machine; the sweep then kills at each one
    (capped to keep runtime bounded — the earliest and latest boundaries
    are always included).
    """
    probe = run_child(tmp_path, "probe")
    assert probe.returncode == 0, probe.stderr
    assert "COMPLETED" in probe.stdout
    total_batches = int(probe.stdout.split("batches=")[1].split()[0])
    assert total_batches >= 1
    # the completed run must itself satisfy the contract (kill never fired)
    assert_recovery_contract(tmp_path, "probe").close()

    boundaries = sorted(set(
        [1, 2, total_batches]
        + list(range(3, total_batches, max(1, total_batches // 4)))
    ))
    boundaries = [k for k in boundaries if 1 <= k <= total_batches][:8]
    for k in boundaries:
        label = f"kill{k}"
        process = run_child(tmp_path, label, "--kill-after-batch", str(k))
        assert process.returncode == -signal.SIGKILL, (
            f"child survived kill at batch {k}: {process.stdout} {process.stderr}"
        )
        records = durable_records(tmp_path, label)
        assert records, f"kill at batch {k} left no durable history"
        db = assert_recovery_contract(tmp_path, label)
        db.close()


@pytest.mark.parametrize("tear_at", [1, 2, 4])
def test_torn_batch_append_recovers_staged_prefix(tmp_path, tear_at):
    """Die mid-batch-append: half the batch's bytes land, unsynced flushes
    permitting.  Recovery must keep exactly the durable batches plus a
    whole-record prefix of the torn batch's staged order."""
    label = f"tear{tear_at}"
    process = run_child(tmp_path, label, "--tear-batch", str(tear_at))
    if process.returncode == 0:
        pytest.skip(f"schedule produced fewer than {tear_at} batch appends")
    assert process.returncode == -signal.SIGKILL, process.stderr

    committed = durable_records(tmp_path, label)
    staged = [
        json.loads(line) for line in read_lines(tmp_path / f"{label}.inst.staged")
    ]
    assert staged, "tear point never reached despite SIGKILL exit"

    wal_path = storage.relation_dir(tmp_path / label, "r") / storage.WAL_NAME
    on_disk, good_bytes, torn = oplog.scan(wal_path)
    # the surviving log is the committed batches plus a (possibly empty)
    # whole-record prefix of the torn batch — in staged order
    assert on_disk == committed + staged[: len(on_disk) - len(committed)]
    assert len(on_disk) < len(committed) + len(staged), "nothing was torn"

    db = Database.open(tmp_path / label, sync="none", create=False)
    relation = db["r"]
    assert relation.recovery_info["torn_tail_dropped"] == torn
    assert relation.seq == len(on_disk)
    acked = client_acked_seqs(tmp_path, label)
    if acked:
        assert max(acked) <= relation.seq
    assert_recovered_identical(relation, reference_replay(on_disk))
    assert relation.verify()
    db.close()


def test_torn_batched_records_at_every_offset(tmp_path):
    """In-process sweep: truncate a batched log at every byte offset of
    its final batch; scan must always return the whole-record prefix and
    flag the torn tail (the PR 5 per-record sweep, for append_many)."""
    path = tmp_path / "wal.jsonl"
    wal = OpLog(path, sync="flush")
    batch_one = [{"seq": 1, "op": "insert", "row": ["a", {"n": "n0"}]},
                 {"seq": 2, "op": "insert", "row": ["b", {"n": "n0"}]}]
    batch_two = [{"seq": 3, "op": "delete", "index": 0},
                 {"seq": 4, "op": "insert", "row": ["c", None]},
                 {"seq": 5, "op": "adopt"}]
    wal.append_many(batch_one)
    boundary = path.stat().st_size
    wal.append_many(batch_two)
    wal.close()
    blob = path.read_bytes()

    for cut in range(boundary, len(blob)):
        torn_path = tmp_path / f"cut{cut}.jsonl"
        torn_path.write_bytes(blob[:cut])
        records, good_bytes, torn = oplog.scan(torn_path)
        # every survivor is a whole record, in order, from the front;
        # the first batch (synced as a unit) always survives whole
        assert records == (batch_one + batch_two)[: len(records)]
        assert len(records) >= len(batch_one)
        # a cut on a record boundary is clean; anywhere else leaves a
        # torn tail that scan must flag (recovery truncates at good_bytes)
        at_record_boundary = cut == boundary or blob[:cut].endswith(b"\n")
        assert torn == (not at_record_boundary)
        assert good_bytes == (cut if at_record_boundary else
                              len(blob[:cut].rsplit(b"\n", 1)[0]) + 1)
