"""Crash-injection child for the group-commit suite (not a test module).

Streams a deterministic multi-client op schedule through an in-process
:class:`~repro.server.ReproServer` with a group-commit latch window,
then dies by SIGKILL at an instrumented point:

* ``--kill-after-batch K`` — die inside the committer's ``on_commit``
  hook, right after batch K became durable and was logged to the commit
  file, before any of its clients were acked.  Iterating K over every
  batch boundary is the crash-at-every-boundary sweep.
* ``--tear-batch N`` — monkeypatch ``OpLog.append_many`` so the Nth
  batch append writes only *half* of the batch's bytes (no sync) and
  dies mid-write: the torn-batched-record case.  The doomed batch's
  intended payloads are journalled to the staged file first, so the
  parent can check the surviving prefix against the staged order.
* no kill flag — run to completion and print ``COMPLETED batches=B
  records=R`` so the parent learns how many boundaries exist.

Two side files instrument the run for the parent:

* ``<out>.commits`` — one line per durable record, appended and fsynced
  inside ``on_commit`` *before* the kill point: the durable history.
* ``<out>.acks`` — one line per **client-visible acknowledgement**
  (seq), flushed as each response returns: recovery must contain every
  seq in here.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

sys.path.insert(0, os.environ.get("REPRO_SRC", "src"))

from repro.db import log as oplog  # noqa: E402
from repro.server import ReproServer  # noqa: E402

ATTRS = "A B C"
FDS = "A -> B; B -> C"


def build_request(client: int, step: int) -> dict:
    """A deterministic mixed op (no RNG: reruns must agree with reruns)."""
    tag = (client * 7 + step * 3) % 10
    if tag < 6:
        return {
            "do": "insert",
            "row": [
                f"a{(client + step) % 3}",
                {"n": None} if step % 3 == 0 else f"b{step % 2}",
                {"n": f"s{client % 2}"} if step % 4 == 0 else f"c{client}_{step}",
            ],
        }
    if tag < 8:
        return {"do": "delete", "index": step % 5}
    return {"do": "update", "index": step % 5, "set": {"C": f"u{step}"}}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("root")
    parser.add_argument("out", help="instrument-file prefix")
    parser.add_argument("--kill-after-batch", type=int, default=0)
    parser.add_argument("--tear-batch", type=int, default=0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--ops", type=int, default=12)
    parser.add_argument("--window-ms", type=float, default=4.0)
    args = parser.parse_args()

    commit_log = open(args.out + ".commits", "a", encoding="utf-8")
    ack_log = open(args.out + ".acks", "a", encoding="utf-8")
    batches = 0

    def on_commit(payloads) -> None:
        nonlocal batches
        for payload in payloads:
            commit_log.write(json.dumps(payload, sort_keys=True) + "\n")
        commit_log.flush()
        os.fsync(commit_log.fileno())
        batches += 1
        if args.kill_after_batch and batches >= args.kill_after_batch:
            os.kill(os.getpid(), signal.SIGKILL)

    if args.tear_batch:
        staged_log = open(args.out + ".staged", "a", encoding="utf-8")
        original = oplog.OpLog.append_many
        calls = 0

        def tearing(self, payloads):
            nonlocal calls
            calls += 1
            if calls == args.tear_batch:
                for payload in payloads:
                    staged_log.write(json.dumps(payload, sort_keys=True) + "\n")
                staged_log.flush()
                os.fsync(staged_log.fileno())
                blob = "".join(
                    oplog.dump_json(payload) + "\n" for payload in payloads
                )
                handle = self._handle
                handle.write(blob[: max(1, len(blob) // 2)])
                handle.flush()  # the torn bytes must actually land
                os.fsync(handle.fileno())
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, payloads)

        oplog.OpLog.append_many = tearing

    async def run() -> None:
        server = ReproServer(
            args.root,
            sync="fsync",
            create=True,
            window_s=args.window_ms / 1000.0,
            on_commit=on_commit,
        )
        await server.start()
        response = await server.handle(
            {"do": "create", "name": "r", "attrs": ATTRS, "fds": FDS}
        )
        assert response["ok"], response

        async def client(c: int) -> None:
            for step in range(args.ops):
                request = build_request(c, step)
                request.update(id=f"{c}:{step}", rel="r")
                reply = await server.handle(request)
                if reply["ok"] and "seq" in reply:
                    ack_log.write(f"{reply['seq']}\n")
                    ack_log.flush()

        await asyncio.gather(*(client(c) for c in range(args.clients)))
        await server.stop()
        print(f"COMPLETED batches={batches}", flush=True)

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
