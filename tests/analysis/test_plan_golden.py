"""Golden findings for every plan-lint code, pinned to exact lines.

One four-line query script triggers each code once; the suite asserts
the full ``(line, code, severity)`` inventory — no extra findings, no
missing ones — plus the message fragments clients key on.  The server
half proves the refuse-before-lease contract: refusal-grade findings
(and ``explain: true`` requests) never touch a writer's lease.
"""

from __future__ import annotations

import asyncio

from repro.analysis import lint_query_plan, lint_query_script
from repro.query import collect_stats, parse_query
from repro.server import ReproServer
from repro.server.writer import RelationWriter

from ..helpers import rel

SCRIPT = (
    "r join s",
    "r where A = 'zz' and A != 'zz'",
    "(r where A = 'zz' and A != 'zz') union r",
    "r[A] minus t",
)


def environment():
    """r(A B), s(C D) — disjoint, so joining them is a cross product —
    and t(A): twenty nulls over an effective domain, so a difference
    against it grounds past the 200 000 budget."""
    return {
        "r": rel("A B", [["a1", "b1"], ["a2", "b2"]]),
        "s": rel("C D", [["c1", "d1"]]),
        "t": rel("A", [["-"] for _ in range(20)], domains={"A": ["a", "b"]}),
    }


class TestGoldenFindings:
    def lint(self, mode="least"):
        env = environment()
        catalog = {name: r.schema for name, r in env.items()}
        return lint_query_script(
            catalog, SCRIPT, stats=collect_stats(env), mode=mode
        )

    def test_the_exact_finding_inventory(self):
        found = [(d.line, d.code, d.severity) for d in self.lint()]
        assert found == [
            (1, "W_CROSS_PRODUCT", "warning"),
            (2, "E_EMPTY_CERTAIN", "error"),
            (3, "W_DEAD_BRANCH", "warning"),
            (4, "W_GROUND_BLOWUP", "warning"),
        ]

    def test_message_fragments(self):
        by_code = {d.code: d for d in self.lint()}
        assert "cross product" in by_code["W_CROSS_PRODUCT"].message
        assert "up to 2 rows" in by_code["W_CROSS_PRODUCT"].message
        assert "no completion" in by_code["E_EMPTY_CERTAIN"].message
        assert "contributes no rows" in by_code["W_DEAD_BRANCH"].message
        blowup = by_code["W_GROUND_BLOWUP"].message
        assert "1048576" in blowup  # 2^20 groundings, budget 200000
        assert "200000" in blowup
        assert "DomainError" in blowup

    def test_kleene_mode_describes_the_mode_switch_instead(self):
        by_code = {d.code: d for d in self.lint(mode="kleene")}
        assert by_code["W_GROUND_BLOWUP"].severity == "warning"
        assert "switching to least mode" in by_code["W_GROUND_BLOWUP"].message

    def test_blowup_is_reported_at_the_crossing_node_only(self):
        env = environment()
        catalog = {name: r.schema for name, r in env.items()}
        findings = lint_query_plan(
            catalog,
            parse_query("(r[A] minus t) union (r[A] minus t)"),
            stats=collect_stats(env),
        )
        assert [d.code for d in findings] == [
            "W_GROUND_BLOWUP", "W_GROUND_BLOWUP"
        ]

    def test_without_stats_only_domain_independent_findings_fire(self):
        env = environment()
        catalog = {name: r.schema for name, r in env.items()}
        codes = {d.code for d in lint_query_script(catalog, SCRIPT)}
        assert codes == {"W_CROSS_PRODUCT", "E_EMPTY_CERTAIN", "W_DEAD_BRANCH"}


# ---------------------------------------------------------------------------
# the server contract: lint (and explain) before any lease
# ---------------------------------------------------------------------------


def count_leases(monkeypatch):
    """Instrument RelationWriter.lease with a shared call counter."""
    counter = {"leases": 0}
    original = RelationWriter.lease

    def counting(self):
        counter["leases"] += 1
        return original(self)

    monkeypatch.setattr(RelationWriter, "lease", counting)
    return counter


async def blowup_server(tmp_path):
    """A served relation whose difference-against-itself grounds past
    the budget: twenty server-minted nulls in one unbounded column."""
    server = ReproServer(tmp_path / "db", sync="none", create=True)
    await server.start()
    await server.handle({"do": "create", "name": "t", "attrs": "A"})
    for _ in range(20):
        ack = await server.handle(
            {"do": "insert", "rel": "t", "row": [{"n": None}]}
        )
        assert ack["ok"], ack
    return server


def test_blowup_fires_before_any_lease(tmp_path, monkeypatch):
    """The crafted W_GROUND_BLOWUP query: the finding is computed and
    reported pre-lease — ``explain: true`` answers with it having taken
    no lease at all, and the evaluating path carries it as a warning."""

    async def go():
        server = await blowup_server(tmp_path)
        counter = count_leases(monkeypatch)
        explained = await server.handle(
            {"id": 1, "do": "query", "q": "t minus t", "explain": True}
        )
        assert explained["ok"], explained
        assert counter["leases"] == 0  # plan + findings, no lease taken
        codes = [d["code"] for d in explained["diagnostics"]]
        assert "W_GROUND_BLOWUP" in codes
        assert "Difference" in explained["plan"]
        evaluated = await server.handle(
            {"id": 2, "do": "query", "q": "t minus t", "mode": "kleene"}
        )
        assert evaluated["ok"], evaluated
        codes = [d["code"] for d in evaluated.get("diagnostics", [])]
        assert "W_GROUND_BLOWUP" in codes
        await server.stop()

    asyncio.run(go())


def test_statically_dead_query_is_refused_without_leasing(
    tmp_path, monkeypatch
):
    async def go():
        server = ReproServer(tmp_path / "db", sync="none", create=True)
        await server.start()
        await server.handle({"do": "create", "name": "r", "attrs": "A B"})
        await server.handle(
            {"do": "insert", "rel": "r", "row": ["a", "b"]}
        )
        counter = count_leases(monkeypatch)
        refused = await server.handle(
            {"id": 1, "do": "query", "q": "r where A = 'x' and A != 'x'"}
        )
        assert refused["ok"] is False
        assert "refused by lint" in refused["error"]
        assert refused["diagnostics"][0]["code"] == "E_EMPTY_CERTAIN"
        assert counter["leases"] == 0
        await server.stop()

    asyncio.run(go())


def test_cross_product_warning_rides_in_the_answer(tmp_path):
    async def go():
        server = ReproServer(tmp_path / "db", sync="none", create=True)
        await server.start()
        await server.handle({"do": "create", "name": "r", "attrs": "A B"})
        await server.handle({"do": "create", "name": "s", "attrs": "C D"})
        await server.handle(
            {"do": "insert", "rel": "r", "row": ["a", "b"]}
        )
        await server.handle(
            {"do": "insert", "rel": "s", "row": ["c", "d"]}
        )
        answer = await server.handle({"id": 1, "do": "query", "q": "r join s"})
        assert answer["ok"], answer
        assert [d["code"] for d in answer["diagnostics"]] == [
            "W_CROSS_PRODUCT"
        ]
        assert answer["certain"]["rows"] == [["a", "b", "c", "d"]]
        await server.stop()

    asyncio.run(go())
