"""The invariant sanitizer: green on healthy engines, loud on tampering.

Each tampering test corrupts exactly one mirror/discipline the audits
cover and asserts a :class:`SanitizerError` naming that structure — the
sanitizer's precision is the point: a violation report must say *which*
invariant broke, not just "something is off".
"""

import pytest

from repro.analysis import audit_core, audit_relation, audit_session
from repro.analysis.sanitize import enabled
from repro.chase.session import ChaseSession
from repro.core.schema import RelationSchema
from repro.core.values import null
from repro.errors import SanitizerError

SCHEMA = RelationSchema("R", "A B C")
FDS = ["A -> B", "B -> C"]


def healthy_session(**kwargs):
    session = ChaseSession(SCHEMA, FDS, **kwargs)
    session.insert(("a1", null(), "c1"))
    session.insert(("a1", "b1", null()))
    session.insert(("a2", "b2", "c2"))
    session.delete(1)
    session.fill(0, "B", "b7")
    return session


class TestEnvironmentFlag:
    def test_enabled_reads_the_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled()

    def test_constructor_flag_overrides_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert ChaseSession(SCHEMA, FDS, sanitize=True)._sanitize
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert not ChaseSession(SCHEMA, FDS, sanitize=False)._sanitize


class TestHealthyStates:
    def test_session_audits_clean_after_every_op_kind(self):
        session = healthy_session()
        audit_session(session)
        session.update(0, {"C": "c9"})
        audit_session(session)
        snap = session.snapshot()
        session.insert(("a9", "b9", "c9"))
        session.rollback(snap)
        audit_session(session)
        session.adopt()
        session.compact()
        audit_session(session)

    def test_poisoned_session_still_audits_clean(self):
        session = ChaseSession(SCHEMA, ["A -> B"], sanitize=True)
        session.insert(("a", "b1", "c"))
        session.insert(("a", "b2", "c"))  # conflict: poisons, never corrupts
        assert session.has_nothing
        audit_session(session)

    def test_sanitizing_session_self_audits_on_mutators(self):
        # the decorator path: every public op sweeps without raising
        healthy_session(sanitize=True)

    def test_audit_core_accepts_a_quiescent_session(self):
        audit_core(healthy_session())


class TestTamperingDetection:
    def test_occurrence_index_mismatch(self):
        session = healthy_session()
        root = next(iter(session._occ))
        session._occ[root] = session._occ[root] + [(999, 0)]
        with pytest.raises(SanitizerError, match="occ"):
            audit_session(session)

    def test_members_sigs_mirror_break(self):
        session = healthy_session()
        key = next(iter(session._members))
        bucket = session._members[key]
        bucket[4242] = True
        with pytest.raises(SanitizerError, match="bucket"):
            audit_session(session)

    def test_signature_drift(self):
        session = healthy_session()
        key = next(iter(session._sigs))
        session._sigs[key] = ("no", "such", "signature")
        with pytest.raises(SanitizerError):
            audit_session(session)

    def test_tag_on_a_non_root(self):
        session = healthy_session()
        dead = object()
        session.tags[len(session.uf.parent) + 10] = ("const", dead)
        with pytest.raises(SanitizerError, match="tags"):
            audit_session(session)

    def test_weight_below_occurrence_count(self):
        session = healthy_session()
        root = max(session._occ, key=lambda r: len(session._occ[r]))
        session.uf.weight[root] = 0
        with pytest.raises(SanitizerError, match="weight"):
            audit_session(session)

    def test_slot_table_break(self):
        session = healthy_session()
        session._slots[0] = session._slots[1]  # injectivity gone
        with pytest.raises(SanitizerError, match="slot"):
            audit_session(session)

    def test_trail_identity_break(self):
        session = healthy_session()
        session.uf.trail = []  # journal detached from the session's trail
        with pytest.raises(SanitizerError, match="trail"):
            audit_session(session)

    def test_null_registry_leak(self):
        session = healthy_session()
        ghost = null()
        session._null_nodes[id(ghost)] = 0
        session._null_objects[id(ghost)] = ghost
        with pytest.raises(SanitizerError, match="null"):
            audit_session(session)

    def test_raw_constant_tag_drift(self):
        session = healthy_session()
        slot = session._slots[0]
        node = session.cells[slot][0]
        root = session.uf.find(node)
        session.tags[root] = ("const", "someone-else")
        with pytest.raises(SanitizerError):
            audit_session(session)


class TestRelationAudits:
    def test_durable_relation_audits_clean_through_its_lifecycle(self, tmp_path):
        from repro.db import Database

        with Database.open(tmp_path / "db", sync="flush", create=True) as db:
            relation = db.create("r", "A B C", FDS)
            relation.insert(("a1", null(), "c1"))
            relation.insert(("a2", "b2", "c2"))
            audit_relation(relation)
            db.audit()
            # regression: scan() returns (records, good_bytes, TORN) — an
            # early sanitizer read the third element inverted and failed
            # every audit of a freshly-truncated (empty, clean) log
            relation.checkpoint()
            audit_relation(relation)
            relation.fill(0, "B", "b9")
            audit_relation(relation)

    def test_wal_seq_drift_detected(self, tmp_path):
        from repro.db import Database

        with Database.open(tmp_path / "db", sync="flush", create=True) as db:
            relation = db.create("r", "A B C", FDS)
            relation.insert(("a1", "b1", "c1"))
            relation._seq += 1  # counter ahead of the journal
            with pytest.raises(SanitizerError, match="wal"):
                audit_relation(relation)

    def test_torn_wal_tail_detected(self, tmp_path):
        from repro.db import Database

        with Database.open(tmp_path / "db", sync="flush", create=True) as db:
            relation = db.create("r", "A B C", FDS)
            relation.insert(("a1", "b1", "c1"))
            with open(relation.wal.path, "ab") as handle:
                handle.write(b'{"seq": 2, "op"')  # mid-append torn record
            with pytest.raises(SanitizerError, match="torn"):
                audit_relation(relation)

    def test_recovery_audits_when_flag_set(self, tmp_path, monkeypatch):
        from repro.db import Database

        with Database.open(tmp_path / "db", sync="flush", create=True) as db:
            relation = db.create("r", "A B C", FDS)
            relation.insert(("a1", null(), "c1"))
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with Database.open(tmp_path / "db", sync="flush") as db:
            assert len(db.relation("r")) == 1


class TestEvaluatorAudit:
    """The query-layer audit: ``REPRO_SANITIZE=1`` sweeps every
    finished :meth:`Evaluator.run`, and each tampering probe violates
    exactly one output invariant."""

    def evaluator_parts(self):
        from repro.analysis import audit_evaluator
        from repro.query import Evaluator, parse_query

        from ..helpers import rel

        x = null()
        env = {
            "r": rel("A B", [["a1", x], ["a2", "b1"]],
                     domains={"B": ["b1", "b2"]}),
        }
        evaluator = Evaluator(env)
        node = parse_query("r where B = 'b1'")
        result = evaluator.run(node)
        attrs = result.attributes
        crows = evaluator._eval(evaluator.plan(node).node)[1]
        certain = [tuple(row) for row in result.certain.rows]
        maybe = [tuple(row) for row in result.maybe.rows]
        return audit_evaluator, evaluator, attrs, crows, certain, maybe

    def test_healthy_run_audits_clean(self):
        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        audit(evaluator, attrs, crows, certain, maybe)

    def test_sanitizing_run_self_audits(self, monkeypatch):
        from repro.query import Evaluator, parse_query

        from ..helpers import rel

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        env = {"r": rel("A B", [["a1", null()]], domains={"B": ["b1"]})}
        result = Evaluator(env).run(parse_query("r where B = 'b1'"))
        assert len(result.certain.rows) == 1

    def test_duplicate_row_key_detected(self):
        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        with pytest.raises(SanitizerError, match="duplicate"):
            audit(evaluator, attrs, crows + [crows[0]], certain, maybe)

    def test_arity_drift_detected(self):
        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        with pytest.raises(SanitizerError, match="arity"):
            audit(evaluator, attrs + ("Z",), crows, certain, maybe)

    def test_certain_maybe_overlap_detected(self):
        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        assert maybe, "the probe needs a maybe row to duplicate"
        with pytest.raises(SanitizerError, match="both certain and maybe"):
            audit(evaluator, attrs, crows, certain + [maybe[0]], maybe)

    def test_answer_row_outside_the_table_detected(self):
        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        with pytest.raises(SanitizerError, match="missing from"):
            audit(
                evaluator, attrs, crows, certain + [("zz", "zz")], maybe
            )

    def test_unregistered_null_in_a_condition_detected(self):
        from repro.nullsem.queries import Eq
        from repro.query.evaluate import CRow, _pred_cond

        audit, evaluator, attrs, crows, certain, maybe = (
            self.evaluator_parts()
        )
        stranger = null()
        cond = _pred_cond(Eq("B", "b1"), {"B": 1}, ("a9", stranger))
        tampered = crows + [CRow(("a9", stranger), cond)]
        with pytest.raises(SanitizerError, match="unregistered null"):
            audit(evaluator, attrs, tampered, certain, maybe)
