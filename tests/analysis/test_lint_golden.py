"""Golden-file tests for the static script linter.

Each case is a literal script plus the exact (code, line) findings the
linter must produce — every diagnostic code in the script vocabulary is
exercised at least once, with its 1-based line number pinned.
"""

from repro.analysis import Diagnostic, has_errors, lint_script, render_report
from repro.core.schema import Domain, RelationSchema

SCHEMA = RelationSchema("R", "A B C")
FDS = ["A -> B"]


def findings(script, schema=SCHEMA, fds=FDS, **kwargs):
    diagnostics = lint_script(schema, fds, script, **kwargs)
    return [(d.code, d.line) for d in diagnostics]


class TestCleanScripts:
    def test_empty_script_is_clean(self):
        assert lint_script(SCHEMA, FDS, []) == []

    def test_well_formed_script_is_clean(self):
        script = [
            "# build two rows, ground a null, inspect",
            "insert a1, -, c1",
            "insert a2, b2, c2",
            "fill 0 B b1",
            "update 1 C=c9",
            "snapshot",
            "delete 0",
            "rollback",
            "check weak",
            "show",
            "stats",
        ]
        assert lint_script(SCHEMA, FDS, script) == []

    def test_comments_and_blanks_never_report(self):
        assert lint_script(SCHEMA, FDS, ["", "   ", "# delete 99"]) == []


class TestEveryDiagnosticCode:
    def test_unknown_op(self):
        assert findings(["levitate 3"]) == [("E_UNKNOWN_OP", 1)]

    def test_missing_arg(self):
        assert findings(["delete"]) == [("E_MISSING_ARG", 1)]
        assert findings(["fill 0 B"]) == [("E_MISSING_ARG", 1)]

    def test_arity(self):
        assert findings(["insert a1, b1"]) == [("E_ARITY", 1)]

    def test_unknown_attr(self):
        assert findings(["insert a, b, c", "update 0 Z=9"]) == [
            ("E_UNKNOWN_ATTR", 2)
        ]

    def test_bad_int(self):
        assert findings(["delete nine"]) == [("E_BAD_INT", 1)]

    def test_bad_index(self):
        assert findings(["insert a, b, c", "delete 4"]) == [("E_BAD_INDEX", 2)]

    def test_bad_assign(self):
        assert findings(["insert a, b, c", "update 0 B"]) == [
            ("E_BAD_ASSIGN", 2)
        ]

    def test_domain(self):
        schema = RelationSchema(
            "R", "A B C", domains={"B": Domain(["x", "y"], name="B")}
        )
        assert findings(["insert a, z, c"], schema=schema) == [("E_DOMAIN", 1)]

    def test_fill_const(self):
        assert findings(["insert a, b, c", "fill 0 B b9"]) == [
            ("E_FILL_CONST", 2)
        ]

    def test_fill_unproven_after_adopt(self):
        script = ["insert a, -, -", "adopt", "fill 0 B b1"]
        assert findings(script) == [("E_FILL_UNPROVEN", 3)]

    def test_rollback_underflow(self):
        assert findings(["rollback"]) == [("E_ROLLBACK_UNDERFLOW", 1)]

    def test_checkpoint_scope(self):
        assert findings(["checkpoint"]) == [("E_CHECKPOINT_SCOPE", 1)]
        assert findings(["checkpoint"], durable=True) == []

    def test_checkpoint_held(self):
        script = ["snapshot", "checkpoint"]
        assert findings(script, durable=True) == [("E_CHECKPOINT_HELD", 2)]

    def test_convention(self):
        assert findings(["check sideways"]) == [("E_CONVENTION", 1)]

    def test_fd_conflict_warning_on_mutation(self):
        script = ["insert a, b1, c", "insert a, b2, c"]
        diagnostics = lint_script(SCHEMA, FDS, script)
        assert [(d.code, d.line, d.severity) for d in diagnostics] == [
            ("E_FD_CONFLICT", 2, "warning")
        ]
        assert not has_errors(diagnostics)

    def test_fd_conflict_error_on_check(self):
        script = ["insert a, b1, c", "insert a, b2, c", "check"]
        diagnostics = lint_script(SCHEMA, FDS, script)
        assert [(d.code, d.line, d.severity) for d in diagnostics] == [
            ("E_FD_CONFLICT", 2, "warning"),
            ("E_FD_CONFLICT", 3, "error"),
        ]
        assert has_errors(diagnostics)


class TestConflictWitness:
    def test_armstrong_witness_names_rows_fd_and_values(self):
        script = ["insert a, b1, c", "insert a, b2, c"]
        (diagnostic,) = lint_script(SCHEMA, FDS, script)
        assert "rows 0 and 1 agree on A" in diagnostic.message
        assert "'b1'" in diagnostic.message and "'b2'" in diagnostic.message

    def test_transitive_conflict_witnessed_through_closure(self):
        # A -> B, B -> C: rows agree on A, so C is forced equal transitively
        script = ["insert a, b, c1", "insert a, b, c2"]
        (diagnostic,) = lint_script(SCHEMA, ["A -> B", "B -> C"], script)
        assert diagnostic.code == "E_FD_CONFLICT"
        assert "forces C equal" in diagnostic.message


class TestMultiError:
    def test_every_bad_op_reported_not_just_the_first(self):
        script = [
            "insert a1, b1",          # E_ARITY
            "delete nine",            # E_BAD_INT
            "insert a1, b1, c1",
            "update 0 Z=1",           # E_UNKNOWN_ATTR
            "rollback",               # E_ROLLBACK_UNDERFLOW
            "levitate",               # E_UNKNOWN_OP
        ]
        assert findings(script) == [
            ("E_ARITY", 1),
            ("E_BAD_INT", 2),
            ("E_UNKNOWN_ATTR", 4),
            ("E_ROLLBACK_UNDERFLOW", 5),
            ("E_UNKNOWN_OP", 6),
        ]

    def test_failing_op_is_skipped_so_later_indexes_stay_exact(self):
        # the arity-failing insert adds no abstract row, so the follow-up
        # delete of row 0 is correctly flagged out of bounds
        script = ["insert a1, b1", "delete 0"]
        assert findings(script) == [("E_ARITY", 1), ("E_BAD_INDEX", 2)]


class TestSeededRows:
    def test_initial_rows_shift_index_bounds(self):
        rows = [["a1", "b1", "c1"], ["a2", "b2", "c2"]]
        assert findings(["delete 1"], rows=rows) == []
        assert findings(["delete 2"], rows=rows) == [("E_BAD_INDEX", 1)]

    def test_initial_null_is_fillable(self):
        from repro.core.values import null

        rows = [["a1", null(), "c1"]]
        assert findings(["fill 0 B b1"], rows=rows) == []


class TestRenderReport:
    def test_report_sorts_by_line_and_names_everything(self):
        script = ["insert a, b", "delete nine"]
        diagnostics = lint_script(SCHEMA, FDS, script)
        report = render_report(diagnostics)
        assert "line 1" in report and "E_ARITY" in report
        assert "line 2" in report and "E_BAD_INT" in report
        assert report.index("E_ARITY") < report.index("E_BAD_INT")

    def test_payload_round_trip(self):
        (diagnostic,) = lint_script(SCHEMA, FDS, ["delete 0"])
        assert Diagnostic.from_payload(diagnostic.to_payload()) == diagnostic
