"""The linter's soundness guarantee, property-tested.

A script with **no error-severity diagnostics** executes without
raising.  (Warnings are excluded by design: an FD conflict executes and
poisons rather than raising.)  The generator emits both well-formed and
deliberately broken ops — out-of-range indexes, wrong arity, unknown
attributes — so both sides of the guarantee get traffic: clean scripts
must run, and scripts that fail at runtime must have been flagged.

One precision limit is encoded in the generator: after an ``adopt`` the
abstract state is inexact (which nulls the chase grounded is a fixpoint
property), so the linter can no longer *prove* poisoning and a ``check``
op may pass lint yet raise at runtime.  The generator therefore stops
emitting ``check`` once it has emitted an ``adopt`` — exactly the
boundary the checker documents.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import has_errors, lint_script
from repro.chase.session import ChaseSession
from repro.cli import _SessionTarget, run_script
from repro.core.schema import RelationSchema
from repro.errors import ScriptError

SCHEMA = RelationSchema("R", "A B C")
FDS = ["A -> B", "B -> C"]

_CONSTS = st.sampled_from(["a1", "a2", "b1", "b2", "c1", "x"])
_CELL = st.one_of(_CONSTS, st.sampled_from(["-", "NULL"]))
_ATTR = st.sampled_from(["A", "B", "C", "Z"])  # Z: unknown on purpose
_INDEX = st.integers(min_value=-1, max_value=5)


@st.composite
def op_lines(draw):
    kind = draw(
        st.sampled_from(
            [
                "insert",
                "insert_bad_arity",
                "delete",
                "update",
                "replace",
                "fill",
                "snapshot",
                "rollback",
                "adopt",
                "check",
                "show",
            ]
        )
    )
    if kind == "insert":
        cells = draw(st.lists(_CELL, min_size=3, max_size=3))
        return "insert " + ", ".join(cells)
    if kind == "insert_bad_arity":
        cells = draw(st.lists(_CELL, min_size=1, max_size=2))
        return "insert " + ", ".join(cells)
    if kind == "delete":
        return f"delete {draw(_INDEX)}"
    if kind == "update":
        return f"update {draw(_INDEX)} {draw(_ATTR)}={draw(_CONSTS)}"
    if kind == "replace":
        cells = draw(st.lists(_CELL, min_size=3, max_size=3))
        return f"replace {draw(_INDEX)} " + ", ".join(cells)
    if kind == "fill":
        return f"fill {draw(_INDEX)} {draw(_ATTR)} {draw(_CONSTS)}"
    return kind


@st.composite
def scripts(draw):
    lines = draw(st.lists(op_lines(), min_size=1, max_size=12))
    # the documented precision boundary: no check after an adopt
    seen_adopt = False
    kept = []
    for line in lines:
        if line == "adopt":
            seen_adopt = True
        if line == "check" and seen_adopt:
            continue
        kept.append(line)
    return kept


@settings(max_examples=120, deadline=None)
@given(scripts())
def test_lint_clean_scripts_execute_without_raising(script):
    diagnostics = lint_script(SCHEMA, FDS, script)
    if has_errors(diagnostics):
        return  # the guarantee speaks only of clean scripts
    target = _SessionTarget(ChaseSession(SCHEMA, FDS))
    run_script(target, script)  # must not raise


@settings(max_examples=120, deadline=None)
@given(scripts())
def test_runtime_failures_were_always_flagged(script):
    """Completeness of the error class: if execution raises, lint errored.

    (The converse of soundness — together they pin the error severity to
    exactly the provably-failing scripts this generator can produce.)
    """
    target = _SessionTarget(ChaseSession(SCHEMA, FDS))
    try:
        run_script(target, script)
    except ScriptError:
        assert has_errors(lint_script(SCHEMA, FDS, script))


@settings(max_examples=60, deadline=None)
@given(scripts())
def test_diagnostic_lines_point_into_the_script(script):
    for diagnostic in lint_script(SCHEMA, FDS, script):
        assert 1 <= diagnostic.line <= len(script)
        assert diagnostic.op  # the op text as written, never empty
