"""Static admission checks for server mutation batches.

The batch linter speaks the wire vocabulary of
:mod:`repro.server.protocol` — request objects with codec-shaped cell
tokens — and its diagnostics use 0-based request positions as ``line``.
"""

from repro.analysis import BATCH_VERBS, has_errors, lint_requests
from repro.core.schema import Domain, RelationSchema
from repro.core.values import null
from repro.server import protocol

SCHEMA = RelationSchema("R", "A B C")
FDS = ["A -> B"]


def codes(requests, **kwargs):
    return [
        (d.code, d.line)
        for d in lint_requests(SCHEMA, FDS, requests, **kwargs)
    ]


class TestVerbSetPin:
    def test_batch_verbs_track_the_protocol_exactly(self):
        # BATCH_VERBS is duplicated so repro.analysis never imports the
        # server; this pin is what keeps the copies honest
        assert BATCH_VERBS == protocol.MUTATION_VERBS


class TestCleanBatches:
    def test_insert_update_fill_sequence(self):
        requests = [
            {"do": "insert", "row": ["a1", {"n": None}, "c1"]},
            {"do": "insert", "row": ["a2", "b2", "c2"]},
            {"do": "update", "index": 1, "set": {"C": "c9"}},
            {"do": "fill", "index": 0, "attr": "B", "value": "b1"},
            {"do": "delete", "index": 0},
        ]
        assert lint_requests(SCHEMA, FDS, requests) == []

    def test_batch_relative_index_bounds(self):
        # index 1 only exists because the batch's op 0 inserts it —
        # admission-time bounds track the batch's own net effect
        requests = [
            {"do": "insert", "row": ["a1", "b1", "c1"]},
            {"do": "delete", "index": 0},
        ]
        assert lint_requests(SCHEMA, FDS, requests, rows=[]) == []

    def test_live_rows_seed_the_baseline(self):
        requests = [{"do": "delete", "index": 1}]
        assert codes(requests, rows=[["a", "b", "c"], ["d", "e", "f"]]) == []
        assert codes(requests, rows=[["a", "b", "c"]]) == [("E_BAD_INDEX", 0)]


class TestBatchDiagnostics:
    def test_unknown_verb(self):
        assert codes([{"do": "levitate"}]) == [("E_UNKNOWN_VERB", 0)]

    def test_non_object_request(self):
        assert codes(["insert"]) == [("E_BAD_REQUEST", 0)]

    def test_bad_cell_token(self):
        assert codes([{"do": "insert", "row": ["a", {"x": 1}, "c"]}]) == [
            ("E_BAD_CELL", 0)
        ]

    def test_non_scalar_constant_is_a_static_error(self):
        # decode is lenient about {"v": ...} payloads, but the journal
        # record the op writes would fail to encode — so lint refuses it
        assert codes(
            [{"do": "insert", "row": ["a", {"v": [1, 2]}, "c"]}]
        ) == [("E_BAD_CELL", 0)]

    def test_unknown_null_id(self):
        requests = [{"do": "insert", "row": ["a", {"n": "x99"}, "c"]}]
        assert codes(requests, known_null=lambda name: False) == [
            ("E_UNKNOWN_NULL", 0)
        ]
        assert codes(requests, known_null=lambda name: True) == []

    def test_named_null_shared_twice_is_one_unknown(self):
        # both rows hold the same unknown in B; A -> B cannot conflict
        requests = [
            {"do": "insert", "row": ["a1", {"n": "x0"}, "c1"]},
            {"do": "insert", "row": ["a2", {"n": "x0"}, "c2"]},
        ]
        assert lint_requests(SCHEMA, FDS, requests) == []

    def test_arity_and_domain(self):
        schema = RelationSchema(
            "R", "A B C", domains={"B": Domain(["x", "y"], name="B")}
        )
        out = lint_requests(
            schema,
            FDS,
            [
                {"do": "insert", "row": ["a", "x"]},
                {"do": "insert", "row": ["a", "z", "c"]},
            ],
        )
        assert [(d.code, d.line) for d in out] == [
            ("E_ARITY", 0),
            ("E_DOMAIN", 1),
        ]

    def test_fd_conflict_is_a_warning_not_a_refusal(self):
        requests = [
            {"do": "insert", "row": ["a", "b1", "c"]},
            {"do": "insert", "row": ["a", "b2", "c"]},
        ]
        diagnostics = lint_requests(SCHEMA, FDS, requests)
        assert [d.code for d in diagnostics] == ["E_FD_CONFLICT"]
        assert not has_errors(diagnostics)

    def test_rollback_underflow_and_snapshot_depth(self):
        assert codes([{"do": "rollback"}]) == [("E_ROLLBACK_UNDERFLOW", 0)]
        assert codes([{"do": "rollback"}], snapshot_depth=1) == []

    def test_rollback_to_preexisting_snapshot_goes_opaque(self):
        # the pre-existing snapshot's rows were never seen statically, so
        # bounds after the rollback are unknowable — only provably-bad
        # negatives are flagged
        requests = [
            {"do": "rollback"},
            {"do": "delete", "index": 5},
            {"do": "delete", "index": -1},
        ]
        assert codes(requests, snapshot_depth=1) == [("E_BAD_INDEX", 2)]

    def test_fill_on_constant(self):
        requests = [{"do": "fill", "index": 0, "attr": "B", "value": "b9"}]
        assert codes(requests, rows=[["a", "b", "c"]]) == [("E_FILL_CONST", 0)]

    def test_fill_on_live_null_is_clean(self):
        requests = [{"do": "fill", "index": 0, "attr": "B", "value": "b9"}]
        assert codes(requests, rows=[["a", null(), "c"]]) == []
