"""End-to-end scenario: design a schema, store incomplete data, maintain it.

One continuous story exercising every layer together:

1. design: closure/keys/BCNF over the paper's employee scheme;
2. storage: component instances, re-padded to a universal instance with
   nulls (section 7's weakened universal relation assumption);
3. maintenance: chase-based acquisition and guarded modifications;
4. verification: TEST-FDs verdicts match brute-force semantics throughout.
"""

from repro.armstrong import candidate_keys
from repro.chase import minimally_incomplete, weakly_satisfiable
from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.schema import RelationSchema
from repro.core.values import is_null, null
from repro.normalization import (
    bcnf_decompose,
    decompose_instance,
    is_lossless_join,
    universal_instance,
)
from repro.testfd import CONVENTION_WEAK, check_fds
from repro.updates import GuardedRelation
from repro.workloads.paper import figure_1_scheme


def test_full_employee_lifecycle():
    schema, fds = figure_1_scheme()

    # -- 1. design ---------------------------------------------------------
    assert candidate_keys(schema.attributes, fds) == [("E#",)]
    components = bcnf_decompose(schema.attributes, fds)
    schemes = [attrs for attrs, _ in components]
    assert is_lossless_join(schema.attributes, schemes, fds)

    # -- 2. storage: total data, decomposed, then re-padded ------------------
    total = Relation(
        schema,
        [
            (1, 50, "d1", "permanent"),
            (2, 60, "d1", "permanent"),
            (3, 70, "d2", "temporary"),
        ],
    )
    parts = decompose_instance(total, schemes)
    padded = universal_instance(schema, parts)
    # the padded instance has gaps but remains weakly consistent
    assert padded.has_nulls()
    assert weakly_satisfiable(padded, fds)

    # -- 3. maintenance: chase grounds what the components jointly know ------
    settled = minimally_incomplete(padded, fds)
    # each employee's padded row recovered its salary and department
    by_e = {}
    for row in settled.relation.rows:
        key = row["E#"]
        if not is_null(key):
            by_e.setdefault(key, []).append(row)
    assert any(row["CT"] == "permanent" for row in by_e[1])

    # -- 4. guarded modifications on top ---------------------------------------
    guard = GuardedRelation(
        schema, fds, rows=[tuple(r.values) for r in total.rows]
    )
    assert guard.insert((4, null(), "d1", null())).accepted
    assert guard.relation[3]["CT"] == "permanent"  # acquired internally
    assert not guard.insert((1, 99, "d1", "permanent")).accepted

    # -- 5. verification: fast tests match semantics -----------------------------
    outcome = check_fds(
        guard.relation, fds, CONVENTION_WEAK, ensure_minimal=True
    )
    assert outcome.satisfied
    assert weakly_satisfied(fds, guard.relation)


def test_conflicting_sources_detected_end_to_end():
    schema, fds = figure_1_scheme()
    hr_feed = Relation(
        RelationSchema("hr", "E# SL D#"), [(1, 50, "d1")]
    )
    payroll_feed = Relation(
        RelationSchema("payroll", "E# SL CT"), [(1, 55, "permanent")]
    )
    padded = universal_instance(schema, [hr_feed, payroll_feed])
    # the two sources disagree on employee 1's salary
    assert not weakly_satisfiable(padded, fds)
    outcome = check_fds(padded, fds, CONVENTION_WEAK, ensure_minimal=True)
    assert not outcome.satisfied
    assert outcome.witness.fd.lhs == ("E#",)
