"""Integration: every example script runs and prints its key findings.

Examples are documentation that executes; these tests keep them honest.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "employee_database.py",
        "data_cleaning.py",
        "schema_design.py",
        "logic_equivalence.py",
        "null_queries.py",
        "update_workflow.py",
        "durability_tour.py",
        "server_tour.py",
        "lint_tour.py",
        "query_tour.py",
        "optimize_tour.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "condition=[F2]" in out
    assert "strongly holds: False" in out
    assert "weakly holds:   True" in out
    assert "weakly satisfiable? False" in out


def test_employee_database():
    out = run_example("employee_database.py")
    assert "holds classically: True" in out
    assert "strongly satisfied: False" in out
    assert "weakly satisfied:   True" in out
    assert "inferred:" in out and "permanent" in out
    assert "ACCEPT: a new employee in a new department" in out
    assert "REJECT: a contract disagreeing with d1's" in out
    assert "ACCEPT: employee 101 with a concrete salary" in out
    assert "REJECT: employee 103 with a second salary" in out


def test_data_cleaning():
    out = run_example("data_cleaning.py")
    assert "cells grounded: 4" in out
    assert "linked unknowns (NEC)" in out
    assert "weakly satisfiable: False" in out
    assert "poisoned cells: [(0, 'city'), (1, 'city')]" in out


def test_schema_design():
    out = run_example("schema_design.py")
    assert "candidate keys: [('order',)]" in out
    assert "lossless join: True" in out
    assert "dependency preserving: True" in out
    assert "weakly satisfies the rules: True" in out
    assert "weakly satisfies = False" in out


def test_logic_equivalence():
    out = run_example("logic_equivalence.py")
    assert "strong inference: True" in out
    assert "weak inference:   False" in out
    assert "verified: True" in out
    assert "That is Lemma 3" in out.replace("\n", " ") or "that is Lemma 3" in out


def test_null_queries():
    out = run_example("null_queries.py")
    assert "least-ext: unknown" in out
    assert "least-ext: true" in out
    assert "certainly married: ['Mary']" in out
    assert "possibly married:  ['John', 'Mary']" in out


def test_durability_tour():
    out = run_example("durability_tour.py")
    assert "checkpoint: 4 op(s) absorbed" in out
    assert "torn tail dropped: True" in out
    assert "recovered fixpoint verified: True" in out
    assert "child exited with" in out
    assert "crash-injected recovery verified: True" in out


def test_server_tour():
    out = run_example("server_tour.py")
    assert "directory locked while serving: True" in out
    assert "append+fsync(s) for 48 ops" in out
    assert "auto-checkpoint fired: True" in out
    assert "snapshot read at seq 48: 48 row(s)" in out
    assert "read equals the acked prefix: True" in out
    assert "zip -> city weakly satisfied while serving: True" in out
    assert "recovered fixpoint verified: True" in out


def test_query_tour():
    out = run_example("query_tour.py")
    assert "least evaluation promoted bob" in out
    assert "shared null -> certain, distinct -> maybe" in out
    assert "chased rows:" in out
    assert "answer as_of journal seq: 2" in out
    assert "every answer is a serial prefix" in out


def test_optimize_tour():
    out = run_example("optimize_tour.py")
    assert "select-pushdown(join)" in out
    assert "contradiction-elimination" in out
    assert "field-identical to naive evaluation: True" in out
    assert "line 1: W_CROSS_PRODUCT (warning)" in out
    assert "line 2: E_EMPTY_CERTAIN (error)" in out
    assert "line 3: W_GROUND_BLOWUP (warning)" in out
    assert "explain reply carries a plan, no lease: True" in out
    assert "refused before any lease: True" in out


def test_lint_tour():
    out = run_example("lint_tour.py")
    assert "one pass over 8 lines: 6 finding(s)" in out
    assert "E_ARITY" in out and "E_BAD_INDEX" in out
    assert "E_UNKNOWN_ATTR" in out and "E_FILL_CONST" in out
    assert "E_ROLLBACK_UNDERFLOW" in out
    assert "errors: 5, warnings: 1" in out
    assert "clean script: 0 finding(s) (errors: False)" in out
    assert "lint-clean script executed without raising: True" in out
    assert "line 2: E_FD_CONFLICT (warning)" in out
    assert "line 3: E_FD_CONFLICT (error)" in out


def test_update_workflow():
    out = run_example("update_workflow.py")
    assert "ACCEPT insert" in out and "[forced 1 substitution(s)]" in out
    assert "REJECT insert" in out
    assert "REJECT update" in out
    assert "ACCEPT delete" in out
    assert "Proposition 1 condition [T1]" in out
    assert "weakly satisfiable (no nothing)" in out
