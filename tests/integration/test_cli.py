"""Tests for the command-line interface."""

import pytest

from repro.cli import load_relation, main, parse_domains
from repro.core.values import is_null
from repro.errors import ReproError


@pytest.fixture
def customers_csv(tmp_path):
    path = tmp_path / "customers.csv"
    path.write_text(
        "name,zip,city\n"
        "Ada,10001,New York\n"
        "Bob,10001,-\n"
        "Cid,60601,Chicago\n"
    )
    return str(path)


@pytest.fixture
def dirty_csv(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(
        "name,zip,city\n"
        "Ada,10001,New York\n"
        "Mal,10001,Newark\n"
    )
    return str(path)


class TestLoader:
    def test_header_and_rows(self, customers_csv):
        r = load_relation(customers_csv)
        assert r.schema.attributes == ("name", "zip", "city")
        assert len(r) == 3

    def test_null_tokens(self, customers_csv):
        r = load_relation(customers_csv)
        assert is_null(r[1]["city"])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,B\n\n1,2\n")
        assert len(load_relation(str(path))) == 1

    def test_arity_error(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(ReproError):
            load_relation(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(ReproError):
            load_relation(str(path))

    def test_parse_domains(self):
        domains = parse_domains(["A=a1,a2", "B=x"])
        assert list(domains["A"]) == ["a1", "a2"]
        with pytest.raises(ReproError):
            parse_domains(["A"])


class TestCheck:
    def test_satisfiable(self, customers_csv, capsys):
        code = main(["check", "--data", customers_csv, "--fds", "zip -> city"])
        assert code == 0
        assert "yes" in capsys.readouterr().out

    def test_violation(self, dirty_csv, capsys):
        code = main(["check", "--data", dirty_csv, "--fds", "zip -> city"])
        assert code == 1
        out = capsys.readouterr().out
        assert "no" in out and "zip -> city" in out

    def test_strong_convention(self, customers_csv, capsys):
        code = main(
            [
                "check", "--data", customers_csv,
                "--fds", "zip -> city", "--convention", "strong",
            ]
        )
        assert code == 1  # the null city blocks strong satisfaction

    def test_missing_file(self, capsys):
        code = main(["check", "--data", "/nonexistent.csv", "--fds", "A -> B"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestChase:
    def test_grounds_null(self, customers_csv, capsys):
        code = main(["chase", "--data", customers_csv, "--fds", "zip -> city"])
        assert code == 0
        out = capsys.readouterr().out
        assert "New York" in out
        assert "grounded a null" in out

    def test_conflict_exit_code(self, dirty_csv, capsys):
        code = main(["chase", "--data", dirty_csv, "--fds", "zip -> city"])
        assert code == 1
        assert "NOT weakly satisfiable" in capsys.readouterr().out


class TestDesignCommands:
    def test_keys(self, capsys):
        code = main(
            ["keys", "--attrs", "A B C", "--fds", "A -> B; B -> C"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "A"

    def test_closure(self, capsys):
        code = main(
            [
                "closure", "--attrs", "A B C",
                "--fds", "A -> B; B -> C", "--of", "A",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "A B C"

    def test_normalize_bcnf(self, capsys):
        code = main(
            ["normalize", "--attrs", "A B C", "--fds", "A -> B; B -> C"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal cover" in out
        assert "B C" in out

    def test_normalize_3nf(self, capsys):
        code = main(
            [
                "normalize", "--attrs", "A B C",
                "--fds", "A -> B; B -> C", "--method", "3nf",
            ]
        )
        assert code == 0
        assert "A B" in capsys.readouterr().out


class TestEngineAndMethodFlags:
    def test_chase_engine_choices(self, customers_csv, capsys):
        for engine in ("auto", "sweep", "indexed", "congruence"):
            code = main(
                ["chase", "--data", customers_csv, "--fds", "zip -> city",
                 "--engine", engine]
            )
            assert code == 0
            assert "New York" in capsys.readouterr().out

    def test_chase_engine_rejects_unknown(self, customers_csv, capsys):
        with pytest.raises(SystemExit):
            main(["chase", "--data", customers_csv, "--fds", "zip -> city",
                  "--engine", "warp"])

    def test_check_method_choices(self, customers_csv, capsys):
        for method in ("auto", "sortmerge", "pairwise", "bucket", "batched"):
            code = main(
                ["check", "--data", customers_csv, "--fds", "zip -> city",
                 "--method", method]
            )
            assert code == 0
            capsys.readouterr()

    def test_check_method_rejects_unknown(self, customers_csv):
        with pytest.raises(SystemExit):
            main(["check", "--data", customers_csv, "--fds", "zip -> city",
                  "--method", "psychic"])


class TestSessionCommand:
    def test_script_of_ops(self, customers_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text(
            "# exercise the whole vocabulary\n"
            "insert Eve, 10001, -\n"
            "check weak\n"
            "snapshot\n"
            "insert Mal, 10001, Newark\n"
            "rollback\n"
            "update 3 name=Eva\n"
            "delete 0\n"
            "show\n"
        )
        code = main(
            ["session", "--data", customers_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "insert -> row 3" in out
        assert "rollback to snapshot #1" in out
        assert "check weak: satisfied" in out
        assert "Eva" in out
        # sessions keep *raw* semantics: deleting Ada's row removed the
        # only forcer of the zip-10001 city, so the grounding dissolves
        # back into a shared unknown (one NEC class) — unlike
        # GuardedRelation's propagate ratchet
        assert "1 NEC classes" in out

    def test_poisoning_script_exits_one(self, dirty_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("insert Zed, 10001, Boston\n")
        code = main(
            ["session", "--data", dirty_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        assert code == 1
        assert "INCONSISTENT" in capsys.readouterr().out

    def test_empty_start_with_attrs(self, capsys):
        import io
        import sys as _sys

        stdin = _sys.stdin
        _sys.stdin = io.StringIO("insert a, b\ninsert a, -\n")
        try:
            code = main(["session", "--attrs", "A B", "--fds", "A -> B"])
        finally:
            _sys.stdin = stdin
        out = capsys.readouterr().out
        assert code == 0
        assert "insert -> row 1" in out

    def test_stats_flag_and_op(self, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        lines = [f"insert a{i}, b{i}, c{i}" for i in range(8)]
        lines += ["delete 0", "stats"]  # old settled victim: retirement
        script.write_text("\n".join(lines) + "\n")
        code = main(
            ["session", "--attrs", "A B C", "--fds", "A -> B",
             "--script", str(script), "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # once from the script op, once from the --stats flag at exit
        assert out.count("session stats: retire_fast=1") == 2
        assert "trail_replay=0" in out
        assert "level_rebuild=0" in out

    def test_needs_data_or_attrs(self, capsys):
        code = main(["session", "--fds", "A -> B", "--script", "/dev/null"])
        assert code == 2
        assert "needs --data or --attrs" in capsys.readouterr().err

    def test_bad_op_reports_line_and_op_text(self, customers_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("insert Eve, 10001, Boston\nlevitate 3\n")
        code = main(
            ["session", "--data", customers_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "'levitate 3'" in err  # the op text, as written

    def test_bad_operand_reports_line_and_op_text(self, customers_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text(
            "insert Eve, 10001, Boston\n"
            "# a comment line\n"
            "delete nine   # not an index\n"
        )
        code = main(
            ["session", "--data", customers_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "line 3" in err
        assert "'delete nine'" in err

    def test_replace_and_adopt_ops(self, customers_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("replace 2 Cid, 10001, -\nadopt\n")
        code = main(
            ["session", "--data", customers_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replace row 2" in out
        # Bob's null and the replaced Cid null were both grounded by the
        # chase; adopt committed them
        assert "adopt: 2 substitution(s) committed" in out

    def test_checkpoint_op_is_db_only(self, customers_csv, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("checkpoint\n")
        code = main(
            ["session", "--data", customers_csv, "--fds", "zip -> city",
             "--script", str(script)]
        )
        assert code == 2
        assert "durable-database op" in capsys.readouterr().err


class TestDbCommands:
    FDS = "zip -> city"

    def _init(self, tmp_path, capsys):
        root = str(tmp_path / "db")
        code = main(
            ["db", "init", root, "--name", "people",
             "--attrs", "name zip city", "--fds", self.FDS, "--sync", "flush"]
        )
        assert code == 0
        assert "created relation 'people'" in capsys.readouterr().out
        return root

    def test_init_ingest_recover_stats_roundtrip(
        self, tmp_path, customers_csv, capsys
    ):
        root = self._init(tmp_path, capsys)
        script = tmp_path / "ops.txt"
        script.write_text(
            "insert Eve, 10001, -\n"
            "snapshot\n"
            "insert Mal, 10001, Newark\n"
            "rollback\n"
            "checkpoint\n"
            "update 3 name=Eva\n"
        )
        code = main(
            ["db", "ingest", root, "--name", "people", "--data", customers_csv,
             "--script", str(script), "--stats", "--sync", "flush"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ingested" in out and "3 row(s) journalled" in out
        assert "checkpoint: 7 op(s) absorbed" in out  # 3 CSV + 4 script ops
        assert "wal_ops=1" in out  # only the post-checkpoint update remains

        # reopening replays the tail over the checkpoint
        code = main(["db", "recover", root, "--sync", "flush"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpoint seq 7 + 1 replayed op(s)" in out
        assert "fixpoint verified: True" in out

        code = main(["db", "stats", root, "--sync", "flush"])
        out = capsys.readouterr().out
        assert code == 0
        assert "people:" in out and "rows=4" in out

    def test_db_check(self, tmp_path, customers_csv, dirty_csv, capsys):
        root = self._init(tmp_path, capsys)
        code = main(
            ["db", "ingest", root, "--name", "people", "--data", customers_csv,
             "--sync", "flush"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["db", "check", root, "--name", "people", "--sync", "flush"])
        assert code == 0
        assert "yes" in capsys.readouterr().out

    def test_db_ingest_poisoning_exits_one(self, tmp_path, capsys):
        root = self._init(tmp_path, capsys)
        script = tmp_path / "ops.txt"
        script.write_text(
            "insert Ada, 10001, New York\ninsert Mal, 10001, Newark\n"
        )
        code = main(
            ["db", "ingest", root, "--name", "people", "--script", str(script),
             "--sync", "flush"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "INCONSISTENT" in out
        # ...and the poisoned state is durable
        code = main(["db", "recover", root, "--sync", "flush"])
        assert code == 0
        assert "verified: True" in capsys.readouterr().out

    def test_db_ingest_script_error_reports_op_text(self, tmp_path, capsys):
        root = self._init(tmp_path, capsys)
        script = tmp_path / "ops.txt"
        script.write_text("insert Ada, 10001, NYC\nfill 0 city x\n")
        code = main(
            ["db", "ingest", root, "--name", "people", "--script", str(script),
             "--sync", "flush"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "line 2" in captured.err
        assert "'fill 0 city x'" in captured.err
        # the failed op was never journalled: recovery sees one insert
        code = main(["db", "recover", root, "--sync", "flush"])
        assert "1 replayed op(s)" in capsys.readouterr().out

    def test_db_unknown_relation(self, tmp_path, capsys):
        root = self._init(tmp_path, capsys)
        code = main(["db", "check", root, "--name", "ghost", "--sync", "flush"])
        assert code == 2
        assert "no relation 'ghost'" in capsys.readouterr().err

    def test_db_checkpoint_command(self, tmp_path, customers_csv, capsys):
        root = self._init(tmp_path, capsys)
        main(
            ["db", "ingest", root, "--name", "people", "--data", customers_csv,
             "--sync", "flush"]
        )
        capsys.readouterr()
        code = main(["db", "checkpoint", root, "--sync", "flush"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpointed 'people': 3 op(s)" in out
