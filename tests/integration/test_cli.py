"""Tests for the command-line interface."""

import pytest

from repro.cli import load_relation, main, parse_domains
from repro.core.values import is_null
from repro.errors import ReproError


@pytest.fixture
def customers_csv(tmp_path):
    path = tmp_path / "customers.csv"
    path.write_text(
        "name,zip,city\n"
        "Ada,10001,New York\n"
        "Bob,10001,-\n"
        "Cid,60601,Chicago\n"
    )
    return str(path)


@pytest.fixture
def dirty_csv(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(
        "name,zip,city\n"
        "Ada,10001,New York\n"
        "Mal,10001,Newark\n"
    )
    return str(path)


class TestLoader:
    def test_header_and_rows(self, customers_csv):
        r = load_relation(customers_csv)
        assert r.schema.attributes == ("name", "zip", "city")
        assert len(r) == 3

    def test_null_tokens(self, customers_csv):
        r = load_relation(customers_csv)
        assert is_null(r[1]["city"])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,B\n\n1,2\n")
        assert len(load_relation(str(path))) == 1

    def test_arity_error(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(ReproError):
            load_relation(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(ReproError):
            load_relation(str(path))

    def test_parse_domains(self):
        domains = parse_domains(["A=a1,a2", "B=x"])
        assert list(domains["A"]) == ["a1", "a2"]
        with pytest.raises(ReproError):
            parse_domains(["A"])


class TestCheck:
    def test_satisfiable(self, customers_csv, capsys):
        code = main(["check", "--data", customers_csv, "--fds", "zip -> city"])
        assert code == 0
        assert "yes" in capsys.readouterr().out

    def test_violation(self, dirty_csv, capsys):
        code = main(["check", "--data", dirty_csv, "--fds", "zip -> city"])
        assert code == 1
        out = capsys.readouterr().out
        assert "no" in out and "zip -> city" in out

    def test_strong_convention(self, customers_csv, capsys):
        code = main(
            [
                "check", "--data", customers_csv,
                "--fds", "zip -> city", "--convention", "strong",
            ]
        )
        assert code == 1  # the null city blocks strong satisfaction

    def test_missing_file(self, capsys):
        code = main(["check", "--data", "/nonexistent.csv", "--fds", "A -> B"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestChase:
    def test_grounds_null(self, customers_csv, capsys):
        code = main(["chase", "--data", customers_csv, "--fds", "zip -> city"])
        assert code == 0
        out = capsys.readouterr().out
        assert "New York" in out
        assert "grounded a null" in out

    def test_conflict_exit_code(self, dirty_csv, capsys):
        code = main(["chase", "--data", dirty_csv, "--fds", "zip -> city"])
        assert code == 1
        assert "NOT weakly satisfiable" in capsys.readouterr().out


class TestDesignCommands:
    def test_keys(self, capsys):
        code = main(
            ["keys", "--attrs", "A B C", "--fds", "A -> B; B -> C"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "A"

    def test_closure(self, capsys):
        code = main(
            [
                "closure", "--attrs", "A B C",
                "--fds", "A -> B; B -> C", "--of", "A",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "A B C"

    def test_normalize_bcnf(self, capsys):
        code = main(
            ["normalize", "--attrs", "A B C", "--fds", "A -> B; B -> C"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal cover" in out
        assert "B C" in out

    def test_normalize_3nf(self, capsys):
        code = main(
            [
                "normalize", "--attrs", "A B C",
                "--fds", "A -> B; B -> C", "--method", "3nf",
            ]
        )
        assert code == 0
        assert "A B" in capsys.readouterr().out
