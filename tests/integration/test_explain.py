"""Tests for the explanation renderer."""

from repro.chase import MODE_EXTENDED, chase
from repro.explain import explain_chase, explain_fd_value, explain_outcome
from repro.testfd import CONVENTION_WEAK, check_fds
from repro.workloads.paper import figure_2_cases, figure_2_fd, section_6_example

from ..helpers import rel


class TestExplainFdValue:
    def test_figure2_conditions_narrated(self):
        fd = figure_2_fd()
        for case in figure_2_cases():
            text = explain_fd_value(fd, case.relation[0], case.relation)
            assert f"[{case.expected_condition}]" in text
            assert str(case.expected_value) in text

    def test_unknown_without_condition(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        text = explain_fd_value("A -> B", r[0], r)
        assert "unknown" in text
        assert "no condition applies" in text

    def test_outside_proposition1_setting(self):
        r = rel("A B", [("a", "-"), ("-", 1)])
        text = explain_fd_value("A -> B", r[0], r)
        assert "outside Proposition 1" in text

    def test_total_tuple(self):
        r = rel("A B", [("a", 1)])
        text = explain_fd_value("A -> B", r[0], r)
        assert "total" in text


class TestExplainOutcome:
    def test_yes(self):
        r = rel("A B", [("a", 1)])
        outcome = check_fds(r, ["A -> B"], CONVENTION_WEAK)
        assert "yes" in explain_outcome(outcome, r)

    def test_no_with_witness(self):
        r = rel("A B", [("a", 1), ("a", 2)])
        outcome = check_fds(r, ["A -> B"], CONVENTION_WEAK)
        text = explain_outcome(outcome, r)
        assert "no" in text and "A -> B" in text and "conflict" in text


class TestExplainChase:
    def test_narrates_each_action_kind(self):
        _, fds, relation = section_6_example()
        result = chase(relation, fds, mode=MODE_EXTENDED)
        text = explain_chase(result)
        assert "linked two unknowns" in text
        assert "poisoned to nothing" in text
        assert "NOT weakly satisfiable" in text

    def test_narrates_substitutions(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        result = chase(r, ["A -> B"])
        text = explain_chase(result)
        assert "grounded a null" in text
        assert ":= 1" in text
        assert "weakly satisfiable (no nothing)" in text
