"""Tests for the seeded workload generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import all_hold_classical
from repro.core.satisfaction import weakly_satisfied
from repro.workloads.generator import (
    attribute_names,
    inject_nulls,
    random_fds,
    random_instance,
    random_satisfiable_instance,
    random_schema,
    satisfiable_with_nulls,
)


class TestSchemas:
    def test_attribute_names(self):
        assert attribute_names(3) == ("A1", "A2", "A3")

    def test_unbounded_default(self):
        schema = random_schema(3)
        assert not schema.domain("A1").is_finite

    def test_finite_domains(self):
        schema = random_schema(2, domain_size=3)
        assert len(schema.domain("A1")) == 3


class TestRandomFds:
    def test_count_and_shape(self):
        fds = random_fds(7, attribute_names(5), count=4, max_lhs=2)
        assert len(fds) == 4
        for fd in fds:
            assert 1 <= len(fd.lhs) <= 2
            assert len(fd.rhs) == 1
            assert not fd.is_trivial()

    def test_deterministic_by_seed(self):
        attrs = attribute_names(5)
        assert random_fds(3, attrs, 4) == random_fds(3, attrs, 4)
        assert random_fds(3, attrs, 4) != random_fds(4, attrs, 4)


class TestInstances:
    def test_random_instance_shape(self):
        schema = random_schema(3)
        r = random_instance(0, schema, 10)
        assert len(r) == 10 and not r.has_nulls()

    def test_satisfiable_instance_satisfies(self):
        schema = random_schema(4)
        fds = random_fds(1, schema.attributes, 3)
        r = random_satisfiable_instance(2, schema, fds, 30)
        assert all_hold_classical(fds, r)

    def test_inject_nulls_density(self):
        schema = random_schema(3)
        r = random_instance(0, schema, 50)
        punched = inject_nulls(1, r, density=0.3)
        assert 0 < punched.null_count() < 150
        untouched = inject_nulls(1, r, density=0.0)
        assert untouched.null_count() == 0

    def test_inject_nulls_scoped(self):
        schema = random_schema(2)
        r = random_instance(0, schema, 20)
        punched = inject_nulls(1, r, density=1.0, attributes=["A1"])
        assert punched.null_count() == 20
        assert not punched.has_nulls("A2")

    def test_seeded_reproducibility(self):
        schema = random_schema(3)
        first = random_instance(5, schema, 10)
        second = random_instance(5, schema, 10)
        assert [tuple(r.values) for r in first] == [
            tuple(r.values) for r in second
        ]


class TestSatisfiableWithNulls:
    def test_witness_completes_the_instance(self):
        schema = random_schema(3)
        fds = random_fds(0, schema.attributes, 2)
        punched, witness = satisfiable_with_nulls(3, schema, fds, 12, density=0.3)
        assert all_hold_classical(fds, witness)
        assert len(punched) == len(witness)

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_always_weakly_satisfiable(self, seed):
        from repro.chase import weakly_satisfiable

        schema = random_schema(3)
        fds = random_fds(seed, schema.attributes, 2)
        punched, _ = satisfiable_with_nulls(seed, schema, fds, 8, density=0.4)
        assert weakly_satisfiable(punched, fds)
