"""Tests for the reconstructed paper figures — each constraint from the
prose is asserted explicitly (this IS experiments E1/E2/E6/E7's core)."""

from repro.chase import MODE_BASIC, MODE_EXTENDED, chase, weakly_satisfiable
from repro.core.fd import all_hold_classical
from repro.core.interpretation import evaluate_fd, proposition1_case
from repro.core.satisfaction import (
    strongly_satisfied,
    weakly_holds_each,
    weakly_satisfied,
)
from repro.core.truth import TRUE
from repro.core.values import NOTHING
from repro.workloads.paper import (
    figure_1_2_instance,
    figure_1_3_instance,
    figure_1_scheme,
    figure_2_cases,
    figure_2_fd,
    figure_5,
    section_6_example,
)


class TestFigure1:
    def test_scheme_shape(self):
        schema, fds = figure_1_scheme()
        assert schema.attributes == ("E#", "SL", "D#", "CT")
        assert len(fds) == 2

    def test_1_2_both_fds_hold(self):
        # "It is trivial to verify that the functional dependencies
        #  E# -> SL,D# and D# -> CT hold in the instance r of figure 1.2."
        _, fds = figure_1_scheme()
        assert all_hold_classical(fds, figure_1_2_instance())

    def test_1_3_has_nulls_and_weakly_satisfies(self):
        _, fds = figure_1_scheme()
        instance = figure_1_3_instance()
        assert instance.has_nulls()
        assert weakly_satisfied(fds, instance)
        assert not strongly_satisfied(fds, instance)

    def test_fresh_objects_per_call(self):
        assert figure_1_3_instance()[0]["SL"] is not figure_1_3_instance()[0]["SL"]


class TestFigure2:
    def test_expected_values_and_conditions(self):
        fd = figure_2_fd()
        for case in figure_2_cases():
            t1 = case.relation[0]
            result = proposition1_case(fd, t1, case.relation)
            assert result.value is case.expected_value, case.name
            assert result.condition == case.expected_condition, case.name
            # and the exact evaluator agrees
            assert evaluate_fd(fd, t1, case.relation) is case.expected_value

    def test_r4_domain_restriction_present(self):
        r4 = [c for c in figure_2_cases() if c.name == "r4"][0]
        domain = r4.relation.schema.domain("A")
        assert domain.is_finite and len(domain) == 2


class TestSection6:
    def test_the_interaction(self):
        _, fds, relation = section_6_example()
        assert weakly_holds_each(fds, relation)  # independently fine
        assert not weakly_satisfied(fds, relation)  # jointly impossible
        assert not weakly_satisfiable(relation, fds)  # chase agrees


class TestFigure5:
    def test_order_dependence_and_nothing_column(self):
        _, fds, relation = figure_5()
        first_order = list(fds)
        second_order = list(reversed(first_order))
        r_prime = chase(relation, first_order, mode=MODE_BASIC, strategy="fd_order")
        r_dprime = chase(relation, second_order, mode=MODE_BASIC, strategy="fd_order")
        assert r_prime.relation[0]["B"] == "b1"
        assert r_dprime.relation[0]["B"] == "b2"
        extended = chase(relation, first_order, mode=MODE_EXTENDED)
        assert all(row["B"] is NOTHING for row in extended.relation)
