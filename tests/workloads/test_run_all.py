"""Smoke test for the benchmark harness: ``run_all.py --quick`` works and
its JSON matches the committed baseline schema.

The committed ``BENCH_PR*.json`` baselines are only useful if later runs
keep emitting the same shape; this guards the format against drift.  The
run is restricted (``--only``) to the two sub-second benchmarks — the
point is the harness and the schema, not the series — but it exercises the
full path: subprocess dispatch, quick-mode environment switch, metric
parsing (E4 prints both a slope and a speedup line), and the JSON writer.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
RUN_ALL = REPO_ROOT / "benchmarks" / "run_all.py"


def _run_quick(tmp_path, only=("e1_", "e4")):  # "e1" alone would match e10/e11
    out = tmp_path / "bench.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, str(RUN_ALL), "--quick", "--out", str(out), "--only", *only],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )
    return proc, out


def assert_bench_schema(report):
    """The BENCH_PR*.json contract, field by field."""
    assert set(report) == {"quick", "python", "platform", "benchmarks"}
    assert isinstance(report["quick"], bool)
    assert isinstance(report["python"], str)
    assert isinstance(report["platform"], str)
    assert isinstance(report["benchmarks"], dict) and report["benchmarks"]
    for name, entry in report["benchmarks"].items():
        assert name.startswith("bench_")
        assert entry["status"] in ("ok", "error", "timeout")
        assert isinstance(entry["wall_s"], (int, float))
        for metrics_key in ("slopes", "speedups"):
            if metrics_key in entry:
                assert entry[metrics_key], f"{name}: empty {metrics_key}"
                for label, value in entry[metrics_key].items():
                    assert isinstance(label, str)
                    assert isinstance(value, (int, float))
        if "series" in entry:
            assert entry["series"], f"{name}: empty series"
            for label, values in entry["series"].items():
                assert isinstance(label, str)
                assert isinstance(values, list) and values
                assert all(isinstance(v, (int, float)) for v in values)


def test_quick_run_exits_zero_and_emits_schema(tmp_path):
    proc, out = _run_quick(tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert_bench_schema(report)
    assert report["quick"] is True
    assert set(report["benchmarks"]) == {
        "bench_e1_figure1", "bench_e4_testfds_variants"
    }
    for entry in report["benchmarks"].values():
        assert entry["status"] == "ok"
    # E4 prints slope lines and the shared-LHS batching speedup; the
    # parser must have captured both metric kinds
    e4 = report["benchmarks"]["bench_e4_testfds_variants"]
    assert "slopes" in e4
    assert "speedups" in e4


def test_no_benchmarks_matched_is_an_error(tmp_path):
    proc, _ = _run_quick(tmp_path, only=("zzz",))
    assert proc.returncode == 2


def test_committed_baselines_match_schema():
    """The checked-in baselines obey the same contract the harness emits."""
    for name in (
        "BENCH_PR1.json",
        "BENCH_PR2.json",
        "BENCH_PR3.json",
        "BENCH_PR4.json",
        "BENCH_PR5.json",
        "BENCH_PR6.json",
        "BENCH_PR7.json",
        "BENCH_PR8.json",
        "BENCH_PR9.json",
        "BENCH_PR10.json",
    ):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} missing from the repo root"
        assert_bench_schema(json.loads(path.read_text()))


def test_pr3_baseline_records_mixed_workload_series():
    """BENCH_PR3.json carries the session-vs-re-chase series: bench_a2 is
    discovered by default now, and its mixed-workload speedup line must
    have been captured by the metric parser."""
    report = json.loads((REPO_ROOT / "BENCH_PR3.json").read_text())
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert a2["status"] == "ok"
    speedups = a2["speedups"]
    key = "session mixed-workload speedup at largest configuration"
    assert key in speedups
    assert speedups[key] >= 3.0  # the PR 3 acceptance floor
    assert any("slope" in label for label in a2.get("slopes", {}))


def test_pr10_baseline_records_planner_series():
    """BENCH_PR10.json carries the Q1c planner series: the bucket
    equi-join's speedup over the nested loop, captured by the metric
    parser, at or above the PR 10 acceptance floor."""
    report = json.loads((REPO_ROOT / "BENCH_PR10.json").read_text())
    q1 = report["benchmarks"]["bench_q1_query"]
    assert q1["status"] == "ok"
    key = "optimized over naive equi-join speedup at largest configuration"
    assert key in q1["speedups"]
    assert q1["speedups"][key] >= 2.0  # the PR 10 acceptance floor
    assert "naive join wall ms by size" in q1["series"]
    assert "optimized join wall ms by size" in q1["series"]


def test_quick_discovery_includes_a2(tmp_path):
    """--quick (no --ablations) runs the mixed-workload series too."""
    proc, out = _run_quick(tmp_path, only=("a2",))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert set(report["benchmarks"]) == {"bench_a2_incremental"}
    entry = report["benchmarks"]["bench_a2_incremental"]
    assert entry["status"] == "ok"
    assert "session mixed-workload speedup at largest configuration" in entry.get(
        "speedups", {}
    )


def test_pr4_baseline_records_retirement_series():
    """BENCH_PR4.json carries the old-row-deletion series, and the
    retirement speedup clears the PR 4 acceptance floor (>= 3x over
    rewind/rebuild at the largest configuration)."""
    report = json.loads((REPO_ROOT / "BENCH_PR4.json").read_text())
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert a2["status"] == "ok"
    key = "old-row retirement speedup at largest configuration"
    assert a2["speedups"][key] >= 3.0
    assert "retirement delete-stream log-log slope" in a2["slopes"]
    # the mixed-workload headline must not have been traded away for it
    assert (
        a2["speedups"]["session mixed-workload speedup at largest configuration"]
        >= 3.0
    )


def test_pr5_baseline_records_durability_series():
    """BENCH_PR5.json carries bench_a3_durability: the WAL-overhead slopes
    and the checkpoint-recovery speedup, which must clear the PR 5
    acceptance floor (recovery from a checkpoint beats full-log replay by
    >= 3x at the largest configuration)."""
    report = json.loads((REPO_ROOT / "BENCH_PR5.json").read_text())
    a3 = report["benchmarks"]["bench_a3_durability"]
    assert a3["status"] == "ok"
    key = "checkpoint recovery speedup at largest configuration"
    assert a3["speedups"][key] >= 3.0
    assert "full-log recovery log-log slope" in a3["slopes"]
    assert "checkpointed recovery log-log slope" in a3["slopes"]
    assert "wal-flush insert-stream log-log slope" in a3["slopes"]
    # the session headlines must not have been traded away for durability
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert (
        a2["speedups"]["session mixed-workload speedup at largest configuration"]
        >= 3.0
    )
    assert (
        a2["speedups"]["old-row retirement speedup at largest configuration"]
        >= 3.0
    )


def test_pr8_baseline_records_pruning_series():
    """BENCH_PR8.json carries the E5d cover-pruning series: the pruned
    plan must beat the spelled-out transitive-closure FD set by >= 1.2x
    at the largest configuration (the PR 8 acceptance floor)."""
    report = json.loads((REPO_ROOT / "BENCH_PR8.json").read_text())
    e5 = report["benchmarks"]["bench_e5_chase_scaling"]
    assert e5["status"] == "ok"
    key = "cover-pruning speedup at largest configuration"
    assert e5["speedups"][key] >= 1.2
    assert "unpruned plan chase wall s by width" in e5["series"]
    assert "pruned plan chase wall s by width" in e5["series"]


def test_quick_discovery_includes_a3(tmp_path):
    """--quick (no --ablations) runs the durability series too."""
    proc, out = _run_quick(tmp_path, only=("a3",))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert set(report["benchmarks"]) == {"bench_a3_durability"}
    entry = report["benchmarks"]["bench_a3_durability"]
    assert entry["status"] == "ok"
    assert "checkpoint recovery speedup at largest configuration" in entry.get(
        "speedups", {}
    )


# ---------------------------------------------------------------------------
# the bench-regression guard (benchmarks/compare.py)
# ---------------------------------------------------------------------------

COMPARE = REPO_ROOT / "benchmarks" / "compare.py"


def _run_compare(fresh_path, *extra):
    return subprocess.run(
        [sys.executable, str(COMPARE), "--fresh", str(fresh_path), *extra],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        timeout=60,
    )


#: the latest committed baseline — compare.py's default reference, and the
#: doctoring source for the negative-path tests below
LATEST_BASELINE = "BENCH_PR10.json"


def test_compare_accepts_the_baseline_against_itself():
    proc = _run_compare(REPO_ROOT / LATEST_BASELINE)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok: schema matches" in proc.stdout


def test_compare_rejects_a_regressed_speedup(tmp_path):
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    a2 = report["benchmarks"]["bench_a2_incremental"]
    key = "old-row retirement speedup at largest configuration"
    a2["speedups"][key] = 0.5  # below even the cross-mode floor
    doctored = tmp_path / "regressed.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 1
    assert "regressed" in proc.stdout


def test_compare_rejects_a_broken_benchmark(tmp_path):
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    report["benchmarks"]["bench_e5_chase_scaling"]["status"] = "timeout"
    doctored = tmp_path / "broken.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 1
    assert "status 'timeout'" in proc.stdout


def test_compare_rejects_schema_drift(tmp_path):
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    del report["platform"]
    doctored = tmp_path / "drifted.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 1
    assert "top-level keys" in proc.stdout


def test_compare_rejects_a_vanished_benchmark(tmp_path):
    """A benchmark the baseline promised must still run in the fresh file."""
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    del report["benchmarks"]["bench_e5_chase_scaling"]
    doctored = tmp_path / "vanished.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 1
    assert "missing from fresh run" in proc.stdout


def test_compare_tolerates_fresh_only_benchmarks_and_labels(tmp_path):
    """The guard is one-directional: new benchmarks / speedup labels /
    series landing in the current PR (present only in the fresh run) must
    pass — they become guarded once a baseline containing them exists."""
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    report["benchmarks"]["bench_e99_brand_new"] = {
        "status": "ok",
        "wall_s": 0.5,
        "speedups": {"new optimization speedup at largest configuration": 9.0},
        "series": {"new wall s by size": [0.1, 0.2]},
    }
    e5 = report["benchmarks"]["bench_e5_chase_scaling"]
    e5.setdefault("speedups", {})["brand-new speedup line"] = 2.0
    doctored = tmp_path / "extended.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "fresh-only benchmark(s)" in proc.stdout
    assert "bench_e99_brand_new" in proc.stdout


def test_compare_rejects_a_malformed_series(tmp_path):
    report = json.loads((REPO_ROOT / LATEST_BASELINE).read_text())
    report["benchmarks"]["bench_e5_chase_scaling"]["series"] = {"bad": []}
    doctored = tmp_path / "badseries.json"
    doctored.write_text(json.dumps(report))
    proc = _run_compare(doctored)
    assert proc.returncode == 1
    assert "malformed series" in proc.stdout


def test_pr6_baseline_records_parallel_series():
    """BENCH_PR6.json carries the sharded-parallel-chase series: the
    worker-count speedups clear the PR 6 acceptance floor (>= 1.5x at 2+
    workers on the multi-component E5c workload), the per-size wall-time
    series are present for both bench_e5 and bench_a2, and the serial
    headlines were not traded away."""
    report = json.loads((REPO_ROOT / "BENCH_PR6.json").read_text())
    e5 = report["benchmarks"]["bench_e5_chase_scaling"]
    assert e5["status"] == "ok"
    for w in (2, 4):
        key = f"parallel chase speedup at {w} workers at largest configuration"
        assert e5["speedups"][key] >= 1.5
    assert any("parallel(2)" in label for label in e5["series"])
    assert any("unified" in label for label in e5["series"])
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert a2["status"] == "ok"
    assert (
        a2["speedups"]["parallel verify speedup at 2 workers at largest configuration"]
        >= 1.0
    )
    assert any("verify" in label for label in a2["series"])
    # serial headlines intact
    assert (
        a2["speedups"]["session mixed-workload speedup at largest configuration"]
        >= 3.0
    )
    assert (
        a2["speedups"]["old-row retirement speedup at largest configuration"]
        >= 3.0
    )
    a3 = report["benchmarks"]["bench_a3_durability"]
    assert (
        a3["speedups"]["checkpoint recovery speedup at largest configuration"]
        >= 3.0
    )


def test_pr7_baseline_records_serving_series():
    """BENCH_PR7.json carries bench_s1_server: the group-commit speedup
    at 8 concurrent clients clears the PR 7 acceptance floor (>= 3x over
    per-op-fsync serving), the throughput/latency-by-clients and
    writer-vs-readers series are captured, and the serial headlines (a2
    mixed + retirement, a3 checkpoint recovery, e5 parallel) were not
    traded away for the serving layer."""
    report = json.loads((REPO_ROOT / "BENCH_PR7.json").read_text())
    s1 = report["benchmarks"]["bench_s1_server"]
    assert s1["status"] == "ok"
    key = "group-commit speedup at 8 clients over per-op-fsync serving"
    assert s1["speedups"][key] >= 3.0
    assert "group-commit ops/sec by clients" in s1["series"]
    assert "per-op-fsync ops/sec by clients" in s1["series"]
    assert "group-commit p99 ms by clients" in s1["series"]
    assert "writer ops/sec by reader count" in s1["series"]
    assert "writer max ack gap ms by reader count" in s1["series"]
    # throughput must rise with client count under group commit
    gc = s1["series"]["group-commit ops/sec by clients"]
    assert gc[-1] > gc[0]
    # serial headlines intact
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert (
        a2["speedups"]["session mixed-workload speedup at largest configuration"]
        >= 3.0
    )
    assert (
        a2["speedups"]["old-row retirement speedup at largest configuration"]
        >= 3.0
    )
    a3 = report["benchmarks"]["bench_a3_durability"]
    assert (
        a3["speedups"]["checkpoint recovery speedup at largest configuration"]
        >= 3.0
    )
    e5 = report["benchmarks"]["bench_e5_chase_scaling"]
    assert any("parallel chase speedup" in k for k in e5["speedups"])


def test_pr9_baseline_records_query_series():
    """BENCH_PR9.json carries bench_q1_query: the least-vs-kleene
    evaluation series over the size ladder, the rows each mode proves
    certain, and the writer ack-gap series under query-verb readers
    (the query layer's no-stall guarantee, measured)."""
    report = json.loads((REPO_ROOT / "BENCH_PR9.json").read_text())
    q1 = report["benchmarks"]["bench_q1_query"]
    assert q1["status"] == "ok"
    series = q1["series"]
    assert "least select wall ms by size" in series
    assert "kleene select wall ms by size" in series
    assert "least join wall ms by size" in series
    # least-extension evaluation pays for exactness: never cheaper than
    # the truth-functional pass on the same instance ladder
    key = "kleene over least evaluation speedup at largest configuration"
    assert q1["speedups"][key] >= 1.0
    # more nulls -> more rows only least evaluation can prove certain
    promoted = series["rows promoted to certain by density"]
    assert promoted[0] == 0 and promoted[-1] > 0
    # the writer kept streaming while query readers hammered the verb
    gaps = series["writer max ack gap ms by query-reader count"]
    assert len(gaps) >= 2
    assert max(gaps) <= max(50.0, 10.0 * gaps[0])
    # serial + serving headlines intact
    a2 = report["benchmarks"]["bench_a2_incremental"]
    assert (
        a2["speedups"]["session mixed-workload speedup at largest configuration"]
        >= 3.0
    )
    a3 = report["benchmarks"]["bench_a3_durability"]
    assert (
        a3["speedups"]["checkpoint recovery speedup at largest configuration"]
        >= 3.0
    )
    s1 = report["benchmarks"]["bench_s1_server"]
    assert (
        "group-commit speedup at 8 clients over per-op-fsync serving"
        in s1["speedups"]
    )


def test_quick_discovery_includes_q1(tmp_path):
    """--quick (no --ablations) runs the query series too."""
    proc, out = _run_quick(tmp_path, only=("q1",))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert set(report["benchmarks"]) == {"bench_q1_query"}
    entry = report["benchmarks"]["bench_q1_query"]
    assert entry["status"] == "ok"
    assert "least select wall ms by size" in entry.get("series", {})
    assert "writer max ack gap ms by query-reader count" in entry["series"]


def test_quick_discovery_includes_s1(tmp_path):
    """--quick (no --ablations) runs the serving series too."""
    proc, out = _run_quick(tmp_path, only=("s1",))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert set(report["benchmarks"]) == {"bench_s1_server"}
    entry = report["benchmarks"]["bench_s1_server"]
    assert entry["status"] == "ok"
    assert (
        "group-commit speedup at 8 clients over per-op-fsync serving"
        in entry.get("speedups", {})
    )
