"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench.report import Table, geometric_sizes, loglog_slope, time_call


class TestTable:
    def test_render_contains_everything(self):
        table = Table("My results", ["n", "time"])
        table.add_row(10, 0.5)
        table.add_row(100, 1.25)
        text = table.render()
        assert "My results" in text
        assert "n" in text and "time" in text
        assert "100" in text and "1.25" in text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("t", ["x"])
        table.add_row(0.000001234)
        assert "e" in table.render().splitlines()[-1]


class TestSlope:
    def test_linear_data(self):
        xs = [10, 100, 1000]
        ys = [2 * x for x in xs]
        assert abs(loglog_slope(xs, ys) - 1.0) < 1e-9

    def test_quadratic_data(self):
        xs = [10, 100, 1000]
        ys = [3 * x * x for x in xs]
        assert abs(loglog_slope(xs, ys) - 2.0) < 1e-9

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestSizesAndTiming:
    def test_geometric_sizes(self):
        sizes = geometric_sizes(10, 2.0, 4)
        assert sizes == [10, 20, 40, 80]

    def test_geometric_dedupes(self):
        sizes = geometric_sizes(2, 1.2, 5)
        assert sizes == sorted(set(sizes))

    def test_time_call_returns_positive(self):
        elapsed = time_call(lambda: sum(range(1000)), repeat=2)
        assert elapsed > 0
