"""Tests for relation instances: columns, projection, completions AP(r, X)."""

import pytest

from repro.core.relation import Relation
from repro.core.values import NOTHING, null
from repro.errors import DomainError, NullsNotAllowedError, SchemaError

from ..helpers import rel, schema_of


class TestConstruction:
    def test_rows_from_sequences(self):
        r = rel("A B", [("a", "b"), ("a2", "b2")])
        assert len(r) == 2
        assert r[0]["A"] == "a"

    def test_row_schema_mismatch_rejected(self):
        r1 = rel("A B", [("a", "b")])
        other_schema = schema_of("X Y")
        with pytest.raises(SchemaError):
            Relation(other_schema, [r1[0]])

    def test_from_dicts(self):
        schema = schema_of("A B")
        r = Relation.from_dicts(schema, [{"A": 1, "B": 2}])
        assert r[0].values == (1, 2)

    def test_with_rows_appends(self):
        r = rel("A B", [("a", "b")])
        extended = r.with_rows([("c", "d")])
        assert len(extended) == 2 and len(r) == 1


class TestNullStructure:
    def test_has_nulls_scoped(self):
        r = rel("A B", [("a", "-")])
        assert r.has_nulls()
        assert r.has_nulls("B")
        assert not r.has_nulls("A")

    def test_null_count_counts_cells(self):
        n = null()
        schema = schema_of("A B")
        r = Relation(schema, [(n, n), ("a", null())])
        assert r.null_count() == 3
        assert len(r.nulls()) == 2  # distinct null objects

    def test_is_total_rejects_nothing_too(self):
        schema = schema_of("A")
        assert not Relation(schema, [(NOTHING,)]).is_total()
        assert Relation(schema, [("a",)]).is_total()

    def test_require_total(self):
        r = rel("A", [("-",)])
        with pytest.raises(NullsNotAllowedError):
            r.require_total("testing")


class TestColumnsAndDomains:
    def test_column(self):
        r = rel("A B", [("a", 1), ("b", 2)])
        assert r.column("B") == (1, 2)

    def test_column_constants_skips_nulls(self):
        r = rel("A", [("x",), ("-",), ("x",), ("y",)])
        assert r.column_constants("A") == ("x", "y")

    def test_enumeration_domain_prefers_declared(self):
        r = rel("A", [("a1",), ("-",)], domains={"A": ["a1", "a2", "a3"]})
        assert list(r.enumeration_domain("A")) == ["a1", "a2", "a3"]

    def test_enumeration_domain_effective_for_unbounded(self):
        r = rel("A", [("x",), ("-",)])
        dom = r.enumeration_domain("A")
        assert "x" in dom
        assert len(dom) == 3  # 'x' + (1 null + 1) fresh


class TestProjection:
    def test_project_distinct_collapses(self):
        r = rel("A B", [("a", "b"), ("a", "b"), ("a", "c")])
        assert len(r.project("A B")) == 2
        assert len(r.project("A")) == 1

    def test_project_keeps_duplicates_when_asked(self):
        r = rel("A B", [("a", "b"), ("a", "c")])
        assert len(r.project("A", distinct=False)) == 2

    def test_projected_nulls_stay_distinct(self):
        r = rel("A B", [("-", "b"), ("-", "b")])
        assert len(r.project("A")) == 2  # two different unknowns

    def test_distinct_dedupes_whole_rows(self):
        schema = schema_of("A")
        row = ("a",)
        r = Relation(schema, [row, row, ("b",)])
        assert len(r.distinct()) == 2


class TestCompletions:
    def test_total_instance_single_completion(self):
        r = rel("A B", [("a", "b")])
        assert len(list(r.completions())) == 1

    def test_ap_r_counts(self):
        r = rel(
            "A B",
            [("-", "b1"), ("a1", "-")],
            domains={"A": ["a1", "a2"], "B": ["b1", "b2", "b3"]},
        )
        completions = list(r.completions())
        assert len(completions) == 2 * 3
        assert r.completion_count() == 6

    def test_completion_substitutes_consistently_across_rows(self):
        n = null()
        schema = schema_of("A B", domains={"A": ["a1", "a2"]})
        r = Relation(schema, [(n, "b"), (n, "c")])
        for completed in r.completions():
            assert completed[0]["A"] == completed[1]["A"]
        assert r.completion_count() == 2

    def test_null_classes_link_distinct_nulls(self):
        n, m = null(), null()
        schema = schema_of("A B", domains={"A": ["a1", "a2"]})
        r = Relation(schema, [(n, "b"), (m, "c")])
        linked = list(r.completions(null_classes={n: "cls", m: "cls"}))
        assert len(linked) == 2
        for completed in linked:
            assert completed[0]["A"] == completed[1]["A"]
        unlinked = list(r.completions())
        assert len(unlinked) == 4

    def test_scoped_completion_leaves_other_columns(self):
        r = rel("A B", [("-", "-")], domains={"A": ["a1"], "B": ["b1"]})
        completed = list(r.completions("A"))
        assert len(completed) == 1
        assert completed[0][0].has_null("B")

    def test_limit_guards_blowup(self):
        rows = [("-", "-") for _ in range(8)]
        r = rel("A B", rows, domains={"A": list(range(10)), "B": list(range(10))})
        with pytest.raises(DomainError):
            list(r.completions(limit=1000))

    def test_cross_column_class_intersects_domains(self):
        n = null()
        schema = schema_of("A B", domains={"A": ["x", "y"], "B": ["y", "z"]})
        r = Relation(schema, [(n, n)])
        completed = list(r.completions())
        assert [c[0]["A"] for c in completed] == ["y"]


class TestRendering:
    def test_to_text_plain_nulls(self):
        r = rel("A B", [("a", "-")])
        text = r.to_text()
        assert "A" in text and "a" in text and "-" in text

    def test_to_text_labels_shared_nulls(self):
        n = null("7")
        schema = schema_of("A B")
        r = Relation(schema, [(n, n)])
        assert "-7" in r.to_text()

    def test_equality_is_set_like(self):
        r1 = rel("A", [("a",), ("b",)])
        r2 = rel("A", [("b",), ("a",)])
        assert r1 == r2
