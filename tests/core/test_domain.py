"""Tests for finite / unbounded domains and the effective-domain surrogate."""

import pytest

from repro.core.domain import UNBOUNDED, Domain, effective_domain
from repro.core.values import null
from repro.errors import DomainError


class TestFiniteDomain:
    def test_membership_and_order(self):
        d = Domain(["a", "b", "c"])
        assert "a" in d and "z" not in d
        assert list(d) == ["a", "b", "c"]
        assert len(d) == 3

    def test_rejects_duplicates(self):
        with pytest.raises(DomainError):
            Domain(["a", "a"])

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_rejects_null_values(self):
        with pytest.raises(DomainError):
            Domain(["a", null()])

    def test_equality_is_by_values(self):
        assert Domain(["a", "b"]) == Domain(["a", "b"])
        assert Domain(["a", "b"]) != Domain(["b", "a"])  # order is identity

    def test_missing_from(self):
        d = Domain(["a", "b", "c"])
        assert d.missing_from(["a", "c"]) == ["b"]
        assert d.missing_from(["a", "b", "c"]) == []

    def test_is_finite(self):
        assert Domain(["x"]).is_finite


class TestUnboundedDomain:
    def test_membership_accepts_constants_only(self):
        assert "anything" in UNBOUNDED
        assert 42 in UNBOUNDED
        assert null() not in UNBOUNDED

    def test_not_finite(self):
        assert not UNBOUNDED.is_finite

    def test_enumeration_raises(self):
        with pytest.raises(DomainError):
            list(UNBOUNDED)
        with pytest.raises(DomainError):
            len(UNBOUNDED)
        with pytest.raises(DomainError):
            UNBOUNDED.missing_from(["a"])


class TestEffectiveDomain:
    def test_finite_domain_passes_through(self):
        d = Domain(["a"])
        assert effective_domain(["a", null()], d, "A") is d

    def test_contains_column_constants_plus_fresh(self):
        column = ["x", null(), "y", null()]
        d = effective_domain(column, None, "A")
        assert "x" in d and "y" in d
        # 2 nulls -> 3 fresh symbols, plus the 2 constants
        assert len(d) == 5

    def test_no_nulls_still_one_fresh(self):
        d = effective_domain(["x"], None, "A")
        assert len(d) == 2  # 'x' + one fresh (enables "pick a different value")

    def test_fresh_symbols_avoid_collisions(self):
        first = effective_domain([null()], None, "A")
        fresh_value = [v for v in first if str(v).startswith("†fresh")][0]
        # Feed a fresh symbol back in as a constant: no duplicate explosion.
        second = effective_domain([fresh_value, null()], None, "A")
        assert len(set(second)) == len(second)
        assert fresh_value in second

    def test_deterministic(self):
        column = ["x", null(), "y"]
        assert list(effective_domain(column, None, "A")) == list(
            effective_domain(column, None, "A")
        )
