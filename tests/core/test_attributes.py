"""Tests for attribute parsing and set utilities."""

import pytest

from repro.core.attributes import (
    attrs_difference,
    attrs_intersection,
    attrs_union,
    format_attrs,
    is_subset,
    parse_attrs,
)
from repro.errors import SchemaError


class TestParsing:
    @pytest.mark.parametrize(
        "spec",
        ["A B", "A,B", "A, B", " A  ,  B ", ["A", "B"], ("A", "B")],
    )
    def test_equivalent_forms(self, spec):
        assert parse_attrs(spec) == ("A", "B")

    def test_multichar_names(self):
        # the paper's E#, SL, D#, CT
        assert parse_attrs("E# SL, D#") == ("E#", "SL", "D#")

    def test_duplicates_removed_keeping_first(self):
        assert parse_attrs("A B A C B") == ("A", "B", "C")

    def test_empty_string(self):
        assert parse_attrs("") == ()
        assert parse_attrs("   ") == ()

    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            parse_attrs([""])
        with pytest.raises(SchemaError):
            parse_attrs([3])  # type: ignore[list-item]


class TestSetAlgebra:
    def test_union_keeps_first_occurrence_order(self):
        assert attrs_union("B A", "A C") == ("B", "A", "C")

    def test_difference(self):
        assert attrs_difference("A B C", "B") == ("A", "C")
        assert attrs_difference("A", "A") == ()

    def test_intersection(self):
        assert attrs_intersection("A B C", "C A") == ("A", "C")

    def test_is_subset(self):
        assert is_subset("A", "A B")
        assert is_subset("", "A")
        assert not is_subset("A C", "A B")

    def test_format(self):
        assert format_attrs(("A", "B")) == "A B"
        assert format_attrs(()) == "∅"
