"""Properties of the completion sets AP(t, R) and AP(r, R) (section 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.values import is_null, null

from ..helpers import schema_of

_cell = st.sampled_from(["v0", "v1", None])


@st.composite
def instances(draw):
    n_rows = draw(st.integers(min_value=1, max_value=3))
    rows = [[draw(_cell) for _ in range(2)] for _ in range(n_rows)]
    schema = schema_of("A B", {"A": ["v0", "v1"], "B": ["v0", "v1"]})
    return Relation(
        schema, [[null() if v is None else v for v in row] for row in rows]
    )


@given(instances())
@settings(max_examples=100, deadline=None)
def test_completion_count_matches_enumeration(instance):
    assert instance.completion_count() == len(list(instance.completions()))


@given(instances())
@settings(max_examples=100, deadline=None)
def test_completions_are_total_and_above(instance):
    for completed in instance.completions():
        assert completed.is_total()
        for original, ground in zip(instance.rows, completed.rows):
            assert original.approximates(ground)


@given(instances())
@settings(max_examples=100, deadline=None)
def test_completions_are_pairwise_distinct(instance):
    seen = set()
    for completed in instance.completions():
        key = tuple(tuple(row.values) for row in completed.rows)
        assert key not in seen
        seen.add(key)


@given(instances())
@settings(max_examples=80, deadline=None)
def test_row_completions_factorize_instance_completions(instance):
    """|AP(r)| equals the product of |AP(t)| when no nulls are shared."""
    product = 1
    for row in instance.rows:
        product *= len(list(row.completions()))
    assert instance.completion_count() == product


@given(instances())
@settings(max_examples=60, deadline=None)
def test_null_classes_only_shrink_the_completion_set(instance):
    nulls = instance.nulls()
    if len(nulls) < 2:
        return
    linked = {n: "shared" for n in nulls[:2]}
    assert instance.completion_count(null_classes=linked) <= (
        instance.completion_count()
    )
