"""Tests for rows: projection, null structure, substitution, completions."""

import pytest

from repro.core.domain import Domain
from repro.core.schema import RelationSchema
from repro.core.tuples import Row
from repro.core.values import NOTHING, null
from repro.errors import SchemaError

from ..helpers import schema_of


@pytest.fixture
def schema():
    return schema_of("A B C", domains={"A": ["a1", "a2"], "B": ["b1", "b2", "b3"]})


class TestConstruction:
    def test_arity_checked(self, schema):
        with pytest.raises(SchemaError):
            Row(schema, ("x",))

    def test_from_mapping(self, schema):
        row = Row.from_mapping(schema, {"A": "a1", "B": "b1", "C": "c"})
        assert row.values == ("a1", "b1", "c")

    def test_from_mapping_missing_attr(self, schema):
        with pytest.raises(SchemaError):
            Row.from_mapping(schema, {"A": "a1", "B": "b1"})

    def test_from_mapping_extra_attr(self, schema):
        with pytest.raises(SchemaError):
            Row.from_mapping(schema, {"A": "a1", "B": "b1", "C": "c", "D": 1})


class TestAccessAndProjection:
    def test_getitem(self, schema):
        row = Row(schema, ("a1", "b1", "c"))
        assert row["B"] == "b1"

    def test_project_follows_requested_order(self, schema):
        row = Row(schema, ("a1", "b1", "c"))
        assert row.project("C A") == ("c", "a1")

    def test_as_dict(self, schema):
        row = Row(schema, ("a1", "b1", "c"))
        assert row.as_dict() == {"A": "a1", "B": "b1", "C": "c"}


class TestNullStructure:
    def test_null_attributes(self, schema):
        row = Row(schema, (null(), "b1", null()))
        assert row.null_attributes() == ("A", "C")
        assert row.null_attributes("B C") == ("C",)

    def test_has_null_is_the_paper_notation(self, schema):
        # t[X] = null means SOME attribute of X is null
        row = Row(schema, (null(), "b1", "c"))
        assert row.has_null("A B")
        assert not row.has_null("B C")
        assert row.is_total("B C")

    def test_nothing_is_not_null(self, schema):
        row = Row(schema, (NOTHING, "b1", "c"))
        assert not row.has_null()

    def test_nulls_returns_objects(self, schema):
        n = null()
        row = Row(schema, (n, "b1", n))
        assert row.nulls() == (n, n)


class TestSubstitution:
    def test_substitute_replaces_all_occurrences(self, schema):
        n = null()
        row = Row(schema, (n, "b1", n))
        out = row.substitute({n: "a1"})
        assert out.values == ("a1", "b1", "a1")

    def test_substitute_leaves_unmentioned_nulls(self, schema):
        n, m = null(), null()
        row = Row(schema, (n, m, "c"))
        out = row.substitute({n: "a1"})
        assert out.values[0] == "a1"
        assert out.values[1] is m

    def test_original_row_unchanged(self, schema):
        n = null()
        row = Row(schema, (n, "b1", "c"))
        row.substitute({n: "a1"})
        assert row.values[0] is n


class TestCompletions:
    def test_total_row_has_one_completion(self, schema):
        row = Row(schema, ("a1", "b1", "c"))
        assert list(row.completions()) == [row]

    def test_ap_t_enumerates_domain(self, schema):
        # AP(t, {A}) for t with null A over dom(A) = {a1, a2}
        row = Row(schema, (null(), "b1", "c"))
        completed = list(row.completions("A"))
        assert [r["A"] for r in completed] == ["a1", "a2"]
        assert all(r["B"] == "b1" for r in completed)

    def test_completions_scoped_to_attributes(self, schema):
        # a null outside the requested attribute set is left in place
        n = null()
        row = Row(schema, (null(), "b1", n))
        completed = list(row.completions("A B"))
        assert all(r.values[2] is n for r in completed)

    def test_shared_null_completed_consistently(self, schema):
        n = null()
        row = Row(schema, (n, "b1", n))
        for completed in row.completions("A C"):
            assert completed["A"] == completed["C"]

    def test_product_over_several_nulls(self, schema):
        row = Row(schema, (null(), null(), "c"))
        assert len(list(row.completions("A B"))) == 2 * 3


class TestApproximationOrder:
    def test_completion_is_above(self, schema):
        row = Row(schema, (null(), "b1", "c"))
        for completed in row.completions("A"):
            assert row.approximates(completed)
            if completed != row:
                assert not completed.approximates(row)

    def test_reflexive(self, schema):
        row = Row(schema, (null(), "b1", "c"))
        assert row.approximates(row)


class TestEqualityAndHash:
    def test_constant_rows_compare_by_value(self, schema):
        assert Row(schema, ("a1", "b1", "c")) == Row(schema, ("a1", "b1", "c"))

    def test_distinct_nulls_make_rows_distinct(self, schema):
        assert Row(schema, (null(), "b1", "c")) != Row(schema, (null(), "b1", "c"))

    def test_same_null_object_rows_equal(self, schema):
        n = null()
        assert Row(schema, (n, "b1", "c")) == Row(schema, (n, "b1", "c"))
        assert hash(Row(schema, (n, "b1", "c"))) == hash(Row(schema, (n, "b1", "c")))
