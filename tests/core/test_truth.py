"""Tests for the three-valued truth domain (repro.core.truth)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.truth import (
    FALSE,
    TRUE,
    UNKNOWN,
    TruthValue,
    and_,
    from_bool,
    implies_,
    is_definite,
    lub,
    not_,
    or_,
)

ALL = [TRUE, FALSE, UNKNOWN]
truth_values = st.sampled_from(ALL)


class TestBasics:
    def test_three_distinct_values(self):
        assert len(set(ALL)) == 3

    def test_bool_coercion_is_an_error(self):
        with pytest.raises(TypeError):
            bool(TRUE)
        with pytest.raises(TypeError):
            if UNKNOWN:  # pragma: no cover - raises before body
                pass

    def test_from_bool(self):
        assert from_bool(True) is TRUE
        assert from_bool(False) is FALSE

    def test_is_definite(self):
        assert is_definite(TRUE)
        assert is_definite(FALSE)
        assert not is_definite(UNKNOWN)

    def test_str(self):
        assert str(TRUE) == "true"
        assert str(UNKNOWN) == "unknown"


class TestKleeneConnectives:
    def test_negation_table(self):
        assert not_(TRUE) is FALSE
        assert not_(FALSE) is TRUE
        assert not_(UNKNOWN) is UNKNOWN

    def test_conjunction_table(self):
        assert and_(TRUE, TRUE) is TRUE
        assert and_(TRUE, FALSE) is FALSE
        assert and_(FALSE, UNKNOWN) is FALSE
        assert and_(TRUE, UNKNOWN) is UNKNOWN
        assert and_(UNKNOWN, UNKNOWN) is UNKNOWN

    def test_disjunction_table(self):
        assert or_(FALSE, FALSE) is FALSE
        assert or_(TRUE, UNKNOWN) is TRUE
        assert or_(FALSE, UNKNOWN) is UNKNOWN
        assert or_(UNKNOWN, UNKNOWN) is UNKNOWN

    def test_empty_connectives(self):
        assert and_() is TRUE
        assert or_() is FALSE

    def test_nary(self):
        assert and_(TRUE, TRUE, UNKNOWN, TRUE) is UNKNOWN
        assert or_(FALSE, FALSE, TRUE, UNKNOWN) is TRUE

    def test_implication_definition(self):
        # P => Q := not P or Q (section 5)
        for p, q in itertools.product(ALL, ALL):
            assert implies_(p, q) is or_(not_(p), q)

    @given(truth_values, truth_values)
    def test_de_morgan(self, p, q):
        assert not_(and_(p, q)) is or_(not_(p), not_(q))
        assert not_(or_(p, q)) is and_(not_(p), not_(q))

    @given(truth_values, truth_values, truth_values)
    def test_associativity_via_nary(self, p, q, r):
        assert and_(p, q, r) is and_(and_(p, q), r)
        assert or_(p, q, r) is or_(or_(p, q), r)

    @given(truth_values)
    def test_double_negation(self, p):
        assert not_(not_(p)) is p


class TestLub:
    """The knowledge-join of the least-extension rule (section 2)."""

    def test_paper_examples(self):
        # Q("John", null) = lub{yes, no} = unknown
        assert lub([TRUE, FALSE]) is UNKNOWN
        # Q'("John", null) = lub{yes, yes} = yes
        assert lub([TRUE, TRUE]) is TRUE

    def test_uniform_sets(self):
        assert lub([FALSE, FALSE, FALSE]) is FALSE
        assert lub([TRUE]) is TRUE

    def test_unknown_absorbs(self):
        assert lub([TRUE, UNKNOWN]) is UNKNOWN
        assert lub([UNKNOWN]) is UNKNOWN

    def test_empty_is_true(self):
        assert lub([]) is TRUE

    @given(st.lists(truth_values, min_size=1))
    def test_lub_is_unknown_iff_not_uniform_definite(self, values):
        result = lub(values)
        if UNKNOWN in values or len(set(values)) > 1:
            assert result is UNKNOWN
        else:
            assert result is values[0]

    @given(st.lists(truth_values, min_size=1), st.lists(truth_values, min_size=1))
    def test_lub_is_order_insensitive_and_idempotent(self, left, right):
        assert lub(left + right) is lub(right + left)
        assert lub(left + left) is lub(left)
