"""Tests for strong/weak satisfiability, including the section 6 interaction
example showing that weak satisfiability of a *set* is not per-FD."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.satisfaction import (
    fd_value_profile,
    satisfaction_summary,
    satisfying_completion,
    strongly_holds,
    strongly_satisfied,
    strongly_satisfied_bruteforce,
    weakly_holds,
    weakly_holds_each,
    weakly_satisfied,
)
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.core.values import null

from ..helpers import rel, schema_of


class TestSingleFD:
    def test_strong_implies_weak(self):
        r = rel("A B", [("a", 1), ("b", 2)])
        assert strongly_holds("A -> B", r)
        assert weakly_holds("A -> B", r)

    def test_unknown_blocks_strong_not_weak(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        assert not strongly_holds("A -> B", r)
        assert weakly_holds("A -> B", r)

    def test_false_blocks_both(self):
        r = rel("A B", [("a", 1), ("a", 2)])
        assert not strongly_holds("A -> B", r)
        assert not weakly_holds("A -> B", r)

    def test_profile_matches_paper_notions(self):
        r = rel("A B", [("a", "-"), ("b", 1), ("b", 2)])
        profile = fd_value_profile("A -> B", r)
        assert profile == [TRUE, FALSE, FALSE]


class TestSetLevel:
    def test_figure_1_3_weakly_satisfied(self):
        # Figure 1.3: the employee instance with nulls; both FDs survive
        r = rel(
            "E# SL D# CT",
            [
                (101, "-", "d1", "permanent"),
                (102, 60, "d1", "-"),
                (103, 50, "d2", "temporary"),
            ],
        )
        fds = ["E# -> SL D#", "D# -> CT"]
        assert weakly_satisfied(fds, r)
        assert not strongly_satisfied(fds, r)

    def test_section6_interaction_example(self):
        """F = {A -> B, B -> C} on r = {(a, ⊥, c1), (a, ⊥, c2)}.

        Each FD, evaluated independently, takes the value unknown (weakly
        holds); but B -> C forces the two B-nulls to be distinct, which
        makes A -> B false — no completion satisfies both.
        """
        r = rel(
            "A B C",
            [("a", "-", "c1"), ("a", "-", "c2")],
            domains={"B": ["b1", "b2"]},
        )
        fds = ["A -> B", "B -> C"]
        # independently: both weakly hold (all values unknown)
        assert weakly_holds_each(fds, r)
        assert all(
            v is UNKNOWN for v in fd_value_profile("A -> B", r)
        )
        assert all(
            v is UNKNOWN for v in fd_value_profile("B -> C", r)
        )
        # jointly: no completion satisfies both
        assert not weakly_satisfied(fds, r)
        assert satisfying_completion(fds, r) is None

    def test_satisfying_completion_is_a_witness(self):
        r = rel(
            "A B",
            [("a", "-"), ("a", 1)],
            domains={"B": [1, 2]},
        )
        witness = satisfying_completion(["A -> B"], r)
        assert witness is not None
        assert witness.is_total()
        assert witness[0]["B"] == 1  # the only consistent substitution

    def test_strong_bruteforce_agrees(self):
        instances = [
            rel("A B", [("a", 1), ("b", 2)]),
            rel("A B", [("a", "-"), ("b", 2)], domains={"B": [1, 2]}),
            rel("A B", [("a", "-"), ("a", 2)], domains={"B": [1, 2]}),
            rel("A B", [("a", 1), ("a", 2)]),
        ]
        for r in instances:
            assert strongly_satisfied(["A -> B"], r) == (
                strongly_satisfied_bruteforce(["A -> B"], r)
            )

    def test_summary_shape(self):
        r = rel("A B", [("a", "-"), ("a", 1)], domains={"B": [1, 2]})
        summary = satisfaction_summary(["A -> B"], r)
        assert summary["weakly_satisfied"] is True
        assert summary["strongly_satisfied"] is False
        assert "A -> B" in summary["profiles"]

    def test_irrelevant_null_columns_ignored(self):
        # a null in a column no FD mentions must not affect satisfiability
        r = rel("A B C", [("a", 1, "-"), ("b", 2, "-")])
        assert strongly_satisfied(["A -> B"], r)
        assert weakly_satisfied(["A -> B"], r)


class TestSharedNullsAcrossRows:
    def test_shared_null_is_one_unknown(self):
        n = null()
        schema = schema_of("A B", domains={"B": [1, 2]})
        r = Relation(schema, [("a", n), ("a", n)])
        # the same unknown value on both rows: A -> B holds strongly
        assert strongly_holds("A -> B", r)

    def test_distinct_nulls_are_independent_unknowns(self):
        schema = schema_of("A B", domains={"B": [1, 2]})
        r = Relation(schema, [("a", null()), ("a", null())])
        assert not strongly_holds("A -> B", r)
        assert weakly_holds("A -> B", r)


# ---------------------------------------------------------------------------
# property-based: set-level notions vs brute force
# ---------------------------------------------------------------------------

_value_or_null = st.one_of(st.none(), st.sampled_from(["v0", "v1"]))


@st.composite
def tiny_instances(draw):
    n_rows = draw(st.integers(min_value=1, max_value=3))
    rows = [
        [draw(_value_or_null) for _ in range(3)] for _ in range(n_rows)
    ]
    schema = schema_of("A B C", {n: ["v0", "v1"] for n in "ABC"})
    return Relation(
        schema, [[null() if v is None else v for v in row] for row in rows]
    )


@given(tiny_instances())
@settings(max_examples=100, deadline=None)
def test_strong_satisfaction_equals_all_completions(instance):
    fds = ["A -> B", "B -> C"]
    assert strongly_satisfied(fds, instance) == strongly_satisfied_bruteforce(
        fds, instance
    )


@given(tiny_instances())
@settings(max_examples=100, deadline=None)
def test_weak_satisfaction_implies_each_weakly_holds(instance):
    fds = ["A -> B", "B -> C"]
    if weakly_satisfied(fds, instance):
        assert weakly_holds_each(fds, instance)


@given(tiny_instances())
@settings(max_examples=100, deadline=None)
def test_strong_implies_weak_setwise(instance):
    fds = ["A -> B", "A B -> C"]
    if strongly_satisfied(fds, instance):
        assert weakly_satisfied(fds, instance)
