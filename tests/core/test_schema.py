"""Tests for relation schemas."""

import pytest

from repro.core.domain import UNBOUNDED, Domain
from repro.core.schema import RelationSchema
from repro.errors import SchemaError


@pytest.fixture
def employee_schema():
    """Figure 1.1's scheme R(E#, SL, D#, CT)."""
    return RelationSchema(
        "R",
        "E# SL D# CT",
        domains={"CT": Domain(["permanent", "temporary"], name="CT")},
    )


class TestConstruction:
    def test_attributes_in_order(self, employee_schema):
        assert employee_schema.attributes == ("E#", "SL", "D#", "CT")

    def test_needs_at_least_one_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", "")

    def test_domain_for_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", "A", domains={"B": Domain(["x"])})

    def test_default_domain_is_unbounded(self, employee_schema):
        assert employee_schema.domain("E#") is UNBOUNDED

    def test_declared_domain_returned(self, employee_schema):
        assert "permanent" in employee_schema.domain("CT")


class TestAccess:
    def test_position(self, employee_schema):
        assert employee_schema.position("E#") == 0
        assert employee_schema.position("CT") == 3

    def test_position_unknown_attribute(self, employee_schema):
        with pytest.raises(SchemaError):
            employee_schema.position("ZZ")

    def test_positions_many(self, employee_schema):
        assert employee_schema.positions("SL D#") == (1, 2)

    def test_contains_len_iter(self, employee_schema):
        assert "SL" in employee_schema
        assert "ZZ" not in employee_schema
        assert len(employee_schema) == 4
        assert list(employee_schema) == ["E#", "SL", "D#", "CT"]

    def test_repr(self, employee_schema):
        assert repr(employee_schema) == "R(E#, SL, D#, CT)"


class TestProjection:
    def test_project_keeps_schema_order(self, employee_schema):
        sub = employee_schema.project("D# E#")
        assert sub.attributes == ("E#", "D#")

    def test_project_carries_domains(self, employee_schema):
        sub = employee_schema.project("CT")
        assert "temporary" in sub.domain("CT")

    def test_project_unknown_attribute(self, employee_schema):
        with pytest.raises(SchemaError):
            employee_schema.project("E# ZZ")

    def test_validate_attrs(self, employee_schema):
        assert employee_schema.validate_attrs("SL, CT") == ("SL", "CT")
        with pytest.raises(SchemaError):
            employee_schema.validate_attrs("Q")


class TestEquality:
    def test_same_schemas_equal(self):
        a = RelationSchema("R", "A B")
        b = RelationSchema("R", "A B")
        assert a == b and hash(a) == hash(b)

    def test_different_domains_unequal(self):
        a = RelationSchema("R", "A", domains={"A": Domain(["x"])})
        b = RelationSchema("R", "A")
        assert a != b
