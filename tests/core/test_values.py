"""Tests for cell values: Null identity, NOTHING, the approximation order."""

import os
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    NOTHING,
    Null,
    approximates,
    constant_key,
    is_constant,
    is_nothing,
    is_null,
    null,
    value_lub,
)


class TestNullIdentity:
    def test_fresh_nulls_are_distinct(self):
        assert null() != null()

    def test_null_equals_itself(self):
        n = null()
        assert n == n
        assert len({n, n}) == 1

    def test_labels_are_unique_by_default(self):
        labels = {null().label for _ in range(100)}
        assert len(labels) == 100

    def test_explicit_label(self):
        assert null("x").label == "x"
        assert repr(null("x")) == "⊥x"

    def test_two_same_label_nulls_still_distinct(self):
        # labels are display-only; identity is what matters
        assert null("x") != null("x")


def _labels_in_worker(count: int) -> list:
    """Pool worker: allocate ``count`` fresh nulls, report their labels
    (top-level so ``multiprocessing`` can address it by reference)."""
    return [null().label for _ in range(count)]


class TestForkSafety:
    """Forked workers must never reuse the parent's label range — the
    property the parallel chase's process pool relies on."""

    @pytest.mark.skipif(
        not hasattr(os, "register_at_fork"), reason="no fork on this platform"
    )
    def test_forked_workers_allocate_disjoint_labels(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        # advance the parent's counter so children inheriting its position
        # would collide without the after-fork reseed
        parent_before = [null().label for _ in range(5)]
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=2) as pool:
            batches = pool.map(_labels_in_worker, [40, 40])
        parent_after = [null().label for _ in range(5)]
        child_labels = [label for batch in batches for label in batch]
        parent_labels = parent_before + parent_after
        # children are scoped by pid lineage: never bare parent labels
        assert not set(child_labels) & set(parent_labels)
        # the two workers are distinct processes with distinct scopes,
        # and labels stay unique within each worker
        assert len(set(child_labels)) == len(child_labels)
        for label in child_labels:
            assert "." in label  # pid-lineage prefix present


class TestPredicates:
    def test_classification_is_a_partition(self):
        samples = [null(), NOTHING, "a", 0, 3.5, ("t",)]
        for value in samples:
            kinds = [is_null(value), is_nothing(value), is_constant(value)]
            assert kinds.count(True) == 1

    def test_nothing_is_a_singleton(self):
        from repro.core.values import _Nothing

        assert _Nothing() is NOTHING

    def test_nothing_survives_pickle(self):
        assert pickle.loads(pickle.dumps(NOTHING)) is NOTHING


class TestApproximationOrder:
    def test_null_approximates_everything(self):
        n = null()
        assert approximates(n, "a")
        assert approximates(n, 42)
        assert approximates(n, NOTHING)
        assert approximates(n, n)

    def test_constants_approximate_only_themselves_and_nothing(self):
        assert approximates("a", "a")
        assert not approximates("a", "b")
        assert approximates("a", NOTHING)

    def test_distinct_nulls_both_bottom(self):
        # In the section-2 value lattice there is one bottom element: any
        # null approximates any other null (identity only matters for NECs).
        n, m = null(), null()
        assert approximates(n, m)
        assert approximates(m, n)

    def test_nothing_is_top(self):
        assert approximates(NOTHING, NOTHING)
        assert not approximates(NOTHING, "a")

    def test_reflexive(self):
        for v in [null(), NOTHING, "a", 7]:
            assert approximates(v, v)


class TestValueLub:
    def test_null_joins_to_other(self):
        n = null()
        assert value_lub(n, "a") == "a"
        assert value_lub("a", n) == "a"
        assert value_lub(n, n) is n

    def test_distinct_constants_poison(self):
        assert value_lub("a", "b") is NOTHING

    def test_equal_constants_join(self):
        assert value_lub("a", "a") == "a"

    def test_nothing_absorbs(self):
        assert value_lub(NOTHING, "a") is NOTHING
        assert value_lub(null(), NOTHING) is NOTHING

    @given(st.sampled_from(["a", "b", 1]), st.sampled_from(["a", "b", 1]))
    def test_commutative(self, x, y):
        assert value_lub(x, y) == value_lub(y, x)

    def test_lub_is_an_upper_bound(self):
        n = null()
        for x, y in [(n, "a"), ("a", "a"), ("a", "b"), (n, NOTHING)]:
            j = value_lub(x, y)
            assert approximates(x, j)
            assert approximates(y, j)


class TestConstantKey:
    def test_orders_mixed_types_without_error(self):
        values = ["b", 2, "a", 10, 1.5]
        ordered = sorted(values, key=constant_key)
        assert set(ordered) == set(values)

    def test_groups_by_type(self):
        assert constant_key(1) != constant_key("1")
