"""Tests for FD syntax, parsing, and the classical interpretation."""

import pytest

from repro.core.fd import (
    FD,
    FDSet,
    all_hold_classical,
    as_fd,
    classical_fd_value,
    holds_classical,
    violations_classical,
)
from repro.core.truth import FALSE, TRUE
from repro.errors import NullsNotAllowedError, SchemaError

from ..helpers import rel


class TestFDSyntax:
    def test_parse_arrow(self):
        fd = FD.parse("A B -> C")
        assert fd.lhs == ("A", "B") and fd.rhs == ("C",)

    def test_parse_paper_notation(self):
        fd = FD.parse("E# -> SL, D#")
        assert fd.lhs == ("E#",) and fd.rhs == ("SL", "D#")

    def test_parse_unicode_arrow(self):
        assert FD.parse("A → B") == FD("A", "B")

    def test_parse_rejects_garbage(self):
        with pytest.raises(SchemaError):
            FD.parse("A B C")
        with pytest.raises(SchemaError):
            FD.parse("A -> B -> C")

    def test_empty_sides_rejected(self):
        with pytest.raises(SchemaError):
            FD("", "B")
        with pytest.raises(SchemaError):
            FD("A", "")

    def test_equality_is_set_based(self):
        assert FD("A B", "C") == FD("B A", "C")
        assert hash(FD("A B", "C")) == hash(FD("B A", "C"))

    def test_trivial(self):
        assert FD("A B", "A").is_trivial()
        assert not FD("A", "B").is_trivial()

    def test_normalized_removes_lhs_from_rhs(self):
        assert FD("A", "A B").normalized() == FD("A", "B")

    def test_normalized_trivial_stays_nonempty(self):
        normalized = FD("A B", "A").normalized()
        assert normalized.rhs  # type invariant preserved
        assert normalized.is_trivial()

    def test_decompose(self):
        assert FD("A", "B C").decompose() == [FD("A", "B"), FD("A", "C")]

    def test_attributes(self):
        assert FD("A B", "C A").attributes == ("A", "B", "C")

    def test_repr_round_trips(self):
        fd = FD("E#", "SL D#")
        assert FD.parse(repr(fd)) == fd


class TestFDSet:
    def test_parse_semicolons(self):
        fds = FDSet.parse("A -> B; B -> C")
        assert len(fds) == 2
        assert FD("A", "B") in fds

    def test_duplicates_collapsed(self):
        fds = FDSet(["A -> B", "A->B", FD("A", "B")])
        assert len(fds) == 1

    def test_union_and_without(self):
        fds = FDSet(["A -> B"])
        more = fds.union(["B -> C"])
        assert len(more) == 2
        assert len(more.without("A -> B")) == 1

    def test_attributes(self):
        assert FDSet.parse("A -> B; C -> A").attributes == ("A", "B", "C")

    def test_decomposed(self):
        assert FDSet(["A -> B C"]).decomposed() == FDSet(["A -> B", "A -> C"])

    def test_set_equality(self):
        assert FDSet.parse("A->B; B->C") == FDSet.parse("B -> C; A -> B")

    def test_as_fd_coercion(self):
        assert as_fd("A -> B") == FD("A", "B")
        fd = FD("A", "B")
        assert as_fd(fd) is fd


class TestClassicalInterpretation:
    """Section 3: f(t, r) on null-free instances."""

    def test_figure_1_2_dependencies_hold(self):
        # E# -> SL,D# and D# -> CT hold in the reconstructed Figure 1.2
        r = rel(
            "E# SL D# CT",
            [
                (101, 50, "d1", "permanent"),
                (102, 60, "d1", "permanent"),
                (103, 50, "d2", "temporary"),
            ],
        )
        assert holds_classical("E# -> SL D#", r)
        assert holds_classical("D# -> CT", r)
        assert all_hold_classical(["E# -> SL D#", "D# -> CT"], r)

    def test_violation_detected(self):
        r = rel("A B", [("a", 1), ("a", 2)])
        assert not holds_classical("A -> B", r)

    def test_per_tuple_values(self):
        r = rel("A B", [("a", 1), ("a", 2), ("b", 3)])
        assert classical_fd_value("A -> B", r[0], r) is FALSE
        assert classical_fd_value("A -> B", r[2], r) is TRUE

    def test_group_vs_pairwise_equivalence(self):
        # holds_classical (grouping) agrees with the quadratic definition
        r = rel("A B C", [(1, 2, 3), (1, 2, 4), (2, 2, 4), (2, 2, 4)])
        for fd in ["A -> B", "A -> C", "B -> A", "A B -> C"]:
            quadratic = all(
                classical_fd_value(fd, t, r) is TRUE for t in r
            )
            assert holds_classical(fd, r) == quadratic

    def test_trivial_fd_always_holds(self):
        r = rel("A B", [(1, 2), (1, 3)])
        assert holds_classical("A B -> A", r)

    def test_nulls_rejected(self):
        r = rel("A B", [("a", "-")])
        with pytest.raises(NullsNotAllowedError):
            holds_classical("A -> B", r)
        with pytest.raises(NullsNotAllowedError):
            classical_fd_value("A -> B", r[0], r)

    def test_violations_reported(self):
        r = rel("A B", [("a", 1), ("a", 2), ("b", 1)])
        pairs = violations_classical("A -> B", r)
        assert len(pairs) == 1
        first, second = pairs[0]
        assert first["A"] == second["A"] == "a"

    def test_multi_attribute_lhs(self):
        r = rel("A B C", [(1, 1, "x"), (1, 2, "y"), (2, 1, "y")])
        assert holds_classical("A B -> C", r)
        assert not holds_classical("A -> C", r)
