"""Failure-injection tests: every error path raises the documented type.

Production users meet the library through its errors as much as through
its results; these tests pin the exception taxonomy of `repro.errors`.
"""

import pytest

from repro.core.domain import Domain
from repro.core.fd import FD
from repro.core.interpretation import evaluate_fd, evaluate_fd_brute
from repro.core.relation import Relation
from repro.core.values import NOTHING, null
from repro.errors import (
    ConventionError,
    DomainError,
    InconsistentInstanceError,
    NotMinimallyIncompleteError,
    NullsNotAllowedError,
    ReproError,
    SchemaError,
)

from ..helpers import rel, schema_of


class TestExceptionTaxonomy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SchemaError,
            DomainError,
            NullsNotAllowedError,
            ConventionError,
            NotMinimallyIncompleteError,
            InconsistentInstanceError,
        ):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            Domain([])


class TestEvaluationLimits:
    def test_brute_force_limit_enforced(self):
        rows = [tuple(null() for _ in range(2)) for _ in range(10)]
        r = Relation(
            schema_of("A B", {"A": list(range(10)), "B": list(range(10))}),
            rows,
        )
        with pytest.raises(DomainError):
            evaluate_fd_brute("A -> B", r[0], r, limit=100)

    def test_auto_limit_enforced_on_rest_enumeration(self):
        rows = [("x", null())] + [
            (null(), null()) for _ in range(9)
        ]
        r = Relation(
            schema_of("A B", {"A": list(range(10)), "B": list(range(10))}),
            rows,
        )
        with pytest.raises(DomainError):
            evaluate_fd("A -> B", r[0], r, limit=100)


class TestTestFdsErrors:
    def test_nothing_in_instance_rejected(self):
        from repro.testfd import CONVENTION_WEAK, check_fds

        r = Relation(schema_of("A B"), [("a", NOTHING)])
        with pytest.raises(InconsistentInstanceError):
            check_fds(r, ["A -> B"], CONVENTION_WEAK, method="pairwise")

    def test_strong_sortmerge_convention_error_is_catchable_as_base(self):
        from repro.testfd import CONVENTION_STRONG, check_fds_sortmerge

        r = rel("A B", [("-", 1)])
        with pytest.raises(ReproError):
            check_fds_sortmerge(r, ["A -> B"], CONVENTION_STRONG)


class TestSchemaMisuse:
    def test_fd_validate_against_schema(self):
        schema = schema_of("A B")
        with pytest.raises(SchemaError):
            FD("A", "Z").validate(schema)

    def test_chase_validates_fds(self):
        from repro.chase import chase

        r = rel("A B", [("a", 1)])
        with pytest.raises(SchemaError):
            chase(r, ["A -> Z"])

    def test_guarded_relation_validates_fds(self):
        from repro.updates import GuardedRelation

        with pytest.raises(SchemaError):
            GuardedRelation(schema_of("A B"), ["A -> Z"])

    @pytest.mark.filterwarnings("ignore:repro:DeprecationWarning")
    def test_incremental_chase_arity(self):
        from repro.chase import IncrementalChase

        inc = IncrementalChase(schema_of("A B"), ["A -> B"])
        with pytest.raises(SchemaError):
            inc.insert(("only-one",))
