"""Tests for the extended FD interpretation (section 4, Proposition 1).

Includes the Figure 2 reproduction, agreement of all three evaluators, the
documented corner where the literal Proposition 1 is incomplete, and
hypothesis property tests comparing the polynomial case analysis against
the brute-force least-extension definition.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD
from repro.core.interpretation import (
    evaluate_fd,
    evaluate_fd_brute,
    proposition1_case,
)
from repro.core.relation import Relation
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.core.values import null
from repro.errors import ReproError

from ..helpers import rel, schema_of


class TestFigure2:
    """The four worked instances of Figure 2: R(A, B, C), f: AB -> C."""

    FD_ = "A B -> C"

    def test_r1_true_by_T2(self):
        r1 = rel("A B C", [("a1", "b1", "-"), ("a2", "b2", "c2")])
        result = proposition1_case(self.FD_, r1[0], r1)
        assert result.value is TRUE and result.condition == "T2"
        assert evaluate_fd(self.FD_, r1[0], r1) is TRUE
        assert evaluate_fd_brute(self.FD_, r1[0], r1) is TRUE

    def test_r2_true_by_T3(self):
        r2 = rel("A B C", [("-", "b1", "c1"), ("a2", "b2", "c2")])
        result = proposition1_case(self.FD_, r2[0], r2)
        assert result.value is TRUE and result.condition == "T3"
        assert evaluate_fd(self.FD_, r2[0], r2) is TRUE
        assert evaluate_fd_brute(self.FD_, r2[0], r2) is TRUE

    def test_r3_true_by_T3(self):
        r3 = rel("A B C", [("-", "b1", "c1"), ("a2", "b1", "c1")])
        result = proposition1_case(self.FD_, r3[0], r3)
        assert result.value is TRUE and result.condition == "T3"
        assert evaluate_fd(self.FD_, r3[0], r3) is TRUE
        assert evaluate_fd_brute(self.FD_, r3[0], r3) is TRUE

    def test_r4_false_by_F2(self):
        # "Assume that for the instance r4 the domain of A has only two
        #  values: a1, a2" -> f(t1, r4) = false because of [F2].
        r4 = rel(
            "A B C",
            [("-", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b1", "c3")],
            domains={"A": ["a1", "a2"]},
        )
        result = proposition1_case(self.FD_, r4[0], r4)
        assert result.value is FALSE and result.condition == "F2"
        assert evaluate_fd(self.FD_, r4[0], r4) is FALSE
        assert evaluate_fd_brute(self.FD_, r4[0], r4) is FALSE

    def test_r4_with_unbounded_domain_is_not_false(self):
        # F2 needs to "run out of domain values"; without the domain-size
        # restriction the same instance evaluates to unknown.
        r4 = rel(
            "A B C",
            [("-", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b1", "c3")],
        )
        assert evaluate_fd(self.FD_, r4[0], r4) is UNKNOWN
        assert evaluate_fd_brute(self.FD_, r4[0], r4) is UNKNOWN

    def test_total_tuples_of_r4_are_unknown(self):
        r4 = rel(
            "A B C",
            [("-", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b1", "c3")],
            domains={"A": ["a1", "a2"]},
        )
        for index in (1, 2):
            # Proposition 1's setting (r - {t} null-free) does not apply to
            # the total tuples here: the null lives in another row.
            with pytest.raises(ReproError):
                proposition1_case(self.FD_, r4[index], r4)
            # Semantically they are unknown: the null tuple's completion may
            # or may not collide with them.
            assert evaluate_fd(self.FD_, r4[index], r4) is UNKNOWN
            assert evaluate_fd_brute(self.FD_, r4[index], r4) is UNKNOWN


class TestPropositionOneCases:
    def test_T1_and_F1_classical_rows(self):
        r = rel("A B", [("a", 1), ("a", 2), ("b", 3)])
        assert proposition1_case("A -> B", r[0], r) == (FALSE, "F1")
        assert proposition1_case("A -> B", r[2], r) == (TRUE, "T1")

    def test_T2_requires_unique_lhs(self):
        r = rel("A B", [("a", "-"), ("b", 1)])
        assert proposition1_case("A -> B", r[0], r) == (TRUE, "T2")

    def test_y_null_with_match_is_unknown(self):
        r = rel("A B", [("a", "-"), ("a", 1)])
        result = proposition1_case("A -> B", r[0], r)
        assert result.value is UNKNOWN and result.condition is None
        assert evaluate_fd("A -> B", r[0], r) is UNKNOWN

    def test_F2_single_attribute_lhs(self):
        # "the number of actual determining objects is smaller than the
        #  number of determined objects" - both domain values present, the
        #  null tuple disagrees with all of them.
        r = rel(
            "A B",
            [("-", 99), ("a1", 1), ("a2", 2)],
            domains={"A": ["a1", "a2"]},
        )
        assert proposition1_case("A -> B", r[0], r) == (FALSE, "F2")
        assert evaluate_fd_brute("A -> B", r[0], r) is FALSE

    def test_F2_blocked_by_missing_completion(self):
        r = rel(
            "A B",
            [("-", 99), ("a1", 1)],
            domains={"A": ["a1", "a2"]},
        )
        result = proposition1_case("A -> B", r[0], r)
        assert result.value is UNKNOWN
        assert evaluate_fd_brute("A -> B", r[0], r) is UNKNOWN

    def test_trivial_fd_reports_T1(self):
        r = rel("A B", [("a", "-")])
        assert proposition1_case("A B -> A", r[0], r).value is TRUE

    def test_rest_with_nulls_rejected(self):
        r = rel("A B", [("a", "-"), ("a", "-")])
        with pytest.raises(ReproError):
            proposition1_case("A -> B", r[0], r)

    def test_literal_gap_two_disagreeing_matches(self):
        """The documented erratum: t[Y] null, two matches that disagree.

        Every substitution of the null violates against one of the matching
        tuples, so the least-extension value is FALSE; the literal
        Proposition 1 has no applicable F case and answers UNKNOWN.  (The
        instance is already strongly violated at the two total tuples, which
        is why the paper's case analysis never meets it in practice.)
        """
        r = rel("A B", [("a", "-"), ("a", 1), ("a", 2)])
        assert evaluate_fd_brute("A -> B", r[0], r) is FALSE
        assert evaluate_fd("A -> B", r[0], r) is FALSE
        literal = proposition1_case("A -> B", r[0], r)
        assert literal.value is UNKNOWN  # the paper's five cases miss this


class TestSharedNulls:
    def test_shared_null_within_tuple_links_substitutions(self):
        # t = (n, n) with FD A -> B: every completion sets A = B, and the
        # other row (x, x) agrees, so no completion can violate through it
        # unless values differ; with domain {x, y} both substitutions keep
        # the FD true (y is unique on the left).
        n = null()
        schema = schema_of("A B", domains={"A": ["x", "y"], "B": ["x", "y"]})
        r = Relation(schema, [(n, n), ("x", "x")])
        assert evaluate_fd("A -> B", r[0], r) is TRUE
        assert evaluate_fd_brute("A -> B", r[0], r) is TRUE

    def test_shared_null_within_tuple_can_force_false(self):
        # (n, n) against (x, y) and (y, x) with dom {x, y}: both
        # completions (x,x) and (y,y) violate.
        n = null()
        schema = schema_of("A B", domains={"A": ["x", "y"], "B": ["x", "y"]})
        r = Relation(schema, [(n, n), ("x", "y"), ("y", "x")])
        assert evaluate_fd("A -> B", r[0], r) is FALSE
        assert evaluate_fd_brute("A -> B", r[0], r) is FALSE

    def test_null_shared_across_rows_goes_brute(self):
        n = null()
        schema = schema_of("A B", domains={"A": ["x", "y"], "B": ["x", "y"]})
        r = Relation(schema, [("x", n), ("x", n)])
        # same unknown on both sides: every completion gives equal B values
        assert evaluate_fd("A -> B", r[0], r) is TRUE

    def test_distinct_nulls_across_rows_stay_unknown(self):
        schema = schema_of("A B", domains={"A": ["x", "y"], "B": ["x", "y"]})
        r = Relation(schema, [("x", null()), ("x", null())])
        assert evaluate_fd("A -> B", r[0], r) is UNKNOWN


class TestMethodsAgree:
    def test_rest_with_nulls_auto_matches_brute(self):
        r = rel(
            "A B",
            [("a", "-"), ("-", 1), ("a", 2)],
            domains={"A": ["a", "b"], "B": [1, 2, 99]},
        )
        for row in r:
            assert evaluate_fd("A -> B", row, r) is evaluate_fd_brute(
                "A -> B", row, r
            )

    def test_explicit_methods_validate_preconditions(self):
        r = rel("A B", [("a", "-"), ("-", 1)])
        with pytest.raises(ReproError):
            evaluate_fd("A -> B", r[0], r, method="cases")
        with pytest.raises(ReproError):
            evaluate_fd("A -> B", r[0], r, method="enumerate")
        with pytest.raises(ValueError):
            evaluate_fd("A -> B", r[0], r, method="nope")

    def test_external_row_evaluation(self):
        # evaluating a tuple not in r: quantification runs over all of r
        r = rel("A B", [("a", 1)])
        from repro.core.tuples import Row

        external = Row(r.schema, ("a", 2))
        assert evaluate_fd("A -> B", external, r) is FALSE


# ---------------------------------------------------------------------------
# property-based cross-checks
# ---------------------------------------------------------------------------

_value_or_null = st.one_of(st.none(), st.sampled_from(["v0", "v1", "v2"]))


@st.composite
def small_instances(draw, columns=3, max_rows=3):
    """Random small instances over finite domains with scattered nulls."""
    attrs = "A B C"[: 2 * columns - 1]
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = []
    for _ in range(n_rows):
        rows.append([draw(_value_or_null) for _ in range(columns)])
    domains = {name: ["v0", "v1", "v2"] for name in attrs.split()}
    materialized = [
        [null() if v is None else v for v in row] for row in rows
    ]
    schema = schema_of(attrs, domains)
    return Relation(schema, materialized)


@given(small_instances(), st.sampled_from(["A -> B", "B -> C", "A B -> C", "C -> A B"]))
@settings(max_examples=60, deadline=None)
def test_auto_agrees_with_brute_force(instance, fd_text):
    for row in instance:
        fast = evaluate_fd(fd_text, row, instance)
        slow = evaluate_fd_brute(fd_text, row, instance)
        assert fast is slow, (
            f"disagreement on {fd_text} at {row!r} in\n{instance.to_text()}"
        )


@given(small_instances(columns=2, max_rows=3))
@settings(max_examples=80, deadline=None)
def test_cases_and_enumerate_agree_when_rest_total(instance):
    fd = FD("A", "B")
    for row in instance:
        others_total = all(
            other.is_total("A B") for other in instance if other is not row
        )
        if not others_total:
            continue
        assert evaluate_fd(fd, row, instance, method="cases") is evaluate_fd(
            fd, row, instance, method="enumerate"
        )


@given(small_instances(columns=2, max_rows=3))
@settings(max_examples=60, deadline=None)
def test_literal_proposition_never_contradicts_semantics(instance):
    """Where the literal Proposition 1 answers definitely, it is right.

    (Its only failure mode is answering UNKNOWN too often — the erratum
    corner — never answering TRUE/FALSE wrongly.)
    """
    fd = FD("A", "B")
    for row in instance:
        others_total = all(
            other.is_total("A B") for other in instance if other is not row
        )
        if not others_total or row.has_null("A"):
            # literal Prop 1 also assumes distinct nulls per position; the
            # generator never shares nulls so only rest-totality matters
            continue
        literal = proposition1_case(fd, row, instance)
        semantic = evaluate_fd_brute(fd, row, instance)
        if literal.value is not UNKNOWN:
            assert literal.value is semantic
