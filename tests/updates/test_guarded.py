"""Tests for GuardedRelation: modification operations under weak/strong
consistency (the section 7 programme)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.schema import RelationSchema
from repro.core.values import is_null, null
from repro.errors import ReproError, SchemaError
from repro.updates import (
    POLICY_STRONG,
    POLICY_WEAK,
    GuardedRelation,
    UpdateResult,
)

from ..helpers import schema_of


def employee_guard(**kwargs):
    schema = schema_of("E# SL D# CT")
    return GuardedRelation(
        schema,
        ["E# -> SL D#", "D# -> CT"],
        rows=[
            (101, 50, "d1", "permanent"),
            (102, null(), "d1", null()),
        ],
        **kwargs,
    )


class TestConstruction:
    def test_initially_consistent(self):
        guard = employee_guard()
        assert len(guard) == 2

    def test_initially_inconsistent_rejected(self):
        schema = schema_of("A B")
        with pytest.raises(ReproError):
            GuardedRelation(schema, ["A -> B"], rows=[("a", 1), ("a", 2)])

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            GuardedRelation(schema_of("A"), [], policy="hopeful")

    def test_propagation_grounds_initial_nulls(self):
        # 102 shares department d1, so its CT is forced to 101's 'permanent'
        guard = employee_guard()
        assert guard.relation[1]["CT"] == "permanent"


class TestInsert:
    def test_consistent_insert_accepted(self):
        guard = employee_guard()
        outcome = guard.insert((103, 70, "d2", "temporary"))
        assert outcome.accepted
        assert len(guard) == 3

    def test_violating_insert_rejected(self):
        guard = employee_guard()
        outcome = guard.insert((101, 99, "d1", "permanent"))  # second salary
        assert not outcome.accepted
        assert len(guard) == 2  # state unchanged

    def test_insert_with_nulls_accepted_when_repairable(self):
        guard = employee_guard()
        outcome = guard.insert((104, null(), "d1", null()))
        assert outcome.accepted
        # propagation grounds the new CT from department d1
        assert guard.relation[2]["CT"] == "permanent"

    def test_forced_substitutions_reported(self):
        guard = employee_guard()
        outcome = guard.insert((105, null(), "d1", null()))
        assert any(v == "permanent" for v in outcome.forced.values())

    def test_rejection_reason_mentions_policy(self):
        guard = employee_guard()
        outcome = guard.insert((101, 99, "d9", "temporary"))
        assert "unsatisfiable" in outcome.reason


class TestDelete:
    def test_delete_always_accepted(self):
        guard = employee_guard()
        assert guard.delete(0).accepted
        assert len(guard) == 1

    def test_delete_bad_index(self):
        with pytest.raises(SchemaError):
            employee_guard().delete(9)

    def test_delete_preserves_satisfiability_property(self):
        # deleting from any consistent state keeps it consistent
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        while len(guard) > 0:
            assert guard.delete(0).accepted


class TestUpdate:
    def test_consistent_update(self):
        guard = employee_guard()
        outcome = guard.update(0, {"SL": 55})
        assert outcome.accepted
        assert guard.relation[0]["SL"] == 55

    def test_conflicting_update_rejected(self):
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        # moving 103 into d1 with a contract disagreeing with d1's
        outcome = guard.update(2, {"D#": "d1", "CT": "temporary"})
        assert not outcome.accepted
        assert guard.relation[2]["D#"] == "d2"  # unchanged

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            employee_guard().update(0, {"ZZ": 1})


class TestFill:
    def test_fill_unconstrained_null(self):
        guard = employee_guard()
        outcome = guard.fill(1, "SL", 64)
        assert outcome.accepted
        assert guard.relation[1]["SL"] == 64

    def test_fill_non_null_rejected(self):
        guard = employee_guard()
        outcome = guard.fill(0, "SL", 99)
        assert not outcome.accepted
        assert "not null" in outcome.reason

    def test_fill_against_forced_value_rejected(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema,
            ["A -> B"],
            rows=[("a", 1), ("a2", null())],
            propagate=False,
        )
        accepted = guard.insert(("a", null()))
        assert accepted.accepted
        # the new row's B is forced to 1 by A -> B; filling with 2 must fail
        outcome = guard.fill(2, "B", 2)
        assert not outcome.accepted
        # filling with the forced value succeeds
        assert guard.fill(2, "B", 1).accepted

    def test_fill_on_propagated_state(self):
        # with propagation on, the forced null was already grounded
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1), ("a", null())]
        )
        assert guard.relation[1]["B"] == 1


class TestStrongPolicy:
    def test_strong_rejects_unknowns_that_could_conflict(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1)], policy=POLICY_STRONG
        )
        # a null B for the same A is weakly fine but not strongly
        outcome = guard.insert(("a", null()))
        assert not outcome.accepted

    def test_strong_accepts_distinct_keys(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1)], policy=POLICY_STRONG
        )
        assert guard.insert(("b", null())).accepted


class TestHistory:
    def test_history_lines(self):
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        guard.insert((101, 99, "d1", "permanent"))
        lines = guard.history()
        assert any(line.startswith("ACCEPT insert") for line in lines)
        assert any(line.startswith("REJECT insert") for line in lines)

    def test_update_result_truthiness(self):
        assert UpdateResult(True, "insert", "ok")
        assert not UpdateResult(False, "insert", "no")


# ---------------------------------------------------------------------------
# property-based: the guard invariant
# ---------------------------------------------------------------------------

_cell = st.sampled_from(["u", "v", None])


@st.composite
def operations(draw):
    kind = draw(st.sampled_from(["insert", "delete", "update", "fill"]))
    return (
        kind,
        [draw(_cell) for _ in range(2)],
        draw(st.integers(min_value=0, max_value=5)),
        draw(st.sampled_from(["A", "B"])),
        draw(st.sampled_from(["u", "v"])),
    )


@given(st.lists(operations(), max_size=8))
@settings(max_examples=60, deadline=None)
def test_guard_invariant_under_random_operations(ops):
    """After any accepted sequence, the state stays weakly satisfiable."""
    schema = schema_of("A B")
    guard = GuardedRelation(schema, ["A -> B"], rows=[("u", "u")])
    for kind, cells, index, attr, value in ops:
        values = [null() if c is None else c for c in cells]
        try:
            if kind == "insert":
                guard.insert(values)
            elif kind == "delete" and len(guard) > 0:
                guard.delete(index % len(guard))
            elif kind == "update" and len(guard) > 0:
                guard.update(index % len(guard), {attr: values[0]})
            elif kind == "fill" and len(guard) > 0:
                guard.fill(index % len(guard), attr, value)
        except SchemaError:
            pass
    # the invariant: whatever happened, the stored state is satisfiable
    assert weakly_satisfied(["A -> B"], guard.relation)
