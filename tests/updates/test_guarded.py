"""Tests for GuardedRelation: modification operations under weak/strong
consistency (the section 7 programme)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.core.satisfaction import weakly_satisfied
from repro.core.schema import RelationSchema
from repro.core.values import is_null, null
from repro.errors import DomainError, ReproError, SchemaError
from repro.updates import (
    POLICY_STRONG,
    POLICY_WEAK,
    GuardedRelation,
    UpdateResult,
)

from ..helpers import schema_of


def employee_guard(**kwargs):
    schema = schema_of("E# SL D# CT")
    return GuardedRelation(
        schema,
        ["E# -> SL D#", "D# -> CT"],
        rows=[
            (101, 50, "d1", "permanent"),
            (102, null(), "d1", null()),
        ],
        **kwargs,
    )


class TestConstruction:
    def test_initially_consistent(self):
        guard = employee_guard()
        assert len(guard) == 2

    def test_initially_inconsistent_rejected(self):
        schema = schema_of("A B")
        with pytest.raises(ReproError):
            GuardedRelation(schema, ["A -> B"], rows=[("a", 1), ("a", 2)])

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            GuardedRelation(schema_of("A"), [], policy="hopeful")

    def test_propagation_grounds_initial_nulls(self):
        # 102 shares department d1, so its CT is forced to 101's 'permanent'
        guard = employee_guard()
        assert guard.relation[1]["CT"] == "permanent"


class TestInsert:
    def test_consistent_insert_accepted(self):
        guard = employee_guard()
        outcome = guard.insert((103, 70, "d2", "temporary"))
        assert outcome.accepted
        assert len(guard) == 3

    def test_violating_insert_rejected(self):
        guard = employee_guard()
        outcome = guard.insert((101, 99, "d1", "permanent"))  # second salary
        assert not outcome.accepted
        assert len(guard) == 2  # state unchanged

    def test_insert_with_nulls_accepted_when_repairable(self):
        guard = employee_guard()
        outcome = guard.insert((104, null(), "d1", null()))
        assert outcome.accepted
        # propagation grounds the new CT from department d1
        assert guard.relation[2]["CT"] == "permanent"

    def test_forced_substitutions_reported(self):
        guard = employee_guard()
        outcome = guard.insert((105, null(), "d1", null()))
        assert any(v == "permanent" for v in outcome.forced.values())

    def test_rejection_reason_mentions_policy(self):
        guard = employee_guard()
        outcome = guard.insert((101, 99, "d9", "temporary"))
        assert "unsatisfiable" in outcome.reason


class TestDelete:
    def test_delete_always_accepted(self):
        guard = employee_guard()
        assert guard.delete(0).accepted
        assert len(guard) == 1

    def test_delete_bad_index(self):
        with pytest.raises(SchemaError):
            employee_guard().delete(9)

    def test_delete_preserves_satisfiability_property(self):
        # deleting from any consistent state keeps it consistent
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        while len(guard) > 0:
            assert guard.delete(0).accepted


class TestUpdate:
    def test_consistent_update(self):
        guard = employee_guard()
        outcome = guard.update(0, {"SL": 55})
        assert outcome.accepted
        assert guard.relation[0]["SL"] == 55

    def test_conflicting_update_rejected(self):
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        # moving 103 into d1 with a contract disagreeing with d1's
        outcome = guard.update(2, {"D#": "d1", "CT": "temporary"})
        assert not outcome.accepted
        assert guard.relation[2]["D#"] == "d2"  # unchanged

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            employee_guard().update(0, {"ZZ": 1})


class TestFill:
    def test_fill_unconstrained_null(self):
        guard = employee_guard()
        outcome = guard.fill(1, "SL", 64)
        assert outcome.accepted
        assert guard.relation[1]["SL"] == 64

    def test_fill_non_null_rejected(self):
        guard = employee_guard()
        outcome = guard.fill(0, "SL", 99)
        assert not outcome.accepted
        assert "not null" in outcome.reason

    def test_fill_against_forced_value_rejected(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema,
            ["A -> B"],
            rows=[("a", 1), ("a2", null())],
            propagate=False,
        )
        accepted = guard.insert(("a", null()))
        assert accepted.accepted
        # the new row's B is forced to 1 by A -> B; filling with 2 must fail
        outcome = guard.fill(2, "B", 2)
        assert not outcome.accepted
        # filling with the forced value succeeds
        assert guard.fill(2, "B", 1).accepted

    def test_fill_on_propagated_state(self):
        # with propagation on, the forced null was already grounded
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1), ("a", null())]
        )
        assert guard.relation[1]["B"] == 1


class TestStrongPolicy:
    def test_strong_rejects_unknowns_that_could_conflict(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1)], policy=POLICY_STRONG
        )
        # a null B for the same A is weakly fine but not strongly
        outcome = guard.insert(("a", null()))
        assert not outcome.accepted

    def test_strong_accepts_distinct_keys(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1)], policy=POLICY_STRONG
        )
        assert guard.insert(("b", null())).accepted


class TestAcquisitionRatchet:
    """Internal acquisition is a ratchet: once the chase grounds a null,
    the constant is *stored* and survives losing the tuple that forced it
    (the seed semantics: candidates are built from the propagated view)."""

    def test_grounding_survives_deleting_the_forcing_row(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1), ("a", null())]
        )
        assert guard.relation[1]["B"] == 1  # forced, adopted
        guard.delete(0)
        assert guard.relation[0]["B"] == 1  # ratcheted
        # and the ratcheted constant still guards admission
        assert not guard.insert(("a", 2)).accepted

    def test_grounding_survives_updating_the_forcing_row(self):
        schema = schema_of("A B")
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", 1), ("a", null())]
        )
        guard.update(0, {"A": "z"})
        assert guard.relation[1]["B"] == 1  # ratcheted
        assert not guard.update(0, {"A": "a", "B": 2}).accepted

    def test_nec_link_survives_deleting_the_linking_row(self):
        schema = schema_of("A B")
        first, second = null(), null()
        guard = GuardedRelation(
            schema, ["A -> B"], rows=[("a", first), ("a", second), ("z", "b9")]
        )
        linked = guard.relation[0]["B"]
        assert guard.relation[1]["B"] is linked  # one NEC class, one object
        guard.delete(0)
        # the surviving cell still holds the class representative; filling
        # it later behaves like one unknown, not two
        assert guard.relation[0]["B"] is linked


class TestHistory:
    def test_history_lines(self):
        guard = employee_guard()
        guard.insert((103, 70, "d2", "temporary"))
        guard.insert((101, 99, "d1", "permanent"))
        lines = guard.history()
        assert any(line.startswith("ACCEPT insert") for line in lines)
        assert any(line.startswith("REJECT insert") for line in lines)

    def test_update_result_truthiness(self):
        assert UpdateResult(True, "insert", "ok")
        assert not UpdateResult(False, "insert", "no")


# ---------------------------------------------------------------------------
# property-based: behavior parity with the seed (stateless) guard semantics
# ---------------------------------------------------------------------------
#
# The guard now runs on a ChaseSession (snapshot → try → rollback) instead
# of re-chasing candidates from scratch.  The reference below *is* the old
# implementation's decision procedure — candidate-level admissibility plus
# a basic-mode settle — so any drift in accept/reject verdicts or stored
# values shows up as a counterexample.


class _ReferenceGuard:
    """The seed's stateless guard: re-derive everything per operation."""

    def __init__(self, schema, fds, rows, policy, propagate):
        from repro.chase import MODE_BASIC, minimally_incomplete
        from repro.chase.minimal import weakly_satisfiable
        from repro.testfd import CONVENTION_STRONG, check_fds

        self._schema = schema
        self._fds = list(fds)
        self._policy = policy
        self._propagate = propagate
        self._ws = weakly_satisfiable
        self._check = lambda r: check_fds(r, self._fds, CONVENTION_STRONG).satisfied
        self._settle = lambda r: minimally_incomplete(
            r, self._fds, mode=MODE_BASIC
        ).relation
        initial = Relation(schema, rows)
        assert self._admissible(initial)
        self.relation = self._settle(initial) if propagate else initial

    def _admissible(self, candidate):
        if self._policy == POLICY_STRONG:
            return self._check(candidate)
        return self._ws(candidate, self._fds)

    def _attempt(self, candidate):
        if not self._admissible(candidate):
            return False
        self.relation = self._settle(candidate) if self._propagate else candidate
        return True

    def insert(self, row):
        return self._attempt(self.relation.with_rows([row]))

    def delete(self, index):
        rows = [r for i, r in enumerate(self.relation.rows) if i != index]
        return self._attempt(Relation(self._schema, rows))

    def update(self, index, changes):
        from repro.core.tuples import Row as _Row

        mapping = self.relation[index].as_dict()
        mapping.update(changes)
        replacement = _Row.from_mapping(self._schema, mapping)
        rows = [
            replacement if i == index else r
            for i, r in enumerate(self.relation.rows)
        ]
        return self._attempt(Relation(self._schema, rows))

    def fill(self, index, attr, value):
        cell = self.relation[index][attr]
        if not is_null(cell):
            return False
        rows = [r.substitute({cell: value}) for r in self.relation.rows]
        return self._attempt(Relation(self._schema, rows))


_parity_cell = st.sampled_from(["u", "v", "w", None])


@st.composite
def _parity_ops(draw):
    kind = draw(st.sampled_from(["insert", "insert", "delete", "update", "fill"]))
    return (
        kind,
        [draw(_parity_cell) for _ in range(3)],
        draw(st.integers(min_value=0, max_value=7)),
        draw(st.sampled_from(["A", "B", "C"])),
        draw(st.sampled_from(["u", "v", "w"])),
    )


@given(
    st.lists(_parity_ops(), max_size=8),
    st.lists(
        st.sampled_from(["A -> B", "B -> C", "A -> C"]),
        min_size=1,
        max_size=2,
        unique=True,
    ),
    st.booleans(),
    st.sampled_from([POLICY_WEAK, POLICY_STRONG]),
)
@settings(max_examples=80, deadline=None)
def test_session_guard_matches_stateless_reference(ops, fds, propagate, policy):
    """Same accept/reject verdicts and same stored instance as the seed."""
    from repro.chase import canonical_form

    schema = schema_of("A B C")
    seed_rows = [("u", "u", "u")]
    guard = GuardedRelation(
        schema, fds, rows=seed_rows, policy=policy, propagate=propagate
    )
    reference = _ReferenceGuard(schema, fds, seed_rows, policy, propagate)
    for kind, cells, index, attr, value in ops:
        values = [null() if c is None else c for c in cells]
        if kind == "insert":
            # both guards receive the same value list, so a null inserted
            # into one is the *same* object in the other — later fills then
            # exercise identical null patterns on both sides
            assert guard.insert(values).accepted == reference.insert(values)
        elif kind == "delete":
            if len(guard) == 0:
                continue
            index %= len(guard)
            assert guard.delete(index).accepted == reference.delete(index)
        elif kind == "update":
            if len(guard) == 0:
                continue
            index %= len(guard)
            changes = {attr: values[0]}
            assert guard.update(index, changes).accepted == reference.update(
                index, dict(changes)
            )
        else:  # fill
            if len(guard) == 0:
                continue
            index %= len(guard)
            expected = reference.fill(index, attr, value)
            outcome = guard.fill(index, attr, value)
            assert outcome.accepted == expected
        assert canonical_form(guard.relation) == canonical_form(
            reference.relation
        ), (guard.relation.to_text(), reference.relation.to_text())


# ---------------------------------------------------------------------------
# property-based: the guard invariant
# ---------------------------------------------------------------------------

_cell = st.sampled_from(["u", "v", None])


@st.composite
def operations(draw):
    kind = draw(st.sampled_from(["insert", "delete", "update", "fill"]))
    return (
        kind,
        [draw(_cell) for _ in range(2)],
        draw(st.integers(min_value=0, max_value=5)),
        draw(st.sampled_from(["A", "B"])),
        draw(st.sampled_from(["u", "v"])),
    )


@given(st.lists(operations(), max_size=8))
@settings(max_examples=60, deadline=None)
def test_guard_invariant_under_random_operations(ops):
    """After any accepted sequence, the state stays weakly satisfiable."""
    schema = schema_of("A B")
    guard = GuardedRelation(schema, ["A -> B"], rows=[("u", "u")])
    for kind, cells, index, attr, value in ops:
        values = [null() if c is None else c for c in cells]
        try:
            if kind == "insert":
                guard.insert(values)
            elif kind == "delete" and len(guard) > 0:
                guard.delete(index % len(guard))
            elif kind == "update" and len(guard) > 0:
                guard.update(index % len(guard), {attr: values[0]})
            elif kind == "fill" and len(guard) > 0:
                guard.fill(index % len(guard), attr, value)
        except SchemaError:
            pass
    # the invariant: whatever happened, the stored state is satisfiable.
    # The brute-force completion oracle blows up combinatorially on
    # instances with many free nulls (6^8 completions is over its guard
    # limit), so fall back to the chase decision — Theorem 4(b), proven
    # equivalent to the enumeration in the chase suites — when it refuses.
    try:
        assert weakly_satisfied(["A -> B"], guard.relation)
    except DomainError:
        from repro.chase import weakly_satisfiable

        assert weakly_satisfiable(guard.relation, ["A -> B"])
