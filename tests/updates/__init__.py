"""Test package (enables the suite's relative imports)."""
