"""Incremental chase: maintain the minimally incomplete instance across
insertions.

The congruence-closure formulation of Theorem 4 is naturally incremental:
inserting a tuple adds one application term per FD; only those terms need
signing, and the worklist propagates exactly the merges the new tuple
forces.  Total cost over a stream of ``n`` insertions is the same
near-linear bound as one batch chase — versus ``Θ(n)`` full re-chases
(``Θ(n²)``-plus) for the naive maintain-by-recompute strategy that a
guarded relation would otherwise use.  Ablation A2
(``benchmarks/bench_a2_incremental.py``) measures the separation.

Deletions are *not* incremental here: merges are not invertible (union-find
has no efficient un-union), so deletion falls back to a fresh chase — the
classic trade-off, stated rather than hidden.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from .engine import MODE_EXTENDED, ChaseResult, ChaseState


class IncrementalChase(ChaseState):
    """An extended-mode chase whose fixpoint survives row insertions.

    Usage::

        inc = IncrementalChase(schema, ["A -> B", "B -> C"])
        inc.insert(("a", null(), "c"))
        inc.insert(("a", "b1", null()))
        inc.current().relation       # the chased instance, always minimal
        inc.has_nothing              # Theorem 4(b) verdict, maintained live
    """

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        super().__init__(Relation(schema, ()), fds, MODE_EXTENDED)
        self._nothing()  # materialize the inconsistent class up front
        self._columns = [
            (
                self._columns_of(fd)[1],
                tuple(col for _, col in self._columns_of(fd)[2]),
            )
            for fd in self.fds
        ]
        self._signature: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._table: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._uses: Dict[int, Set[Tuple[int, int]]] = defaultdict(set)
        self._pending: Deque[Tuple[int, int]] = deque()
        for row in Relation(schema, rows).rows:
            self.insert(row)

    # -- insertions -----------------------------------------------------------

    def insert(self, values: Sequence[Any] | Row) -> int:
        """Add a tuple and restore the fixpoint; returns its row index."""
        row = values if isinstance(values, Row) else Row(self.schema, values)
        encoded = [
            self._node_for(attr, value)
            for attr, value in zip(self.schema.attributes, row.values)
        ]
        index = len(self.cells)
        self.cells.append(encoded)
        for k in range(len(self.fds)):
            self._sign_term(k, index)
        self._drain()
        return index

    # -- fixpoint machinery ---------------------------------------------------------

    def _sign_term(self, k: int, i: int) -> None:
        xcols = self._columns[k][0]
        sig = tuple(self.uf.find(self.cells[i][c]) for c in xcols)
        self._signature[(k, i)] = sig
        for root in set(sig):
            self._uses[root].add((k, i))
        key = (k, sig)
        other = self._table.get(key)
        if other is None:
            self._table[key] = i
        elif other != i:
            self._enqueue_result_merge(k, other, i)

    def _enqueue_result_merge(self, k: int, i: int, j: int) -> None:
        for col in self._columns[k][1]:
            self._pending.append((self.cells[i][col], self.cells[j][col]))

    def _drain(self) -> None:
        while self._pending:
            first, second = self._pending.popleft()
            root_a, root_b = self.uf.find(first), self.uf.find(second)
            if root_a == root_b:
                continue
            survivor = self._merge(root_a, root_b)
            absorbed = root_b if survivor == root_a else root_a
            if self.tags[survivor][0] == "nothing":
                nothing_root = self._nothing()
                if nothing_root != survivor:
                    self._pending.append((survivor, nothing_root))
            for term in self._uses.pop(absorbed, ()):
                k, i = term
                old_sig = self._signature[term]
                old_key = (k, old_sig)
                if self._table.get(old_key) == i:
                    del self._table[old_key]
                new_sig = tuple(self.uf.find(node) for node in old_sig)
                self._signature[term] = new_sig
                for root in set(new_sig):
                    self._uses[root].add(term)
                new_key = (k, new_sig)
                other = self._table.get(new_key)
                if other is None:
                    self._table[new_key] = i
                elif other != i:
                    self._enqueue_result_merge(k, other, i)
            self.passes += 1

    # -- views ------------------------------------------------------------------------

    def current(self) -> ChaseResult:
        """The maintained fixpoint as a :class:`ChaseResult`."""
        return self.result("incremental")

    @property
    def has_nothing(self) -> bool:
        """Live Theorem 4(b) verdict (no materialization needed)."""
        return any(
            self.tags[self.uf.find(node)][0] == "nothing"
            for encoded in self.cells
            for node in encoded
        )

    def __len__(self) -> int:
        return len(self.cells)
