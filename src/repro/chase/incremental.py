"""Incremental chase — now a thin, deprecated alias of
:class:`repro.chase.session.ChaseSession`.

Historically this module carried its own copy of the signature-table /
use-list machinery to maintain the fixpoint across insertions.  That copy
is gone: the shared core (:class:`repro.chase.core.SignatureChaseCore`)
provides the occurrence index, signature buckets and worklist, and the
session layered on top of it handles insertion (and everything this class
never could: deletion, update, fill, rollback).  ``IncrementalChase``
survives only as a compatibility name for the insert-only workflow::

    inc = IncrementalChase(schema, ["A -> B", "B -> C"])
    inc.insert(("a", null(), "c"))
    inc.current().relation       # the chased instance, always minimal
    inc.has_nothing              # Theorem 4(b) verdict, maintained live

New code should construct :class:`~repro.chase.session.ChaseSession`
directly and call :meth:`~repro.chase.session.ChaseSession.result` for
the maintained fixpoint.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, Sequence

from ..core.fd import FDInput
from ..core.schema import RelationSchema
from ..core.tuples import Row
from .engine import ChaseResult
from .session import ChaseSession


class IncrementalChase(ChaseSession):
    """Deprecated alias: an insert-only view of :class:`ChaseSession`."""

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any] | Row] = (),
    ) -> None:
        # the "repro:" prefix is what CI's warning filter keys on
        # (`-W error:repro:DeprecationWarning`), so library deprecations
        # escalate without third-party DeprecationWarnings breaking runs
        warnings.warn(
            "repro: IncrementalChase is deprecated; construct "
            "repro.ChaseSession directly and use .result() for the "
            "maintained fixpoint",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(schema, fds, rows=rows)

    def current(self) -> ChaseResult:
        """The maintained fixpoint (alias of :meth:`ChaseSession.result`)."""
        return self.result()
