"""Shard planning for the parallel chase: FD connected components.

Two FDs can only ever exchange information through a shared attribute: a
firing of ``X -> Y`` merges classes of cells in ``X ∪ Y`` columns, and a
merge is visible to another FD only if one of *its* columns holds a cell of
the merged class.  So the connected components of the attribute graph
(attributes are vertices; each FD connects all attributes it mentions) chase
completely independently — Theorem 4's unique fixpoint over the whole FD set
is the column-wise union of the per-component fixpoints.  The planner here
computes that partition once per (schema, FD set):

* each :class:`Shard` is one component — its column indices, attribute
  names, and the indices of the FDs it owns;
* ``bypass`` is the set of columns no FD mentions at all: those columns
  cannot change under the chase and skip it entirely (the free win).

One instance-level caveat: a single :class:`~repro.core.values.Null`
*object* occurring in FD columns of two different components couples them —
grounding it in one component must show through the other component's
signatures.  That is a property of the *rows*, not the schema, so the
structural plan (cacheable by sessions) is refined per call by
:func:`fuse_for_rows`, which scans the instance once and fuses any shards
bridged by a shared null.  Nulls shared between a shard and bypass columns
need no fusion — bypass cells are repaired from the shard's substitutions
and NEC classes at stitch time.  NOTHING needs no fusion either: all
nothings form one class, but signatures never span components, so the
sharing is unobservable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.fd import FD, FDInput, as_fd
from ..core.schema import RelationSchema
from ..core.values import is_null


def prune_fds(
    schema: RelationSchema, fds: Iterable[FDInput]
) -> Tuple[Tuple[FD, ...], Tuple[FD, ...]]:
    """An equivalent, smaller FD list for chase execution.

    Returns ``(kept, dropped)``: ``kept`` is Armstrong-equivalent to the
    input — same closure, hence by Theorem 4 the *same* chase fixpoint
    (rows, NEC classes, substitutions) with fewer rule firings — and
    ``dropped`` lists the input FDs (normalized) that no longer appear in
    ``kept`` verbatim.  The passes, in order:

    1. drop trivial FDs (``Y ⊆ X`` — they can never fire);
    2. merge same-LHS FDs (``X -> Y, X -> Z  ⇒  X -> YZ`` — one
       signature stream instead of two);
    3. remove extraneous LHS attributes (:func:`~repro.armstrong.cover.
       left_reduce` — narrower signatures);
    4. drop FDs implied by the rest (:func:`~repro.armstrong.cover.
       remove_redundant` — the cover pruning proper).

    A final :func:`~repro.armstrong.implication.equivalent` check guards
    the rewrite: if it ever failed (it cannot, but the chase's
    correctness must not hang on "cannot"), the unpruned input is
    returned untouched.
    """
    from ..armstrong.cover import left_reduce, remove_redundant
    from ..armstrong.implication import equivalent

    normalized = [as_fd(fd).validate(schema).normalized() for fd in fds]
    working = [fd for fd in normalized if not fd.is_trivial()]

    def merge_same_lhs(fd_list: List[FD]) -> List[FD]:
        grouped: Dict[frozenset, FD] = {}
        for fd in fd_list:
            key = frozenset(fd.lhs)
            prior = grouped.get(key)
            if prior is None:
                grouped[key] = fd
            elif set(fd.rhs) - set(prior.rhs):
                grouped[key] = FD(
                    prior.lhs,
                    prior.rhs + tuple(a for a in fd.rhs if a not in prior.rhs),
                )
        return list(grouped.values())

    working = merge_same_lhs(working)
    working = left_reduce(working)
    working = merge_same_lhs(working)  # reductions can collide LHSs
    working = remove_redundant(working)
    if not equivalent(working, normalized):  # pragma: no cover - safety net
        return tuple(normalized), ()
    kept = tuple(working)
    # multiset accounting: each kept FD absolves at most ONE input copy,
    # so duplicates count as dropped even though their content survives
    remaining = list(kept)
    dropped: List[FD] = []
    for fd in normalized:
        if fd in remaining:
            remaining.remove(fd)
        else:
            dropped.append(fd)
    return kept, tuple(dropped)


@dataclass(frozen=True)
class Shard:
    """One connected component of the FD attribute graph."""

    #: column indices into the full schema, ascending
    columns: Tuple[int, ...]
    #: the matching attribute names (``schema.attributes[c]`` per column)
    attributes: Tuple[str, ...]
    #: indices into the plan's FD list, in input order
    fd_indices: Tuple[int, ...]


@dataclass(frozen=True)
class ShardPlan:
    """A partition of an FD set (and the columns it touches) into shards.

    ``shards`` are ordered by their smallest column index; ``fds`` are the
    *normalized* FDs (``validate().normalized()``), so executors can use
    them directly.  ``bypass`` lists the columns no FD mentions — they skip
    the chase entirely.
    """

    schema: RelationSchema
    fds: Tuple[FD, ...]
    shards: Tuple[Shard, ...]
    bypass: Tuple[int, ...]
    #: input FDs pruned away before sharding (empty unless ``prune=True``)
    dropped: Tuple[FD, ...] = ()

    def shard_fds(self, shard: Shard) -> List[FD]:
        """The FD objects a shard owns, in input order."""
        return [self.fds[i] for i in shard.fd_indices]

    def sub_schema(self, shard: Shard) -> RelationSchema:
        """The shard's projection scheme (domains dropped — the chase
        never consults them, and mp payloads stay scalar-only)."""
        return RelationSchema(self.schema.name, shard.attributes)

    def summary(self) -> str:
        parts = [
            f"{len(self.shards)} shard(s) over {len(self.fds)} FD(s)",
            f"{len(self.bypass)} bypass column(s)",
        ]
        if self.dropped:
            parts.append(f"{len(self.dropped)} FD(s) pruned")
        return "; ".join(parts)


def _find(parent: List[int], item: int) -> int:
    root = item
    while parent[root] != root:
        root = parent[root]
    while parent[item] != root:  # path compression
        parent[item], item = root, parent[item]
    return root


def plan_shards(
    schema: RelationSchema, fds: Iterable[FDInput], prune: bool = False
) -> ShardPlan:
    """The structural plan: components of the FD attribute graph.

    Depends only on the schema and FD set, so sessions cache it across
    mutations; instance-level null sharing is handled separately by
    :func:`fuse_for_rows`.  With ``prune=True`` the FD set is first
    rewritten to an equivalent cover (:func:`prune_fds`) — same fixpoint,
    fewer rules to sign and fire; the pruned-away inputs are recorded in
    ``plan.dropped``.
    """
    dropped: Tuple[FD, ...] = ()
    if prune:
        kept, dropped = prune_fds(schema, fds)
        normalized = kept
    else:
        normalized = tuple(as_fd(fd).validate(schema).normalized() for fd in fds)
    fd_cols: List[Tuple[int, ...]] = [
        tuple(sorted(set(schema.positions(fd.lhs) + schema.positions(fd.rhs))))
        for fd in normalized
    ]
    parent = list(range(len(schema)))
    for cols in fd_cols:
        first = cols[0]
        for col in cols[1:]:
            root_a, root_b = _find(parent, first), _find(parent, col)
            if root_a != root_b:
                parent[root_b] = root_a
    mentioned = sorted({col for cols in fd_cols for col in cols})
    component_cols: Dict[int, List[int]] = {}
    for col in mentioned:
        component_cols.setdefault(_find(parent, col), []).append(col)
    shards = []
    for root, cols in sorted(component_cols.items(), key=lambda kv: kv[1][0]):
        fd_indices = tuple(
            k
            for k, k_cols in enumerate(fd_cols)
            if _find(parent, k_cols[0]) == root
        )
        shards.append(
            Shard(
                columns=tuple(cols),
                attributes=tuple(schema.attributes[c] for c in cols),
                fd_indices=fd_indices,
            )
        )
    in_shards = set(mentioned)
    bypass = tuple(c for c in range(len(schema)) if c not in in_shards)
    return ShardPlan(
        schema=schema,
        fds=normalized,
        shards=tuple(shards),
        bypass=bypass,
        dropped=dropped,
    )


def fuse_for_rows(plan: ShardPlan, rows: Sequence) -> ShardPlan:
    """Refine a structural plan for one instance: fuse shards coupled by a
    shared null object, so no null ever occurs in two shards' columns.

    Returns ``plan`` itself when nothing fuses (the common case), so
    callers can cheaply detect that the cached plan applied unchanged.
    """
    shards = plan.shards
    if len(shards) < 2:
        return plan
    shard_of_col: List[Tuple[int, int]] = [
        (col, i) for i, shard in enumerate(shards) for col in shard.columns
    ]
    parent = list(range(len(shards)))
    seen: Dict[int, int] = {}  # id(null object) -> owning shard index
    changed = False
    for row in rows:
        values = row.values
        for col, i in shard_of_col:
            value = values[col]
            if is_null(value):
                prev = seen.setdefault(id(value), i)
                if prev != i:
                    root_a, root_b = _find(parent, prev), _find(parent, i)
                    if root_a != root_b:
                        parent[root_b] = root_a
                        changed = True
    if not changed:
        return plan
    groups: Dict[int, List[int]] = {}
    for i in range(len(shards)):
        groups.setdefault(_find(parent, i), []).append(i)
    fused = []
    for members in groups.values():
        columns = tuple(sorted(c for i in members for c in shards[i].columns))
        fd_indices = tuple(
            sorted(k for i in members for k in shards[i].fd_indices)
        )
        fused.append(
            Shard(
                columns=columns,
                attributes=tuple(plan.schema.attributes[c] for c in columns),
                fd_indices=fd_indices,
            )
        )
    fused.sort(key=lambda shard: shard.columns[0])
    return ShardPlan(
        schema=plan.schema,
        fds=plan.fds,
        shards=tuple(fused),
        bypass=plan.bypass,
        dropped=plan.dropped,
    )
