"""Worklist-driven, index-maintained NS-rule engine (extended mode).

Why this engine exists — the paper's own pass-count analysis (section 6):
the naive fixpoint procedure "applies the NS-rules in several passes",
each pass scanning all ``O(n²)`` row pairs per FD, and "every pass reduces
the number of distinct symbols, hence we have at most n·p passes" — the
``O(|F|·n³·p)`` bound.  The footnote then cites Downey-Sethi-Tarjan:
congruence-style worklist processing brings the same closure down to
``O(|F|·n·log(|F|·n))``.  The separation is entirely about *re-scanning*:
after a merge, the sweep engine rebuilds every FD's X-signature groups from
scratch even though only the rows holding a cell of the absorbed class can
have changed group.

All of the bookkeeping that realizes the footnote's bound — precomputed
projections, the occurrence index, occurrence-weighted union, per-FD
signature buckets, the ``(fd, row)`` worklist — lives in the shared core
(:class:`repro.chase.core.SignatureChaseCore`), which this engine shares
with the congruence-closure engine.  What this engine adds is only the
firing discipline: a signature collision applies the NS-rule immediately
through the same ``_apply_pair`` / tag semantics as
:class:`repro.chase.engine.ChaseState`, recording typed
:class:`~repro.chase.engine.Application` entries as it goes.

Basic mode is deliberately *not* supported: there the firing order is the
observable (Figure 5), so ``chase(mode="basic")`` keeps the
strategy-parametric sweep engine.  In extended mode Theorem 4 (finite
Church-Rosser) makes every order reach the same fixpoint, which is what
licenses replacing the sweep order with worklist order; the equivalence is
enforced test-side by ``tests/chase/test_indexed.py`` (field-identical
results on randomized instances) and measured by
``benchmarks/bench_e5_chase_scaling.py``.
"""

from __future__ import annotations

from typing import Iterable

from ..core.fd import FDInput
from ..core.relation import Relation
from .core import SignatureChaseCore
from .engine import ChaseResult

STRATEGY_WORKLIST = "worklist"


class IndexedChaseState(SignatureChaseCore):
    """Extended-mode chase driven by a worklist over maintained indexes."""

    def _fire(self, k: int, anchor: int, row: int) -> None:
        """A signature collision is an NS-rule application site."""
        self._apply_pair(self.fds[k], anchor, row)

    def chase_result(self) -> ChaseResult:
        return self.result(STRATEGY_WORKLIST)


def indexed_chase(relation: Relation, fds: Iterable[FDInput]) -> ChaseResult:
    """The unique minimally incomplete instance via the indexed worklist
    engine — field-identical to ``chase(relation, fds, mode="extended",
    engine="sweep")``, at the footnote's worklist cost instead of the
    multi-pass bound."""
    state = IndexedChaseState(relation, fds)
    state.run_worklist()
    return state.chase_result()
