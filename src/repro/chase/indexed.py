"""Worklist-driven, index-maintained NS-rule engine (extended mode).

Why this engine exists — the paper's own pass-count analysis (section 6):
the naive fixpoint procedure "applies the NS-rules in several passes",
each pass scanning all ``O(n²)`` row pairs per FD, and "every pass reduces
the number of distinct symbols, hence we have at most n·p passes" — the
``O(|F|·n³·p)`` bound.  The footnote then cites Downey-Sethi-Tarjan:
congruence-style worklist processing brings the same closure down to
``O(|F|·n·log(|F|·n))``.  The separation is entirely about *re-scanning*:
after a merge, the sweep engine rebuilds every FD's X-signature groups from
scratch even though only the rows holding a cell of the absorbed class can
have changed group.  This engine does the bookkeeping the footnote's bound
assumes, while firing the *same* NS-rules through the same ``_merge`` /
tag semantics as :class:`repro.chase.engine.ChaseState`:

1. **Precomputed projections.**  Each FD's left/right column indices are
   resolved once per state (``ChaseState._columns_of``); no
   ``schema.position`` call survives in any inner loop.

2. **Incremental buckets.**  Per FD, a hash table maps the current
   X-signature (tuple of class roots) to an *anchor* row.  A row whose
   signature lands on an occupied slot fires the NS-rule against the
   anchor immediately — exactly the sweep engine's group behavior, minus
   the group rebuild.

3. **Occurrence index + worklist.**  A reverse index ``class root →
   [(row, col)]`` tracks which cells live in which class.  When a union
   absorbs a class (delivered through the union-find's ``on_union`` hook,
   so *every* merge is caught, including *nothing*-poisoning ones), only
   the rows owning an absorbed cell are dirtied — pushed as ``(fd, row)``
   pairs onto a worklist for re-signing.  Rows whose signatures mention
   the absorbed root necessarily own such a cell, so anchor-table
   invalidation is complete.  Total re-signing work is proportional to
   cells-moved × FDs-per-column, with union-by-size bounding how often any
   cell can move — the near-linear worklist bound, versus a full
   ``Θ(|F|·n)`` group rebuild per firing.

Basic mode is deliberately *not* supported: there the firing order is the
observable (Figure 5), so ``chase(mode="basic")`` keeps the
strategy-parametric sweep engine.  In extended mode Theorem 4 (finite
Church-Rosser) makes every order reach the same fixpoint, which is what
licenses replacing the sweep order with worklist order; the equivalence is
enforced test-side by ``tests/chase/test_indexed.py`` (field-identical
results on randomized instances) and measured by
``benchmarks/bench_e5_chase_scaling.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Tuple, Union

from ..core.fd import FDInput
from ..core.relation import Relation
from .engine import MODE_EXTENDED, ChaseResult, ChaseState

STRATEGY_WORKLIST = "worklist"

#: an X-signature: a bare class root for single-attribute left-hand sides,
#: a root tuple otherwise (the two cannot collide as dict keys)
Signature = Union[int, Tuple[int, ...]]


class IndexedChaseState(ChaseState):
    """Extended-mode chase driven by a worklist over maintained indexes."""

    def __init__(self, relation: Relation, fds: Iterable[FDInput]) -> None:
        super().__init__(relation, fds, MODE_EXTENDED)
        # lhs/rhs projections, resolved once (point 1 of the module doc)
        self._lhs_cols: List[Tuple[int, ...]] = [
            self._columns_of(fd)[1] for fd in self.fds
        ]
        #: col -> FD indices with that column on their left-hand side; only
        #: those FDs can see a row's signature change when the cell moves
        self._lhs_fds_by_col: List[List[int]] = [
            [] for _ in range(len(self.schema))
        ]
        for k, cols in enumerate(self._lhs_cols):
            for col in set(cols):
                self._lhs_fds_by_col[col].append(k)
        #: occurrence index: class root -> cells [(row, col)] in that class
        self._occ: Dict[int, List[Tuple[int, int]]] = {}
        for row, encoded in enumerate(self.cells):
            for col, node in enumerate(encoded):
                # fresh states have node == root; interned constants repeat
                self._occ.setdefault(node, []).append((row, col))
        #: current signature per (fd index, row)
        self._sigs: Dict[Tuple[int, int], Signature] = {}
        #: (fd index, signature) -> anchor row
        self._anchors: Dict[Tuple[int, Signature], int] = {}
        #: rows whose signature may have changed, as (fd index, row)
        self._work: Deque[Tuple[int, int]] = deque()
        self.uf.on_union = self._on_union

    # -- index maintenance ----------------------------------------------------

    def _on_union(self, survivor: int, absorbed: int) -> None:
        """Move the absorbed class's cells; dirty only their rows."""
        moved = self._occ.pop(absorbed, None)
        if not moved:
            return
        self._occ.setdefault(survivor, []).extend(moved)
        work = self._work
        by_col = self._lhs_fds_by_col
        for row, col in moved:
            for k in by_col[col]:
                work.append((k, row))

    def _sign(self, k: int, row: int) -> None:
        """(Re-)bucket one row for one FD; fire against the anchor on hit."""
        find = self.uf.find
        cells_row = self.cells[row]
        cols = self._lhs_cols[k]
        if len(cols) == 1:
            # single-attribute lhs (the common case): a bare root is a
            # cheaper signature than a 1-tuple, and int/tuple keys cannot
            # collide in the bucket tables
            sig = find(cells_row[cols[0]])
        else:
            sig = tuple(find(cells_row[col]) for col in cols)
        key = (k, row)
        old = self._sigs.get(key)
        if old == sig:
            return  # duplicate worklist entry; already processed
        if old is not None and self._anchors.get((k, old)) == row:
            # rows still bucketed under the stale signature (if any) hold a
            # cell of the absorbed class themselves, so they are on the
            # worklist too — dropping the slot cannot orphan them
            del self._anchors[(k, old)]
        self._sigs[key] = sig
        anchor = self._anchors.setdefault((k, sig), row)
        if anchor != row:
            self._apply_pair(self.fds[k], anchor, row)

    # -- fixpoint -------------------------------------------------------------

    def run_worklist(self) -> None:
        """Drive the NS-rules to fixpoint from the worklist.

        Seeds the worklist with every ``(fd, row)`` pair, then drains:
        signing can fire rules, rule firings merge classes, merges dirty
        exactly the affected rows back onto the worklist.  Terminates
        because every merge strictly reduces the number of classes and
        dirty entries only arise from merges.
        """
        self.passes += 1  # the seeding sweep: every term signed once
        work = self._work
        for k in range(len(self.fds)):
            for row in range(len(self.cells)):
                work.append((k, row))
        sign = self._sign
        while work:
            k, row = work.popleft()
            sign(k, row)

    def chase_result(self) -> ChaseResult:
        return self.result(STRATEGY_WORKLIST)


def indexed_chase(relation: Relation, fds: Iterable[FDInput]) -> ChaseResult:
    """The unique minimally incomplete instance via the indexed worklist
    engine — field-identical to ``chase(relation, fds, mode="extended",
    engine="sweep")``, at the footnote's worklist cost instead of the
    multi-pass bound."""
    state = IndexedChaseState(relation, fds)
    state.run_worklist()
    return state.chase_result()
