"""The shared chase-engine core: occurrence index, signature buckets,
weighted union-find, worklist.

The paper's Theorem 4 fast path and the NS-rule chase are one fixpoint; the
worklist indexed engine (:mod:`repro.chase.indexed`) and the
congruence-closure engine (:mod:`repro.chase.congruence`) used to compute
it with two parallel sets of bookkeeping — a ``class → cells`` occurrence
index on one side, signature/use-list machinery on the other.  This module
is the single copy both now share:

1. **Precomputed projections.**  Each FD's left/right column indices are
   resolved once per state (``ChaseState._columns_of``); no
   ``schema.position`` call survives in any inner loop.

2. **Occurrence index.**  A reverse index ``class root → [(row, col)]``
   tracks which cells live in which class.  It doubles as the *use list*
   of classic congruence closure: the terms using a class are exactly the
   ``(fd, row)`` pairs whose row owns one of its cells with the column on
   the FD's left-hand side.

3. **Occurrence-weighted union.**  Each node's union-find weight is its
   cell-occurrence count, so the class whose occurrence list is longer
   always survives a merge and only the short list moves.  Union by *node*
   count gets this wrong for interned constants — one node standing for
   hundreds of cells — which are precisely the classes that grow hot in
   poisoning cascades.

4. **Signature buckets + worklist.**  Per FD, a hash table maps the
   current X-signature (tuple of class roots) to an *anchor* row, and a
   parallel member table records every row bucketed under that signature
   (the use-list inverse a deletion needs: "who shares the victim's
   bucket").  A row whose signature lands on an occupied slot **fires**
   against the anchor.
   When a union absorbs a class (delivered through the union-find's
   ``on_union`` hook, so every merge is caught, including
   *nothing*-poisoning ones), only the rows owning an absorbed cell are
   dirtied — pushed as ``(fd, row)`` pairs onto a worklist for re-signing.
   Rows whose signatures mention the absorbed root necessarily own such a
   cell, so anchor-table invalidation is complete.  Total re-signing work
   is proportional to cells-moved × FDs-per-column, with weighted union
   bounding how often any cell can move — the near-linear bound of the
   paper's Downey-Sethi-Tarjan footnote.

What *firing* means is the one thing the engines disagree on, so it is the
one overridable hook (:meth:`SignatureChaseCore._fire`): the indexed
engine applies the NS-rule directly (recording typed
:class:`~repro.chase.engine.Application` entries); the congruence engine
enqueues result-cell merges and closes over them queue-style.  Theorem 4
(finite Church-Rosser in extended mode) is what makes the different firing
disciplines land on the same partition; the randomized cross-engine suite
(``tests/chase/test_indexed.py``) pins it field-by-field.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Tuple, Union

from ..core.fd import FDInput
from ..core.relation import Relation
from .engine import MODE_EXTENDED, ChaseState

#: an X-signature: a bare class root for single-attribute left-hand sides,
#: a root tuple otherwise (the two cannot collide as dict keys)
Signature = Union[int, Tuple[int, ...]]


class SignatureChaseCore(ChaseState):
    """Extended-mode chase state with the shared index/worklist machinery.

    Subclasses implement :meth:`_fire` (what happens when two rows collide
    on an FD's X-signature) and drive :meth:`run_worklist`.
    """

    def __init__(self, relation: Relation, fds: Iterable[FDInput]) -> None:
        super().__init__(relation, fds, MODE_EXTENDED)
        # lhs/rhs projections, resolved once (point 1 of the module doc)
        self._lhs_cols: List[Tuple[int, ...]] = [
            self._columns_of(fd)[1] for fd in self.fds
        ]
        self._rhs_cols: List[Tuple[int, ...]] = [
            tuple(col for _, col in self._columns_of(fd)[2]) for fd in self.fds
        ]
        #: col -> FD indices with that column on their left-hand side; only
        #: those FDs can see a row's signature change when the cell moves
        self._lhs_fds_by_col: List[List[int]] = [
            [] for _ in range(len(self.schema))
        ]
        for k, cols in enumerate(self._lhs_cols):
            for col in set(cols):
                self._lhs_fds_by_col[col].append(k)
        #: occurrence index: class root -> cells [(row, col)] in that class
        self._occ: Dict[int, List[Tuple[int, int]]] = {}
        for row, encoded in enumerate(self.cells):
            for col, node in enumerate(encoded):
                # fresh states have node == root; interned constants repeat
                self._occ.setdefault(node, []).append((row, col))
        # occurrence-weighted union (point 3): a node weighs as many cells
        # as it stands for, so merges keep the occurrence-heavy class as
        # root and move the short list
        for node, cells in self._occ.items():
            self.uf.set_weight(node, len(cells))
        #: current signature per (fd index, row)
        self._sigs: Dict[Tuple[int, int], Signature] = {}
        #: (fd index, signature) -> anchor row
        self._anchors: Dict[Tuple[int, Signature], int] = {}
        #: (fd index, signature) -> *all* rows currently bucketed there,
        #: as an insertion-ordered set (dict keyed by row).  The anchor
        #: table answers "who do I fire against"; the member list answers
        #: the inverse question a deletion asks — "who else is in the
        #: victim's bucket" — so the session can excise a retired row and
        #: promote a surviving member to anchor without replaying the
        #: suffix.  Mirrors ``_sigs`` exactly:
        #: ``_members[(k, s)] == {row : _sigs[(k, row)] == s}``
        #: (pinned by the integrity property suite).  Member *order* is
        #: not semantically observable (anchor choice is unobservable in
        #: extended mode — Theorem 4), which is what lets the trail undo
        #: re-add members at the end instead of at their old position.
        self._members: Dict[Tuple[int, Signature], Dict[int, None]] = {}
        #: rows whose signature may have changed, as (fd index, row)
        self._work: Deque[Tuple[int, int]] = deque()
        self.uf.on_union = self._on_union

    # -- index maintenance ----------------------------------------------------

    def _on_union(self, survivor: int, absorbed: int) -> None:
        """Move the absorbed class's cells; dirty only their rows."""
        moved = self._occ.pop(absorbed, None)
        if not moved:
            return
        target = self._occ.get(survivor)
        if target is None:
            self._occ[survivor] = target = []
            existed = False
        else:
            existed = True
        target.extend(moved)
        if self._trail is not None:
            self._trail.append(("occmv", survivor, absorbed, len(moved), existed))
        work = self._work
        by_col = self._lhs_fds_by_col
        for row, col in moved:
            for k in by_col[col]:
                work.append((k, row))

    def _sign(self, k: int, row: int) -> None:
        """(Re-)bucket one row for one FD; fire against the anchor on hit."""
        find = self.uf.find
        cells_row = self.cells[row]
        cols = self._lhs_cols[k]
        if len(cols) == 1:
            # single-attribute lhs (the common case): a bare root is a
            # cheaper signature than a 1-tuple, and int/tuple keys cannot
            # collide in the bucket tables
            sig = find(cells_row[cols[0]])
        else:
            sig = tuple(find(cells_row[col]) for col in cols)
        key = (k, row)
        old = self._sigs.get(key)
        if old == sig:
            return  # duplicate worklist entry; already processed
        trail = self._trail
        members = self._members
        if old is not None:
            if self._anchors.get((k, old)) == row:
                # rows still bucketed under the stale signature (if any)
                # hold a cell of the absorbed class themselves, so they are
                # on the worklist too — dropping the slot cannot orphan them
                del self._anchors[(k, old)]
                if trail is not None:
                    trail.append(("ancdel", (k, old), row))
            stale = members[(k, old)]
            del stale[row]
            if not stale:
                del members[(k, old)]
            if trail is not None:
                trail.append(("memdel", (k, old), row))
        self._sigs[key] = sig
        if trail is not None:
            trail.append(("sig", key, old))
        bucket = members.get((k, sig))
        if bucket is None:
            members[(k, sig)] = {row: None}
        else:
            bucket[row] = None
        if trail is not None:
            trail.append(("memapp", (k, sig), row))
        anchor = self._anchors.get((k, sig))
        if anchor is None:
            # a row anchored under `sig` would have matched the early
            # return above, so a present anchor is always a *different* row
            self._anchors[(k, sig)] = row
            if trail is not None:
                trail.append(("ancnew", (k, sig)))
        elif anchor != row:
            self._fire(k, anchor, row)

    def _fire(self, k: int, anchor: int, row: int) -> None:
        """Two rows agree on FD ``k``'s left-hand side: act on it.

        The engine-specific half of the fixpoint — NS-rule application for
        the indexed engine, result-merge enqueueing for the congruence
        engine.  Any class merges it causes re-enter :attr:`_work` through
        :meth:`_on_union`.
        """
        raise NotImplementedError

    # -- fixpoint -------------------------------------------------------------

    def run_worklist(self) -> None:
        """Drive the NS-rules to fixpoint from the worklist.

        Seeds the worklist with every ``(fd, row)`` pair, then drains:
        signing can fire rules, rule firings merge classes, merges dirty
        exactly the affected rows back onto the worklist.  Terminates
        because every merge strictly reduces the number of classes and
        dirty entries only arise from merges.
        """
        self.passes += 1  # the seeding sweep: every term signed once
        work = self._work
        for k in range(len(self.fds)):
            for row in range(len(self.cells)):
                work.append((k, row))
        sign = self._sign
        while work:
            k, row = work.popleft()
            sign(k, row)
        from ..analysis import sanitize  # local: keeps the core import-light

        if sanitize.enabled():
            sanitize.audit_core(self)
