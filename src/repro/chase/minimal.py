"""Minimally incomplete instances and weak satisfiability (Theorems 3-4).

An instance is *minimally incomplete* w.r.t. an FD set when no NS-rule is
applicable: "nothing more can be said about the nulls in this state".  The
high-level entry points here wrap the two engines:

* :func:`minimally_incomplete` — chase to a fixpoint (basic or extended
  rules, fixpoint or congruence engine);
* :func:`is_minimally_incomplete` — applicability check without chasing;
* :func:`weakly_satisfiable` — Theorem 4(b): an FD set is weakly satisfied
  in ``r`` iff the extended chase produces no *nothing* value;
* :func:`canonical_form` — a strategy-independent fingerprint of a chase
  result, used to verify the Church-Rosser property (Theorem 4(a)) and the
  equivalence of the two engines.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.values import NOTHING, is_constant, is_null
from .congruence import congruence_chase
from .engine import (
    MODE_BASIC,
    MODE_EXTENDED,
    STRATEGY_FD_ORDER,
    STRATEGY_RANDOM,
    STRATEGY_ROUND_ROBIN,
    ChaseResult,
    ChaseState,
    chase,
)


def minimally_incomplete(
    relation: Relation,
    fds: Iterable[FDInput],
    mode: str = MODE_EXTENDED,
    strategy: str = STRATEGY_ROUND_ROBIN,
    engine: str = "fixpoint",
    seed: int = 0,
) -> ChaseResult:
    """Chase ``relation`` with the NS-rules for ``fds`` to a fixpoint.

    ``engine="fixpoint"`` runs the multi-pass sweep engine of
    :mod:`repro.chase.engine` (supports both modes and all strategies);
    ``engine="indexed"`` runs the worklist-driven indexed engine of
    :mod:`repro.chase.indexed`; ``engine="congruence"`` runs the
    congruence-closure engine.  The latter two are near-linear and
    extended mode only — that is the mode Theorem 4 is about.
    """
    if engine in ("congruence", "indexed"):
        if mode != MODE_EXTENDED:
            raise ValueError(
                f"the {engine} engine implements the extended (Church-"
                "Rosser) rules only; use engine='fixpoint' for basic mode"
            )
        if engine == "congruence":
            return congruence_chase(relation, list(fds))
        return chase(relation, fds, mode=mode, strategy=strategy, engine="indexed")
    if engine != "fixpoint":
        raise ValueError(f"unknown chase engine {engine!r}")
    return chase(relation, fds, mode=mode, strategy=strategy, seed=seed, engine="sweep")


def is_minimally_incomplete(
    relation: Relation, fds: Iterable[FDInput], mode: str = MODE_BASIC
) -> bool:
    """Is any NS-rule applicable?  (Definition of minimal incompleteness.)

    With ``mode="basic"`` (the paper's definition) a pending const/const
    disagreement does *not* count as applicable; with ``mode="extended"``
    it does.
    """
    state = ChaseState(relation, fds, mode)
    for fd in state.fds:
        groups: dict = {}
        for row in range(len(state.cells)):
            groups.setdefault(state._x_signature(fd, row), []).append(row)
        for rows in groups.values():
            if len(rows) < 2:
                continue
            anchor = rows[0]
            for other in rows[1:]:
                for attr in fd.rhs:
                    col = state.schema.position(attr)
                    node_a = state.uf.find(state.cells[anchor][col])
                    node_b = state.uf.find(state.cells[other][col])
                    if node_a == node_b:
                        continue
                    kind_a = state.tags[node_a][0]
                    kind_b = state.tags[node_b][0]
                    if kind_a == "const" and kind_b == "const":
                        if mode == MODE_EXTENDED:
                            return False
                        continue  # basic mode: no rule for const conflicts
                    return False
    return True


def weakly_satisfiable(
    relation: Relation, fds: Iterable[FDInput], engine: str = "congruence"
) -> bool:
    """Theorem 4(b): ``F`` is weakly satisfied in ``r`` iff the extended
    chase fixpoint contains no *nothing* value."""
    result = minimally_incomplete(
        relation, fds, mode=MODE_EXTENDED, engine=engine
    )
    return not result.has_nothing


def canonical_form(relation: Relation) -> Tuple[Tuple[Any, ...], ...]:
    """A value-structure fingerprint invariant under null renaming.

    Constants map to themselves, *nothing* to a marker, and null objects to
    their class index in row-major first-occurrence order — so two chase
    results compare equal iff they agree on every constant, every nothing,
    and the *pattern* of shared nulls (the NECs).
    """
    numbering: dict = {}
    rows: List[Tuple[Any, ...]] = []
    for row in relation.rows:
        encoded: List[Any] = []
        for value in row.values:
            if is_null(value):
                index = numbering.setdefault(id(value), len(numbering))
                encoded.append(("null", index))
            elif value is NOTHING:
                encoded.append(("nothing",))
            else:
                encoded.append(("const", value))
        rows.append(tuple(encoded))
    return tuple(rows)


def church_rosser_orders(
    relation: Relation,
    fds: Iterable[FDInput],
    mode: str = MODE_EXTENDED,
    seeds: Iterable[int] = range(8),
) -> List[ChaseResult]:
    """Chase under several application orders (for Theorem 4 experiments).

    Returns one result per order: the two deterministic strategies on the
    given FD order, ``fd_order`` on the reversed FD order, and a seeded
    random strategy per element of ``seeds``.  In extended mode all
    canonical forms must coincide; in basic mode they may differ (Figure 5).

    Every run forces the sweep engine: the point of this function is to
    *vary the application order*, and the worklist engine that now backs
    ``chase(mode="extended")`` by default ignores strategy and seed — it
    would turn the comparison into eleven runs of one execution.
    """
    fd_list = list(fds)
    results = [
        chase(relation, fd_list, mode=mode, strategy=STRATEGY_FD_ORDER, engine="sweep"),
        chase(relation, fd_list, mode=mode, strategy=STRATEGY_ROUND_ROBIN, engine="sweep"),
        chase(
            relation,
            list(reversed(fd_list)),
            mode=mode,
            strategy=STRATEGY_FD_ORDER,
            engine="sweep",
        ),
    ]
    for seed in seeds:
        results.append(
            chase(
                relation,
                fd_list,
                mode=mode,
                strategy=STRATEGY_RANDOM,
                seed=seed,
                engine="sweep",
            )
        )
    return results
