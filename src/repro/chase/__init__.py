"""NS-rule chase, NECs, congruence closure (paper section 6)."""

from .congruence import CongruenceEngine, congruence_chase
from .core import SignatureChaseCore
from .incremental import IncrementalChase
from .indexed import IndexedChaseState, indexed_chase
from .parallel import parallel_chase
from .plan import Shard, ShardPlan, fuse_for_rows, plan_shards, prune_fds
from .session import ChaseSession, ReadLease, ResultAnswer, SessionSnapshot
from .vector import VectorChaseState, vectorized_chase
from .engine import (
    ENGINE_AUTO,
    ENGINE_CONGRUENCE,
    ENGINE_INDEXED,
    ENGINE_SWEEP,
    ENGINE_VECTOR,
    MODE_BASIC,
    MODE_EXTENDED,
    STRATEGY_FD_ORDER,
    STRATEGY_RANDOM,
    STRATEGY_ROUND_ROBIN,
    Application,
    ChaseResult,
    ChaseState,
    XSubstitution,
    chase,
    x_side_substitutions,
)
from .minimal import (
    canonical_form,
    church_rosser_orders,
    is_minimally_incomplete,
    minimally_incomplete,
    weakly_satisfiable,
)

__all__ = [
    "Application",
    "ChaseResult",
    "ChaseSession",
    "ChaseState",
    "CongruenceEngine",
    "ENGINE_AUTO",
    "ENGINE_CONGRUENCE",
    "ENGINE_INDEXED",
    "ENGINE_SWEEP",
    "ENGINE_VECTOR",
    "IncrementalChase",
    "IndexedChaseState",
    "MODE_BASIC",
    "MODE_EXTENDED",
    "STRATEGY_FD_ORDER",
    "STRATEGY_RANDOM",
    "STRATEGY_ROUND_ROBIN",
    "ReadLease",
    "ResultAnswer",
    "SessionSnapshot",
    "Shard",
    "ShardPlan",
    "SignatureChaseCore",
    "VectorChaseState",
    "XSubstitution",
    "canonical_form",
    "chase",
    "church_rosser_orders",
    "congruence_chase",
    "fuse_for_rows",
    "indexed_chase",
    "is_minimally_incomplete",
    "minimally_incomplete",
    "parallel_chase",
    "plan_shards",
    "prune_fds",
    "vectorized_chase",
    "weakly_satisfiable",
    "x_side_substitutions",
]
