"""Vectorized signature recomputation for the dense single-component case.

When every FD touches every other FD's attributes, the shard planner
degenerates to one component and parallelism buys nothing.  This engine is
the second attack route: instead of the worklist's per-``(fd, row)``
signature dict (:class:`~repro.chase.core.SignatureChaseCore`), it keeps a
**flat integer array of class roots per column** (stdlib ``array('q')``;
numpy, when importable, accelerates the duplicate scan).  The union-find
``on_union`` hook rewrites the moved cells' slots in place, so after any
burst of merges, regrouping an FD is one linear pass over its column
slices — no ``find`` calls, no per-row dict updates — rebucketing rows by
reading machine integers out of contiguous memory.

Soundness of the regroup-until-clean loop: a merge that changes some row's
X-signature for FD ``k`` necessarily moved one of that row's ``k``-lhs
cells, and the hook re-dirties ``k`` whenever that happens — including for
merges fired *during* ``k``'s own regroup pass.  So when the dirty set
drains empty, the last regroup of every FD ran over signatures that were
stable throughout the pass, i.e. a true fixpoint check.  Termination: a
regroup either fires a class-reducing merge or retires its FD from the
dirty set, and only merges re-add entries.

The result is field-identical to the other extended-mode engines (Theorem
4); the differential suite in ``tests/chase/test_parallel.py`` pins it.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Set, Tuple

from ..core.fd import FDInput
from ..core.relation import Relation
from .engine import MODE_EXTENDED, ChaseResult, ChaseState

try:  # numpy is optional; the stdlib path is complete without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

STRATEGY_VECTOR = "vector"

#: below this row count the numpy duplicate scan costs more than it saves
_NUMPY_MIN_ROWS = 512


class VectorChaseState(ChaseState):
    """Extended-mode chase over maintained per-column root arrays."""

    def __init__(self, relation: Relation, fds: Iterable[FDInput]) -> None:
        super().__init__(relation, fds, MODE_EXTENDED)
        self._lhs_cols: List[Tuple[int, ...]] = [
            self._columns_of(fd)[1] for fd in self.fds
        ]
        #: col -> FD indices with that column on their left-hand side
        self._lhs_fds_by_col: List[List[int]] = [
            [] for _ in range(len(self.schema))
        ]
        for k, cols in enumerate(self._lhs_cols):
            for col in set(cols):
                self._lhs_fds_by_col[col].append(k)
        n_rows = len(self.cells)
        #: per-column root arrays: ``_roots[c][r] == uf.find(cells[r][c])``,
        #: maintained eagerly by the union hook.  Fresh states intern every
        #: cell to a root node, so the initial copy is already correct.
        self._roots: List[array] = [
            array("q", (self.cells[r][c] for r in range(n_rows)))
            for c in range(len(self.schema))
        ]
        #: occurrence index, as in the worklist core: root -> [(row, col)]
        self._occ: Dict[int, List[Tuple[int, int]]] = {}
        for row, encoded in enumerate(self.cells):
            for col, node in enumerate(encoded):
                self._occ.setdefault(node, []).append((row, col))
        for node, cells in self._occ.items():
            self.uf.set_weight(node, len(cells))
        #: FDs whose signature groups may be stale
        self._dirty: Set[int] = set()
        self.uf.on_union = self._on_union

    def _on_union(self, survivor: int, absorbed: int) -> None:
        """Rewrite the moved cells' root slots; dirty the FDs that look."""
        moved = self._occ.pop(absorbed, None)
        if not moved:
            return
        self._occ.setdefault(survivor, []).extend(moved)
        roots = self._roots
        dirty = self._dirty
        by_col = self._lhs_fds_by_col
        for row, col in moved:
            roots[col][row] = survivor
            fds_here = by_col[col]
            if fds_here:
                dirty.update(fds_here)

    # -- fixpoint -------------------------------------------------------------

    def run_vectorized(self) -> None:
        """Regroup dirty FDs until no regroup dirties anything."""
        dirty = self._dirty
        dirty.update(range(len(self.fds)))
        while dirty:
            k = dirty.pop()
            self.passes += 1
            self._regroup(k)

    def _duplicate_rows(self, roots: array):
        """Row indices worth bucketing: those sharing a root with another
        row in this column (numpy fast path), or all rows (fallback)."""
        if _np is not None and len(roots) >= _NUMPY_MIN_ROWS:
            values = _np.frombuffer(roots, dtype=_np.int64)
            _, inverse, counts = _np.unique(
                values, return_inverse=True, return_counts=True
            )
            if int(counts.max(initial=0)) <= 1:
                return ()
            return _np.nonzero(counts[inverse] > 1)[0].tolist()
        return range(len(roots))

    def _regroup(self, k: int) -> None:
        """One linear pass over FD ``k``'s lhs column slices: bucket rows
        by signature, fire the NS-rule on every collision."""
        fd = self.fds[k]
        cols = self._lhs_cols[k]
        anchors: Dict = {}
        apply_pair = self._apply_pair
        if len(cols) == 1:
            roots = self._roots[cols[0]]
            for row in self._duplicate_rows(roots):
                sig = roots[row]
                anchor = anchors.setdefault(sig, row)
                if anchor != row:
                    apply_pair(fd, anchor, row)
        else:
            arrays = [self._roots[c] for c in cols]
            for row in range(len(self.cells)):
                sig = tuple(arr[row] for arr in arrays)
                anchor = anchors.setdefault(sig, row)
                if anchor != row:
                    apply_pair(fd, anchor, row)


def vectorized_chase(relation: Relation, fds: Iterable[FDInput]) -> ChaseResult:
    """The unique minimally incomplete instance via maintained root arrays —
    field-identical to :func:`repro.chase.indexed.indexed_chase`."""
    state = VectorChaseState(relation, fds)
    state.run_vectorized()
    return state.result(STRATEGY_VECTOR)
