"""Congruence-closure chase (the fast engine behind Theorem 4).

Theorem 4 is proved (via [Graham 80] / [Downey, Sethi, Tarjan 80]) by
reading the instance as a congruence-closure problem: for every FD
``X -> Y`` and every tuple ``t``, introduce the "application"
``f_{X->Y}(t[X]) = t[Y]``; congruence — equal arguments force equal results
— is then exactly the NS-rule, and the congruence closure of the resulting
graph is the unique minimally incomplete instance (with *nothing* for
classes that swallow two distinct constants).

The signature-table / use-list machinery of the standard efficient
congruence closure is exactly the machinery the worklist indexed engine
maintains, so this engine no longer keeps its own copy: the shared core
(:class:`repro.chase.core.SignatureChaseCore`) provides the signature
buckets, and its occurrence index *is* the use list — the terms using a
class are the ``(fd, row)`` pairs the core re-signs when one of the
class's cells sits under an FD's left-hand side.  With the core's
occurrence-weighted union the total re-signing work is ``O(m log m)`` term
updates — the near-linear bound the paper's footnote cites, versus the
naive engine's multi-pass ``O(|F| · n³ · p)``.

What stays congruence-specific is the firing discipline, kept deliberately
*different* from the indexed engine's so the two remain independently
derived oracles for the differential tests: a signature collision does not
apply the NS-rule's case analysis — it enqueues the result-cell pairs
``(t[A], t'[A])`` for ``A ∈ Y`` on a pending queue, and the closure loop
merges them unconditionally, letting the tag algebra (and an explicit
poison-propagation step for classes that turned *nothing*) sort out the
semantics.

The result is bit-for-bit the same partition (and tags) as
:func:`repro.chase.engine.chase` in extended mode; the test suite and
experiment E5 verify this on thousands of random instances.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Tuple

from ..core.fd import FDInput
from ..core.relation import Relation
from .core import SignatureChaseCore
from .engine import ChaseResult

STRATEGY_CONGRUENCE = "congruence"


class CongruenceEngine(SignatureChaseCore):
    """Extended-mode chase via congruence closure on the shared core."""

    def __init__(self, relation: Relation, fds: Iterable[FDInput]) -> None:
        super().__init__(relation, fds)
        self._nothing()  # materialize the single inconsistent class up front
        #: node pairs whose classes congruence forces equal
        self._pending: Deque[Tuple[int, int]] = deque()

    def _fire(self, k: int, anchor: int, row: int) -> None:
        """Equal arguments force equal results: enqueue the Y-cell merges."""
        cells = self.cells
        pending = self._pending
        for col in self._rhs_cols[k]:
            pending.append((cells[anchor][col], cells[row][col]))
        self._close()

    def _close(self) -> None:
        """Drain the pending merges (the congruence-closure loop).

        Every pop merges one pair of classes through the tag algebra.
        Poisoning: a class that swallowed two distinct constants must join
        the single *nothing* class (constants are interned per column, so
        the merge itself propagates *nothing* to every cell holding them);
        that follow-up union goes back on the queue like any other.  The
        class merges dirty rows onto the core's worklist through
        ``on_union``; re-signing (and the further collisions it finds)
        happens after this drain returns, back in ``run_worklist`` — so
        the queue is always empty when :meth:`_fire` is entered.
        """
        pending = self._pending
        find = self.uf.find
        while pending:
            first, second = pending.popleft()
            root_a, root_b = find(first), find(second)
            if root_a == root_b:
                continue
            survivor = self._merge(root_a, root_b)
            if self.tags[survivor][0] == "nothing":
                nothing_root = self._nothing()
                if nothing_root != survivor:
                    pending.append((survivor, nothing_root))
            self.passes += 1  # one queue step ~ one merge processed

    def run_congruence(self) -> None:
        self.run_worklist()

    def chase_result(self) -> ChaseResult:
        return self.result(STRATEGY_CONGRUENCE)


def congruence_chase(relation: Relation, fds: Iterable[FDInput]) -> ChaseResult:
    """The unique minimally incomplete instance via congruence closure.

    Semantically identical to
    ``chase(relation, fds, mode="extended")`` — but near-linear instead of
    cubic in the number of tuples.
    """
    engine = CongruenceEngine(relation, fds)
    engine.run_congruence()
    return engine.chase_result()
