"""Congruence-closure chase (the fast engine behind Theorem 4).

Theorem 4 is proved (via [Graham 80] / [Downey, Sethi, Tarjan 80]) by
reading the instance as a congruence-closure problem: for every FD
``X -> Y`` and every tuple ``t``, introduce the "application"
``f_{X->Y}(t[X]) = t[Y]``; congruence — equal arguments force equal results
— is then exactly the NS-rule, and the congruence closure of the resulting
graph is the unique minimally incomplete instance (with *nothing* for
classes that swallow two distinct constants).

This module implements the signature-table / use-list algorithm (the
standard efficient congruence closure): each (FD, row) pair is a term whose
signature is the tuple of its ``X``-cell class roots; a hash table maps
signatures to a representative row; when a union changes some class, only
the terms *using* that class are re-signed.  With union-by-size the total
re-signing work is ``O(m log m)`` term updates — the near-linear bound the
paper's footnote cites, versus the naive engine's multi-pass
``O(|F| · n³ · p)``.

The result is bit-for-bit the same partition (and tags) as
:func:`repro.chase.engine.chase` in extended mode; the test suite and
experiment E5 verify this on thousands of random instances.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Set, Tuple

from ..core.fd import FDInput
from ..core.relation import Relation
from .engine import MODE_EXTENDED, ChaseResult, ChaseState

STRATEGY_CONGRUENCE = "congruence"


class CongruenceEngine(ChaseState):
    """Extended-mode chase via congruence closure."""

    def __init__(self, relation: Relation, fds: Iterable[FDInput]) -> None:
        super().__init__(relation, fds, MODE_EXTENDED)
        self._nothing()  # materialize the single inconsistent class up front

    def run_congruence(self) -> None:
        fds = self.fds
        columns = [
            (
                self._columns_of(fd)[1],
                tuple(col for _, col in self._columns_of(fd)[2]),
            )
            for fd in fds
        ]
        n_rows = len(self.cells)

        # term = (fd index, row index)
        signature: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        table: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        uses: Dict[int, Set[Tuple[int, int]]] = defaultdict(set)
        pending: Deque[Tuple[int, int]] = deque()

        def enqueue_result_merge(k: int, i: int, j: int) -> None:
            for col in columns[k][1]:
                pending.append((self.cells[i][col], self.cells[j][col]))

        # -- initial signing --------------------------------------------------
        for k in range(len(fds)):
            xcols = columns[k][0]
            for i in range(n_rows):
                sig = tuple(self.uf.find(self.cells[i][c]) for c in xcols)
                signature[(k, i)] = sig
                for root in set(sig):
                    uses[root].add((k, i))
                key = (k, sig)
                if key in table:
                    enqueue_result_merge(k, table[key], i)
                else:
                    table[key] = i

        # -- closure loop ---------------------------------------------------------
        while pending:
            first, second = pending.popleft()
            root_a, root_b = self.uf.find(first), self.uf.find(second)
            if root_a == root_b:
                continue
            survivor = self._merge(root_a, root_b)
            absorbed = root_b if survivor == root_a else root_a

            # Poisoning: a class that swallowed two distinct constants must
            # join the single *nothing* class (constants interned per column
            # then propagate it to every cell holding them).
            if self.tags[survivor][0] == "nothing":
                nothing_root = self._nothing()
                if nothing_root != survivor:
                    pending.append((survivor, nothing_root))

            # Re-sign every term that used the absorbed class.
            for term in uses.pop(absorbed, ()):
                k, i = term
                old_sig = signature[term]
                old_key = (k, old_sig)
                if table.get(old_key) == i:
                    del table[old_key]
                new_sig = tuple(self.uf.find(node) for node in old_sig)
                signature[term] = new_sig
                for root in set(new_sig):
                    uses[root].add(term)
                new_key = (k, new_sig)
                other = table.get(new_key)
                if other is None:
                    table[new_key] = i
                elif other != i:
                    enqueue_result_merge(k, other, i)
            self.passes += 1  # one queue step ~ one merge processed

    def chase_result(self) -> ChaseResult:
        return self.result(STRATEGY_CONGRUENCE)


def congruence_chase(relation: Relation, fds: Iterable[FDInput]) -> ChaseResult:
    """The unique minimally incomplete instance via congruence closure.

    Semantically identical to
    ``chase(relation, fds, mode="extended")`` — but near-linear instead of
    cubic in the number of tuples.
    """
    engine = CongruenceEngine(relation, fds)
    engine.run_congruence()
    return engine.chase_result()
