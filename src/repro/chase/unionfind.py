"""Disjoint-set forest (union-find) used by the NS-rule engines.

Plain integer-keyed DSU with path halving and *weighted* union.  The chase
engines layer *value tags* on top of the partition; keeping the DSU itself
generic keeps both engines honest about where the semantics lives.

Weighted union: every node carries a weight (default 1, so the default is
classic union by size) and the heavier class survives a merge.  The chase
core sets each node's weight to its **cell-occurrence count** — an interned
constant appearing in 500 cells is one node but weighs 500 — so the class
whose occurrence list would be expensive to move is always the one that
stays put.  Union by node count would happily absorb that constant into a
three-null class and then move 500 occurrence entries; union by occurrence
weight moves 3.

Backtracking: a *trail* (installed via :attr:`trail`) turns the structure
into a backtrackable union-find.  Every successful union appends a
``("uf", survivor, absorbed)`` entry; :meth:`undo_union` inverts one entry
exactly, provided entries are undone in reverse order.  Two invariants make
the inversion exact:

* **no path compression while trailing** — :meth:`find` skips path halving
  when a trail is installed, because halving rewrites parent pointers of
  nodes *inside* an absorbed subtree to point above the absorbed root;
  undoing the union by resetting ``parent[absorbed]`` would then strand
  them in the wrong class.  Weighted union alone still bounds tree depth
  logarithmically, so trailing costs ``O(log n)`` finds instead of
  near-``O(1)``;
* **reverse-order undo** — ``size``/``weight`` totals of the absorbed root
  are untouched between the union and its undo only if every later
  mutation (further unions, :meth:`add_weight` bumps) is undone first.

:class:`repro.chase.session.ChaseSession` owns the trail and journals its
own bookkeeping (tags, occurrence lists, signature buckets and their
member lists, per-row merge-witness counts) onto the same list, so one
reverse sweep restores the whole engine state.  The one mutation class
that is deliberately *not* journalled is the session's in-place row
retirement: it excises a provably merge-free row from the layered
structures without touching the partition, then fences the trail below
that moment off from future rewinds (the session's ratchet + generation
bump), because the excised suffix can no longer be reconstructed
entry-by-entry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class UnionFind:
    """Union-find over the integers ``0 .. n-1`` (growable).

    Structures layered on top of the partition (the chase core's occurrence
    index, for instance) can subscribe to merges via :attr:`on_union`: after
    every *successful* union it is called with ``(survivor, absorbed)`` root
    ids, so the subscriber can move exactly the bookkeeping attached to the
    absorbed class — no full rescan.
    """

    __slots__ = ("parent", "size", "weight", "merges", "on_union", "trail")

    def __init__(self, count: int = 0) -> None:
        self.parent: List[int] = list(range(count))
        self.size: List[int] = [1] * count
        #: per-class weight; roots hold their class's total.  Defaults to 1
        #: per node (weighted union then coincides with union by size);
        #: engines that know better call :meth:`set_weight` before merging.
        self.weight: List[int] = [1] * count
        #: number of successful (class-reducing) unions so far
        self.merges: int = 0
        #: optional merge-notification hook: ``hook(survivor, absorbed)``
        self.on_union: Optional[Callable[[int, int], None]] = None
        #: optional shared journal; installing one makes the structure
        #: backtrackable (unions are recorded, path compression stops)
        self.trail: Optional[List[Tuple[Any, ...]]] = None

    def add(self) -> int:
        """Create a fresh singleton node; returns its id."""
        node = len(self.parent)
        self.parent.append(node)
        self.size.append(1)
        self.weight.append(1)
        return node

    def set_weight(self, node: int, weight: int) -> None:
        """Assign a singleton node's weight (before any union touches it).

        Weights are class totals maintained by summation; reassigning a
        non-root (or a root that already absorbed others) would corrupt the
        totals, so this is restricted to fresh singletons.
        """
        if self.parent[node] != node or self.size[node] != 1:
            raise ValueError("set_weight is only valid on singleton roots")
        self.weight[node] = weight

    def find(self, node: int) -> int:
        """Root of ``node``'s class (path halving; plain walk if trailing)."""
        parent = self.parent
        if self.trail is None:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node
        # backtrackable mode: compression would make undo_union inexact
        while parent[node] != node:
            node = parent[node]
        return node

    def union(self, first: int, second: int) -> int:
        """Merge the two classes; returns the surviving root.

        The heavier class wins (weighted union), which both bounds tree
        depth — weights are positive, so the absorbed side at most halves
        the total, giving the usual logarithmic move count — and makes
        "move the absorbed class's occurrences" the cheap side in the
        chase core.
        """
        a, b = self.find(first), self.find(second)
        if a == b:
            return a
        if self.weight[a] < self.weight[b]:
            a, b = b, a
        self.parent[b] = a
        self.size[a] += self.size[b]
        self.weight[a] += self.weight[b]
        self.merges += 1
        if self.trail is not None:
            self.trail.append(("uf", a, b))
        if self.on_union is not None:
            self.on_union(a, b)
        return a

    # -- backtracking ------------------------------------------------------

    def undo_union(self, survivor: int, absorbed: int) -> None:
        """Invert one recorded union (strict reverse-order discipline)."""
        self.parent[absorbed] = absorbed
        self.size[survivor] -= self.size[absorbed]
        self.weight[survivor] -= self.weight[absorbed]
        self.merges -= 1

    def add_weight(self, root: int, delta: int) -> None:
        """Adjust a class total in place (new cell occurrences of an
        existing class).  Unlike :meth:`set_weight` this is valid on any
        root at any time; callers undo it by adding ``-delta`` back."""
        self.weight[root] += delta

    def drop_newest(self, node: int) -> None:
        """Remove the most recently added node (undo of :meth:`add`).

        Valid only while the node is the last one and still a singleton
        root — guaranteed when undoing a trail in reverse order, since any
        union involving the node was undone first.
        """
        if node != len(self.parent) - 1 or self.parent[node] != node:
            raise ValueError("drop_newest must undo the most recent add")
        self.parent.pop()
        self.size.pop()
        self.weight.pop()

    def same(self, first: int, second: int) -> bool:
        return self.find(first) == self.find(second)

    def __len__(self) -> int:
        return len(self.parent)

    def classes(self) -> Dict[int, List[int]]:
        """root -> members, for inspection and result extraction."""
        out: Dict[int, List[int]] = {}
        for node in range(len(self.parent)):
            out.setdefault(self.find(node), []).append(node)
        return out
