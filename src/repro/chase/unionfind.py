"""Disjoint-set forest (union-find) used by the NS-rule engines.

Plain integer-keyed DSU with path halving and union by size.  The chase
engines layer *value tags* on top of the partition; keeping the DSU itself
generic keeps both engines honest about where the semantics lives.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class UnionFind:
    """Union-find over the integers ``0 .. n-1`` (growable).

    Structures layered on top of the partition (the indexed chase engine's
    occurrence index, for instance) can subscribe to merges via
    :attr:`on_union`: after every *successful* union it is called with
    ``(survivor, absorbed)`` root ids, so the subscriber can move exactly
    the bookkeeping attached to the absorbed class — no full rescan.
    """

    __slots__ = ("parent", "size", "merges", "on_union")

    def __init__(self, count: int = 0) -> None:
        self.parent: List[int] = list(range(count))
        self.size: List[int] = [1] * count
        #: number of successful (class-reducing) unions so far
        self.merges: int = 0
        #: optional merge-notification hook: ``hook(survivor, absorbed)``
        self.on_union: Optional[Callable[[int, int], None]] = None

    def add(self) -> int:
        """Create a fresh singleton node; returns its id."""
        node = len(self.parent)
        self.parent.append(node)
        self.size.append(1)
        return node

    def find(self, node: int) -> int:
        """Root of ``node``'s class (path halving)."""
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, first: int, second: int) -> int:
        """Merge the two classes; returns the surviving root.

        The larger class wins (union by size), which both bounds tree depth
        and — in the congruence engine — makes "re-sign the smaller class"
        the cheap side.
        """
        a, b = self.find(first), self.find(second)
        if a == b:
            return a
        if self.size[a] < self.size[b]:
            a, b = b, a
        self.parent[b] = a
        self.size[a] += self.size[b]
        self.merges += 1
        if self.on_union is not None:
            self.on_union(a, b)
        return a

    def same(self, first: int, second: int) -> bool:
        return self.find(first) == self.find(second)

    def __len__(self) -> int:
        return len(self.parent)

    def classes(self) -> Dict[int, List[int]]:
        """root -> members, for inspection and result extraction."""
        out: Dict[int, List[int]] = {}
        for node in range(len(self.parent)):
            out.setdefault(self.find(node), []).append(node)
        return out
