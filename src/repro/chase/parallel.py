"""Sharded parallel chase: one worklist per FD component, stitched back.

The planner (:mod:`repro.chase.plan`) proves the FD components independent;
this module exploits it.  Each shard — a column slice of the relation plus
the FDs it owns — is chased by its own engine: the
:class:`~repro.chase.vector.VectorChaseState` maintained-root-array engine
in-process (``workers=1``, a single shard, single-core machines, or as the
fallback), an :class:`~repro.chase.indexed.IndexedChaseState` worklist per
worker across a ``multiprocessing`` pool.  Columns no FD mentions bypass
the chase entirely.  The per-shard results are then **stitched**: row-aligned column
splices, with the per-shard null bookkeeping remapped so the merged
:class:`~repro.chase.engine.ChaseResult` is field-identical to the
single-threaded engines.

Two remappings make the stitch exact:

* **Cross-process identity.**  A child process cannot see the parent's
  :class:`~repro.core.values.Null` objects, so each shard's rows travel as
  canonical-id tokens through :class:`~repro.core.codec.ValueCodec` — the
  same codec scope encodes the payload and decodes the reply, so every id
  resolves back to the *original* parent-side object, and the child's
  fresh decode preserves the sharing structure (first-occurrence order is
  deterministic on both sides).
* **Global representative order.**  The serial engines display each NEC
  class as its earliest-*registered* member, where registration order is
  the row-major scan over *all* columns.  A shard only sees its own
  columns, so its local representative can differ.  The stitcher indexes
  every null's global first occurrence once, re-sorts class members and
  classes by it, and rewrites any cell holding a superseded shard
  representative — the same pass that applies substitutions and merges to
  null occurrences in bypass columns.

Constants that the codec refuses (non-JSON-scalar) and pool failures both
degrade to the in-process path, which needs no serialization at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.codec import ValueCodec, fds_from_spec, fds_to_spec
from ..core.fd import FD, FDInput
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import Null, is_null
from ..errors import CodecError
from .engine import MODE_EXTENDED, Application, ChaseResult
from .indexed import IndexedChaseState
from .plan import Shard, ShardPlan, fuse_for_rows, plan_shards
from .vector import VectorChaseState

STRATEGY_PARALLEL = "parallel"


@dataclass
class _ShardOutcome:
    """One shard's chase output, in parent-process objects."""

    rows: List[Tuple[Any, ...]]  # result cell values, row-aligned
    nec_classes: List[Tuple[Null, ...]]
    substitutions: Dict[Null, Any]
    applications: List[Application]
    passes: int


def _sub_rows(relation: Relation, shard: Shard) -> List[List[Any]]:
    return [[row.values[c] for c in shard.columns] for row in relation.rows]


def _outcome_from_result(result: ChaseResult) -> _ShardOutcome:
    return _ShardOutcome(
        rows=[row.values for row in result.relation.rows],
        nec_classes=list(result.nec_classes),
        substitutions=dict(result.substitutions),
        applications=list(result.applications),
        passes=result.passes,
    )


def _run_shard_local(
    relation: Relation, plan: ShardPlan, shard: Shard, vectorized: bool
) -> _ShardOutcome:
    sub = Relation(plan.sub_schema(shard), _sub_rows(relation, shard))
    fds = plan.shard_fds(shard)
    if vectorized:
        state: Any = VectorChaseState(sub, fds)
        state.run_vectorized()
    else:
        state = IndexedChaseState(sub, fds)
        state.run_worklist()
    return _outcome_from_result(state.result(STRATEGY_PARALLEL))


# -- multiprocessing path -----------------------------------------------------


def shard_payload(
    relation: Relation, plan: ShardPlan, shard: Shard
) -> Tuple[ValueCodec, dict]:
    """A JSON-able description of one shard's chase job.

    Raises :class:`~repro.errors.CodecError` on non-scalar constants — the
    caller falls back to the in-process path.
    """
    codec = ValueCodec()
    return codec, {
        "name": plan.schema.name,
        "attributes": list(shard.attributes),
        "fds": fds_to_spec(plan.shard_fds(shard)),
        "rows": [
            codec.encode_row([row.values[c] for c in shard.columns])
            for row in relation.rows
        ],
    }


def chase_shard_remote(payload: dict) -> dict:
    """Chase one encoded shard; runs in a worker process (top-level, so
    every ``multiprocessing`` start method can import it)."""
    schema = RelationSchema(payload["name"], payload["attributes"])
    codec = ValueCodec()
    rows = [codec.decode_row(tokens) for tokens in payload["rows"]]
    state = IndexedChaseState(
        Relation(schema, rows), fds_from_spec(payload["fds"])
    )
    state.run_worklist()
    result = state.result(STRATEGY_PARALLEL)
    fd_pos = {id(fd): k for k, fd in enumerate(state.fds)}
    return {
        "rows": [codec.encode_row(row.values) for row in result.relation.rows],
        "nec": [
            [codec.id_of(member) for member in cls]
            for cls in result.nec_classes
        ],
        "subs": [
            [codec.id_of(null_obj), codec.encode(value)]
            for null_obj, value in result.substitutions.items()
        ],
        "apps": [
            [fd_pos[id(app.fd)], app.first_row, app.second_row,
             app.attribute, app.action]
            for app in result.applications
        ],
        "passes": result.passes,
    }


def decode_outcome(
    codec: ValueCodec, shard_fds: Sequence[FD], reply: dict
) -> _ShardOutcome:
    """Resolve a worker reply back to parent-process objects through the
    codec scope that built the payload."""
    return _ShardOutcome(
        rows=[tuple(codec.decode_row(tokens)) for tokens in reply["rows"]],
        nec_classes=[
            tuple(codec.object_of(member) for member in cls)
            for cls in reply["nec"]
        ],
        substitutions={
            codec.object_of(canonical): codec.decode(token)
            for canonical, token in reply["subs"]
        },
        applications=[
            Application(shard_fds[k], first, second, attribute, action)
            for k, first, second, attribute, action in reply["apps"]
        ],
        passes=reply["passes"],
    )


def _run_shards_pooled(
    relation: Relation, plan: ShardPlan, workers: int
) -> List[_ShardOutcome]:
    """Chase every shard across a process pool.

    Raises ``CodecError`` (non-scalar constants) or ``OSError``/
    ``ImportError`` (pool creation) for the caller's fallback.
    """
    import multiprocessing

    jobs = [shard_payload(relation, plan, shard) for shard in plan.shards]
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - platform-dependent
        context = multiprocessing.get_context()
    with context.Pool(processes=min(workers, len(jobs))) as pool:
        replies = pool.map(chase_shard_remote, [payload for _, payload in jobs])
    return [
        decode_outcome(codec, plan.shard_fds(shard), reply)
        for (codec, _), shard, reply in zip(jobs, plan.shards, replies)
    ]


# -- stitching ----------------------------------------------------------------


def _stitch(
    relation: Relation, plan: ShardPlan, outcomes: Sequence[_ShardOutcome]
) -> ChaseResult:
    schema = relation.schema
    # global first-occurrence order of every null object (row-major over
    # ALL columns) — identical to the serial engines' registration order,
    # which fixes representatives and class/member ordering
    order: Dict[int, int] = {}
    for row in relation.rows:
        for value in row.values:
            if is_null(value) and id(value) not in order:
                order[id(value)] = len(order)

    classes = [cls for outcome in outcomes for cls in outcome.nec_classes]
    nec_classes = [
        tuple(sorted(cls, key=lambda member: order[id(member)]))
        for cls in classes
    ]
    nec_classes.sort(key=lambda cls: order[id(cls[0])])

    #: id(null) -> display value for any cell still holding that object:
    #: superseded shard representatives map to the global representative,
    #: grounded nulls (shard or bypass occurrences) to their constant/NOTHING
    null_out: Dict[int, Any] = {}
    for cls in nec_classes:
        rep = cls[0]
        for member in cls:
            if member is not rep:
                null_out[id(member)] = rep
    sub_items = [
        item for outcome in outcomes for item in outcome.substitutions.items()
    ]
    sub_items.sort(key=lambda item: order[id(item[0])])
    substitutions = dict(sub_items)
    for null_obj, value in sub_items:
        null_out[id(null_obj)] = value

    rows: List[Row] = []
    pairs = [
        (shard.columns, outcome.rows)
        for shard, outcome in zip(plan.shards, outcomes)
    ]
    for index, row in enumerate(relation.rows):
        values = list(row.values)
        for columns, shard_rows in pairs:
            shard_values = shard_rows[index]
            for position, col in enumerate(columns):
                values[col] = shard_values[position]
        for col, value in enumerate(values):
            if is_null(value):
                values[col] = null_out.get(id(value), value)
        rows.append(Row(schema, values))

    return ChaseResult(
        relation=Relation(schema, rows),
        nec_classes=nec_classes,
        substitutions=substitutions,
        applications=[
            app for outcome in outcomes for app in outcome.applications
        ],
        passes=sum(outcome.passes for outcome in outcomes),
        mode=MODE_EXTENDED,
        strategy=STRATEGY_PARALLEL,
    )


# -- entry point --------------------------------------------------------------


def parallel_chase(
    relation: Relation,
    fds: Iterable[FDInput],
    workers: Optional[int] = None,
    plan: Optional[ShardPlan] = None,
    processes: Optional[bool] = None,
) -> ChaseResult:
    """Chase via component shards, field-identical to the serial engines.

    ``workers`` — pool size; ``None`` means one per CPU, ``1`` forces the
    in-process path.  ``plan`` — a cached structural plan for this schema
    and FD list (``plan.fds`` is then authoritative; sessions pass their
    cached plan here).  ``processes`` — three-valued test/ops hook: ``None``
    decides automatically, ``False`` forbids process pools, ``True``
    requires them (errors propagate instead of degrading).
    """
    if plan is None:
        # no cached plan: pay the (cheap, schema-level) cover pruning —
        # an equivalent FD set chases to the identical fixpoint with
        # fewer signature streams and firings
        plan = plan_shards(relation.schema, fds, prune=True)
    effective = fuse_for_rows(plan, relation.rows)
    shards = effective.shards
    if not shards:
        # no FDs constrain anything: the input is already the fixpoint
        rows = [Row(relation.schema, row.values) for row in relation.rows]
        return ChaseResult(
            relation=Relation(relation.schema, rows),
            nec_classes=[],
            substitutions={},
            applications=[],
            passes=1,
            mode=MODE_EXTENDED,
            strategy=STRATEGY_PARALLEL,
        )
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    pool_size = workers if workers is not None else (os.cpu_count() or 1)
    # a process pool only pays when there are several shards to spread AND
    # several cores to spread them over; on a single-core machine the fork
    # and serialization overhead is pure loss, so the auto path stays
    # in-process there (where sharding still wins from column bypass and
    # the per-shard vector engine)
    use_pool = processes is True or (
        processes is None
        and len(shards) > 1
        and pool_size > 1
        and (os.cpu_count() or 1) > 1
    )
    outcomes: Optional[List[_ShardOutcome]] = None
    if use_pool:
        if processes is True:
            outcomes = _run_shards_pooled(relation, effective, pool_size)
        else:
            try:
                outcomes = _run_shards_pooled(relation, effective, pool_size)
            except (CodecError, OSError, ImportError, PermissionError):
                outcomes = None  # degrade to the in-process path
    if outcomes is None:
        # in-process shards run on the vector engine: its maintained root
        # arrays beat the worklist engine on dense shards, and the one-shard
        # degenerate case becomes exactly the vectorized signature fallback
        outcomes = [
            _run_shard_local(relation, effective, shard, vectorized=True)
            for shard in shards
        ]
    return _stitch(relation, effective, outcomes)
