"""ChaseSession: a stateful handle on one ``(relation, fds)`` pair.

The paper's artifacts are all views of one object — the unique minimally
incomplete instance of Theorem 4 — but the library used to expose it
through disconnected surfaces: one-shot :func:`repro.chase.chase`,
insert-only :class:`repro.chase.IncrementalChase`, re-chase-from-scratch
:class:`repro.updates.GuardedRelation`, and stateless
:func:`repro.testfd.check_fds`.  :class:`ChaseSession` is the long-lived
production shape behind all of them: it owns the raw tuples *and* the
maintained Theorem-4 fixpoint, and keeps the two in lock-step across the
full update vocabulary.

* :meth:`insert` — sign the new row's ``(fd, row)`` terms and drain the
  shared core's worklist; amortized near-linear over a stream, exactly the
  congruence-closure incrementality the paper's Downey-Sethi-Tarjan
  footnote licenses.
* :meth:`delete` / :meth:`update` / :meth:`replace` — recent victims use
  the journal: every mutation (union, tag flip, occurrence move, bucket
  edit, node creation) is journalled on a **trail**, and each row
  remembers the trail mark taken just before its insertion.  Removing or
  rewriting row ``i`` rewinds the trail to that mark — restoring the
  exact engine state that existed before row ``i`` — and replays the
  surviving suffix.  An *old* victim, whose rewind would be deeper than
  re-chasing, is **retired in place** instead when it never witnessed an
  NS-rule firing (per-row witness counts, maintained live) and holds no
  null shared with survivors: its cells are excised from the occurrence
  index and its rows from the signature buckets' member lists (promoting
  a surviving member to anchor where it anchored), with no rewind, no
  replay and no rebuild — O(the victim's cells and their classes)
  however old the row is.  Old merge witnesses still level-rebuild.
  :meth:`stats` counts which path each op took.
* :meth:`fill` — grounds a null with a user-supplied constant: the
  "internal acquisition" channel of section 7.  Single-column nulls take a
  fast path (merge the null's class with the column's interned constant —
  one union plus whatever it cascades); nulls spanning columns rewind to
  their first occurrence so the re-encoding matches a from-scratch chase
  exactly.
* :meth:`snapshot` / :meth:`rollback` — an O(1)-to-take checkpoint.
  Rolling back pops the trail down to the checkpoint's mark (backtrackable
  union-find: no path compression while trailing, weighted union keeps
  finds logarithmic), which is what lets a guard *try* a modification and
  un-happen it when the result is inadmissible — no per-attempt state
  copy, no re-chase.  A checkpoint that a later rewind invalidated is
  honored by rebuilding from its recorded raw rows.  The trail grows with
  total work done; :meth:`compact` sheds the history when rewindability
  to old states stops being worth the memory.
* :meth:`check` — dispatches the TEST-FDs family against the maintained
  instance.  Under the weak convention Theorem 3's precondition (minimal
  incompleteness) holds *by construction*: the session state is always a
  chase fixpoint.
* :meth:`result` / :attr:`has_nothing` / :meth:`explain` — the Theorem-4
  views: the minimally incomplete instance, the weak-satisfiability
  verdict (live, no materialization), and the narrated chase.
* :attr:`on_op` — the **op-record hook** the durable layer
  (:mod:`repro.db`) arms: every top-level mutator emits one replay record
  (``("insert", values)``, ``("delete", index)``, ...) *after* its
  argument validation but *before* any state changes, which is exactly
  the write-ahead discipline a journal needs.  Internal re-application —
  suffix replays, level rebuilds, rollback restoration — never emits
  (those inserts are consequences of an op already on record, not ops).

The invariant pinned by ``tests/chase/test_session.py`` after **every**
operation: ``session.result()`` is field-identical (rows, NEC classes,
substitutions, ``has_nothing``) to ``chase(Relation(schema, session.rows),
fds)`` from scratch.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..api import TAG_CERTAIN, Answer, provenance_of
from ..core.fd import FDInput, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import NOTHING, Null, is_null
from ..errors import ReproError, SchemaError
from .core import SignatureChaseCore
from .engine import _TAG_CONST, _TAG_NOTHING, ChaseResult


class ResultAnswer(ChaseResult):
    """A :class:`ChaseResult` that also speaks the unified answer schema.

    Every ``ChaseResult`` field and method is intact — existing callers
    see no difference — plus the cut bookkeeping (``as_of``/``live``,
    stamped by durable surfaces via :meth:`at`) and :meth:`answer`,
    which renders the maintained fixpoint as a :class:`repro.api.Answer`.
    The tag is ``certain``: the fixpoint is the representative instance
    itself, not a quantified claim about its completions.
    """

    def __init__(
        self, base: ChaseResult, as_of: Any = None, live: bool = True
    ) -> None:
        super().__init__(
            **{
                f.name: getattr(base, f.name)
                for f in dataclass_fields(ChaseResult)
            }
        )
        self.as_of = as_of
        self.live = live

    def at(self, as_of: Any, live: bool = True) -> "ResultAnswer":
        """The same result stamped with a journal cut."""
        self.as_of = as_of
        self.live = live
        return self

    def answer(self) -> Answer:
        rows = tuple(tuple(row.values) for row in self.relation.rows)
        attributes = self.relation.schema.attributes
        domains = {
            attribute: self.relation.schema.domain(attribute)
            for attribute in attributes
            if self.relation.schema.domain(attribute).is_finite
        }
        return Answer(
            tag=TAG_CERTAIN,
            attributes=attributes,
            rows=rows,
            as_of=self.as_of,
            live=self.live,
            provenance=provenance_of(
                rows, attributes, relation_name=self.relation.schema.name
            ),
            meta={
                "has_nothing": self.has_nothing,
                "passes": self.passes,
                "mode": self.mode,
                "strategy": self.strategy,
            },
            domains=domains or None,
        )

STRATEGY_SESSION = "session"


def _audited(method):
    """Run the sanitizer sweep after a successful public mutation.

    A no-op unless the session opted in (``sanitize=True`` or
    ``REPRO_SANITIZE=1``): the guard is one attribute read, so production
    paths pay nothing.  Audits only on success — an op that raised is
    specified to leave the state untouched, which the *next* audited op
    will confirm against the same invariants.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        value = method(self, *args, **kwargs)
        if self._sanitize:
            from ..analysis.sanitize import audit_session

            audit_session(self)
        return value

    return wrapper


@dataclass(frozen=True)
class SessionSnapshot:
    """An O(1)-to-take checkpoint of a :class:`ChaseSession`.

    ``mark``/``apps`` locate the checkpoint on the trail; ``gen`` records
    the session's rewind generation (a checkpoint is trail-restorable only
    while no rewind has happened since it was taken); ``rows`` are the raw
    tuples at checkpoint time, the rebuild fallback.
    """

    mark: int
    apps: int
    gen: int
    rows: Tuple[Row, ...]


class ChaseSession(SignatureChaseCore):
    """Maintain the Theorem-4 fixpoint across inserts, deletes, updates,
    fills and rollbacks.

    Usage::

        session = ChaseSession(schema, ["A -> B", "B -> C"])
        session.insert(("a", null(), "c"))
        session.insert(("a", "b1", null()))
        session.update(1, {"C": "c2"})
        session.delete(0)
        session.has_nothing          # Theorem 4(b), maintained live
        session.check()              # TEST-FDs on the maintained instance
        snap = session.snapshot()
        session.insert(("a", "b9", "c9"))    # conflicts: poisons the state
        session.rollback(snap)               # un-happens it

    The first argument may be a :class:`~repro.core.relation.Relation`
    (its rows become the initial stream) or a bare schema plus ``rows``.
    """

    def __init__(
        self,
        source: Union[Relation, RelationSchema],
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any] | Row] = (),
        fast_retire: bool = True,
        workers: Optional[int] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        #: opt-in invariant sweep after every public mutation
        #: (:mod:`repro.analysis.sanitize`); ``None`` defers to the
        #: ``REPRO_SANITIZE`` environment flag
        if sanitize is None:
            from ..analysis.sanitize import enabled

            sanitize = enabled()
        self._sanitize = bool(sanitize)
        if isinstance(source, Relation):
            schema, initial = source.schema, list(source.rows)
        else:
            schema, initial = source, []
        initial.extend(Relation(schema, rows).rows)
        #: in-place row retirement for deletes/updates of merge-free rows;
        #: ``False`` forces the PR-3 rewind/rebuild discipline (kept as a
        #: switch so benchmarks and differential tests can race the two)
        self._fast_retire = fast_retire
        #: worker count for sharded verification re-chases (``None`` keeps
        #: them serial); the structural shard plan is computed once per FD
        #: set and cached — :meth:`set_fds` re-plans
        self.workers = workers
        self._plan: Optional[Any] = None
        #: op-outcome counters, kept across rebuilds (see :meth:`stats`)
        self._stats: Dict[str, int] = {
            "retire_fast": 0,
            "trail_replay": 0,
            "level_rebuild": 0,
        }
        #: op-record hook: called with one replay record per *top-level*
        #: mutation, after validation, before application (the WAL shape).
        #: ``None`` (the default) costs one attribute check per op.
        #: Internal re-application — suffix replays, rebuilds, rollback
        #: restoration — goes through the private ``_insert``/``_replace``
        #: entry points and never emits.
        self.on_op: Optional[Any] = None
        super().__init__(Relation(schema, ()), fds)
        self._install()
        for row in initial:
            self.insert(row)

    def _install(self) -> None:
        """Arm the journal on a freshly initialized core."""
        self._nothing()  # materialize the inconsistent class pre-trail
        self._trail: List[tuple] = []
        self.uf.trail = self._trail
        #: raw (un-chased) rows, the session's source of truth
        self._raw_rows: List[Row] = []
        #: external row index -> engine slot (index into ``cells``).  The
        #: engine's structures are keyed by *slot* and slots are never
        #: renumbered: a fast-path retirement tombstones the victim's slot
        #: in place and only this mapping shifts, so the occurrence index
        #: and bucket tables need no O(n) reindexing
        self._slots: List[int] = []
        #: per row: (trail length, applications length) just before insert
        self._marks: List[Tuple[int, int]] = []
        #: bumped by every trail rewind; invalidates older snapshots' marks
        self._gen = 0
        #: trail position of the latest in-place raw-row rewrite (a fill's
        #: substitution or an adopt's commit).  Rewinding *below* it would
        #: silently peel that user-supplied data off rows the replay never
        #: touches, so delete/update/replace must level-rebuild instead
        #: (an explicit rollback may cross it — reverting is its job).
        self._ratchet_mark = 0

    # -- firing discipline -------------------------------------------------

    def _fire(self, k: int, anchor: int, row: int) -> None:
        """A signature collision applies the NS-rule directly (the indexed
        engine's discipline; Theorem 4 makes the order unobservable)."""
        self._apply_pair(self.fds[k], anchor, row)

    def _drain(self) -> None:
        """Run the dirtied terms to fixpoint (one op = one 'pass')."""
        self.passes += 1
        work = self._work
        sign = self._sign
        while work:
            k, row = work.popleft()
            sign(k, row)

    # -- raw views ---------------------------------------------------------

    @property
    def rows(self) -> Tuple[Row, ...]:
        """The raw (un-chased) rows currently in the session."""
        return tuple(self._raw_rows)

    def raw_relation(self) -> Relation:
        """The raw rows as a :class:`Relation` (what a from-scratch
        ``chase`` of this session's state would take as input)."""
        return Relation(self.schema, list(self._raw_rows))

    def __len__(self) -> int:
        return len(self._raw_rows)

    # -- op records (the durable layer's write-ahead hook) -----------------

    def _emit(self, record: tuple) -> None:
        """Hand a replay record to :attr:`on_op` (top-level ops only).

        Emission happens after the op's own validation and before any
        engine mutation: a hook that raises (e.g. a failed journal append)
        aborts the op with the session state untouched.
        """
        hook = self.on_op
        if hook is not None:
            hook(record)

    # -- update vocabulary -------------------------------------------------

    @_audited
    def insert(self, values: Sequence[Any] | Row) -> int:
        """Add a tuple and restore the fixpoint; returns its row index."""
        row = values if isinstance(values, Row) else Row(self.schema, values)
        if row.schema.attributes != self.schema.attributes:
            raise SchemaError(
                f"row scheme {row.schema!r} does not match {self.schema!r}"
            )
        self._emit(("insert", row.values))
        return self._insert(row)

    def _insert(self, row: Row) -> int:
        """Insert a validated row without emitting an op record."""
        trail = self._trail
        self._marks.append((len(trail), len(self.applications)))
        self._raw_rows.append(row)
        slot = len(self.cells)
        self._slots.append(slot)
        trail.append(("raw",))
        uf = self.uf
        occ = self._occ
        encoded: List[int] = []
        for col, attr in enumerate(self.schema.attributes):
            before = len(uf.parent)
            node = self._node_for(attr, row.values[col])
            encoded.append(node)
            root = uf.find(node)
            cells_of = occ.get(root)
            if cells_of is None:
                occ[root] = [(slot, col)]
                trail.append(("occnew", root))
            else:
                cells_of.append((slot, col))
                trail.append(("occapp", root))
            if node < before:
                # existing class gains an occurrence; fresh nodes already
                # weigh 1 (their single new cell)
                uf.add_weight(root, 1)
                trail.append(("wt", root))
        self.cells.append(encoded)
        trail.append(("cells",))
        work = self._work
        for k in range(len(self.fds)):
            work.append((k, slot))
        self._drain()
        return len(self._raw_rows) - 1

    def _rewind_pays(self, mark: int) -> bool:
        """Is undo-to-``mark`` + suffix replay both *safe* and cheaper than
        a level rebuild?

        Unsafe below :attr:`_ratchet_mark`: the undo would revert a fill's
        or adopt's in-place row rewrites, and the replay (which only
        re-inserts rows *after* the rewound one) would never restore them.
        """
        if mark < self._ratchet_mark:
            return False
        return 2 * (len(self._trail) - mark) < len(self._trail)

    @_audited
    def delete(self, index: int) -> None:
        """Remove the tuple at ``index``; later rows shift down by one.

        Recent victims (rewinding to their mark is cheaper than
        re-chasing, and no ratchet intervenes) keep the PR-3 discipline:
        trail rewind + suffix replay.  *Old* victims — where that
        discipline could only level-rebuild — are **retired in place**
        (:meth:`_retire`) when they are merge-free: their occurrences and
        bucket memberships are excised and nothing is replayed —
        O(victim's cells + their classes), however old the row is.
        Retirement is deliberately not taken for recent victims even when
        they are eligible: it fences the trail below it off from future
        rewinds (see :meth:`_retire`), so spending it to save an
        already-cheap suffix replay would trade away exactly the path
        recency-skewed churn lives on.  Old merge witnesses (or
        shared-null holders) still level-rebuild.
        """
        self._check_index(index)
        self._emit(("delete", index))
        mark, apps = self._marks[index]
        if self._rewind_pays(mark):
            self._stats["trail_replay"] += 1
            survivors = self._raw_rows[index + 1 :]
            self._undo_to(mark, apps)
            for row in survivors:
                self._insert(row)
            return
        if self._retire(index):
            return
        self._rebuild(self._raw_rows[:index] + self._raw_rows[index + 1 :])

    @_audited
    def replace(self, index: int, values: Sequence[Any] | Row) -> None:
        """Swap the tuple at ``index`` for a new one, in place.

        For *old* victims (rewinding would not pay; see :meth:`delete`
        for the recency policy) that are retirable, when the new tuple is
        fully ground (no nulls — so the null registry's row-major order
        is untouched), the swap is retire + append + one slot rotation:
        no rewind, no suffix replay, no rebuild.
        """
        self._check_index(index)
        row = values if isinstance(values, Row) else Row(self.schema, values)
        if row.schema.attributes != self.schema.attributes:
            raise SchemaError(
                f"row scheme {row.schema!r} does not match {self.schema!r}"
            )
        self._emit(("replace", index, row.values))
        self._replace(index, row)

    def _replace(self, index: int, row: Row) -> None:
        """Replace a validated row without emitting an op record."""
        mark, apps = self._marks[index]
        if self._rewind_pays(mark):
            self._stats["trail_replay"] += 1
            survivors = self._raw_rows[index + 1 :]
            self._undo_to(mark, apps)
            self._insert(row)
            for survivor in survivors:
                self._insert(survivor)
            return
        if not any(is_null(value) for value in row.values) and self._retire(
            index
        ):
            self._insert(row)
            # the fresh row appended externally; rotate it back to the
            # victim's position.  Marks are no longer monotone in external
            # order below this point, so fence rewinds off (the ratchet)
            # and snapshot fast paths (the generation bump) — both already
            # required by the retirement itself.
            self._slots.insert(index, self._slots.pop())
            self._raw_rows.insert(index, self._raw_rows.pop())
            self._marks.insert(index, self._marks.pop())
            self._gen += 1
            self._ratchet_mark = len(self._trail)
            return
        self._rebuild(
            self._raw_rows[:index] + [row] + self._raw_rows[index + 1 :]
        )

    def _retire(self, index: int) -> bool:
        """Retire the row at ``index`` in place; False when ineligible.

        Eligible when the victim never witnessed an NS-rule firing (its
        per-row witness count is zero) and every null it holds occurs in
        the victim alone.  Then *every* merge in the maintained partition
        is justified by surviving rows (or by raw-row data a fill/adopt
        committed), so the partition restricted to surviving cells already
        **is** the Theorem-4 fixpoint of the survivors — the victim's
        cells can simply be excised:

        * its ``(slot, col)`` entries leave the occurrence index (and its
          classes' occurrence weights drop accordingly);
        * it leaves each FD's signature bucket; if it anchored one, a
          surviving member is promoted (members fired against the victim
          without merging, so they already agree with each other — anchor
          choice is unobservable by Theorem 4).  No member is re-signed:
          the partition is untouched, so no signature changed;
        * nulls exclusive to the victim leave the registry (they are no
          longer unknowns of the raw instance).

        Retirement is deliberately **un-journalled** — that is the point:
        no trail suffix to replay, no entries appended.  The cost is that
        the trail below this moment can no longer reconstruct state, so
        the ratchet fences off later rewinds and the generation bump sends
        older snapshots to their rebuild fallback.
        """
        if not self._fast_retire:
            return False
        slot = self._slots[index]
        if self._row_witness.get(slot):
            return False
        find = self.uf.find
        occ = self._occ
        doomed: List[int] = []  # registry keys of victim-exclusive nulls
        seen: set = set()
        for value in self._raw_rows[index].values:
            if not is_null(value):
                continue
            key = id(value)
            if key in seen:
                continue
            seen.add(key)
            root = find(self._null_nodes[key])
            if any(row != slot for row, _ in occ.get(root, ())):
                # the null (or its class) survives the victim: retiring
                # in place would scramble the registry's row-major order
                # and the representative the result view picks
                return False
            doomed.append(key)
        # -- commit (nothing below can fail) --------------------------------
        uf = self.uf
        by_root: Dict[int, int] = {}
        for node in self.cells[slot]:
            root = find(node)
            by_root[root] = by_root.get(root, 0) + 1
        for root, count in by_root.items():
            kept = [cell for cell in occ[root] if cell[0] != slot]
            if kept:
                occ[root] = kept
            else:
                del occ[root]
            uf.add_weight(root, -count)
        members = self._members
        anchors = self._anchors
        sigs = self._sigs
        for k in range(len(self.fds)):
            sig = sigs.pop((k, slot), None)
            if sig is None:  # pragma: no cover - every live row is signed
                continue
            key = (k, sig)
            bucket = members[key]
            del bucket[slot]
            if bucket:
                if anchors.get(key) == slot:
                    anchors[key] = next(iter(bucket))
            else:
                del members[key]
                if anchors.get(key) == slot:
                    del anchors[key]
        # no re-signing: the partition is untouched, so every surviving
        # member's signature — and therefore every bucket — is unchanged;
        # anchor promotion above is the only repair a lost member needs
        for key in doomed:
            del self._null_nodes[key]
            del self._null_objects[key]
        self.cells[slot] = []  # tombstone; the slot is never reused
        del self._raw_rows[index]
        del self._marks[index]
        del self._slots[index]
        self._gen += 1
        self._ratchet_mark = len(self._trail)
        self._stats["retire_fast"] += 1
        return True

    @_audited
    def update(self, index: int, changes: Mapping[str, Any]) -> None:
        """Modify attributes of the *raw* tuple at ``index``."""
        self._check_index(index)
        mapping = self._raw_rows[index].as_dict()
        for attr, value in changes.items():
            if attr not in self.schema:
                raise SchemaError(f"unknown attribute {attr!r}")
            mapping[attr] = value
        self._emit(("update", index, dict(changes)))
        self._replace(index, Row.from_mapping(self.schema, mapping))

    @_audited
    def fill(self, index: int, attribute: str, value: Any) -> None:
        """Ground the null at ``(index, attribute)`` with a constant.

        The substitution applies to *every* cell holding that null object
        (a shared null is one unknown).  If the constraints force a
        different value, the state poisons — check :attr:`has_nothing`
        afterwards (or wrap in :meth:`snapshot`/:meth:`rollback`).
        """
        self._check_index(index)
        cell = self._raw_rows[index][attribute]
        if not is_null(cell):
            raise ReproError(
                f"fill row {index}.{attribute}: cell is not null "
                f"(holds {cell!r})"
            )
        self._emit(("fill", index, attribute, value))
        first: Optional[int] = None
        columns: set = set()
        for i, row in enumerate(self._raw_rows):
            for col, occupant in enumerate(row.values):
                if occupant is cell:
                    if first is None:
                        first = i
                    columns.add(col)
        substitution = {cell: value}
        if len(columns) == 1:
            # fast path: the null lives in one column, so substituting it
            # is exactly "merge its class with the column's interned
            # constant" — the NS-rule substitution, user-initiated.  The
            # null leaves the registry (it is no longer an unknown of the
            # raw instance); position is recorded so a rollback restores
            # the registry's row-major order.
            trail = self._trail
            key = id(cell)
            node = self._null_nodes[key]
            position = list(self._null_nodes).index(key)
            del self._null_nodes[key]
            del self._null_objects[key]
            trail.append(("dereg", key, cell, node, position))
            for i in range(first, len(self._raw_rows)):
                row = self._raw_rows[i]
                if any(occupant is cell for occupant in row.values):
                    trail.append(("rawset", i, row))
                    self._raw_rows[i] = row.substitute(substitution)
            self._merge(node, self._node_for(attribute, value))
            self._drain()
            self._ratchet_mark = len(self._trail)
            return
        # a null spanning columns: per-column constant interning means the
        # class-merge shortcut would not reproduce the from-scratch
        # encoding (equal constants in *different* classes change which
        # signatures collide) — rewind to the null's first occurrence and
        # replay with the substitution applied
        rows = [row.substitute(substitution) for row in self._raw_rows]
        mark, apps = self._marks[first]
        if not self._rewind_pays(mark):
            self._rebuild(rows)
            return
        self._stats["trail_replay"] += 1
        self._undo_to(mark, apps)
        for row in rows[first:]:
            self._insert(row)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._raw_rows):
            raise SchemaError(f"no row at index {index}")

    @_audited
    def reset(self, rows: Iterable[Sequence[Any] | Row]) -> None:
        """Replace the session's contents wholesale (level rebuild).

        Equivalent to constructing a fresh session over ``rows``, in
        place.  Existing snapshots remain honored (their recorded raw rows
        back the rebuild fallback)."""
        materialized = list(Relation(self.schema, rows).rows)
        self._emit(("reset", tuple(row.values for row in materialized)))
        self._rebuild(materialized)

    @_audited
    def compact(self) -> None:
        """Shed accumulated trail history (level rebuild over own rows).

        The trail journals every engine mutation since the last rebuild,
        so a very long-lived session grows memory proportional to total
        work done, not instance size.  Compacting rebuilds in place: the
        fresh trail covers only the current rows' insertion work, at the
        cost of invalidating outstanding snapshots' fast path (they fall
        back to their recorded rows) and of old rows' rewind marks (their
        deletes level-rebuild, which is what deep rewinds did anyway)."""
        self._rebuild(list(self._raw_rows))

    @_audited
    def adopt(self) -> Dict[Null, Any]:
        """Commit the maintained fixpoint into the raw rows.

        Forced substitutions become stored constants and NEC classes
        collapse onto their representative null object — the paper's
        "internal acquisition": information the constraints force is
        adopted as data, and from then on it survives even if the tuples
        that forced it are later deleted or updated (the ratchet
        :class:`repro.updates.GuardedRelation` builds its ``propagate``
        semantics on).  Nulls that no longer occur in the raw rows leave
        the registry, so the session invariant — ``result()`` equals a
        from-scratch chase of :meth:`raw_relation` — is preserved exactly.
        Fully journalled: a :meth:`rollback` over an adoption restores the
        un-adopted rows.  Returns the substitutions that were committed.

        Two hazards force a level rebuild over the adopted rows (restoring
        the exact from-scratch encoding) instead of the in-place commit:

        * a grounded class whose cells span *columns* (a shared null
          linked across attributes) — committing it writes the same
          literal into several columns, and a fresh encoding would intern
          each column's copy into that column's constant node, signature
          collisions the maintained partition (which holds the old class
          merely *tagged* with the constant) does not see;
        * a poisoned session (:attr:`has_nothing`) — committing writes
          ``NOTHING`` literals into the rows, but the maintained partition
          still holds the poisoned *constants* merged into the nothing
          class, so a later insert reusing one of those constants would
          spuriously poison where a fresh chase of the rows would not.
        """
        self._emit(("adopt",))
        trail = self._trail
        adopted = self.result().relation.rows
        committed = self.substitutions()
        find = self.uf.find
        tags = self.tags
        hazard = self.has_nothing
        if not hazard:
            for node in self._null_nodes.values():
                root = find(node)
                if tags[root][0] != _TAG_CONST:
                    continue
                columns = {col for _, col in self._occ.get(root, ())}
                if len(columns) > 1:
                    hazard = True
                    break
        for i, row in enumerate(self._raw_rows):
            if row.values != adopted[i].values:
                trail.append(("rawset", i, row))
                self._raw_rows[i] = adopted[i]
        if hazard:
            self._rebuild(list(self._raw_rows))
            return committed
        still_occurring = {
            id(value)
            for row in self._raw_rows
            for value in row.values
            if is_null(value)
        }
        # positions are recorded net of earlier removals (the trail is
        # undone in reverse, so each reinsertion sees exactly the later
        # removals already restored)
        doomed: List[Tuple[int, int]] = []
        for position, key in enumerate(self._null_nodes):
            if key not in still_occurring:
                doomed.append((key, position - len(doomed)))
        for key, position in doomed:
            node = self._null_nodes[key]
            null_obj = self._null_objects[key]
            del self._null_nodes[key]
            del self._null_objects[key]
            trail.append(("dereg", key, null_obj, node, position))
        self._ratchet_mark = len(trail)
        return committed

    # -- shard planning and verification -----------------------------------

    def plan(self):
        """The cached structural shard plan for this schema and FD set
        (:func:`repro.chase.plan.plan_shards`): FD components, their
        columns, and the bypass columns no FD touches.  Cover-pruned
        (``plan.dropped`` lists the redundant FDs) — the pruned set is
        Armstrong-equivalent, so every verification chase it feeds
        reaches the same fixpoint.  Computed lazily, reused across
        mutations (it depends only on schema + FDs), and invalidated by
        :meth:`set_fds`."""
        if self._plan is None:
            from .plan import plan_shards  # local: avoids import cycle

            self._plan = plan_shards(self.schema, self.fds, prune=True)
        return self._plan

    @_audited
    def set_fds(self, fds: Iterable[FDInput]) -> None:
        """Swap the session's FD set and re-chase (level rebuild).

        The cached shard plan is dropped and re-planned on next use.
        Refused on journalled sessions (the durable layer fixes a
        relation's FD set at create time — its WAL records carry no FD
        changes).  Snapshots taken under the old FD set remain honored,
        but roll back to their rows chased under the *new* FDs.
        """
        if self.on_op is not None:
            raise ReproError(
                "set_fds on a journalled session is not supported; the "
                "durable layer fixes the FD set when the relation is created"
            )
        normalized = [as_fd(fd).validate(self.schema).normalized() for fd in fds]
        self.fds = normalized
        self._plan = None
        self._rebuild(list(self._raw_rows))

    def verify(self, workers: Optional[int] = None) -> bool:
        """Re-chase the raw rows from scratch and compare field-by-field
        against the maintained fixpoint — the session invariant, on demand.

        ``workers`` selects the sharded parallel executor for the
        reference chase (defaulting to the session's ``workers``; ``None``
        keeps it serial), reusing the cached structural plan.
        """
        from .engine import chase  # local: avoids import cycle

        if workers is None:
            workers = self.workers
        if workers is None:
            reference = chase(self.raw_relation(), list(self.fds))
        else:
            from .parallel import parallel_chase  # local: avoids cycle

            reference = parallel_chase(
                self.raw_relation(), self.fds, workers=workers, plan=self.plan()
            )
        mine = self.result()
        return (
            [row.values for row in mine.relation.rows]
            == [row.values for row in reference.relation.rows]
            and mine.nec_classes == reference.nec_classes
            and {id(k): v for k, v in mine.substitutions.items()}
            == {id(k): v for k, v in reference.substitutions.items()}
            and mine.has_nothing == reference.has_nothing
        )

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the current state (O(1) plus one row-list copy)."""
        return SessionSnapshot(
            len(self._trail),
            len(self.applications),
            self._gen,
            tuple(self._raw_rows),
        )

    @_audited
    def rollback(self, token: SessionSnapshot) -> None:
        """Restore the state :meth:`snapshot` captured.

        Fast path — no rewind happened since the checkpoint — pops the
        trail back to its mark.  Otherwise (an intervening delete/update
        rewound below it) the session rebuilds from the checkpoint's raw
        rows; either way the restored state is exact.
        """
        if token.gen == self._gen and token.mark <= len(self._trail):
            self._undo_to(token.mark, token.apps)
        else:
            self._rebuild(list(token.rows))

    # -- trail machinery ---------------------------------------------------

    def _undo_to(self, mark: int, apps: int) -> None:
        """Pop the trail down to ``mark``, inverting every mutation."""
        trail = self._trail
        uf = self.uf
        occ = self._occ
        tags = self.tags
        while len(trail) > mark:
            entry = trail.pop()
            kind = entry[0]
            if kind == "uf":
                uf.undo_union(entry[1], entry[2])
            elif kind == "tags":
                _, a, tag_a, b, tag_b = entry
                tags[a] = tag_a
                tags[b] = tag_b
            elif kind == "occmv":
                _, survivor, absorbed, count, existed = entry
                moved_list = occ[survivor]
                occ[absorbed] = moved_list[-count:]
                del moved_list[-count:]
                if not existed:
                    del occ[survivor]
            elif kind == "sig":
                _, key, old = entry
                if old is None:
                    del self._sigs[key]
                else:
                    self._sigs[key] = old
            elif kind == "ancnew":
                del self._anchors[entry[1]]
            elif kind == "ancdel":
                self._anchors[entry[1]] = entry[2]
            elif kind == "occapp":
                occ[entry[1]].pop()
            elif kind == "occnew":
                del occ[entry[1]]
            elif kind == "wt":
                uf.add_weight(entry[1], -1)
            elif kind == "memdel":
                _, key, row = entry
                bucket = self._members.get(key)
                if bucket is None:
                    self._members[key] = {row: None}
                else:
                    # re-added at the end, not at the old position: member
                    # order is unobservable (it only picks the promoted
                    # anchor, and anchor choice is unobservable — Theorem 4)
                    bucket[row] = None
            elif kind == "memapp":
                _, key, row = entry
                bucket = self._members[key]
                del bucket[row]
                if not bucket:
                    del self._members[key]
            elif kind == "wit":
                _, first, second = entry
                witness = self._row_witness
                witness[first] -= 1
                witness[second] -= 1
            elif kind == "cells":
                self.cells.pop()
            elif kind == "raw":
                self._raw_rows.pop()
                self._marks.pop()
                self._slots.pop()
            elif kind == "rawset":
                self._raw_rows[entry[1]] = entry[2]
            elif kind == "newnull":
                _, key, node = entry
                del self._null_nodes[key]
                del self._null_objects[key]
                del tags[node]
                uf.drop_newest(node)
            elif kind == "newconst":
                _, key, node = entry
                del self._const_nodes[key]
                del tags[node]
                uf.drop_newest(node)
            elif kind == "dereg":
                _, key, null_obj, node, position = entry
                items = list(self._null_nodes.items())
                items.insert(position, (key, node))
                self._null_nodes = dict(items)
                self._null_objects[key] = null_obj
            else:  # pragma: no cover - "newnothing" never fires post-install
                node = entry[1]
                self._nothing_node = None
                del tags[node]
                uf.drop_newest(node)
        del self.applications[apps:]
        self._gen += 1
        # an undo that crossed the latest rewrite reverted it (a rollback's
        # job); anything older is still guarded at the new trail top
        self._ratchet_mark = min(self._ratchet_mark, len(trail))

    def _rebuild(self, rows: List[Row]) -> None:
        """Level rebuild: re-chase ``rows`` from scratch in place."""
        self._stats["level_rebuild"] += 1
        generation = self._gen
        fds = self.fds
        SignatureChaseCore.__init__(self, Relation(self.schema, ()), fds)
        self._install()
        self._gen = generation + 1
        for row in rows:
            self._insert(row)

    # -- Theorem-4 views ---------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cumulative op-outcome counters (survive level rebuilds).

        * ``retire_fast`` — deletes/replaces served by in-place retirement
          (:meth:`_retire`): no rewind, no replay.
        * ``trail_replay`` — deletes/replaces/fills that rewound the trail
          to the victim's mark and replayed the surviving suffix.
        * ``level_rebuild`` — full re-chases, from any cause: deep-victim
          deletes, ratchet-guarded rewinds, invalidated-snapshot
          rollbacks, :meth:`reset`, :meth:`compact`, adopt hazards.

        Benchmarks and tests assert against these to prove the fast path
        actually fires (and that rebuilds stay bounded) instead of
        trusting wall-clock alone.
        """
        return dict(self._stats)

    def _result_cells(self) -> List[List[int]]:
        """Encoded rows in external order (slot indirection applied)."""
        cells = self.cells
        return [cells[slot] for slot in self._slots]

    def result(self, strategy: str = STRATEGY_SESSION) -> "ResultAnswer":
        """The maintained fixpoint (a :class:`ChaseResult` that also
        speaks the unified answer schema — see :class:`ResultAnswer`)."""
        return ResultAnswer(super().result(strategy))

    @property
    def has_nothing(self) -> bool:
        """Live Theorem 4(b) verdict: weak satisfiability fails iff True."""
        tags = self.tags
        for root, cells in self._occ.items():
            if cells and tags[root][0] == _TAG_NOTHING:
                return True
        return False

    def substitutions(self) -> Dict[Null, Any]:
        """Null → forced value, for every null the constraints ground
        (``NOTHING`` for nulls in poisoned classes) — the substitution
        view of :meth:`result` without materializing the relation."""
        find = self.uf.find
        out: Dict[Null, Any] = {}
        for key, node in self._null_nodes.items():
            kind, payload = self.tags[find(node)]
            if kind == _TAG_CONST:
                out[self._null_objects[key]] = payload
            elif kind == _TAG_NOTHING:
                out[self._null_objects[key]] = NOTHING
        return out

    def check(
        self,
        fds: Optional[Iterable[FDInput]] = None,
        convention: str = "weak",
        method: str = "auto",
        null_classes: Optional[Mapping[Null, Any]] = None,
    ):
        """TEST-FDs against the maintained instance.

        With ``fds=None`` the session's own FD set is checked.  Under the
        weak convention Theorem 3's minimal-incompleteness precondition
        holds by construction (the session state is a chase fixpoint), so
        no ``ensure_minimal`` chase is ever needed.  A poisoned session
        (``has_nothing``) is rejected by TEST-FDs like any
        NOTHING-bearing instance.
        """
        from ..testfd import CheckAnswer, check_fds  # local: avoids import cycle

        outcome = check_fds(
            self.result().relation,
            list(self.fds) if fds is None else fds,
            convention=convention,
            method=method,
            null_classes=null_classes,
        )
        return CheckAnswer.wrap(outcome, convention)

    def explain(self) -> str:
        """The narrated chase of the maintained instance."""
        from ..explain import explain_chase  # local: avoids import cycle

        return explain_chase(self.result())

    def lease(self) -> "ReadLease":
        """An O(1) consistent-cut read handle (see :class:`ReadLease`).

        The snapshot-isolation primitive the serving layer's read path is
        built on: readers hold the lease, the session keeps mutating."""
        return ReadLease(self)


class ReadLease:
    """A consistent-cut read handle on a :class:`ChaseSession`.

    Taking a lease costs one raw-row tuple copy — the same cut
    :meth:`ChaseSession.snapshot` records, minus the trail bookkeeping,
    because a lease can never roll the session back; it can only *read*
    the state as of the cut.  Reads then take one of two paths:

    * **live** — while the source session is provably unchanged (its
      rewind generation and trail length still match the cut; every
      session mutation moves at least one of them), reads delegate
      straight to the live session: no copy, no re-chase.  Only valid
      where nothing can mutate the session mid-read (the server reads
      live only on its event loop, between ops).
    * **detached** — once the session has moved on, or when
      ``detached=True`` forces isolation, the lease materializes its own
      private fixpoint by chasing the frozen raw rows from scratch
      (built once, cached).  The cost lands on the reader alone: the
      source session is never touched again, so a writer never waits on
      however slow a reader is.  By the session invariant (maintained
      fixpoint == from-scratch chase of the raw rows, field-identically)
      the detached answer equals what the source would have said at the
      cut.
    """

    __slots__ = ("rows", "_session", "_schema", "_fds", "_mark", "_detached")

    def __init__(self, session: ChaseSession) -> None:
        self._session = session
        self._schema = session.schema
        self._fds = tuple(session.fds)
        #: the frozen raw rows at the cut (shared Row objects, never
        #: mutated in place by the session — rewrites replace rows)
        self.rows: Tuple[Row, ...] = tuple(session._raw_rows)
        self._mark = (session._gen, len(session._trail))
        self._detached: Optional[ChaseSession] = None

    @property
    def fresh(self) -> bool:
        """True while the source session still *is* the cut."""
        session = self._session
        return (
            self._detached is None
            and (session._gen, len(session._trail)) == self._mark
        )

    def instance(self, detached: bool = False) -> ChaseSession:
        """The session to read from: the live source while :attr:`fresh`
        (unless ``detached`` forces isolation), else the lease's own
        chase of the frozen rows."""
        if not detached and self.fresh:
            return self._session
        if self._detached is None:
            self._detached = ChaseSession(self._schema, self._fds, rows=list(self.rows))
        return self._detached

    def result(self, detached: bool = False) -> ChaseResult:
        return self.instance(detached).result()

    def check(self, *args, detached: bool = False, **kwargs):
        return self.instance(detached).check(*args, **kwargs)

    @property
    def has_nothing(self) -> bool:
        return self.instance().has_nothing

    def explain(self, detached: bool = False) -> str:
        return self.instance(detached).explain()

    def __len__(self) -> int:
        return len(self.rows)
