"""The NS-rule fixpoint engine (section 6, Definitions 1-2).

Null-Equality Constraints (Definition 1) say two nulls must take the same
value in any substitution; they induce equivalence classes of nulls.  The
Null-Substitution rule for an FD ``X -> Y`` (Definition 2) is: whenever two
tuples agree on ``X`` — equal constants or NEC-related nulls — then for each
``A ∈ Y``:

(a) if exactly one of the two ``A``-values is null, substitute the other's
    constant for it;
(b) if both are null, record the NEC equating them.

The paper then *extends* the rule (still section 6): if both values are
distinct constants, both are replaced by the inconsistent element *nothing*,
"triggering the replacement with nothing of all constants that are equal to
them".  With the extension the system is finite Church-Rosser (Theorem 4);
without it, different application orders can reach different fixpoints
(Figure 5).

Implementation: every cell holds a *node* in a union-find structure.
Constants are interned per (attribute, value) — one node per distinct
constant of a column — so poisoning a constant automatically poisons every
cell holding it, which is exactly the extension's propagation.  Each class
carries a tag (constant / null / nothing); tag merging implements rules
(a), (b) and the extension in one place.

The engine is *strategy-parametric* in basic mode: the order in which FDs
fire is observable (Figure 5), so callers choose it.  In extended mode any
strategy reaches the same fixpoint (verified wholesale by the tests and
experiment E6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.fd import FD, FDInput, FDSet, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import NOTHING, Null, is_constant, is_null, null
from ..errors import ReproError
from .unionfind import UnionFind

MODE_BASIC = "basic"
MODE_EXTENDED = "extended"

STRATEGY_FD_ORDER = "fd_order"
STRATEGY_ROUND_ROBIN = "round_robin"
STRATEGY_RANDOM = "random"

ENGINE_AUTO = "auto"
ENGINE_SWEEP = "sweep"
ENGINE_INDEXED = "indexed"
ENGINE_CONGRUENCE = "congruence"
ENGINE_VECTOR = "vector"

_STRATEGIES = (STRATEGY_FD_ORDER, STRATEGY_ROUND_ROBIN, STRATEGY_RANDOM)

_TAG_CONST = "const"
_TAG_NULL = "null"
_TAG_NOTHING = "nothing"


@dataclass(frozen=True)
class Application:
    """One NS-rule firing, for diagnostics and the experiment logs."""

    fd: FD
    first_row: int
    second_row: int
    attribute: str
    action: str  # "substitute" | "nec" | "nothing"


@dataclass
class ChaseResult:
    """Outcome of chasing an instance with NS-rules.

    ``relation`` is the resulting (minimally incomplete) instance: nulls of
    one NEC class appear as one shared :class:`Null` object; inconsistent
    cells hold :data:`NOTHING`.
    """

    relation: Relation
    nec_classes: List[Tuple[Null, ...]]
    substitutions: Dict[Null, Any]
    applications: List[Application]
    passes: int
    mode: str
    strategy: str

    @property
    def has_nothing(self) -> bool:
        """Theorem 4(b): weak satisfiability fails iff this is True."""
        return any(
            value is NOTHING for row in self.relation.rows for value in row.values
        )

    def summary(self) -> str:
        verdict = "INCONSISTENT (nothing present)" if self.has_nothing else "consistent"
        return (
            f"chase[{self.mode}/{self.strategy}]: {len(self.applications)} "
            f"rule firings over {self.passes} passes; "
            f"{len(self.nec_classes)} NEC classes; {verdict}"
        )


class ChaseState:
    """Mutable chase state over one relation instance."""

    def __init__(self, relation: Relation, fds: Iterable[FDInput], mode: str) -> None:
        if mode not in (MODE_BASIC, MODE_EXTENDED):
            raise ValueError(f"unknown chase mode {mode!r}")
        self.schema: RelationSchema = relation.schema
        self.fds: List[FD] = [as_fd(fd).validate(relation.schema).normalized() for fd in fds]
        self.mode = mode
        self.uf = UnionFind()
        #: tag per ROOT node: (kind, payload)
        self.tags: Dict[int, Tuple[str, Any]] = {}
        #: interned constant nodes per (attribute, value)
        self._const_nodes: Dict[Tuple[str, Any], int] = {}
        #: node per null object id
        self._null_nodes: Dict[int, int] = {}
        self._null_objects: Dict[int, Null] = {}
        #: cells[row][col] -> node
        self.cells: List[List[int]] = []
        self.applications: List[Application] = []
        self.passes = 0
        #: row -> number of NS-rule firings the row *witnessed* (took part
        #: in, as either side of a fired pair).  A row with count 0 never
        #: justified any merge in the current partition, which is what
        #: licenses the session's in-place retirement fast path: removing
        #: such a row cannot strand a merge that surviving rows alone
        #: could not re-derive.  Journalled (``("wit", ...)`` entries) so
        #: trail rewinds keep the counts exact.
        self._row_witness: Dict[int, int] = {}
        self._nothing_node: Optional[int] = None
        self._seen = 0  # union-find merges already counted by fd_order sweeps
        #: mutation journal for backtrackable states (None for the batch
        #: engines — every journaling site is gated on it, so they pay one
        #: predictable branch and nothing else).  ChaseSession installs a
        #: list here and shares it with ``self.uf.trail``.
        self._trail: Optional[List[tuple]] = None
        #: per-FD column projections, computed once — no ``schema.position``
        #: lookup ever happens in an inner loop.  Keyed by ``id(fd)`` (the
        #: fd itself is retained in the value to keep the id alive): FD
        #: equality is set-based, so two equal FDs may still list their
        #: attributes in different orders.
        self._fd_cols: Dict[
            int, Tuple[FD, Tuple[int, ...], Tuple[Tuple[str, int], ...]]
        ] = {}
        for fd in self.fds:
            self._columns_of(fd)

        for row in relation.rows:
            encoded: List[int] = []
            for attr, value in zip(self.schema.attributes, row.values):
                encoded.append(self._node_for(attr, value))
            self.cells.append(encoded)

    # -- node bookkeeping ------------------------------------------------------

    def _node_for(self, attr: str, value: Any) -> int:
        if is_null(value):
            key = id(value)
            node = self._null_nodes.get(key)
            if node is None:
                node = self.uf.add()
                self._null_nodes[key] = node
                self._null_objects[key] = value
                self.tags[node] = (_TAG_NULL, value)
                if self._trail is not None:
                    self._trail.append(("newnull", key, node))
            return node
        if value is NOTHING:
            return self._nothing()
        node = self._const_nodes.get((attr, value))
        if node is None:
            node = self.uf.add()
            self._const_nodes[(attr, value)] = node
            self.tags[node] = (_TAG_CONST, value)
            if self._trail is not None:
                self._trail.append(("newconst", (attr, value), node))
        return node

    def _nothing(self) -> int:
        if self._nothing_node is None:
            self._nothing_node = self.uf.add()
            self.tags[self._nothing_node] = (_TAG_NOTHING, None)
            if self._trail is not None:
                self._trail.append(("newnothing", self._nothing_node))
        return self.uf.find(self._nothing_node)

    def tag_of(self, node: int) -> Tuple[str, Any]:
        return self.tags[self.uf.find(node)]

    def _columns_of(
        self, fd: FD
    ) -> Tuple[FD, Tuple[int, ...], Tuple[Tuple[str, int], ...]]:
        """``(fd, lhs column indices, (rhs attr, column) pairs)``, memoized."""
        cols = self._fd_cols.get(id(fd))
        if cols is None:
            cols = (
                fd,
                self.schema.positions(fd.lhs),
                tuple(zip(fd.rhs, self.schema.positions(fd.rhs))),
            )
            self._fd_cols[id(fd)] = cols
        return cols

    def _merge(self, first: int, second: int) -> int:
        """Union two classes and combine their tags.

        Returns the surviving root.  Caller guarantees the merge is legal
        for the current mode (basic mode never calls with two distinct
        constants).
        """
        a, b = self.uf.find(first), self.uf.find(second)
        if a == b:
            return a
        tag_a, tag_b = self.tags.pop(a), self.tags.pop(b)
        if self._trail is not None:
            # journalled before the union so the reverse sweep undoes the
            # union first, then restores both original tags
            self._trail.append(("tags", a, tag_a, b, tag_b))
        root = self.uf.union(a, b)
        self.tags[root] = self._combine(tag_a, tag_b)
        return root

    @staticmethod
    def _combine(tag_a: Tuple[str, Any], tag_b: Tuple[str, Any]) -> Tuple[str, Any]:
        kind_a, kind_b = tag_a[0], tag_b[0]
        if kind_a == _TAG_NOTHING or kind_b == _TAG_NOTHING:
            return (_TAG_NOTHING, None)
        if kind_a == _TAG_CONST and kind_b == _TAG_CONST:
            if tag_a[1] == tag_b[1]:
                # equal constants from different columns' interned nodes
                # (cross-column null sharing) — a value-level no-op merge
                return tag_a
            return (_TAG_NOTHING, None)
        if kind_a == _TAG_CONST:
            return tag_a
        if kind_b == _TAG_CONST:
            return tag_b
        return tag_a  # null + null: keep the first representative

    # -- rule application ----------------------------------------------------------

    def _apply_pair(
        self, fd: FD, first: int, second: int
    ) -> bool:
        """Try the NS-rule for one FD on one (ordered) row pair.

        Precondition: the rows agree on ``X`` under the current partition.
        Returns True when at least one class-reducing action fired.
        """
        fired = False
        for attr, col in self._columns_of(fd)[2]:
            node_a = self.uf.find(self.cells[first][col])
            node_b = self.uf.find(self.cells[second][col])
            if node_a == node_b:
                continue
            kind_a = self.tags[node_a][0]
            kind_b = self.tags[node_b][0]
            if kind_a == _TAG_CONST and kind_b == _TAG_CONST:
                if self.tags[node_a][1] == self.tags[node_b][1]:
                    # Two classes holding the *same* constant (possible when
                    # a null shared across columns is substituted: interning
                    # is per column).  At the value level the cells are
                    # equal, so no NS-rule fires — but class-equality must
                    # stay congruent with value-equality for later signature
                    # matches, so the classes merge silently.
                    self._merge(node_a, node_b)
                    fired = True
                    continue
                if self.mode == MODE_BASIC:
                    continue  # Definition 2 has no rule here; a violation
                root = self._merge(node_a, node_b)
                self._merge(root, self._nothing())
                action = "nothing"
            elif kind_a == _TAG_NULL and kind_b == _TAG_NULL:
                self._merge(node_a, node_b)
                action = "nec"
            elif _TAG_NOTHING in (kind_a, kind_b):
                if self.mode == MODE_BASIC:  # pragma: no cover - defensive
                    continue
                self._merge(node_a, node_b)
                action = "nothing"
            else:
                self._merge(node_a, node_b)
                action = "substitute"
            self.applications.append(
                Application(fd, first, second, attr, action)
            )
            fired = True
        if fired:
            # both rows witnessed at least one merge of this firing; one
            # count per fired pair is enough for the retirement check
            # (eligibility only asks whether a count is zero)
            witness = self._row_witness
            witness[first] = witness.get(first, 0) + 1
            witness[second] = witness.get(second, 0) + 1
            if self._trail is not None:
                self._trail.append(("wit", first, second))
        return fired

    def _x_signature(self, fd: FD, row: int) -> Tuple[int, ...]:
        """The row's ``X`` projection as class roots.

        Equality is "same class" — equal constants (interned to one node),
        NEC-related nulls, or *nothing* cells (all nothings are one class;
        matching through the inconsistent element is what the
        congruence-closure construction behind Theorem 4 does, so the
        fixpoint engine does the same and the two engines agree exactly).
        """
        cells_row = self.cells[row]
        find = self.uf.find
        return tuple(find(cells_row[col]) for col in self._columns_of(fd)[1])

    def apply_fd_pass(self, fd: FD) -> int:
        """One pass of the NS-rule for a single FD over all row pairs.

        Rows are grouped by their current ``X`` signature; within a group,
        pairs fire in row order against the group's first member, then the
        group is re-scanned until stable (a substitution can enable another
        pair).  Returns the number of class-reducing firings.
        """
        fired = 0
        changed = True
        while changed:
            changed = False
            groups: Dict[Tuple[int, ...], List[int]] = {}
            for row in range(len(self.cells)):
                groups.setdefault(self._x_signature(fd, row), []).append(row)
            for rows in groups.values():
                if len(rows) < 2:
                    continue
                anchor = rows[0]
                for other in rows[1:]:
                    if self._apply_pair(fd, anchor, other):
                        fired += 1
                        changed = True
        return fired

    def run(self, strategy: str = STRATEGY_ROUND_ROBIN, seed: int = 0) -> None:
        """Chase to fixpoint under the given application strategy.

        * ``fd_order`` — exhaust the first FD, then the second, ...,
          repeating the sequence until a full sweep fires nothing.  This is
          the strategy that exposes Figure 5's order dependence when the
          caller permutes ``fds``.
        * ``round_robin`` — one pass per FD per sweep.
        * ``random`` — like round_robin with the FD order reshuffled each
          sweep (seeded).
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        rng = random.Random(seed)
        order = list(self.fds)  # reshuffled in place by the random strategy
        while True:
            self.passes += 1
            if strategy == STRATEGY_RANDOM:
                rng.shuffle(order)
            total = 0
            for fd in order:
                if strategy == STRATEGY_FD_ORDER:
                    while self.apply_fd_pass(fd):
                        pass
                    # count via the sweep's merge delta below (applications
                    # alone would miss silent equal-constant merges)
                else:
                    total += self.apply_fd_pass(fd)
            if strategy == STRATEGY_FD_ORDER:
                total = self.uf.merges - self._seen
                self._seen = self.uf.merges
            if total == 0:
                break

    # -- result extraction ------------------------------------------------------------

    def _result_cells(self) -> List[List[int]]:
        """Encoded rows in *result* order.

        The batch engines materialize rows exactly as encoded; the session
        overrides this to map its external row order through the slot
        indirection (retired slots skipped, fast-path replacements kept in
        place)."""
        return self.cells

    def result(self, strategy: str) -> ChaseResult:
        """Materialize the current partition as a :class:`ChaseResult`.

        Every field is a function of the final *partition* alone, never of
        the merge order that produced it: the null displayed for a class is
        its earliest-created member (creation order is fixed by the input
        encoding), not whichever member happened to win the tag during
        unions.  That makes results from different engines — sweep,
        indexed worklist, congruence closure — compare identical whenever
        their partitions agree, which Theorem 4 guarantees in extended
        mode.
        """
        find = self.uf.find
        by_root: Dict[int, List[Null]] = {}
        for key, node in self._null_nodes.items():
            by_root.setdefault(find(node), []).append(self._null_objects[key])

        rep_null: Dict[int, Null] = {}
        nec_classes: List[Tuple[Null, ...]] = []
        substitutions: Dict[Null, Any] = {}
        for root, members in by_root.items():
            kind, payload = self.tags[root]
            if kind == _TAG_CONST:
                for member in members:
                    substitutions[member] = payload
            elif kind == _TAG_NOTHING:
                for member in members:
                    substitutions[member] = NOTHING
            else:
                rep_null[root] = members[0]
                if len(members) > 1:
                    nec_classes.append(tuple(members))

        rows: List[Row] = []
        for encoded in self._result_cells():
            values: List[Any] = []
            for node in encoded:
                root = find(node)
                kind, payload = self.tags[root]
                if kind == _TAG_CONST:
                    values.append(payload)
                elif kind == _TAG_NOTHING:
                    values.append(NOTHING)
                else:
                    values.append(rep_null[root])
            rows.append(Row(self.schema, values))
        return ChaseResult(
            relation=Relation(self.schema, rows),
            nec_classes=nec_classes,
            substitutions=substitutions,
            applications=list(self.applications),
            passes=self.passes,
            mode=self.mode,
            strategy=strategy,
        )


def chase(
    relation: Relation,
    fds: Iterable[FDInput],
    mode: str = MODE_EXTENDED,
    strategy: str = STRATEGY_ROUND_ROBIN,
    seed: int = 0,
    engine: str = ENGINE_AUTO,
    workers: Optional[int] = None,
) -> ChaseResult:
    """Run the NS-rule chase to a fixpoint.

    With ``mode="extended"`` (default) the result is the *unique* minimally
    incomplete instance of Theorem 4, independent of ``strategy``.  With
    ``mode="basic"`` the result is *a* minimally incomplete instance that
    may depend on the strategy and FD order — Figure 5's phenomenon.

    ``engine`` selects the execution path:

    * ``"auto"`` (default) — the worklist-driven indexed engine
      (:mod:`repro.chase.indexed`) in extended mode, where Theorem 4 makes
      the firing order unobservable; the multi-pass sweep engine in basic
      mode, where the order *is* the observable (Figure 5) and the
      strategy must be honored literally.
    * ``"indexed"`` — force the indexed engine (extended mode only).
    * ``"congruence"`` — the congruence-closure engine on the same shared
      core (extended mode only); an independently derived oracle for the
      differential tests.
    * ``"vector"`` — the maintained-root-array engine
      (:mod:`repro.chase.vector`; extended mode only).
    * ``"sweep"`` — force the legacy multi-pass engine (both modes).

    ``workers`` routes to the sharded parallel executor
    (:mod:`repro.chase.parallel`): FD components chase independently, one
    worklist each, ``workers`` processes at most (``workers=1`` runs the
    shards serially in-process).  It is extended-mode only and mutually
    exclusive with an explicit ``engine`` — the planner itself picks the
    per-shard engine.

    All paths produce identical ``relation`` / ``nec_classes`` /
    ``substitutions`` in extended mode; ``applications`` order and the
    ``passes`` count are engine-specific diagnostics.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    if workers is not None:
        if mode != MODE_EXTENDED:
            raise ValueError(
                "the parallel chase implements the extended (Church-"
                "Rosser) rules only; drop workers= for basic mode"
            )
        if engine != ENGINE_AUTO:
            raise ValueError(
                "workers= selects the sharded parallel executor, which "
                "picks per-shard engines itself; drop engine="
            )
        from .parallel import parallel_chase  # local: avoids import cycle

        return parallel_chase(relation, fds, workers=workers)
    if engine == ENGINE_AUTO:
        engine = ENGINE_INDEXED if mode == MODE_EXTENDED else ENGINE_SWEEP
    if engine in (ENGINE_INDEXED, ENGINE_CONGRUENCE, ENGINE_VECTOR):
        if mode != MODE_EXTENDED:
            raise ValueError(
                f"the {engine} engine implements the extended (Church-"
                "Rosser) rules only; use engine='sweep' for basic mode"
            )
        if engine == ENGINE_CONGRUENCE:
            from .congruence import CongruenceEngine  # local: avoids cycle

            congruence_state = CongruenceEngine(relation, fds)
            congruence_state.run_congruence()
            return congruence_state.result(strategy)
        if engine == ENGINE_VECTOR:
            from .vector import VectorChaseState  # local: avoids cycle

            vector_state = VectorChaseState(relation, fds)
            vector_state.run_vectorized()
            return vector_state.result(strategy)
        from .indexed import IndexedChaseState  # local: avoids import cycle

        indexed_state = IndexedChaseState(relation, fds)
        indexed_state.run_worklist()
        return indexed_state.result(strategy)
    if engine != ENGINE_SWEEP:
        raise ValueError(f"unknown chase engine {engine!r}")
    state = ChaseState(relation, fds, mode)
    state.run(strategy=strategy, seed=seed)
    return state.result(strategy)


# ---------------------------------------------------------------------------
# X-side substitutions (section 4, conditions (1) and (2)) — optional
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class XSubstitution:
    """A forced substitution for a null on an FD's *left-hand* side."""

    row_index: int
    attribute: str
    value: Any
    condition: str  # "unique-agreeing-completion" | "missing-domain-value"


def x_side_substitutions(
    relation: Relation, fd: FDInput
) -> List[XSubstitution]:
    """The domain-dependent X-null substitutions of section 4.

    Condition (1): all completions of ``t[X]`` appear in ``r``, ``t[Y]`` is
    not null, and exactly one completion agrees with ``t[Y]`` — the null
    must take that completion's value.  Condition (2): all completions but
    one appear, every appearing completion disagrees with ``t[Y]`` (with no
    nulls) — the null must take the missing domain value.

    The paper notes both conditions "are not easy to test" and "seem
    unlikely to occur", recommending that X-side nulls be left incomplete;
    accordingly the chase never applies these, and this function only
    *reports* the forced substitutions for callers that opt in.  Only the
    single-null-in-X case is supported (the multi-null generalization is
    exactly as domain-dependent and even less likely; it falls back to
    reporting nothing).
    """
    fd = as_fd(fd).normalized()
    out: List[XSubstitution] = []
    for index, row in enumerate(relation.rows):
        null_attrs = row.null_attributes(fd.lhs)
        if len(null_attrs) != 1 or row.has_null(fd.rhs):
            continue
        attr = null_attrs[0]
        declared = relation.schema.domain(attr)
        if not declared.is_finite:
            continue
        others = [
            other
            for other in relation.rows
            if other is not row and other.is_total(fd.lhs)
        ]
        fixed = [a for a in fd.lhs if a != attr]
        matching = [
            other
            for other in others
            if other.project(fixed) == row.project(fixed)
        ]
        present = {other[attr] for other in matching}
        missing = declared.missing_from(present)
        t_y = row.project(fd.rhs)
        if not missing:
            agreeing = [o for o in matching if o.project(fd.rhs) == t_y]
            if len(agreeing) == 1:
                out.append(
                    XSubstitution(
                        index, attr, agreeing[0][attr], "unique-agreeing-completion"
                    )
                )
        elif len(missing) == 1:
            disagreeing = all(
                o.is_total(fd.rhs) and o.project(fd.rhs) != t_y for o in matching
            )
            if disagreeing and matching:
                out.append(
                    XSubstitution(index, attr, missing[0], "missing-domain-value")
                )
    return out
