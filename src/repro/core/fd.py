"""Functional dependencies: syntax and the classical interpretation.

Section 3 of the paper: an FD ``f : X -> Y`` is interpreted as a predicate on
(null-free) instances of ``R``::

    f(t, r) = true   if for every t' in r, either t[X] ≠ t'[X],
                     or, if t[X] = t'[X], then t[Y] = t'[Y]
              false  in any other case

``f`` *holds* in ``r`` when ``f(t, r) = true`` for every ``t`` in ``r``.

This module provides the :class:`FD` value type (with a small parser for the
paper's arrow notation), :class:`FDSet` for sets of dependencies, and the
classical interpreter (:func:`classical_fd_value`, :func:`holds_classical`).
The extended (null-aware) interpretation lives in
:mod:`repro.core.interpretation`.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from .attributes import (
    AttrsInput,
    attrs_difference,
    attrs_union,
    format_attrs,
    is_subset,
    parse_attrs,
)
from .relation import Relation
from .schema import RelationSchema
from .truth import FALSE, TRUE, TruthValue
from .tuples import Row

_ARROW = re.compile(r"->|→|⟶")


class FD:
    """A functional dependency ``X -> Y`` between attribute sets.

    Instances are immutable and hashable; ``lhs`` and ``rhs`` are
    duplicate-free attribute tuples.  Construction accepts attribute
    specifications in any of the library's accepted forms::

        FD("A B", "C")
        FD(("A", "B"), ("C",))
        FD.parse("A B -> C")
        FD.parse("E# -> SL, D#")
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: AttrsInput, rhs: AttrsInput) -> None:
        self.lhs: Tuple[str, ...] = parse_attrs(lhs)
        self.rhs: Tuple[str, ...] = parse_attrs(rhs)
        if not self.lhs:
            raise SchemaError("an FD needs a non-empty left-hand side")
        if not self.rhs:
            raise SchemaError("an FD needs a non-empty right-hand side")

    @classmethod
    def parse(cls, text: str) -> "FD":
        """Parse the arrow notation ``"X -> Y"`` (also accepts ``→``)."""
        parts = _ARROW.split(text)
        if len(parts) != 2:
            raise SchemaError(f"cannot parse FD from {text!r}")
        return cls(parts[0], parts[1])

    # -- structure -----------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned by the FD (``X ∪ Y``)."""
        return attrs_union(self.lhs, self.rhs)

    def is_trivial(self) -> bool:
        """``X -> Y`` with ``Y ⊆ X`` (holds in every instance)."""
        return is_subset(self.rhs, self.lhs)

    def normalized(self) -> "FD":
        """The FD with left-hand attributes removed from the right-hand side.

        Proposition 1 is stated for ``X ∩ Y = ∅``; the normalization
        ``X -> Y  ≡  X -> (Y - X)`` is semantics-preserving (the removed
        part is trivially determined).  FDs whose right-hand side is wholly
        contained in the left become ``X -> X`` (kept trivially true rather
        than empty, so the type invariant "non-empty rhs" is preserved).
        """
        reduced = attrs_difference(self.rhs, self.lhs)
        if not reduced:
            return FD(self.lhs, self.lhs)
        return FD(self.lhs, reduced)

    def decompose(self) -> List["FD"]:
        """Split into single-attribute right-hand sides (Armstrong-equivalent)."""
        return [FD(self.lhs, (attr,)) for attr in self.rhs]

    def validate(self, schema: RelationSchema) -> "FD":
        """Check that every mentioned attribute belongs to ``schema``."""
        schema.validate_attrs(self.lhs)
        schema.validate_attrs(self.rhs)
        return self

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FD)
            and set(self.lhs) == set(other.lhs)
            and set(self.rhs) == set(other.rhs)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.lhs), frozenset(self.rhs)))

    def __repr__(self) -> str:
        return f"{format_attrs(self.lhs)} -> {format_attrs(self.rhs)}"


FDInput = Union[FD, str]


def as_fd(value: FDInput) -> FD:
    """Coerce a string in arrow notation (or an FD) to an :class:`FD`."""
    if isinstance(value, FD):
        return value
    return FD.parse(value)


class FDSet:
    """An ordered, duplicate-free collection of FDs.

    Construction accepts FDs, arrow-notation strings, or a single
    semicolon/newline separated string::

        FDSet(["A -> B", FD("B", "C")])
        FDSet.parse("E# -> SL, D#; D# -> CT")
    """

    __slots__ = ("fds",)

    def __init__(self, fds: Iterable[FDInput] = ()) -> None:
        materialized: List[FD] = []
        seen: set = set()
        for item in fds:
            fd = as_fd(item)
            if fd not in seen:
                seen.add(fd)
                materialized.append(fd)
        self.fds: Tuple[FD, ...] = tuple(materialized)

    @classmethod
    def parse(cls, text: str) -> "FDSet":
        """Parse a ``;``- or newline-separated list of arrow FDs."""
        chunks = [c.strip() for c in re.split(r"[;\n]+", text) if c.strip()]
        return cls(chunks)

    # -- collection protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[FD]:
        return iter(self.fds)

    def __len__(self) -> int:
        return len(self.fds)

    def __contains__(self, item: object) -> bool:
        return isinstance(item, FD) and item in set(self.fds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FDSet):
            return NotImplemented
        return set(self.fds) == set(other.fds)

    def __hash__(self) -> int:
        return hash(frozenset(self.fds))

    def __repr__(self) -> str:
        return "{" + "; ".join(map(repr, self.fds)) + "}"

    # -- structure ----------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned by any FD, first-occurrence order."""
        return attrs_union(*(fd.attributes for fd in self.fds)) if self.fds else ()

    def validate(self, schema: RelationSchema) -> "FDSet":
        for fd in self.fds:
            fd.validate(schema)
        return self

    def normalized(self) -> "FDSet":
        """Every member normalized (rhs disjoint from lhs); trivial FDs kept."""
        return FDSet(fd.normalized() for fd in self.fds)

    def decomposed(self) -> "FDSet":
        """Every member split to single-attribute right-hand sides."""
        out: List[FD] = []
        for fd in self.fds:
            out.extend(fd.decompose())
        return FDSet(out)

    def union(self, other: Iterable[FDInput]) -> "FDSet":
        return FDSet(list(self.fds) + [as_fd(f) for f in other])

    def without(self, fd: FDInput) -> "FDSet":
        target = as_fd(fd)
        return FDSet(f for f in self.fds if f != target)


def classical_fd_value(fd: FDInput, row: Row, relation: Relation) -> TruthValue:
    """The section-3 predicate ``f(t, r)`` on a null-free instance.

    Raises :class:`repro.errors.NullsNotAllowedError` when the instance (or
    the row, if it is not part of the instance) contains nulls — the
    classical interpretation is simply not defined there; use
    :func:`repro.core.interpretation.evaluate_fd` instead.
    """
    fd = as_fd(fd)
    relation.require_total("the classical FD interpretation")
    if row.has_null():
        from ..errors import NullsNotAllowedError

        raise NullsNotAllowedError(
            "the classical FD interpretation is undefined on rows with nulls"
        )
    t_x = row.project(fd.lhs)
    t_y = row.project(fd.rhs)
    for other in relation:
        if other.project(fd.lhs) == t_x and other.project(fd.rhs) != t_y:
            return FALSE
    return TRUE


def holds_classical(fd: FDInput, relation: Relation) -> bool:
    """``f`` holds in null-free ``r``: ``f(t, r) = true`` for every ``t``.

    Implemented by grouping rather than the quadratic definition, but
    equivalent to it (and cross-checked in the tests).
    """
    fd = as_fd(fd)
    relation.require_total("the classical FD interpretation")
    witness: dict = {}
    for row in relation:
        key = row.project(fd.lhs)
        image = row.project(fd.rhs)
        if key in witness:
            if witness[key] != image:
                return False
        else:
            witness[key] = image
    return True


def all_hold_classical(fds: Iterable[FDInput], relation: Relation) -> bool:
    """Every FD of ``fds`` holds in the null-free instance."""
    return all(holds_classical(fd, relation) for fd in fds)


def violations_classical(
    fd: FDInput, relation: Relation
) -> List[Tuple[Row, Row]]:
    """All violating row pairs (for diagnostics and tests)."""
    fd = as_fd(fd)
    relation.require_total("the classical FD interpretation")
    groups: dict = {}
    out: List[Tuple[Row, Row]] = []
    for row in relation:
        groups.setdefault(row.project(fd.lhs), []).append(row)
    for rows in groups.values():
        first = rows[0]
        first_image = first.project(fd.rhs)
        for other in rows[1:]:
            if other.project(fd.rhs) != first_image:
                out.append((first, other))
    return out
