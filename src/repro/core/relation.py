"""Relation instances (possibly containing nulls).

A :class:`Relation` is an ordered collection of :class:`repro.core.tuples.Row`
objects over one schema.  Order matters only for display and for
deterministic iteration; the semantics used by every algorithm is that of a
set of tuples (with nulls compared by identity).

The module implements the paper's completion sets:

* ``AP(t, R')`` — :meth:`repro.core.tuples.Row.completions`;
* ``AP(r, R')`` — :meth:`Relation.completions`, every instance obtained by
  substituting constants for all nulls (optionally restricted to a subset of
  attributes, and optionally constrained by null-equality classes so that
  nulls in the same class receive the same constant — needed by section 6).
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import DomainError, NullsNotAllowedError, SchemaError
from .attributes import AttrsInput, parse_attrs
from .domain import Domain, effective_domain
from .schema import RelationSchema
from .tuples import Row
from .values import NOTHING, Null, is_constant, is_null


class Relation:
    """An instance ``r`` of a relation scheme ``R``."""

    __slots__ = ("schema", "rows")

    def __init__(
        self, schema: RelationSchema, rows: Iterable[Sequence[Any] | Row] = ()
    ) -> None:
        self.schema = schema
        materialized: List[Row] = []
        for row in rows:
            if isinstance(row, Row):
                if row.schema.attributes != schema.attributes:
                    raise SchemaError(
                        f"row scheme {row.schema!r} does not match {schema!r}"
                    )
                materialized.append(row)
            else:
                materialized.append(Row(schema, row))
        self.rows = materialized

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build an instance from attribute→value mappings."""
        return cls(schema, [Row.from_mapping(schema, d) for d in dicts])

    def with_rows(self, rows: Iterable[Sequence[Any] | Row]) -> "Relation":
        """A new instance with extra rows appended."""
        return Relation(self.schema, list(self.rows) + list(Relation(self.schema, rows).rows))

    # -- collection protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        """Set equality of rows (order-insensitive, duplicates collapsed)."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.attributes != other.schema.attributes:
            return False
        return set(self.rows) == set(other.rows)

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash((self.schema.attributes, frozenset(self.rows)))

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"

    # -- null structure -----------------------------------------------------------

    def has_nulls(self, attributes: AttrsInput | None = None) -> bool:
        """True when some row has a null among ``attributes`` (default all)."""
        return any(row.has_null(attributes) for row in self.rows)

    def nulls(self) -> Tuple[Null, ...]:
        """Every null object in the instance, in row-major order, deduplicated."""
        seen: Dict[int, Null] = {}
        for row in self.rows:
            for value in row.nulls():
                seen.setdefault(id(value), value)
        return tuple(seen.values())

    def null_count(self) -> int:
        """Number of null *cells* (a shared null counts once per occurrence)."""
        return sum(len(row.null_attributes()) for row in self.rows)

    def is_total(self) -> bool:
        """True when the instance is null-free (and NOTHING-free)."""
        return not self.has_nulls() and not any(
            value is NOTHING for row in self.rows for value in row.values
        )

    def require_total(self, operation: str) -> None:
        """Raise unless the instance is null-free; used by classical code."""
        if not self.is_total():
            raise NullsNotAllowedError(
                f"{operation} is defined on null-free instances only "
                f"(instance has {self.null_count()} null cells)"
            )

    # -- columns and domains -----------------------------------------------------

    def column(self, attribute: str) -> Tuple[Any, ...]:
        """All values of one attribute, in row order."""
        position = self.schema.position(attribute)
        return tuple(row.values[position] for row in self.rows)

    def column_constants(self, attribute: str) -> Tuple[Any, ...]:
        """Distinct constants occurring in a column, first-occurrence order."""
        seen: set = set()
        out: List[Any] = []
        for value in self.column(attribute):
            if is_constant(value) and value not in seen:
                seen.add(value)
                out.append(value)
        return tuple(out)

    def enumeration_domain(self, attribute: str) -> Domain:
        """The finite domain used when enumerating completions of a column.

        The declared domain when finite; otherwise the *effective domain*
        built from the column (see :func:`repro.core.domain.effective_domain`).
        """
        declared = self.schema.domain(attribute)
        if declared.is_finite:
            return declared  # type: ignore[return-value]
        return effective_domain(self.column(attribute), None, attribute)

    # -- projections ---------------------------------------------------------------

    def project(
        self, attributes: AttrsInput, distinct: bool = True, name: str = ""
    ) -> "Relation":
        """Projection ``r[X]`` as a new relation instance.

        With ``distinct=True`` duplicate rows (under null-identity equality)
        are collapsed, matching set semantics.
        """
        sub_schema = self.schema.project(attributes, name=name)
        projected = [
            Row(sub_schema, row.project(sub_schema.attributes)) for row in self.rows
        ]
        if distinct:
            unique: List[Row] = []
            seen: set = set()
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique
        return Relation(sub_schema, projected)

    def distinct(self) -> "Relation":
        """The instance with duplicate rows collapsed.

        Section 6 (finiteness argument): "in the sequence of instances r'
        produced after an NS-rule application, all elements are distinct."
        """
        unique: List[Row] = []
        seen: set = set()
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Relation(self.schema, unique)

    # -- completions -----------------------------------------------------------------

    def completions(
        self,
        attributes: AttrsInput | None = None,
        null_classes: Mapping[Null, Any] | None = None,
        limit: Optional[int] = None,
    ) -> Iterator["Relation"]:
        """``AP(r, R')`` — every completion of the instance.

        Each completion substitutes a constant for every null among
        ``attributes`` (default: all).  Substitution is *per null object*:
        a null that occurs in several cells receives the same constant in
        all of them, and nulls mapped to the same equivalence class by
        ``null_classes`` (a null→class-key mapping, e.g. from NECs) likewise
        share their substituted value.

        ``limit`` guards against combinatorial blow-ups: if the number of
        completions would exceed it, :class:`repro.errors.DomainError` is
        raised *before* enumeration starts.
        """
        attrs = (
            self.schema.attributes
            if attributes is None
            else self.schema.validate_attrs(attributes)
        )
        class_of: Callable[[Null], Any]
        if null_classes is None:
            class_of = id
        else:
            class_of = lambda n: null_classes.get(n, id(n))  # noqa: E731

        # Group null cells by equivalence class; each class gets one choice.
        # A class may span several attributes (NECs across columns); its
        # choice set is the intersection of the involved enumeration domains.
        class_domains: Dict[Any, List[Any]] = {}
        class_nulls: Dict[Any, List[Null]] = {}
        order: List[Any] = []
        for attr in attrs:
            domain_values: Optional[Tuple[Any, ...]] = None
            for value in self.column(attr):
                if not is_null(value):
                    continue
                key = class_of(value)
                if domain_values is None:
                    domain_values = tuple(self.enumeration_domain(attr))
                if key not in class_domains:
                    class_domains[key] = list(domain_values)
                    class_nulls[key] = [value]
                    order.append(key)
                else:
                    allowed = set(domain_values)
                    class_domains[key] = [
                        v for v in class_domains[key] if v in allowed
                    ]
                    if all(n is not value for n in class_nulls[key]):
                        class_nulls[key].append(value)
        if not order:
            yield Relation(self.schema, list(self.rows))
            return

        total = 1
        for key in order:
            total *= max(len(class_domains[key]), 0)
            if limit is not None and total > limit:
                raise DomainError(
                    f"completion enumeration would produce more than "
                    f"{limit} instances"
                )
        if total == 0:
            return  # some class has an empty choice set: no completions

        for combo in itertools.product(*(class_domains[key] for key in order)):
            substitution: Dict[Null, Any] = {}
            for key, value in zip(order, combo):
                for null_obj in class_nulls[key]:
                    substitution[null_obj] = value
            yield Relation(
                self.schema, [row.substitute(substitution) for row in self.rows]
            )

    def completion_count(
        self,
        attributes: AttrsInput | None = None,
        null_classes: Mapping[Null, Any] | None = None,
    ) -> int:
        """Number of completions :meth:`completions` would yield."""
        attrs = (
            self.schema.attributes
            if attributes is None
            else self.schema.validate_attrs(attributes)
        )
        class_of = (lambda n: null_classes.get(n, id(n))) if null_classes else id
        sizes: Dict[Any, int] = {}
        for attr in attrs:
            domain_size: Optional[int] = None
            for value in self.column(attr):
                if not is_null(value):
                    continue
                if domain_size is None:
                    domain_size = len(self.enumeration_domain(attr))
                key = class_of(value)
                sizes[key] = min(sizes.get(key, domain_size), domain_size)
        result = 1
        for size in sizes.values():
            result *= size
        return result

    # -- rendering ----------------------------------------------------------------

    def to_text(self, null_symbol: str = "-") -> str:
        """A fixed-width table rendering, paper style (nulls shown as ``-``).

        Distinct nulls are distinguished (``-1``, ``-2``, ...) only when the
        instance contains a null that occurs more than once; otherwise the
        bare symbol is used, matching the paper's figures.
        """
        occurrences: Dict[int, int] = {}
        for row in self.rows:
            for value in row.values:
                if is_null(value):
                    occurrences[id(value)] = occurrences.get(id(value), 0) + 1
        show_labels = any(count > 1 for count in occurrences.values())

        def render(value: Any) -> str:
            if is_null(value):
                return f"{null_symbol}{value.label}" if show_labels else null_symbol
            if value is NOTHING:
                return "!"
            return str(value)

        header = list(self.schema.attributes)
        body = [[render(v) for v in row.values] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)
