"""Canonical, identity-preserving serialization of values and schemas.

Badia & Lemire's point about storing incomplete relations is that the
null-marker *semantics* must survive storage end-to-end: a naive row dump
loses exactly the three things the paper's chase maintains — shared nulls
(one unknown occupying several cells), forced substitutions, and the
NOTHING state.  This module is the codec layer the durable subsystem
(:mod:`repro.db`) builds on:

* **Canonical null ids.**  A :class:`ValueCodec` names each distinct
  :class:`~repro.core.values.Null` object by its *first-occurrence order*
  within the codec's scope (``n0``, ``n1``, ...), not by ``id()`` — so two
  runs of the same op script produce **byte-identical** dumps, and a dump
  decoded in a fresh process reconstructs the exact sharing structure:
  cells that held one null object again hold one null object.
* **Tagged values.**  Constants that are JSON scalars pass through
  untouched; nulls become ``{"n": <canonical id>}``; ``NOTHING`` becomes
  ``{"!": true}``; ``None`` (a legal constant) is wrapped as
  ``{"v": null}`` so it cannot be confused with a missing field.  Any
  other constant type raises :class:`~repro.errors.CodecError` — refusing
  is better than a lossy ``repr`` round-trip.
* **Schema and FD specs.**  :func:`schema_to_spec` /
  :func:`schema_from_spec` serialize a
  :class:`~repro.core.schema.RelationSchema` (finite domains via
  :meth:`~repro.core.domain.Domain.to_spec`; unbounded domains are simply
  absent), and :func:`fds_to_spec` / :func:`fds_from_spec` use the FD
  arrow notation, which :meth:`~repro.core.fd.FD.parse` round-trips.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from ..errors import CodecError
from .domain import Domain
from .fd import FD, FDInput, as_fd
from .schema import RelationSchema
from .values import NOTHING, Null, is_null

#: JSON-scalar constant types the codec passes through untagged.  ``bool``
#: is a subclass of ``int`` but listed for clarity; ``None`` is handled by
#: the tagged ``{"v": ...}`` form.
_SCALARS = (str, int, float, bool)


class ValueCodec:
    """Encode/decode cell values with canonical, stable null identity.

    One codec instance defines one naming scope — for the durable layer,
    one *relation* (checkpoint plus op-log tail share the scope, so a null
    introduced before a checkpoint and referenced after it resolves to the
    same object).  Encoding is deterministic: canonical ids are assigned in
    first-encounter order, never from ``id()``.

    Decoding is deliberately *lenient* about unknown ids: a log record may
    reference a null that no longer occurs in the checkpointed rows (every
    row holding it was deleted while the caller kept the object alive).
    All live occurrences of such an id necessarily come from post-checkpoint
    records, so materializing a fresh null at first reference — and reusing
    it for every later reference — reconstructs the sharing structure
    exactly.
    """

    def __init__(self) -> None:
        #: id(null object) -> canonical id
        self._ids: Dict[int, str] = {}
        #: canonical id -> null object (also keeps the object alive, so a
        #: garbage-collected null can never donate its ``id()`` to a new one)
        self._objects: Dict[str, Null] = {}
        self._next = 0

    # -- scope bookkeeping ---------------------------------------------------

    @property
    def null_counter(self) -> int:
        """The next canonical id to assign (persisted by checkpoints so
        post-recovery encodings keep numbering where the crashed process
        stopped, instead of reusing retired ids)."""
        return self._next

    def seed_counter(self, value: int) -> None:
        """Fast-forward the id counter (checkpoint recovery)."""
        if value > self._next:
            self._next = value

    def id_of(self, null_obj: Null) -> str:
        """The canonical id of a null, assigning one on first encounter."""
        key = id(null_obj)
        canonical = self._ids.get(key)
        if canonical is None:
            # skip ids already registered by decoding (recovery without a
            # checkpoint replays records whose ids must stay reserved —
            # reusing one would alias a new unknown onto an old one)
            canonical = f"n{self._next}"
            while canonical in self._objects:  # pragma: no cover - belt
                self._next += 1
                canonical = f"n{self._next}"
            self._next += 1
            self._ids[key] = canonical
            self._objects[canonical] = null_obj
        return canonical

    def table(self) -> Dict[str, Null]:
        """Canonical id → null object, for the whole scope (a copy).

        The bridge between two scopes that encoded the same logical
        instance: matching ids identify corresponding unknowns, which is
        how the differential recovery suite aligns recovered nulls with
        the reference session's.
        """
        return dict(self._objects)

    def knows(self, canonical: str) -> bool:
        """Has this scope minted (or decoded) the canonical null id?

        Unlike :meth:`object_of`, asking never mints: this is the static
        membership test the batch linter uses to flag references to nulls
        the relation has never named (lenient decoding would silently
        materialize a fresh unknown instead).
        """
        return canonical in self._objects

    def object_of(self, canonical: str) -> Null:
        """The null object behind a canonical id (creating it if unseen —
        see the class docstring on lenient decoding)."""
        null_obj = self._objects.get(canonical)
        if null_obj is None:
            null_obj = Null(canonical)
            self._objects[canonical] = null_obj
            self._ids[id(null_obj)] = canonical
            # decoded ids reserve their number: fresh nulls encoded after
            # a recovery must continue numbering where the log stopped,
            # exactly as the uninterrupted process would have
            if canonical.startswith("n"):
                try:
                    self._next = max(self._next, int(canonical[1:]) + 1)
                except ValueError:
                    pass
        return null_obj

    # -- values ----------------------------------------------------------------

    def encode(self, value: Any) -> Any:
        """One cell value as a JSON-able token."""
        if is_null(value):
            return {"n": self.id_of(value)}
        if value is NOTHING:
            return {"!": True}
        if value is None:
            return {"v": None}
        if isinstance(value, _SCALARS):
            return value
        raise CodecError(
            f"constant {value!r} of type {type(value).__name__} is not "
            "JSON-serializable; durable relations need scalar constants"
        )

    def decode(self, token: Any) -> Any:
        """Invert :meth:`encode`."""
        if isinstance(token, dict):
            if "n" in token:
                canonical = token["n"]
                if not isinstance(canonical, str):
                    raise CodecError(f"malformed null token {token!r}")
                return self.object_of(canonical)
            if "!" in token:
                return NOTHING
            if "v" in token:
                return token["v"]
            raise CodecError(f"unknown value token {token!r}")
        if token is None or isinstance(token, _SCALARS):
            return token
        raise CodecError(f"unknown value token {token!r}")

    # -- rows -------------------------------------------------------------------

    def encode_row(self, values: Sequence[Any]) -> List[Any]:
        return [self.encode(value) for value in values]

    def decode_row(self, tokens: Sequence[Any]) -> List[Any]:
        if not isinstance(tokens, (list, tuple)):
            raise CodecError(f"malformed row {tokens!r}")
        return [self.decode(token) for token in tokens]


# ---------------------------------------------------------------------------
# schema and FD specs
# ---------------------------------------------------------------------------


def schema_to_spec(schema: RelationSchema) -> dict:
    """A JSON-able description of a relation scheme.

    Finite domains serialize through :meth:`Domain.to_spec`; attributes
    with unbounded domains are omitted from the ``domains`` map (the
    schema constructor defaults them back to ``UNBOUNDED``).
    """
    domains = {}
    for attr in schema.attributes:
        declared = schema.domain(attr)
        if declared.is_finite:
            domains[attr] = declared.to_spec()  # type: ignore[union-attr]
    return {
        "name": schema.name,
        "attributes": list(schema.attributes),
        "domains": domains,
    }


def schema_from_spec(spec: dict) -> RelationSchema:
    """Rebuild a relation scheme from :func:`schema_to_spec` output."""
    try:
        domains = {
            attr: Domain.from_spec(sub)
            for attr, sub in spec.get("domains", {}).items()
        }
        return RelationSchema(spec["name"], spec["attributes"], domains=domains)
    except (TypeError, KeyError) as error:
        raise CodecError(f"malformed schema spec: {error}") from None


def fds_to_spec(fds: Iterable[FDInput]) -> List[str]:
    """FDs in arrow notation (``"A B -> C"``), which ``FD.parse`` inverts."""
    return [repr(as_fd(fd)) for fd in fds]


def fds_from_spec(spec: Iterable[str]) -> List[FD]:
    return [FD.parse(text) for text in spec]
