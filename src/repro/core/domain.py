"""Attribute domains.

Section 4 of the paper: "the concept of an attribute domain and its size is
important.  Domains are finite and are assumed known."  Finite domains are
what makes the F2 case of Proposition 1 possible at all (an FD can only
become *false* through an X-null when the substitutions "run out of domain
values").

The library supports two kinds of domains:

* :class:`Domain` — an explicit finite set of constants, in a fixed
  deterministic order (insertion order of the constructor argument);
* :data:`UNBOUNDED` — a domain about which only membership-of-anything is
  known.  With an unbounded domain an X-null can never exhaust its
  substitutions, so the F2 case never fires; algorithms that must enumerate
  completions either raise :class:`repro.errors.DomainError` or switch to
  the *effective domain* construction (:func:`effective_domain`), which is
  sound for every question that depends only on the equality pattern of
  values (all FD questions do — see the function's docstring).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Sequence

from ..errors import DomainError
from .values import is_constant, is_null


class Domain:
    """A finite, ordered attribute domain.

    The iteration order is deterministic (the order values were given in),
    which keeps completion enumeration, random workload generation and test
    output reproducible.
    """

    __slots__ = ("name", "_values", "_index")

    def __init__(self, values: Iterable[Hashable], name: str = "") -> None:
        ordered: list = []
        seen: set = set()
        for value in values:
            if not is_constant(value):
                raise DomainError(
                    f"domain values must be constants, got {value!r}"
                )
            if value in seen:
                raise DomainError(f"duplicate domain value {value!r}")
            seen.add(value)
            ordered.append(value)
        if not ordered:
            raise DomainError("a finite domain must contain at least one value")
        self.name = name
        self._values = tuple(ordered)
        self._index = {value: i for i, value in enumerate(ordered)}

    # -- basic protocol ----------------------------------------------------

    @property
    def values(self) -> tuple:
        """The domain's constants, in deterministic order."""
        return self._values

    @property
    def is_finite(self) -> bool:
        return True

    def __contains__(self, value: Any) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        label = self.name or "Domain"
        if len(self._values) <= 6:
            return f"{label}{list(self._values)!r}"
        return f"{label}[{len(self._values)} values]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    # -- durable codec (repro.db) --------------------------------------------

    def to_spec(self) -> dict:
        """A JSON-able description that :meth:`from_spec` round-trips.

        Values must be JSON scalars (str/int/float/bool/None) — the same
        constant vocabulary the durable value codec accepts — so a domain
        written to disk decodes to an equal :class:`Domain`, in the same
        deterministic order.
        """
        for value in self._values:
            if not (value is None or isinstance(value, (str, int, float, bool))):
                raise DomainError(
                    f"domain value {value!r} is not JSON-serializable; "
                    "durable schemas need scalar domain values"
                )
        return {"name": self.name, "values": list(self._values)}

    @classmethod
    def from_spec(cls, spec: dict) -> "Domain":
        """Rebuild a domain from :meth:`to_spec` output."""
        try:
            return cls(spec["values"], name=spec.get("name", ""))
        except (TypeError, KeyError) as error:
            raise DomainError(f"malformed domain spec {spec!r}: {error}") from None

    # -- queries used by the algorithms -------------------------------------

    def missing_from(self, present: Iterable[Hashable]) -> list:
        """Domain values that do not occur in ``present``.

        This is the test behind the X-substitution condition (2) of section
        4 ("all completions of t[X] appear in r except one ... may be
        substituted with the value of the domain of X that does not appear").
        """
        present_set = set(present)
        return [value for value in self._values if value not in present_set]


class _UnboundedDomain:
    """A domain with unknown (practically infinite) extent.

    Membership accepts any constant.  Enumeration is impossible; algorithms
    needing it must go through :func:`effective_domain`.
    """

    _instance: "_UnboundedDomain | None" = None

    def __new__(cls) -> "_UnboundedDomain":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    name = "unbounded"

    @property
    def is_finite(self) -> bool:
        return False

    def __contains__(self, value: Any) -> bool:
        return is_constant(value)

    def __iter__(self) -> Iterator:
        raise DomainError("an unbounded domain cannot be enumerated")

    def __len__(self) -> int:
        raise DomainError("an unbounded domain has no size")

    def __repr__(self) -> str:
        return "UNBOUNDED"

    def __reduce__(self) -> tuple:
        return (_UnboundedDomain, ())

    def missing_from(self, present: Iterable[Hashable]) -> list:
        raise DomainError("an unbounded domain cannot enumerate missing values")


UNBOUNDED = _UnboundedDomain()

#: A fresh-symbol prefix that user constants are assumed not to collide
#: with.  ``effective_domain`` manufactures witnesses with this prefix.
_FRESH_PREFIX = "†fresh"


def effective_domain(
    column_values: Sequence[Any],
    declared: "Domain | _UnboundedDomain | None",
    attribute: str = "",
) -> Domain:
    """A finite domain that is *equivalent* to the declared one for FD
    questions about a specific column.

    If the declared domain is already finite it is returned unchanged.
    Otherwise a finite surrogate is built from the constants occurring in
    the column plus ``k + 1`` fresh symbols, where ``k`` is the number of
    nulls in the column.

    Why this is sound: the truth of any FD statement (classical or extended,
    universally or existentially quantified over completions) depends only
    on the *equality pattern* among cell values, never on what the values
    are.  With ``k`` nulls, any equality pattern over the completed column
    partitions those nulls among at most ``k`` fresh classes plus the
    existing constants, so ``k`` fresh symbols realize every reachable
    pattern; one extra symbol is included so that "pick a value different
    from all of these" is always possible even when ``k = 0`` constants are
    present.  Enumerating the surrogate domain therefore visits a
    representative of every equality pattern the unbounded domain could
    realize — and no pattern it could not.
    """
    if declared is not None and declared.is_finite:
        return declared  # type: ignore[return-value]
    constants = []
    seen: set = set()
    nulls = 0
    for value in column_values:
        if is_null(value):
            nulls += 1
        elif is_constant(value) and value not in seen:
            seen.add(value)
            constants.append(value)
    # Fresh symbols must not collide with observed constants — including
    # fresh symbols injected by an *earlier* effective-domain completion of
    # the same column — so skip over any occupied labels.
    fresh: list = []
    candidate = 0
    while len(fresh) < nulls + 1:
        symbol = f"{_FRESH_PREFIX}:{attribute}:{candidate}"
        candidate += 1
        if symbol not in seen:
            fresh.append(symbol)
    return Domain(constants + fresh, name=f"effective({attribute})")
