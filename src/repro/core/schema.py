"""Relation schemes.

A :class:`RelationSchema` is the paper's *relation scheme* ``R``: a named,
ordered collection of attributes, each with a domain.  Domains default to
:data:`repro.core.domain.UNBOUNDED`; algorithms that need finiteness say so
explicitly (see :mod:`repro.core.domain`).

The running example of Figure 1.1::

    R = RelationSchema(
        "R", "E# SL D# CT",
        domains={"CT": Domain(["permanent", "temporary"], name="CT")},
    )
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple, Union

from ..errors import SchemaError
from .attributes import AttrsInput, parse_attrs
from .domain import UNBOUNDED, Domain, _UnboundedDomain

DomainLike = Union[Domain, _UnboundedDomain]


class RelationSchema:
    """A relation scheme: name, ordered attributes, per-attribute domains."""

    __slots__ = ("name", "attributes", "_positions", "_domains", "_pos_cache")

    def __init__(
        self,
        name: str,
        attributes: AttrsInput,
        domains: Optional[Mapping[str, DomainLike]] = None,
    ) -> None:
        attrs = parse_attrs(attributes)
        if not attrs:
            raise SchemaError("a relation scheme needs at least one attribute")
        if isinstance(attributes, str):
            # parse_attrs silently deduplicates; a scheme with a repeated
            # attribute is almost certainly a typo, so detect it here.
            raw = [a for a in parse_attrs(attributes)]
            if len(raw) != len(set(raw)):  # pragma: no cover - defensive
                raise SchemaError("duplicate attribute in scheme")
        self.name = name
        self.attributes: Tuple[str, ...] = attrs
        self._positions = {attr: i for i, attr in enumerate(attrs)}
        resolved: dict[str, DomainLike] = {attr: UNBOUNDED for attr in attrs}
        if domains:
            for attr, dom in domains.items():
                if attr not in self._positions:
                    raise SchemaError(
                        f"domain given for unknown attribute {attr!r}"
                    )
                resolved[attr] = dom
        self._domains = resolved
        #: memoized attribute-spec -> column-index tuples (see ``positions``)
        self._pos_cache: dict = {}

    # -- structure ----------------------------------------------------------

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the scheme's column order."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} is not in scheme {self.name}"
            ) from None

    def positions(self, attributes: AttrsInput) -> Tuple[int, ...]:
        """Column indexes for a set of attributes (validates membership).

        Results are memoized per attribute spec (when hashable): projection
        code — the chase engines, TEST-FDs, :meth:`Row.project` — asks for
        the same FD sides over and over, so repeated parsing/validation
        would otherwise dominate tight loops.
        """
        try:
            cached = self._pos_cache.get(attributes)
        except TypeError:  # unhashable spec (e.g. a list) — compute directly
            return tuple(self.position(a) for a in parse_attrs(attributes))
        if cached is None:
            cached = tuple(self.position(a) for a in parse_attrs(attributes))
            self._pos_cache[attributes] = cached
        return cached

    def domain(self, attribute: str) -> DomainLike:
        """The (possibly unbounded) domain of ``attribute``."""
        self.position(attribute)  # validation
        return self._domains[attribute]

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.attributes == other.attributes
            and self._domains == other._domains
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"

    # -- derived schemes -----------------------------------------------------

    def project(self, attributes: AttrsInput, name: str = "") -> "RelationSchema":
        """A sub-scheme over ``attributes`` (order taken from this scheme)."""
        keep = set(parse_attrs(attributes))
        unknown = keep - set(self.attributes)
        if unknown:
            raise SchemaError(
                f"cannot project {self.name} onto unknown attributes {sorted(unknown)}"
            )
        attrs = tuple(a for a in self.attributes if a in keep)
        return RelationSchema(
            name or f"{self.name}[{' '.join(attrs)}]",
            attrs,
            domains={a: self._domains[a] for a in attrs},
        )

    def validate_attrs(self, attributes: AttrsInput) -> Tuple[str, ...]:
        """Parse and check that every attribute belongs to this scheme."""
        attrs = parse_attrs(attributes)
        for attr in attrs:
            self.position(attr)
        return attrs
