"""Cell values: constants, *null* and *nothing*.

The paper works with three kinds of values that may occupy a relation cell:

* **constants** — ordinary domain values.  The library represents them as
  plain hashable Python objects (strings, ints, ...) so user code stays
  natural;
* **null** — the *missing* null of section 2: "a value which exists, but is
  presently unknown".  Nulls have identity: two occurrences of null are
  *different* unknown values unless a null-equality constraint (section 6,
  Definition 1) says otherwise.  :class:`Null` instances compare by object
  identity and carry a small integer id for printing and ordering;
* **nothing** — the inconsistent element introduced in section 6 for the
  extended NS-rules: the value a cell takes when the constraints force two
  distinct constants to be equal.  There is a single :data:`NOTHING`
  sentinel.

Section 2 notes that introducing null makes each domain "a lattice with an
approximation ordering" where null carries less information than every
constant; :func:`approximates` implements that order (with ``NOTHING`` as
the over-defined top element).
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Hashable


class Null:
    """A missing-but-existing value with identity.

    Each :class:`Null` is a distinct unknown; equality is object identity.
    The ``label`` is only for display.  Fresh nulls are normally obtained via
    :func:`null` (a process-wide counter keeps labels unique), but tests may
    construct labelled nulls directly for readable assertions.
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"⊥{self.label}"  # e.g. ⊥3

    # Identity semantics are inherited from ``object`` (==, hash); we state
    # them in the class docstring rather than overriding, so that dict/set
    # usage stays fast and obviously correct.


class _Nothing:
    """The single inconsistent ("over-defined") data value of section 6."""

    _instance: "_Nothing | None" = None

    def __new__(cls) -> "_Nothing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NOTHING"

    def __reduce__(self) -> tuple:
        return (_Nothing, ())


NOTHING = _Nothing()

_counter = itertools.count(1)
_counter_lock = threading.Lock()
#: label prefix distinguishing forked children: empty in the original
#: process, the pid lineage (``"1234."``, ``"1234.1250."`` for a
#: grandchild) after a fork.  Concurrently-live processes have distinct
#: pids, so labels allocated by parent and children can never collide —
#: the property the parallel chase's multiprocessing pool relies on.
_fork_scope = ""


def _reseed_after_fork() -> None:  # pragma: no cover - runs in fork children
    """Give a forked child its own disjoint label range.

    The child inherits the parent's counter position; without re-seeding,
    parent and child would both hand out the *same* next labels.  The
    label namespace is scoped by pid lineage instead; the lock is also
    re-created, since a fork can land while another thread holds it.
    """
    global _counter, _counter_lock, _fork_scope
    _counter = itertools.count(1)
    _counter_lock = threading.Lock()
    _fork_scope = f"{_fork_scope}{os.getpid()}."


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reseed_after_fork)


def null(label: str | None = None) -> Null:
    """Create a fresh null value.

    Each call returns a brand-new unknown.  Without an explicit ``label`` a
    process-unique number is used so printed instances stay readable
    (prefixed by the pid lineage in forked worker processes, keeping
    labels unique across a ``multiprocessing`` pool).
    """
    if label is None:
        with _counter_lock:
            label = f"{_fork_scope}{next(_counter)}"
    return Null(label)


def is_null(value: Any) -> bool:
    """True when ``value`` is a null (a missing value)."""
    return isinstance(value, Null)


def is_nothing(value: Any) -> bool:
    """True when ``value`` is the inconsistent element."""
    return value is NOTHING


def is_constant(value: Any) -> bool:
    """True when ``value`` is an ordinary domain constant."""
    return not isinstance(value, Null) and value is not NOTHING


def approximates(lower: Any, upper: Any) -> bool:
    """The approximation order of the value lattice: ``lower ⊑ upper``.

    * a null approximates everything (it carries the least information);
    * every value approximates itself;
    * everything approximates NOTHING (the over-defined top).

    Note that two *distinct* nulls do not approximate each other: each is a
    separate unknown.
    """
    if lower is upper:
        return True
    if is_null(lower):
        return True
    if is_nothing(upper):
        return True
    return is_constant(lower) and is_constant(upper) and lower == upper


def value_lub(first: Any, second: Any) -> Any:
    """Least upper bound of two values in the approximation lattice.

    Joining two distinct constants yields :data:`NOTHING` — exactly the
    poisoning step of the extended NS-rules.  Joining a null with anything
    yields the other value (identical nulls join to themselves).
    """
    if first is second:
        return first
    if is_nothing(first) or is_nothing(second):
        return NOTHING
    if is_null(first):
        return second
    if is_null(second):
        return first
    if first == second:
        return first
    return NOTHING


def constant_key(value: Hashable) -> tuple:
    """A total-order sort key over constants of mixed Python types.

    Sorting is by ``(type name, repr)`` so heterogeneous domains (ints mixed
    with strings) never raise ``TypeError`` during the sort-merge algorithm.
    """
    return (type(value).__name__, repr(value))
