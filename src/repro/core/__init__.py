"""Core data model and the paper's primary contribution.

This package holds the value/domain/schema/relation substrate (sections 2-3
of the paper) and the extended, three-valued FD interpretation with its
strong/weak satisfiability notions (section 4).
"""

from .attributes import (
    attrs_difference,
    attrs_intersection,
    attrs_union,
    format_attrs,
    is_subset,
    parse_attrs,
)
from .domain import UNBOUNDED, Domain, effective_domain
from .fd import (
    FD,
    FDSet,
    as_fd,
    all_hold_classical,
    classical_fd_value,
    holds_classical,
    violations_classical,
)
from .interpretation import (
    DEFAULT_LIMIT,
    Proposition1Result,
    evaluate_fd,
    evaluate_fd_brute,
    proposition1_case,
)
from .relation import Relation
from .satisfaction import (
    fd_value_profile,
    satisfaction_summary,
    satisfying_completion,
    strongly_holds,
    strongly_satisfied,
    strongly_satisfied_bruteforce,
    weakly_holds,
    weakly_holds_each,
    weakly_satisfied,
)
from .schema import RelationSchema
from .truth import (
    FALSE,
    TRUE,
    UNKNOWN,
    TruthValue,
    and_,
    from_bool,
    implies_,
    is_definite,
    lub,
    not_,
    or_,
)
from .tuples import Row
from .values import (
    NOTHING,
    Null,
    approximates,
    constant_key,
    is_constant,
    is_nothing,
    is_null,
    null,
    value_lub,
)

__all__ = [
    # attributes
    "attrs_difference",
    "attrs_intersection",
    "attrs_union",
    "format_attrs",
    "is_subset",
    "parse_attrs",
    # domains
    "UNBOUNDED",
    "Domain",
    "effective_domain",
    # fds
    "FD",
    "FDSet",
    "as_fd",
    "all_hold_classical",
    "classical_fd_value",
    "holds_classical",
    "violations_classical",
    # interpretation
    "DEFAULT_LIMIT",
    "Proposition1Result",
    "evaluate_fd",
    "evaluate_fd_brute",
    "proposition1_case",
    # relation/schema/rows
    "Relation",
    "RelationSchema",
    "Row",
    # satisfaction
    "fd_value_profile",
    "satisfaction_summary",
    "satisfying_completion",
    "strongly_holds",
    "strongly_satisfied",
    "strongly_satisfied_bruteforce",
    "weakly_holds",
    "weakly_holds_each",
    "weakly_satisfied",
    # truth values
    "FALSE",
    "TRUE",
    "UNKNOWN",
    "TruthValue",
    "and_",
    "from_bool",
    "implies_",
    "is_definite",
    "lub",
    "not_",
    "or_",
    # values
    "NOTHING",
    "Null",
    "approximates",
    "constant_key",
    "is_constant",
    "is_nothing",
    "is_null",
    "null",
    "value_lub",
]
