"""Rows (the paper's *tuples*) of a relation instance.

A :class:`Row` holds one value per attribute of its schema.  Values are
constants, :class:`repro.core.values.Null` objects, or — in chase output —
:data:`repro.core.values.NOTHING`.  Rows are immutable; substitution returns
a new row.

The name ``Row`` avoids shadowing Python's built-in ``tuple``; everywhere in
documentation "row" and the paper's "tuple" are interchangeable.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from ..errors import DomainError, SchemaError
from .attributes import AttrsInput, parse_attrs
from .domain import effective_domain
from .schema import RelationSchema
from .values import NOTHING, Null, is_constant, is_null


class Row:
    """One tuple of a relation instance, bound to a schema."""

    __slots__ = ("schema", "values")

    def __init__(self, schema: RelationSchema, values: Sequence[Any]) -> None:
        values = tuple(values)
        if len(values) != len(schema.attributes):
            raise SchemaError(
                f"row arity {len(values)} does not match scheme "
                f"{schema!r} with {len(schema.attributes)} attributes"
            )
        self.schema = schema
        self.values = values

    @classmethod
    def from_mapping(
        cls, schema: RelationSchema, mapping: Mapping[str, Any]
    ) -> "Row":
        """Build a row from an attribute→value mapping.

        Missing attributes are **not** silently nulled — every attribute must
        be present, to catch typos; use an explicit ``null()`` for unknowns.
        """
        missing = [a for a in schema.attributes if a not in mapping]
        if missing:
            raise SchemaError(f"missing values for attributes {missing}")
        extra = [a for a in mapping if a not in schema]
        if extra:
            raise SchemaError(f"values for unknown attributes {sorted(extra)}")
        return cls(schema, [mapping[a] for a in schema.attributes])

    # -- access ---------------------------------------------------------------

    def __getitem__(self, attribute: str) -> Any:
        """The value of a single attribute: ``row["A"]``."""
        return self.values[self.schema.position(attribute)]

    def project(self, attributes: AttrsInput) -> Tuple[Any, ...]:
        """``t[X]`` — the projection of the row on an attribute set.

        Returned as a plain tuple of values (ordered as in ``attributes``),
        which is how all comparison code consumes projections.
        """
        return tuple(self.values[i] for i in self.schema.positions(attributes))

    def as_dict(self) -> Dict[str, Any]:
        """The row as an attribute→value dict (a copy)."""
        return dict(zip(self.schema.attributes, self.values))

    # -- null structure ---------------------------------------------------------

    def null_attributes(self, attributes: AttrsInput | None = None) -> Tuple[str, ...]:
        """Attributes (within ``attributes``, default all) whose value is null."""
        attrs = (
            self.schema.attributes
            if attributes is None
            else parse_attrs(attributes)
        )
        return tuple(a for a in attrs if is_null(self[a]))

    def has_null(self, attributes: AttrsInput | None = None) -> bool:
        """``t[X] = null`` in the paper's notation: some value in X is null."""
        return bool(self.null_attributes(attributes))

    def is_total(self, attributes: AttrsInput | None = None) -> bool:
        """``t[X] ≠ null``: no value in X is null (NOTHING counts as non-null)."""
        return not self.has_null(attributes)

    def nulls(self) -> Tuple[Null, ...]:
        """All null objects in the row, in column order."""
        return tuple(v for v in self.values if is_null(v))

    # -- substitution and completion ----------------------------------------------

    def substitute(self, replacements: Mapping[Null, Any]) -> "Row":
        """A new row with each null replaced per ``replacements``.

        Nulls not mentioned are kept.  Replacement by identity (a null
        mapped to itself) is allowed and is a no-op.
        """
        return Row(
            self.schema,
            [replacements.get(v, v) if is_null(v) else v for v in self.values],
        )

    def completions(
        self,
        attributes: AttrsInput | None = None,
        column_values: Mapping[str, Sequence[Any]] | None = None,
    ) -> Iterator["Row"]:
        """``AP(t, R')`` — all completions of the row on ``attributes``.

        A *completion* substitutes every null among ``attributes`` (default:
        all attributes) by a domain constant; values outside ``attributes``
        are untouched (they may stay null, matching the paper's
        projection-scoped definition ``AP(t, XY)``).

        For attributes with unbounded domains, an *effective domain* is
        constructed from ``column_values`` (the values seen in that column
        of the enclosing relation) — see
        :func:`repro.core.domain.effective_domain` for the soundness
        argument.  If the caller does not supply ``column_values`` the
        row's own values are all that is available, which is only adequate
        for free-standing rows; :class:`repro.core.relation.Relation`
        always passes the full columns.
        """
        attrs = (
            self.schema.attributes
            if attributes is None
            else self.schema.validate_attrs(attributes)
        )
        null_attrs = [a for a in attrs if is_null(self[a])]
        if not null_attrs:
            yield self
            return
        # One choice per distinct null *object*: a null occupying several
        # positions is the same unknown and must be substituted consistently,
        # so its choice set is the intersection of the involved domains.
        order: list[Null] = []
        allowed: Dict[int, list] = {}
        for attr in null_attrs:
            value = self[attr]
            declared = self.schema.domain(attr)
            if declared.is_finite:
                domain_values = list(declared)
            else:
                column = (
                    column_values.get(attr, self.project((attr,)))
                    if column_values is not None
                    else self.project((attr,))
                )
                domain_values = list(effective_domain(column, None, attr))
            key = id(value)
            if key not in allowed:
                allowed[key] = domain_values
                order.append(value)
            else:
                keep = set(domain_values)
                allowed[key] = [v for v in allowed[key] if v in keep]
        for combo in itertools.product(*(allowed[id(n)] for n in order)):
            yield self.substitute(dict(zip(order, combo)))

    def approximates(self, other: "Row") -> bool:
        """Row-wise approximation order: every value approximates pointwise.

        ``t ⊑ t'`` holds when ``t'`` agrees with ``t`` everywhere except
        possibly where ``t`` is null — i.e. ``t'`` is at least as informative.
        (This is the tuple-lattice order behind the name ``AP``: the
        completions of ``t`` are exactly the total rows that ``t``
        approximates.)
        """
        from .values import approximates as value_approximates

        if self.schema.attributes != other.schema.attributes:
            return False
        return all(
            value_approximates(a, b) for a, b in zip(self.values, other.values)
        )

    # -- plumbing -------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same scheme attributes, identical values.

        Null values compare by identity, so two rows with *different* null
        objects in the same position are **not** equal — they denote
        possibly-different unknowns.
        """
        return (
            isinstance(other, Row)
            and self.schema.attributes == other.schema.attributes
            and all(
                (a is b) or (is_constant(a) and is_constant(b) and a == b)
                for a, b in zip(self.values, other.values)
            )
        )

    def __hash__(self) -> int:
        return hash(
            tuple(
                v if is_constant(v) else id(v) if is_null(v) else "NOTHING"
                for v in self.values
            )
        )

    def __repr__(self) -> str:
        rendered = ", ".join(_render(v) for v in self.values)
        return f"({rendered})"


def _render(value: Any) -> str:
    if is_null(value):
        return repr(value)
    if value is NOTHING:
        return "NOTHING"
    return repr(value)
