"""Three-valued truth domain used throughout the paper.

The paper evaluates extended functional dependencies (and, in section 5,
System-C formulas) into the set ``{true, false, unknown}``.  Two distinct
structures coexist on this set and both are provided here:

* the **Kleene (logical) structure** — ``and_``/``or_``/``not_`` — used by
  System C's recursive evaluation rules 3 and 4, and by the Kleene query
  evaluator of :mod:`repro.nullsem.queries`;

* the **approximation (knowledge) structure** — :func:`lub` — used by the
  least-extension rule of section 2: the value of a function on a null is
  the least upper bound of its values over all substitutions, where
  ``lub({true}) = true``, ``lub({false}) = false`` and
  ``lub({true, false}) = unknown`` (the paper's worked example:
  ``Q("John", null) = lub{yes, no} = unknown``).

In the approximation order ``true`` and ``false`` are incomparable and
``unknown`` sits above both, so a mixed set joins to ``unknown``.
"""

from __future__ import annotations

import enum
from typing import Iterable


class TruthValue(enum.Enum):
    """A truth value in the paper's three-valued logic."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Prevent accidental use in ``if`` conditions: ``UNKNOWN`` has no
        # sensible Python truthiness and silent coercion has caused real
        # bugs in three-valued-logic code.
        raise TypeError(
            "TruthValue cannot be coerced to bool; "
            "compare explicitly against TRUE/FALSE/UNKNOWN"
        )

    def __repr__(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.value


TRUE = TruthValue.TRUE
FALSE = TruthValue.FALSE
UNKNOWN = TruthValue.UNKNOWN

#: Kleene ordering used by ``and_``/``or_``: FALSE < UNKNOWN < TRUE.
_KLEENE_RANK = {TruthValue.FALSE: 0, TruthValue.UNKNOWN: 1, TruthValue.TRUE: 2}


def not_(value: TruthValue) -> TruthValue:
    """Kleene negation (System C evaluation rule 3)."""
    if value is TruthValue.TRUE:
        return TruthValue.FALSE
    if value is TruthValue.FALSE:
        return TruthValue.TRUE
    return TruthValue.UNKNOWN


def and_(*values: TruthValue) -> TruthValue:
    """Kleene conjunction: the minimum in the order FALSE < UNKNOWN < TRUE.

    ``and_()`` of no arguments is TRUE (empty conjunction).
    """
    result = TruthValue.TRUE
    for value in values:
        if _KLEENE_RANK[value] < _KLEENE_RANK[result]:
            result = value
    return result


def or_(*values: TruthValue) -> TruthValue:
    """Kleene disjunction: the maximum in the order FALSE < UNKNOWN < TRUE.

    ``or_()`` of no arguments is FALSE (empty disjunction).
    """
    result = TruthValue.FALSE
    for value in values:
        if _KLEENE_RANK[value] > _KLEENE_RANK[result]:
            result = value
    return result


def implies_(antecedent: TruthValue, consequent: TruthValue) -> TruthValue:
    """Kleene material implication, ``P => Q  :=  not P or Q`` (section 5)."""
    return or_(not_(antecedent), consequent)


def lub(values: Iterable[TruthValue]) -> TruthValue:
    """Least upper bound in the *approximation* order (least-extension rule).

    * an empty collection joins to TRUE — this matches the paper's usage
      where an FD with no violating completion pattern is vacuously true
      (callers that need a different empty-case answer handle it themselves);
    * a collection whose elements are all equal joins to that element;
    * any mixed collection, or any collection containing UNKNOWN, joins to
      UNKNOWN.
    """
    result: TruthValue | None = None
    for value in values:
        if value is TruthValue.UNKNOWN:
            return TruthValue.UNKNOWN
        if result is None:
            result = value
        elif result is not value:
            return TruthValue.UNKNOWN
    return TruthValue.TRUE if result is None else result


def from_bool(flag: bool) -> TruthValue:
    """Lift a Python bool into the three-valued domain."""
    return TruthValue.TRUE if flag else TruthValue.FALSE


def is_definite(value: TruthValue) -> bool:
    """True when the value carries complete information (TRUE or FALSE)."""
    return value is not TruthValue.UNKNOWN
