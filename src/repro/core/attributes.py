"""Attribute names and attribute-set utilities.

Attributes are plain strings (``"A"``, ``"E#"``, ``"salary"``).  Sets of
attributes — the ``X`` and ``Y`` of an FD ``X -> Y`` — appear throughout the
paper; this module centralizes parsing and canonical ordering so that every
algorithm agrees on what ``"E# SL,D#"`` means.

Parsing accepts comma- and/or whitespace-separated names, so all of
``"A B"``, ``"A,B"`` and ``"A, B"`` denote the same attribute set.  Parsed
sets are returned as tuples in first-occurrence order with duplicates
removed; semantic operations (closure, subset tests) treat them as sets.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence, Tuple, Union

from ..errors import SchemaError

#: The type accepted wherever the library wants "some attributes".
AttrsInput = Union[str, Iterable[str]]

_SPLIT = re.compile(r"[,\s]+")


def parse_attrs(spec: AttrsInput) -> Tuple[str, ...]:
    """Normalize an attribute specification to a duplicate-free tuple.

    ``spec`` may be a string (``"A B"``, ``"A,B"``) or any iterable of
    attribute names.  Order of first occurrence is preserved so printed
    output matches what the user wrote.
    """
    if isinstance(spec, str):
        names = [name for name in _SPLIT.split(spec.strip()) if name]
    else:
        names = list(spec)
    result: list[str] = []
    seen: set[str] = set()
    for name in names:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid attribute name {name!r}")
        if name not in seen:
            seen.add(name)
            result.append(name)
    return tuple(result)


def attrs_union(*groups: AttrsInput) -> Tuple[str, ...]:
    """Union of attribute specifications, first-occurrence order."""
    result: list[str] = []
    seen: set[str] = set()
    for group in groups:
        for name in parse_attrs(group):
            if name not in seen:
                seen.add(name)
                result.append(name)
    return tuple(result)


def attrs_difference(left: AttrsInput, right: AttrsInput) -> Tuple[str, ...]:
    """Attributes of ``left`` not in ``right``, preserving ``left``'s order."""
    removed = set(parse_attrs(right))
    return tuple(name for name in parse_attrs(left) if name not in removed)


def attrs_intersection(left: AttrsInput, right: AttrsInput) -> Tuple[str, ...]:
    """Attributes common to both, in ``left``'s order."""
    keep = set(parse_attrs(right))
    return tuple(name for name in parse_attrs(left) if name in keep)


def is_subset(left: AttrsInput, right: AttrsInput) -> bool:
    """True when every attribute of ``left`` occurs in ``right``."""
    return set(parse_attrs(left)) <= set(parse_attrs(right))


def format_attrs(attrs: Sequence[str]) -> str:
    """Render an attribute tuple the way the paper writes it (``"A B"``)."""
    return " ".join(attrs) if attrs else "∅"
